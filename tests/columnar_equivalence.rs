//! Differential testing of the two executor paths: the vectorized
//! columnar scan (default) against the row-at-a-time interpreter
//! (`PlanConfig::force_row_store`). The columnar path is an internal
//! rewrite — rows, row order, and the observable `ExecStats` counters
//! must be indistinguishable for every query, corpus or generated.

use proptest::prelude::*;
use qbs::FragmentStatus;
use qbs_batch::{corpus_inputs, BatchConfig, BatchRunner};
use qbs_common::Value;
use qbs_corpus::populate_universe;
use qbs_db::{Database, Params, PlanConfig, QueryOutput};
use qbs_sql::{parse_query, SqlQuery};

fn row_store() -> PlanConfig {
    PlanConfig { force_row_store: true, ..PlanConfig::default() }
}

/// Execute one query under both configurations and require identical
/// output — rows AND stats (`ExecStats` equality covers rows_scanned,
/// join_comparisons, index usage, and sub-query counters; timing fields
/// are excluded from its `PartialEq`).
fn assert_paths_agree(db: &Database, q: &SqlQuery, params: &Params, label: &str) {
    let vectorized = db
        .execute_with(q, params, &PlanConfig::default())
        .unwrap_or_else(|e| panic!("{label}: vectorized execution failed: {e}"));
    let rowwise = db
        .execute_with(q, params, &row_store())
        .unwrap_or_else(|e| panic!("{label}: row-store execution failed: {e}"));
    match (&vectorized, &rowwise) {
        (QueryOutput::Rows(v), QueryOutput::Rows(r)) => {
            assert_eq!(v.rows, r.rows, "{label}: rows diverged");
            assert_eq!(v.stats, r.stats, "{label}: stats diverged");
        }
        (
            QueryOutput::Scalar { value: v, stats: vs },
            QueryOutput::Scalar { value: r, stats: rs },
        ) => {
            assert_eq!(v, r, "{label}: scalar diverged");
            assert_eq!(vs, rs, "{label}: stats diverged");
        }
        _ => panic!("{label}: output shapes diverged"),
    }
}

/// Every translated corpus fragment produces identical rows and counters
/// under both executors, on three differently seeded databases.
#[test]
fn corpus_queries_agree_between_columnar_and_row_store() {
    let runner = BatchRunner::new(BatchConfig::new());
    let report = runner.run(&corpus_inputs());
    let mut translated = 0;
    for seed in [1, 2, 3] {
        let db = populate_universe(seed);
        for fr in &report.fragments {
            let FragmentStatus::Translated { sql, .. } = &fr.status else { continue };
            translated += 1;
            assert_paths_agree(
                &db,
                sql,
                &Params::new(),
                &format!("{} (seed {seed})", fr.input),
            );
        }
    }
    assert_eq!(translated, 33 * 3, "the paper's 33 translated fragments, three seeds");
}

/// Filter fields the generator draws WHERE atoms from: (name, is the
/// comparison against an int constant). `enabled` exercises the Bool
/// kernel, `login` falls back to the row path (string inequality against
/// a non-constant is declined by the kernel compiler on purpose).
const INT_FIELDS: &[&str] = &["id", "roleId"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Generated single-table queries over the corpus `users` table —
    /// predicates, DISTINCT, ORDER BY, LIMIT/OFFSET paging, and bound
    /// parameters — agree between the two executors.
    #[test]
    fn generated_queries_agree_between_columnar_and_row_store(
        seed in 1i64..4,
        field in 0usize..INT_FIELDS.len(),
        op in 0usize..6,
        pivot in 0i64..70,
        bool_atom in 0usize..3,
        distinct in 0usize..2,
        order in 0usize..2,
        desc in 0usize..2,
        limit in prop::option::of(0i64..10),
        offset in prop::option::of(0i64..10),
    ) {
        let ops = ["=", "<>", "<", "<=", ">", ">="];
        let mut text = format!(
            "SELECT id, roleId, enabled FROM users WHERE {} {} {pivot}",
            INT_FIELDS[field], ops[op]
        );
        match bool_atom {
            1 => text.push_str(" AND enabled = 1"),
            2 => text.push_str(" AND enabled = :flag"),
            _ => {}
        }
        if order == 1 {
            text.push_str(" ORDER BY id");
            if desc == 1 {
                text.push_str(" DESC");
            }
        }
        if let Some(n) = limit {
            text.push_str(&format!(" LIMIT {n}"));
        }
        if let Some(n) = offset {
            text.push_str(&format!(" OFFSET {n}"));
        }
        let mut q = parse_query(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        q.distinct = distinct == 1;
        let q = SqlQuery::Select(q);

        let mut params = Params::new();
        params.insert("flag".into(), Value::from(true));
        let db = populate_universe(seed as u64);
        assert_paths_agree(&db, &q, &params, &text);
    }

    /// Generated grouped queries — one or two group keys, every
    /// aggregate kind, optional WHERE and HAVING, multi-key ORDER BY
    /// with per-key direction — agree between the two executors.
    #[test]
    fn generated_grouped_queries_agree_between_columnar_and_row_store(
        seed in 1i64..4,
        agg in 0usize..4,
        two_keys in 0usize..2,
        filtered in 0usize..2,
        pivot in 0i64..70,
        having in 0usize..3,
        threshold in 0i64..5,
        order in 0usize..2,
        desc_a in 0usize..2,
        desc_b in 0usize..2,
        limit in prop::option::of(0i64..5),
    ) {
        let aggs = ["COUNT(*)", "SUM(id)", "MAX(id)", "MIN(id)"];
        let keys = if two_keys == 1 { "roleId, enabled" } else { "roleId" };
        let mut text = format!("SELECT {keys}, {} AS v FROM users", aggs[agg]);
        if filtered == 1 {
            text.push_str(&format!(" WHERE id > {pivot}"));
        }
        text.push_str(&format!(" GROUP BY {keys}"));
        match having {
            1 => text.push_str(&format!(" HAVING COUNT(*) > {threshold}")),
            2 => text.push_str(&format!(" HAVING SUM(id) > {}", threshold * 40)),
            _ => {}
        }
        if order == 1 {
            let dir = |d: usize| if d == 1 { "DESC" } else { "ASC" };
            text.push_str(&format!(" ORDER BY roleId {}", dir(desc_a)));
            if two_keys == 1 {
                text.push_str(&format!(", enabled {}", dir(desc_b)));
            }
        }
        if let Some(n) = limit {
            text.push_str(&format!(" LIMIT {n}"));
        }
        let q = parse_query(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        let q = SqlQuery::Select(q);

        let db = populate_universe(seed as u64);
        assert_paths_agree(&db, &q, &Params::new(), &text);
    }
}
