//! Plan assertions on the wilos and itracker schemas: the oracle and the
//! Fig. 14 benchmarks assume the planner makes specific choices (index
//! scans on indexed equality predicates, hash joins on equi-join keys);
//! a planner regression would silently skew their timings. These tests pin
//! the chosen plans.

use qbs_common::Ident;
use qbs_corpus::{populate_itracker, populate_universe, populate_wilos, WilosConfig};
use qbs_db::{explain, explain_with, JoinAlgorithm, Params, PlanConfig, QueryOutput};
use qbs_sql::parse_query;

fn wilos() -> qbs_db::Database {
    populate_wilos(&WilosConfig {
        users: 50,
        roles: 10,
        projects: 40,
        ..WilosConfig::default()
    })
}

#[test]
fn wilos_indexed_equality_uses_index_scan() {
    let db = wilos();
    // `users.roleId` is indexed by the populator (as Hibernate would).
    let q = parse_query("SELECT id FROM users WHERE roleId = 5").unwrap();
    let plan = explain(&q, &db);
    assert_eq!(plan.index_scans, 1, "{plan:?}");
    assert_eq!(plan.pushed_filters, 1, "{plan:?}");
    assert!(plan.joins.is_empty(), "{plan:?}");

    // The executor agrees with the plan.
    let out = db.execute_select(&q, &Params::new()).unwrap();
    assert!(out.stats.used_index);
}

#[test]
fn wilos_unindexed_predicate_falls_back_to_scan() {
    let db = wilos();
    // `login` has no index: pushdown yes, index scan no.
    let q = parse_query("SELECT id FROM users WHERE login = 'user3'").unwrap();
    let plan = explain(&q, &db);
    assert_eq!(plan.index_scans, 0, "{plan:?}");
    assert_eq!(plan.pushed_filters, 1, "{plan:?}");
    let out = db.execute_select(&q, &Params::new()).unwrap();
    assert!(!out.stats.used_index);
    assert_eq!(out.rows.len(), 1);
}

#[test]
fn wilos_equi_join_chooses_hash_join() {
    let db = wilos();
    let q = parse_query("SELECT users.id FROM users, roles WHERE users.roleId = roles.roleId")
        .unwrap();
    let plan = explain(&q, &db);
    assert_eq!(plan.joins, vec![JoinAlgorithm::Hash], "{plan:?}");
    let out = db.execute_select(&q, &Params::new()).unwrap();
    assert_eq!(out.stats.joins, vec!["hash"]);
}

#[test]
fn wilos_theta_join_falls_back_to_nested_loop() {
    let db = wilos();
    let q = parse_query("SELECT users.id FROM users, roles WHERE users.roleId < roles.roleId")
        .unwrap();
    let plan = explain(&q, &db);
    assert_eq!(plan.joins, vec![JoinAlgorithm::NestedLoop], "{plan:?}");
}

#[test]
fn wilos_three_table_join_order_and_algorithms() {
    let db = wilos();
    // users ⋈ roles (equi) ⋈ participants (equi on roles): two hash steps,
    // plus the indexed selection pushed to the users scan.
    let q = parse_query(
        "SELECT users.id FROM users, roles, participants \
         WHERE users.roleId = roles.roleId AND participants.roleId = roles.roleId \
         AND users.roleId = 5",
    )
    .unwrap();
    let plan = explain(&q, &db);
    assert_eq!(plan.joins, vec![JoinAlgorithm::Hash, JoinAlgorithm::Hash], "{plan:?}");
    assert_eq!(plan.index_scans, 1, "{plan:?}");
    // The default config executes in FROM order, one estimate per scan.
    assert_eq!(
        plan.join_order,
        vec![Ident::new("users"), Ident::new("roles"), Ident::new("participants")]
    );
    assert_eq!(plan.estimated_rows.len(), 3, "{plan:?}");
    assert!(!plan.reordered, "{plan:?}");
    // The indexed probe on users.roleId = 5 must estimate far below the
    // full table (50 users over 10 roles).
    assert!(plan.estimated_rows[0] < 50, "{plan:?}");
}

#[test]
fn wilos_two_indexed_equalities_plan_one_index_scan() {
    // Regression for the pre-IR divergence: explain() counted one index
    // scan per pushed indexed equality predicate while the executor used
    // at most one index per scan. With the shared PhysicalPlan both
    // report the single probe.
    let mut db = wilos();
    db.create_index("users", "id").unwrap();
    let q = parse_query("SELECT id FROM users WHERE roleId = 5 AND id = 7").unwrap();
    let plan = explain(&q, &db);
    assert_eq!(plan.index_scans, 1, "{plan:?}");
    assert_eq!(plan.pushed_filters, 2, "{plan:?}");
    let out = db.execute_select(&q, &Params::new()).unwrap();
    assert!(out.stats.used_index);
}

#[test]
fn wilos_greedy_reorder_starts_from_the_smallest_table() {
    let db = wilos();
    // roles (10 rows) is far smaller than users (50): with reordering on
    // and multiset semantics (no ORDER BY), the greedy order flips the
    // join; the hash algorithm choice is unaffected.
    let q = parse_query("SELECT users.id FROM users, roles WHERE users.roleId = roles.roleId")
        .unwrap();
    let cfg = PlanConfig { reorder_joins: true, ..PlanConfig::default() };
    let plan = explain_with(&q, &db, &cfg);
    assert!(plan.reordered, "{plan:?}");
    assert_eq!(plan.join_order, vec![Ident::new("roles"), Ident::new("users")], "{plan:?}");
    assert_eq!(plan.joins, vec![JoinAlgorithm::Hash], "{plan:?}");
    // The executor agrees and the multiset of results is unchanged.
    let base = db.execute_select(&q, &Params::new()).unwrap();
    let reordered = db.execute_select_with(&q, &Params::new(), &cfg).unwrap();
    assert_eq!(reordered.stats.joins, vec!["hash"]);
    assert!(qbs_db::rows_agree(&base.rows, &reordered.rows, qbs_db::RowsEquivalence::Multiset));
}

#[test]
fn itracker_has_no_indexes_so_plans_scan() {
    let db = populate_itracker(40, 2);
    // The itracker populator builds no indexes: equality predicates push
    // down but stay full scans.
    let q = parse_query("SELECT id FROM issues WHERE status = 1").unwrap();
    let plan = explain(&q, &db);
    assert_eq!(plan.pushed_filters, 1, "{plan:?}");
    assert_eq!(plan.index_scans, 0, "{plan:?}");

    let q = parse_query(
        "SELECT issues.id FROM issues, itprojects WHERE issues.projectId = itprojects.id",
    )
    .unwrap();
    let plan = explain(&q, &db);
    assert_eq!(plan.joins, vec![JoinAlgorithm::Hash], "{plan:?}");
}

#[test]
fn universe_preserves_wilos_indexes_and_plans_match_execution() {
    let db = populate_universe(4);
    let q = parse_query("SELECT id FROM users WHERE roleId = 5").unwrap();
    let plan = explain(&q, &db);
    assert_eq!(plan.index_scans, 1, "{plan:?}");

    // explain() predicts exactly what the executor does, on both apps.
    for (sql, algo) in [
        ("SELECT users.id FROM users, roles WHERE users.roleId = roles.roleId", "hash"),
        ("SELECT users.id FROM users, roles WHERE users.roleId < roles.roleId", "nested-loop"),
        (
            "SELECT issues.id FROM issues, notifications \
             WHERE issues.id = notifications.issueId",
            "hash",
        ),
    ] {
        let q = parse_query(sql).unwrap();
        let plan = explain(&q, &db);
        let out = db.execute(&qbs_sql::SqlQuery::Select(q), &Params::new()).unwrap();
        let QueryOutput::Rows(out) = out else { panic!("relational") };
        let expected = match plan.joins[0] {
            JoinAlgorithm::Hash => "hash",
            JoinAlgorithm::NestedLoop => "nested-loop",
        };
        assert_eq!(expected, algo, "{sql}");
        assert_eq!(out.stats.joins, vec![algo], "{sql}");
    }
}
