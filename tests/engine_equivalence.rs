//! The deprecated `Pipeline` shim must be observationally identical to
//! `QbsEngine`: same reports, byte for byte, once wall-clock noise
//! (search durations) is zeroed out.

#![allow(deprecated)]

use qbs::{FragmentStatus, Pipeline, QbsEngine, QbsReport};
use qbs_corpus::all_fragments;

/// Renders a report with the two wall-clock fields zeroed — everything
/// else (statuses, reasons, SQL, postconditions, proof statuses, search
/// statistics, kernels) must match byte for byte.
fn canonical_text(mut report: QbsReport) -> String {
    for fr in &mut report.fragments {
        if let FragmentStatus::Translated { stats, .. } = &mut fr.status {
            stats.elapsed = Default::default();
            stats.proof_elapsed = Default::default();
        }
    }
    format!("{report:#?}")
}

#[test]
fn pipeline_shim_reports_are_byte_identical_to_engine_reports() {
    // A slice of the corpus covering all three outcomes (translated,
    // rejected, failed) across both apps, plus the two-method running
    // example below.
    let fragments = all_fragments();
    let sample: Vec<_> = fragments.iter().step_by(4).collect();
    assert!(sample.len() >= 10, "representative sample");

    for frag in sample {
        let old = Pipeline::new(frag.model())
            .run_source(&frag.source)
            .expect("corpus fragments parse");
        let new = QbsEngine::new(frag.model())
            .run_source(&frag.source)
            .expect("corpus fragments parse");
        assert_eq!(
            canonical_text(old),
            canonical_text(new),
            "fragment {} diverged between Pipeline and QbsEngine",
            frag.id,
        );
    }
}

#[test]
fn shim_and_engine_agree_on_multi_method_sources() {
    let mut model = qbs_front::DataModel::new();
    model.add_entity(
        "User",
        "users",
        qbs_common::Schema::builder("users")
            .field("id", qbs_common::FieldType::Int)
            .field("roleId", qbs_common::FieldType::Int)
            .finish(),
    );
    model.add_dao("userDao", "getUsers", "User");
    let src = r#"
    class S {
        public List<User> ok() {
            List<User> users = userDao.getUsers();
            List<User> out = new ArrayList<User>();
            for (User u : users) {
                if (u.roleId == 1) { out.add(u); }
            }
            return out;
        }
        public int rejected() {
            List<User> users = userDao.getUsers();
            for (User u : users) { u.setName("x"); }
            return 0;
        }
    }
    "#;
    let old = Pipeline::new(model.clone()).run_source(src).expect("parses");
    let new = QbsEngine::new(model).run_source(src).expect("parses");
    assert_eq!(canonical_text(old), canonical_text(new));
}
