//! Corpus-wide SQL dialect properties: every translated Appendix A
//! fragment prints valid SQL under all four shipped dialects, and the
//! generic dialect's output re-parses to an equivalent AST (printing the
//! re-parsed query reproduces the text byte for byte; relational queries
//! additionally re-parse to the structurally identical AST).

use qbs::FragmentStatus;
use qbs_batch::{corpus_inputs, BatchConfig, BatchRunner};
use qbs_sql::{parse, render_query, Dialect, SqlQuery};

#[test]
fn all_translated_corpus_fragments_round_trip_under_every_dialect() {
    let runner = BatchRunner::new(BatchConfig::new());
    let report = runner.run(&corpus_inputs());
    assert_eq!(report.fragments.len(), 49, "whole corpus");
    let mut translated = 0;

    for fr in &report.fragments {
        let FragmentStatus::Translated { sql, .. } = &fr.status else { continue };
        translated += 1;

        // Every dialect produces plausible SELECT text.
        for dialect in Dialect::ALL {
            let text = render_query(sql, dialect);
            assert!(
                text.starts_with("SELECT "),
                "{}: {} output must be a SELECT: {text}",
                fr.input,
                dialect,
            );
            assert!(
                text.contains(" FROM "),
                "{}: {} output must have a FROM: {text}",
                fr.input,
                dialect,
            );
        }

        // Quoted dialects actually quote.
        let pg = render_query(sql, Dialect::Postgres);
        assert!(pg.contains('"'), "{}: postgres must quote identifiers: {pg}", fr.input);
        let my = render_query(sql, Dialect::MySql);
        assert!(my.contains('`'), "{}: mysql must quote identifiers: {my}", fr.input);

        // Generic output re-parses, and printing the re-parse is a
        // fixpoint.
        let text = render_query(sql, Dialect::Generic);
        let reparsed = parse(&text).unwrap_or_else(|e| {
            panic!(
                "{} ({}): generic SQL failed to re-parse: {e}\nsql: {text}",
                fr.input, fr.method
            )
        });
        let reprinted = render_query(&reparsed, Dialect::Generic);
        assert_eq!(
            reprinted, text,
            "{}: print ∘ parse must be a fixpoint on generic output",
            fr.input,
        );

        // Relational queries re-parse to the structurally identical AST
        // (scalar queries drop their inner select list when printed, so
        // only the fixpoint above applies to them).
        if let (SqlQuery::Select(orig), SqlQuery::Select(back)) = (sql, &reparsed) {
            assert_eq!(orig, back, "{}: AST equivalence for {text}", fr.input);
        }
    }

    assert_eq!(translated, 33, "the paper's 33 translated fragments");
}

// ── Prepared statements with bound parameters, across dialects ──────────
//
// Property: rendering a prepared statement with its parameters bound
// (placeholders inlined as literals under the statement's dialect) and
// re-parsing that text yields exactly the rows of executing the original
// AST with the same parameters bound at execution time.

use proptest::prelude::*;
use qbs_common::{FieldType, Schema, Value};
use qbs_db::{Connection, Database, DbError, Params, PlanConfig};
use qbs_sql::{parse_query, SqlExpr};
use qbs_tor::CmpOp;

/// Characters the generated bind strings draw from — quotes and spaces
/// exercise every dialect's escaping; backslash is excluded because the
/// generic parser does not model MySQL's backslash escapes.
const NAME_POOL: [char; 6] = ['a', 'b', 'z', '\'', ' ', '_'];

fn param_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        Schema::builder("users")
            .field("id", FieldType::Int)
            .field("name", FieldType::Str)
            .finish(),
    )
    .unwrap();
    // Names exercise quote escaping under every dialect.
    for (i, name) in ["ada", "o'brien", "d''arc", "", "quote'", "bob"].iter().enumerate() {
        db.insert("users", vec![Value::from(i as i64), Value::from(*name)]).unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bound_render_reparses_to_the_same_rows_under_every_dialect(
        op in 0usize..4,
        pivot in 0i64..7,
        name_chars in prop::collection::vec(0usize..NAME_POOL.len(), 0..8),
        with_name in 0usize..2,
        desc in 0usize..2,
        limit in prop::option::of(0i64..7),
        offset in prop::option::of(0i64..5),
    ) {
        let name: String = name_chars.iter().map(|&i| NAME_POOL[i]).collect();
        let (with_name, desc) = (with_name == 1, desc == 1);
        let ops = [CmpOp::Eq, CmpOp::Lt, CmpOp::Ge, CmpOp::Ne];
        let mut q = parse_query("SELECT id, name FROM users").unwrap();
        let mut conjuncts =
            vec![SqlExpr::cmp(SqlExpr::col("id"), ops[op], SqlExpr::Param("pivot".into()))];
        if with_name {
            conjuncts.push(SqlExpr::cmp(
                SqlExpr::col("name"),
                CmpOp::Ne,
                SqlExpr::Param("who".into()),
            ));
        }
        q.where_clause = Some(SqlExpr::conjoin(conjuncts));
        q.order_by = vec![qbs_sql::OrderKey { expr: SqlExpr::col("id"), asc: !desc }];
        q.limit = limit.map(|_| SqlExpr::Param("cap".into()));
        // OFFSET with and without a LIMIT: the standalone form has its own
        // parse path, and paging must survive every dialect's rendering.
        q.offset = offset.map(|_| SqlExpr::Param("skip".into()));
        let q = qbs_sql::SqlQuery::Select(q);

        let db = param_db();
        let mut params = Params::new();
        params.insert("pivot".into(), Value::from(pivot));
        if with_name {
            params.insert("who".into(), Value::from(name));
        }
        if let Some(cap) = limit {
            params.insert("cap".into(), Value::from(cap));
        }
        if let Some(skip) = offset {
            params.insert("skip".into(), Value::from(skip));
        }

        // Ground truth: the AST executed directly with bound parameters.
        let direct = match db.execute(&q, &params).unwrap() {
            qbs_db::QueryOutput::Rows(o) => o.rows,
            other => panic!("unexpected {other:?}"),
        };

        for dialect in qbs_sql::Dialect::ALL {
            let conn = Connection::open_with(db.clone(), PlanConfig::default(), dialect);
            let stmt = conn.prepare_query(&q);
            // Typed slots: id/limit are Int, name is Str.
            stmt.validate(&params).unwrap();
            let text = stmt.render_bound(&params).unwrap();
            let reparsed = qbs_sql::parse(&text).unwrap_or_else(|e| {
                panic!("bound {dialect} text failed to re-parse: {e}\nsql: {text}")
            });
            let again = match db.execute(&reparsed, &Params::new()).unwrap() {
                qbs_db::QueryOutput::Rows(o) => o.rows,
                other => panic!("unexpected {other:?}"),
            };
            prop_assert_eq!(
                &again, &direct,
                "dialect {} diverged\nsql: {}", dialect, text
            );
        }
    }
}

#[test]
fn binding_the_wrong_type_fails_before_execution() {
    let db = param_db();
    let conn = Connection::open(db);
    let stmt = conn.prepare("SELECT id FROM users WHERE name = :who AND id < :max").unwrap();
    // Slots carry schema types in first-appearance order.
    let tys: Vec<_> = stmt.slots().iter().map(|s| (s.name.to_string(), s.ty)).collect();
    assert_eq!(
        tys,
        vec![
            ("who".to_string(), Some(FieldType::Str)),
            ("max".to_string(), Some(FieldType::Int)),
        ]
    );
    // Wrong types are rejected at bind time, by name and positionally.
    assert!(matches!(stmt.bind().set("who", 7), Err(DbError::Param(_))));
    assert!(matches!(stmt.bind().set("max", "lots"), Err(DbError::Param(_))));
    assert!(matches!(stmt.bind().value(1), Err(DbError::Param(_))), "positional slot 0 is Str");
    // And a fully typed binding executes.
    let params = stmt.bind().value("ada").unwrap().value(99).unwrap().finish().unwrap();
    let out = conn.execute(&stmt, &params).unwrap();
    match out {
        qbs_db::QueryOutput::Rows(o) => assert_eq!(o.rows.len(), 1),
        other => panic!("unexpected {other:?}"),
    }
}
