//! Corpus-wide SQL dialect properties: every translated Appendix A
//! fragment prints valid SQL under all four shipped dialects, and the
//! generic dialect's output re-parses to an equivalent AST (printing the
//! re-parsed query reproduces the text byte for byte; relational queries
//! additionally re-parse to the structurally identical AST).

use qbs::FragmentStatus;
use qbs_batch::{corpus_inputs, BatchConfig, BatchRunner};
use qbs_sql::{parse, render_query, Dialect, SqlQuery};

#[test]
fn all_translated_corpus_fragments_round_trip_under_every_dialect() {
    let runner = BatchRunner::new(BatchConfig::new());
    let report = runner.run(&corpus_inputs());
    assert_eq!(report.fragments.len(), 49, "whole corpus");
    let mut translated = 0;

    for fr in &report.fragments {
        let FragmentStatus::Translated { sql, .. } = &fr.status else { continue };
        translated += 1;

        // Every dialect produces plausible SELECT text.
        for dialect in Dialect::ALL {
            let text = render_query(sql, dialect);
            assert!(
                text.starts_with("SELECT "),
                "{}: {} output must be a SELECT: {text}",
                fr.input,
                dialect,
            );
            assert!(
                text.contains(" FROM "),
                "{}: {} output must have a FROM: {text}",
                fr.input,
                dialect,
            );
        }

        // Quoted dialects actually quote.
        let pg = render_query(sql, Dialect::Postgres);
        assert!(pg.contains('"'), "{}: postgres must quote identifiers: {pg}", fr.input);
        let my = render_query(sql, Dialect::MySql);
        assert!(my.contains('`'), "{}: mysql must quote identifiers: {my}", fr.input);

        // Generic output re-parses, and printing the re-parse is a
        // fixpoint.
        let text = render_query(sql, Dialect::Generic);
        let reparsed = parse(&text).unwrap_or_else(|e| {
            panic!(
                "{} ({}): generic SQL failed to re-parse: {e}\nsql: {text}",
                fr.input, fr.method
            )
        });
        let reprinted = render_query(&reparsed, Dialect::Generic);
        assert_eq!(
            reprinted, text,
            "{}: print ∘ parse must be a fixpoint on generic output",
            fr.input,
        );

        // Relational queries re-parse to the structurally identical AST
        // (scalar queries drop their inner select list when printed, so
        // only the fixpoint above applies to them).
        if let (SqlQuery::Select(orig), SqlQuery::Select(back)) = (sql, &reparsed) {
            assert_eq!(orig, back, "{}: AST equivalence for {text}", fr.input);
        }
    }

    assert_eq!(translated, 33, "the paper's 33 translated fragments");
}
