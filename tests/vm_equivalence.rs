//! Differential testing of the bytecode VMs against the tree-walking
//! interpreters, on both oracle sides.
//!
//! * **Plan side** — every query executes through a default
//!   [`Connection`] (plans compiled to `PlanProgram` bytecode) and a
//!   `force_interpreter` connection (the tree-walking `run_plan`
//!   baseline); rows, row order, and the observable [`ExecStats`]
//!   counters must be indistinguishable, mirroring
//!   `columnar_equivalence`.
//! * **Kernel side** — every corpus kernel program runs through
//!   [`qbs_kernel::compile`]'s stack VM and [`qbs_kernel::run`]; the
//!   full [`RunResult`] (final environment *and* result value) and any
//!   error must be identical.

use proptest::prelude::*;
use qbs::FragmentStatus;
use qbs_batch::{corpus_inputs, BatchConfig, BatchRunner};
use qbs_common::Value;
use qbs_corpus::populate_universe;
use qbs_db::{Connection, Database, Params, PlanConfig, QueryOutput};
use qbs_sql::{parse_query, Dialect, SqlQuery};

fn interpreter() -> PlanConfig {
    PlanConfig { force_interpreter: true, ..PlanConfig::default() }
}

/// Execute one query through a VM connection and an interpreter
/// connection and require identical output — rows AND stats
/// (`ExecStats` equality covers rows_scanned, join_comparisons, index
/// usage, plan-cache counters, and sub-query counters; timing fields
/// are excluded from its `PartialEq`). Each statement executes twice so
/// the steady-state (plan-cache-hit, program-cache-hit) path is
/// compared too, not just the first run.
fn assert_vm_agrees(db: &Database, q: &SqlQuery, params: &Params, label: &str) {
    let vm_conn = Connection::open(db.clone());
    let interp_conn = Connection::open_with(db.clone(), interpreter(), Dialect::Generic);
    let vm_stmt = vm_conn.prepare_query(q);
    let interp_stmt = interp_conn.prepare_query(q);
    for round in 0..2 {
        let vm = vm_conn
            .execute(&vm_stmt, params)
            .unwrap_or_else(|e| panic!("{label}: vm execution failed: {e}"));
        let interp = interp_conn
            .execute(&interp_stmt, params)
            .unwrap_or_else(|e| panic!("{label}: interpreter execution failed: {e}"));
        match (&vm, &interp) {
            (QueryOutput::Rows(v), QueryOutput::Rows(r)) => {
                assert_eq!(v.rows, r.rows, "{label} (round {round}): rows diverged");
                assert_eq!(v.stats, r.stats, "{label} (round {round}): stats diverged");
            }
            (
                QueryOutput::Scalar { value: v, stats: vs },
                QueryOutput::Scalar { value: r, stats: rs },
            ) => {
                assert_eq!(v, r, "{label} (round {round}): scalar diverged");
                assert_eq!(vs, rs, "{label} (round {round}): stats diverged");
            }
            _ => panic!("{label} (round {round}): output shapes diverged"),
        }
    }
}

/// Every translated corpus fragment produces identical rows and counters
/// under the plan VM and the interpreter, on three differently seeded
/// databases.
#[test]
fn corpus_queries_agree_between_vm_and_interpreter() {
    let runner = BatchRunner::new(BatchConfig::new());
    let report = runner.run(&corpus_inputs());
    let mut translated = 0;
    for seed in [1, 2, 3] {
        let db = populate_universe(seed);
        for fr in &report.fragments {
            let FragmentStatus::Translated { sql, .. } = &fr.status else { continue };
            translated += 1;
            assert_vm_agrees(&db, sql, &Params::new(), &format!("{} (seed {seed})", fr.input));
        }
    }
    assert_eq!(translated, 33 * 3, "the paper's 33 translated fragments, three seeds");
}

/// Every corpus kernel program runs identically through the kernel
/// bytecode VM and the interpreter: same final environment, same result
/// value, same error if either fails — on three differently seeded
/// databases.
#[test]
fn corpus_kernels_agree_between_vm_and_interpreter() {
    let runner = BatchRunner::new(BatchConfig::new());
    let report = runner.run(&corpus_inputs());
    let mut compared = 0;
    for seed in [1, 2, 3] {
        let db = populate_universe(seed);
        for fr in &report.fragments {
            let Some(kernel) = &fr.kernel else { continue };
            compared += 1;
            let compiled = qbs_kernel::compile(kernel);
            let vm = compiled.run(db.env());
            let interp = qbs_kernel::run(kernel, db.env());
            assert_eq!(vm, interp, "{} (seed {seed}): kernel runs diverged", fr.input);
        }
    }
    assert!(compared >= 33 * 3, "every lowered corpus kernel compared, got {compared}");
}

/// Filter fields the generator draws WHERE atoms from (mirrors the
/// columnar equivalence generator so the VM is exercised across the
/// same shapes: vectorized filters, templates via `:flag`, paging,
/// DISTINCT, ORDER BY).
const INT_FIELDS: &[&str] = &["id", "roleId"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Generated single-table queries over the corpus `users` table —
    /// predicates, DISTINCT, ORDER BY, LIMIT/OFFSET paging, and bound
    /// parameters — agree between the plan VM and the interpreter.
    #[test]
    fn generated_queries_agree_between_vm_and_interpreter(
        seed in 1i64..4,
        field in 0usize..INT_FIELDS.len(),
        op in 0usize..6,
        pivot in 0i64..70,
        bool_atom in 0usize..3,
        distinct in 0usize..2,
        order in 0usize..2,
        desc in 0usize..2,
        limit in prop::option::of(0i64..10),
        offset in prop::option::of(0i64..10),
    ) {
        let ops = ["=", "<>", "<", "<=", ">", ">="];
        let mut text = format!(
            "SELECT id, roleId, enabled FROM users WHERE {} {} {pivot}",
            INT_FIELDS[field], ops[op]
        );
        match bool_atom {
            1 => text.push_str(" AND enabled = 1"),
            2 => text.push_str(" AND enabled = :flag"),
            _ => {}
        }
        if order == 1 {
            text.push_str(" ORDER BY id");
            if desc == 1 {
                text.push_str(" DESC");
            }
        }
        if let Some(n) = limit {
            text.push_str(&format!(" LIMIT {n}"));
        }
        if let Some(n) = offset {
            text.push_str(&format!(" OFFSET {n}"));
        }
        let mut q = parse_query(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        q.distinct = distinct == 1;
        let q = SqlQuery::Select(q);

        let mut params = Params::new();
        params.insert("flag".into(), Value::from(true));
        let db = populate_universe(seed as u64);
        assert_vm_agrees(&db, &q, &params, &text);
    }

    /// Generated grouped queries — one or two group keys, every
    /// aggregate kind, optional WHERE and HAVING, multi-key ORDER BY
    /// with per-key direction — agree between the plan VM (its
    /// `Aggregate` opcode) and the interpreter.
    #[test]
    fn generated_grouped_queries_agree_between_vm_and_interpreter(
        seed in 1i64..4,
        agg in 0usize..4,
        two_keys in 0usize..2,
        filtered in 0usize..2,
        pivot in 0i64..70,
        having in 0usize..3,
        threshold in 0i64..5,
        order in 0usize..2,
        desc_a in 0usize..2,
        desc_b in 0usize..2,
        limit in prop::option::of(0i64..5),
    ) {
        let aggs = ["COUNT(*)", "SUM(id)", "MAX(id)", "MIN(id)"];
        let keys = if two_keys == 1 { "roleId, enabled" } else { "roleId" };
        let mut text = format!("SELECT {keys}, {} AS v FROM users", aggs[agg]);
        if filtered == 1 {
            text.push_str(&format!(" WHERE id > {pivot}"));
        }
        text.push_str(&format!(" GROUP BY {keys}"));
        match having {
            1 => text.push_str(&format!(" HAVING COUNT(*) > {threshold}")),
            2 => text.push_str(&format!(" HAVING SUM(id) > {}", threshold * 40)),
            _ => {}
        }
        if order == 1 {
            let dir = |d: usize| if d == 1 { "DESC" } else { "ASC" };
            text.push_str(&format!(" ORDER BY roleId {}", dir(desc_a)));
            if two_keys == 1 {
                text.push_str(&format!(", enabled {}", dir(desc_b)));
            }
        }
        if let Some(n) = limit {
            text.push_str(&format!(" LIMIT {n}"));
        }
        let q = parse_query(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        let q = SqlQuery::Select(q);

        let db = populate_universe(seed as u64);
        assert_vm_agrees(&db, &q, &Params::new(), &text);
    }
}
