//! Repository-level integration tests: for every translated corpus
//! fragment, the **original imperative code** (run under the kernel
//! interpreter) and the **generated SQL** (run by the database engine) must
//! produce identical results — the paper's soundness claim, checked
//! differentially on populated databases.

use qbs::{FragmentStatus, QbsEngine};
use qbs_corpus::{
    all_fragments, populate_itracker, populate_wilos, App, ExpectedStatus, WilosConfig,
};
use qbs_db::{Database, Params, QueryOutput};
use qbs_tor::{DynValue, Env};

/// Binds every database table into a kernel interpreter environment (the
/// same bridge the differential oracle uses — see [`Database::env`]).
fn env_of(db: &Database) -> Env {
    db.env()
}

#[test]
fn original_code_and_generated_sql_agree_on_every_translated_fragment() {
    let wilos_db = populate_wilos(&WilosConfig {
        users: 80,
        roles: 12,
        projects: 60,
        ..WilosConfig::default()
    });
    let itracker_db = populate_itracker(70, 3);

    for frag in all_fragments() {
        if frag.expected != ExpectedStatus::Translated {
            continue;
        }
        let engine = QbsEngine::new(frag.model());
        let report = engine.run_source(&frag.source).expect("parses");
        let fr = &report.fragments[0];
        let FragmentStatus::Translated { sql, .. } = &fr.status else {
            panic!("fragment {} must translate", frag.id);
        };
        let kernel = fr.kernel.as_ref().expect("translated fragments lower");

        let db = match frag.app {
            App::Wilos => &wilos_db,
            App::Itracker => &itracker_db,
        };

        // Original semantics: interpret the lowered fragment.
        let run = qbs_kernel::run(kernel, env_of(db))
            .unwrap_or_else(|e| panic!("fragment {} interpretation failed: {e}", frag.id));

        // Transformed semantics: execute the SQL.
        let out = db
            .execute(sql, &Params::new())
            .unwrap_or_else(|e| panic!("fragment {} SQL failed: {e}", frag.id));

        match (run.result, out) {
            (DynValue::Rel(orig), QueryOutput::Rows(sqlout)) => {
                assert_eq!(
                    orig.len(),
                    sqlout.rows.len(),
                    "fragment {}: row count (original {} vs sql {})\nsql: {sql}",
                    frag.id,
                    orig.len(),
                    sqlout.rows.len()
                );
                for (k, (a, b)) in orig.iter().zip(sqlout.rows.iter()).enumerate() {
                    assert_eq!(
                        a.values(),
                        b.values(),
                        "fragment {}: row {k} differs\nsql: {sql}",
                        frag.id
                    );
                }
            }
            (DynValue::Scalar(orig), QueryOutput::Scalar { value, .. }) => {
                assert_eq!(orig, value, "fragment {}: scalar result\nsql: {sql}", frag.id);
            }
            (orig, out) => panic!(
                "fragment {}: result kind mismatch (original {orig:?} vs sql {out:?})",
                frag.id
            ),
        }
    }
}

#[test]
fn advanced_idioms_agree_differentially() {
    use qbs_corpus::advanced_idioms;
    let db = populate_wilos(&WilosConfig {
        users: 50,
        roles: 10,
        projects: 20,
        ..WilosConfig::default()
    });
    for case in advanced_idioms() {
        if !case.should_translate {
            continue;
        }
        let report = QbsEngine::new(case.model()).run_source(&case.source).expect("parses");
        let fr = &report.fragments[0];
        let FragmentStatus::Translated { sql, .. } = &fr.status else {
            panic!("{} must translate", case.name);
        };
        let kernel = fr.kernel.as_ref().expect("lowers");
        let run = qbs_kernel::run(kernel, env_of(&db)).expect("interpretation");
        let QueryOutput::Rows(out) = db.execute(sql, &Params::new()).expect("sql") else {
            panic!("{} should be relational", case.name)
        };
        let orig = run.result.as_relation().expect("relation result").clone();
        assert_eq!(orig.len(), out.rows.len(), "{}: row count", case.name);
        for (a, b) in orig.iter().zip(out.rows.iter()) {
            assert_eq!(a.values(), b.values(), "{}: row values", case.name);
        }
    }
}

#[test]
fn fig14_modes_agree_on_results_across_sizes() {
    use qbs_corpus::{
        aggregation_pageload, inferred_sql, join_pageload, selection_pageload, Mode,
    };
    for n in [100usize, 400] {
        let db = populate_wilos(&WilosConfig {
            users: n,
            roles: 10,
            projects: n,
            ..WilosConfig::default()
        });
        let sel = inferred_sql(40);
        let (a, _) = selection_pageload(&db, Mode::OriginalLazy, &sel);
        let (b, _) = selection_pageload(&db, Mode::InferredLazy, &sel);
        assert_eq!(a, b, "selection rows at n={n}");
        let join = inferred_sql(46);
        let (a, _) = join_pageload(&db, Mode::OriginalLazy, &join);
        let (b, _) = join_pageload(&db, Mode::InferredLazy, &join);
        assert_eq!(a, b, "join rows at n={n}");
        let agg = inferred_sql(38);
        let (a, _) = aggregation_pageload(&db, Mode::OriginalLazy, &agg);
        let (b, _) = aggregation_pageload(&db, Mode::InferredLazy, &agg);
        assert_eq!(a, b, "manager count at n={n}");
    }
}
