//! The ISSUE acceptance criteria for the differential oracle, as tests:
//! every translated corpus fragment gets verdict Agree on ≥ 3 differently
//! seeded databases, and a seeded fuzz run completes with zero Mismatch
//! verdicts.

use qbs::FragmentStatus;
use qbs_batch::{corpus_inputs, grouped_inputs, BatchConfig, BatchRunner, OracleConfig};
use qbs_oracle::OracleVerdict;

#[test]
fn whole_corpus_agrees_on_three_seeded_databases() {
    let runner = BatchRunner::new(BatchConfig::new());
    let config = OracleConfig::default().with_db_seeds(vec![1, 2, 3]);
    let report = runner.run_oracle(&corpus_inputs(), &config);

    let counts = report.counts();
    assert_eq!(counts.total, 49, "whole corpus");
    assert_eq!(counts.translated, 33, "the paper's 33 translated fragments");

    let summary = report.oracle.as_ref().expect("oracle summary");
    assert_eq!(summary.checked_fragments, 33);
    assert_eq!(summary.counts.total, 33 * 3, "one check per fragment × seed");
    assert_eq!(summary.counts.agree, 33 * 3, "{report}");
    assert_eq!(summary.counts.mismatch, 0, "{report}");
    assert_eq!(summary.counts.inconclusive, 0, "{report}");
    // Every fragment runs through ONE prepared handle across all seeds:
    // each check's SQL side reuses the plan computed at prepare, never
    // replanning (the seeds share schema and generation history).
    assert_eq!(summary.exec.plan_cache_hits, 33 * 3, "{}", summary.exec);
    assert_eq!(summary.exec.replans, 0, "{}", summary.exec);
    assert_eq!(summary.exec.plan_cache_hit_rate(), 1.0);

    for fr in &report.fragments {
        match &fr.status {
            FragmentStatus::Translated { .. } => {
                assert_eq!(fr.verdicts.len(), 3, "{}", fr.method);
                assert!(
                    fr.verdicts.iter().all(OracleVerdict::is_agree),
                    "{}: {:?}",
                    fr.method,
                    fr.verdicts
                );
            }
            _ => assert!(fr.verdicts.is_empty(), "{}", fr.method),
        }
    }
}

#[test]
fn grouped_fragments_synthesize_group_by_and_agree_on_three_seeds() {
    // The per-key-map fragments (ids 50+) exercise the grouped-aggregation
    // path end-to-end: map-accumulator loop → TOR Group → GROUP BY SQL,
    // with zero Mismatch across three differently seeded databases.
    let runner = BatchRunner::new(BatchConfig::new());
    let config = OracleConfig::default().with_db_seeds(vec![1, 2, 3]);
    let inputs = grouped_inputs();
    assert!(inputs.len() >= 4, "at least four per-key-map fragments");
    let report = runner.run_oracle(&inputs, &config);

    let counts = report.counts();
    assert_eq!(counts.translated, inputs.len(), "{report}");

    let summary = report.oracle.as_ref().expect("oracle summary");
    assert_eq!(summary.counts.total, inputs.len() * 3);
    assert_eq!(summary.counts.agree, inputs.len() * 3, "{report}");
    assert_eq!(summary.counts.mismatch, 0, "{report}");

    for fr in &report.fragments {
        match &fr.status {
            FragmentStatus::Translated { sql, .. } => {
                let rendered = sql.to_string();
                assert!(
                    rendered.contains("GROUP BY"),
                    "{}: expected grouped SQL, got {rendered}",
                    fr.method
                );
                assert!(
                    fr.verdicts.iter().all(OracleVerdict::is_agree),
                    "{}: {:?}",
                    fr.method,
                    fr.verdicts
                );
            }
            other => panic!("{}: expected Translated, got {other:?}", fr.method),
        }
    }
}

#[test]
fn join_reordering_preserves_every_corpus_and_fuzz_verdict() {
    // The order-sensitivity of TOR semantics is the risk in reordering:
    // the planner only reorders when multiset semantics or a total
    // rowid ORDER BY make it unobservable. Running the 33 translated
    // corpus fragments plus 60 fuzzed fragments with reordering enabled
    // must therefore produce zero Mismatch verdicts.
    let runner = BatchRunner::new(BatchConfig::new());
    let config = OracleConfig::default()
        .with_db_seeds(vec![2])
        .with_fuzz(60, 0xace)
        .with_reorder_joins(true);
    let report = runner.run_oracle(&corpus_inputs(), &config);

    assert_eq!(report.counts().total, 49 + 60, "whole corpus plus the fuzz batch");
    let summary = report.oracle.as_ref().expect("oracle summary");
    assert_eq!(summary.fuzz_fragments, 60);
    assert!(summary.reorder_joins);
    assert_eq!(summary.counts.mismatch, 0, "{report}");
    // The corpus's 33 translated fragments all went through the check.
    assert!(summary.checked_fragments >= 33, "{report}");
    // The exec counters roll up: something was actually executed.
    assert!(summary.exec.rows_scanned > 0, "{report}");
}

#[test]
fn seeded_fuzz_run_produces_zero_mismatches() {
    let runner = BatchRunner::new(BatchConfig::new());
    // CI runs 200 fragments through the oracle_json binary; this keeps the
    // cargo-test variant quick while still covering every shape.
    let config = OracleConfig::default().with_db_seeds(vec![4, 5]).with_fuzz(60, 0xace);
    let report = runner.run_oracle(&[], &config);

    assert_eq!(report.fragments.len(), 60);
    let summary = report.oracle.as_ref().expect("oracle summary");
    assert_eq!(summary.fuzz_fragments, 60);
    assert_eq!(summary.counts.mismatch, 0, "{report}");
    // The fuzzer must actually exercise the pipeline: a healthy majority
    // of generated fragments synthesize and run differentially.
    assert!(
        summary.checked_fragments * 2 > report.fragments.len(),
        "only {}/{} fuzzed fragments translated",
        summary.checked_fragments,
        report.fragments.len()
    );
}
