//! Snapshot-isolation stress tests for the concurrent `Connection`.
//!
//! The MVCC contract under test: a statement pins one database snapshot
//! for its whole execution, so while a writer churns inserts, every read
//! sees a row count equal to some *prefix of committed writes* — never a
//! torn state, never a row the writer had not finished publishing. The
//! writer publishes whole versions (copy-on-write chunk lists), so "some
//! prefix" is exact: ids `0..k` for a `k` between what was committed
//! before the read started and what was committed after it finished.

use qbs_common::{FieldType, Schema, Value};
use qbs_db::{Connection, Database, Params, PreparedStatement, QueryOutput};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;

/// The compile-time half of the satellite: the concurrent serving story
/// requires the session surface to cross threads. (A `static_assertions`
/// crate would spell this `assert_impl_all!`; the generic function is the
/// dependency-free equivalent — it fails to *compile* if the bound ever
/// regresses.)
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn connection_surface_is_send_sync() {
    assert_send_sync::<Connection>();
    assert_send_sync::<PreparedStatement>();
    assert_send_sync::<Database>();
}

fn counters_db() -> Database {
    let mut db = Database::new();
    db.create_table(Schema::builder("events").field("id", FieldType::Int).finish()).unwrap();
    db
}

fn ids(out: QueryOutput) -> Vec<i64> {
    match out {
        QueryOutput::Rows(o) => {
            o.rows.iter().map(|r| r.value_at(0).as_int().expect("int id")).collect()
        }
        other => panic!("expected rows, got {other:?}"),
    }
}

/// Readers race a single-row-insert writer. Every read must observe ids
/// `0..k` exactly (insertion order, no gaps, no duplicates) with `k`
/// bracketed by the writer's progress around the read. The bracket needs
/// two counters: `committed` (bumped *after* an insert publishes) lower-
/// bounds what a later snapshot must contain, and `started` (bumped
/// *before* the insert) upper-bounds what it may contain — a single
/// counter on either side of the insert races against snapshot pinning
/// and flags healthy reads.
#[test]
fn reads_see_exact_prefixes_of_committed_single_row_writes() {
    const WRITES: usize = 300;
    let conn = Connection::open(counters_db());
    let started = AtomicUsize::new(0);
    let committed = AtomicUsize::new(0);
    let violations = AtomicUsize::new(0);

    thread::scope(|scope| {
        let writer = {
            let conn = conn.clone();
            let started = &started;
            let committed = &committed;
            scope.spawn(move || {
                for i in 0..WRITES {
                    started.fetch_add(1, Ordering::SeqCst);
                    conn.insert("events", vec![Value::from(i as i64)]).unwrap();
                    committed.fetch_add(1, Ordering::SeqCst);
                }
            })
        };
        for _ in 0..3 {
            let conn = conn.clone();
            let started = &started;
            let committed = &committed;
            let violations = &violations;
            scope.spawn(move || {
                let stmt = conn.prepare("SELECT id FROM events").unwrap();
                let params = Params::new();
                loop {
                    let before = committed.load(Ordering::SeqCst);
                    let got = ids(conn.execute(&stmt, &params).unwrap());
                    let after = started.load(Ordering::SeqCst);
                    let k = got.len();
                    let prefix: Vec<i64> = (0..k as i64).collect();
                    if got != prefix || k < before || k > after {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                    if committed.load(Ordering::SeqCst) >= WRITES {
                        break;
                    }
                }
            });
        }
        writer.join().unwrap();
    });
    assert_eq!(violations.load(Ordering::SeqCst), 0, "snapshot isolation violated");
    // The head converged on every write.
    let final_ids = ids(conn.query_cached("SELECT id FROM events", &Params::new()).unwrap());
    assert_eq!(final_ids.len(), WRITES);
}

/// `insert_many` batches are atomic: a reader sees a multiple of the
/// batch size, never a partial batch.
#[test]
fn insert_many_batches_are_never_observed_partially() {
    const BATCH: usize = 10;
    const BATCHES: usize = 40;
    let conn = Connection::open(counters_db());
    let done = AtomicBool::new(false);
    let violations = AtomicUsize::new(0);

    thread::scope(|scope| {
        {
            let conn = conn.clone();
            let done = &done;
            scope.spawn(move || {
                for b in 0..BATCHES {
                    let rows =
                        (0..BATCH).map(|i| vec![Value::from((b * BATCH + i) as i64)]).collect();
                    conn.insert_many("events", rows).unwrap();
                }
                done.store(true, Ordering::SeqCst);
            });
        }
        for _ in 0..3 {
            let conn = conn.clone();
            let done = &done;
            let violations = &violations;
            scope.spawn(move || {
                let stmt = conn.prepare("SELECT id FROM events").unwrap();
                let params = Params::new();
                loop {
                    let finished = done.load(Ordering::SeqCst);
                    let got = ids(conn.execute(&stmt, &params).unwrap());
                    let k = got.len();
                    let prefix: Vec<i64> = (0..k as i64).collect();
                    if got != prefix || !k.is_multiple_of(BATCH) {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                    if finished {
                        break;
                    }
                }
            });
        }
    });
    assert_eq!(violations.load(Ordering::SeqCst), 0, "a partial batch became visible");
    assert_eq!(
        ids(conn.query_cached("SELECT id FROM events", &Params::new()).unwrap()).len(),
        BATCH * BATCHES
    );
}

/// An empty `insert_many` batch is a complete no-op: no version is
/// published, nothing is invalidated, and prepared statements keep their
/// cached plans instead of replanning spuriously. Unknown tables still
/// error.
#[test]
fn empty_insert_many_publishes_nothing_and_never_replans() {
    let conn = Connection::open(counters_db());
    conn.insert_many("events", (0..5i64).map(|i| vec![Value::from(i)]).collect()).unwrap();
    let stmt = conn.prepare("SELECT id FROM events").unwrap();
    let params = Params::new();
    assert_eq!(ids(conn.execute(&stmt, &params).unwrap()).len(), 5);

    let version = conn.version();
    let invalidations = conn.plan_cache_stats().invalidations;
    conn.insert_many("events", Vec::new()).unwrap();
    assert_eq!(conn.version(), version, "empty batch published a version");
    assert_eq!(conn.plan_cache_stats().invalidations, invalidations);

    let out = match conn.execute(&stmt, &params).unwrap() {
        QueryOutput::Rows(o) => o,
        other => panic!("expected rows, got {other:?}"),
    };
    assert_eq!(out.rows.len(), 5);
    assert_eq!(out.stats.plan_cache_hits, 1, "{:?}", out.stats);
    assert_eq!(out.stats.replans, 0, "empty batch forced a replan");

    // The table-existence contract is unchanged.
    assert!(conn.insert_many("missing", Vec::new()).is_err());
}

/// A snapshot pinned via `database()` is frozen: whatever the writer does
/// afterwards, re-reading the pinned value gives identical answers.
#[test]
fn pinned_snapshots_are_immutable_while_writes_continue() {
    let conn = Connection::open(counters_db());
    conn.insert_many("events", (0..20i64).map(|i| vec![Value::from(i)]).collect()).unwrap();
    let snap = conn.database();
    let table = "events".into();
    let len_before = snap.table(&table).unwrap().len();

    thread::scope(|scope| {
        let writer = {
            let conn = conn.clone();
            scope.spawn(move || {
                for i in 20..120i64 {
                    conn.insert("events", vec![Value::from(i)]).unwrap();
                }
            })
        };
        for _ in 0..200 {
            assert_eq!(snap.table(&table).unwrap().len(), len_before);
        }
        writer.join().unwrap();
    });
    assert_eq!(snap.table(&table).unwrap().len(), len_before, "snapshot moved");
    assert_eq!(conn.database().table(&table).unwrap().len(), 120, "head did not");
}

/// Prepared statements replan safely while clones execute them from many
/// threads and a writer keeps invalidating: results are always consistent
/// with *some* committed version, and the plan-cache counters add up.
#[test]
fn concurrent_replans_never_mix_plans_and_data() {
    let mut db = counters_db();
    db.create_index("events", "id").unwrap();
    let conn = Connection::open(db);
    conn.insert_many("events", (0..50i64).map(|i| vec![Value::from(i)]).collect()).unwrap();
    let done = AtomicBool::new(false);
    let violations = AtomicUsize::new(0);

    thread::scope(|scope| {
        {
            let conn = conn.clone();
            let done = &done;
            scope.spawn(move || {
                for i in 50..150i64 {
                    conn.insert("events", vec![Value::from(i)]).unwrap();
                }
                done.store(true, Ordering::SeqCst);
            });
        }
        for t in 0..3i64 {
            let conn = conn.clone();
            let done = &done;
            let violations = &violations;
            scope.spawn(move || {
                // An indexed point query: replans flip between probe plans
                // as generations move.
                let stmt = conn.prepare("SELECT id FROM events WHERE id = :x").unwrap();
                loop {
                    let finished = done.load(Ordering::SeqCst);
                    for probe in [t, 25, 49] {
                        let params = stmt.bind().set("x", probe).unwrap().finish().unwrap();
                        let got = ids(conn.execute(&stmt, &params).unwrap());
                        if got != vec![probe] {
                            violations.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    if finished {
                        break;
                    }
                }
            });
        }
    });
    assert_eq!(violations.load(Ordering::SeqCst), 0, "stale or torn index read");
}
