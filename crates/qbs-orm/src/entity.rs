//! Entity definitions and the mapping registry.

use qbs_common::Ident;
use std::collections::BTreeMap;

/// A one-to-many association from a parent entity to a child table.
#[derive(Clone, Debug, PartialEq)]
pub struct Association {
    /// Field name on the parent object (e.g. `tasks`).
    pub field: Ident,
    /// Child entity name.
    pub child_entity: Ident,
    /// Foreign-key column on the child table.
    pub fk_column: Ident,
    /// Key column on the parent table the FK points at.
    pub parent_key: Ident,
}

/// The object-relational mapping of one persistent class.
#[derive(Clone, Debug, PartialEq)]
pub struct EntityDef {
    /// Class name (e.g. `User`).
    pub name: Ident,
    /// Backing table.
    pub table: Ident,
    /// Association collections fetched in eager mode.
    pub associations: Vec<Association>,
}

impl EntityDef {
    /// A mapping without associations.
    pub fn new(name: impl Into<Ident>, table: impl Into<Ident>) -> EntityDef {
        EntityDef { name: name.into(), table: table.into(), associations: Vec::new() }
    }

    /// Adds a one-to-many association.
    pub fn with_association(
        mut self,
        field: impl Into<Ident>,
        child_entity: impl Into<Ident>,
        fk_column: impl Into<Ident>,
        parent_key: impl Into<Ident>,
    ) -> EntityDef {
        self.associations.push(Association {
            field: field.into(),
            child_entity: child_entity.into(),
            fk_column: fk_column.into(),
            parent_key: parent_key.into(),
        });
        self
    }
}

/// All registered entity mappings.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    entities: BTreeMap<Ident, EntityDef>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or replaces) an entity mapping.
    pub fn register(&mut self, def: EntityDef) {
        self.entities.insert(def.name.clone(), def);
    }

    /// Looks up an entity by class name.
    pub fn entity(&self, name: &str) -> Option<&EntityDef> {
        self.entities.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trip() {
        let mut r = Registry::new();
        r.register(EntityDef::new("Project", "projects").with_association(
            "tasks",
            "Task",
            "projectId",
            "id",
        ));
        let p = r.entity("Project").unwrap();
        assert_eq!(p.table, "projects");
        assert_eq!(p.associations.len(), 1);
        assert!(r.entity("Missing").is_none());
    }
}
