//! A Hibernate-lite object-relational mapper — the evaluation substrate for
//! the "original application code" side of the paper's experiments.
//!
//! The paper measures webpage load times of ORM-backed code in two fetch
//! configurations (Sec. 7.2): **lazy**, where only the top-level objects are
//! retrieved, and **eager**, where each object's association collections are
//! fetched too. This crate reproduces those code paths: a [`Session`] issues
//! `SELECT`s against the `qbs-db` engine; eager mode loads every
//! association with one query per parent object (the classic N+1 pattern
//! that makes eager retrieval expensive — visible in Fig. 14's eager
//! curves).
//!
//! # Example
//!
//! ```
//! use qbs_common::{Schema, FieldType, Value};
//! use qbs_db::Database;
//! use qbs_orm::{EntityDef, FetchMode, Registry, Session};
//!
//! let mut db = Database::new();
//! db.create_table(
//!     Schema::builder("users").field("id", FieldType::Int).finish(),
//! ).unwrap();
//! db.insert("users", vec![Value::from(1)]).unwrap();
//!
//! let mut registry = Registry::new();
//! registry.register(EntityDef::new("User", "users"));
//!
//! let session = Session::new(&db, &registry, FetchMode::Lazy);
//! let users = session.find_all("User").unwrap();
//! assert_eq!(users.len(), 1);
//! ```

mod entity;
mod session;

pub use entity::{Association, EntityDef, Registry};
pub use session::{FetchMode, OrmError, OrmObject, Session, SessionStats};
