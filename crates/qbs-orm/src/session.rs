//! ORM sessions: lazy/eager retrieval against the database engine.

use crate::entity::{EntityDef, Registry};
use qbs_common::{Ident, Record, Value};
use qbs_db::{Database, DbError, Params};
use qbs_sql::{FromItem, SqlExpr, SqlSelect};
use qbs_tor::CmpOp;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;

/// Whether association collections are loaded with their parents.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FetchMode {
    /// Only top-level objects are retrieved (Hibernate's default, and the
    /// configuration of the paper's subject applications).
    Lazy,
    /// Every association collection is fetched alongside its parent — one
    /// query per parent object per association.
    Eager,
}

/// A loaded persistent object: the row plus (in eager mode) its association
/// collections.
#[derive(Clone, Debug, PartialEq)]
pub struct OrmObject {
    /// The entity's row.
    pub record: Record,
    /// Loaded children per association field (eager mode only).
    pub children: BTreeMap<Ident, Vec<OrmObject>>,
}

impl OrmObject {
    /// Field access on the underlying row.
    ///
    /// # Errors
    ///
    /// Propagates unknown-field errors.
    pub fn get(&self, field: &str) -> Result<&Value, qbs_common::CommonError> {
        self.record.get(&field.into())
    }
}

/// ORM-level errors.
#[derive(Clone, Debug, PartialEq)]
pub enum OrmError {
    /// Entity not registered.
    UnknownEntity(String),
    /// Database failure.
    Db(DbError),
}

impl fmt::Display for OrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrmError::UnknownEntity(e) => write!(f, "unknown entity `{e}`"),
            OrmError::Db(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OrmError {}

impl From<DbError> for OrmError {
    fn from(e: DbError) -> Self {
        OrmError::Db(e)
    }
}

/// Counters of ORM activity, used by the benchmarks.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionStats {
    /// SQL queries issued.
    pub queries: usize,
    /// Objects materialized (parents + children).
    pub objects_loaded: usize,
}

/// An ORM session bound to a database and mapping registry.
pub struct Session<'a> {
    db: &'a Database,
    registry: &'a Registry,
    mode: FetchMode,
    queries: Cell<usize>,
    objects: Cell<usize>,
}

impl<'a> Session<'a> {
    /// Opens a session.
    pub fn new(db: &'a Database, registry: &'a Registry, mode: FetchMode) -> Session<'a> {
        Session { db, registry, mode, queries: Cell::new(0), objects: Cell::new(0) }
    }

    /// The session's fetch mode.
    pub fn mode(&self) -> FetchMode {
        self.mode
    }

    /// Activity counters so far.
    pub fn stats(&self) -> SessionStats {
        SessionStats { queries: self.queries.get(), objects_loaded: self.objects.get() }
    }

    fn entity(&self, name: &str) -> Result<&EntityDef, OrmError> {
        self.registry.entity(name).ok_or_else(|| OrmError::UnknownEntity(name.to_string()))
    }

    fn select_all(table: &Ident) -> SqlSelect {
        SqlSelect::new(
            Vec::new(),
            vec![FromItem::Table { name: table.clone(), alias: table.clone() }],
        )
    }

    /// Loads every instance of an entity (`dao.getAll()` in the subject
    /// applications).
    ///
    /// # Errors
    ///
    /// Unknown entity or database failure.
    pub fn find_all(&self, entity: &str) -> Result<Vec<OrmObject>, OrmError> {
        let def = self.entity(entity)?;
        let q = Self::select_all(&def.table);
        self.load_query(def, &q)
    }

    /// Loads the instances matching `field = value`.
    ///
    /// # Errors
    ///
    /// Unknown entity or database failure.
    pub fn find_where(
        &self,
        entity: &str,
        field: &str,
        value: Value,
    ) -> Result<Vec<OrmObject>, OrmError> {
        let def = self.entity(entity)?;
        let mut q = Self::select_all(&def.table);
        q.where_clause = Some(SqlExpr::cmp(
            SqlExpr::qcol(def.table.clone(), field),
            CmpOp::Eq,
            SqlExpr::Lit(value),
        ));
        self.load_query(def, &q)
    }

    /// Runs an arbitrary select and materializes objects of `entity`.
    ///
    /// # Errors
    ///
    /// Unknown entity or database failure.
    pub fn query(&self, entity: &str, q: &SqlSelect) -> Result<Vec<OrmObject>, OrmError> {
        let def = self.entity(entity)?;
        self.load_query(def, q)
    }

    fn load_query(&self, def: &EntityDef, q: &SqlSelect) -> Result<Vec<OrmObject>, OrmError> {
        self.queries.set(self.queries.get() + 1);
        let out = self.db.execute_select(q, &Params::new())?;
        let mut objects = Vec::with_capacity(out.rows.len());
        for rec in out.rows.iter() {
            objects.push(self.materialize(def, rec.clone())?);
        }
        Ok(objects)
    }

    fn materialize(&self, def: &EntityDef, record: Record) -> Result<OrmObject, OrmError> {
        self.objects.set(self.objects.get() + 1);
        let mut children = BTreeMap::new();
        if self.mode == FetchMode::Eager {
            for assoc in &def.associations {
                let child_def = self
                    .registry
                    .entity(assoc.child_entity.as_str())
                    .ok_or_else(|| OrmError::UnknownEntity(assoc.child_entity.to_string()))?;
                let key = record
                    .get(&assoc.parent_key.as_str().into())
                    .map_err(|e| OrmError::Db(DbError::Schema(e.to_string())))?
                    .clone();
                // One query per parent per association — the N+1 pattern.
                let mut q = Self::select_all(&child_def.table);
                q.where_clause = Some(SqlExpr::cmp(
                    SqlExpr::qcol(child_def.table.clone(), assoc.fk_column.clone()),
                    CmpOp::Eq,
                    SqlExpr::Lit(key),
                ));
                self.queries.set(self.queries.get() + 1);
                let rows = self.db.execute_select(&q, &Params::new())?;
                let mut kids = Vec::with_capacity(rows.rows.len());
                for rec in rows.rows.iter() {
                    kids.push(self.materialize(child_def, rec.clone())?);
                }
                children.insert(assoc.field.clone(), kids);
            }
        }
        Ok(OrmObject { record, children })
    }

    /// Columns selected by `SELECT *` queries materialized through this
    /// session keep the entity schema, so field access by name works.
    pub fn registry(&self) -> &Registry {
        self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_common::{FieldType, Schema};

    fn setup() -> (Database, Registry) {
        let mut db = Database::new();
        db.create_table(
            Schema::builder("projects")
                .field("id", FieldType::Int)
                .field("done", FieldType::Bool)
                .finish(),
        )
        .unwrap();
        db.create_table(
            Schema::builder("tasks")
                .field("id", FieldType::Int)
                .field("projectId", FieldType::Int)
                .finish(),
        )
        .unwrap();
        for p in 0..3i64 {
            db.insert("projects", vec![Value::from(p), Value::from(p % 2 == 0)]).unwrap();
            for t in 0..2i64 {
                db.insert("tasks", vec![Value::from(p * 10 + t), Value::from(p)]).unwrap();
            }
        }
        let mut reg = Registry::new();
        reg.register(EntityDef::new("Project", "projects").with_association(
            "tasks",
            "Task",
            "projectId",
            "id",
        ));
        reg.register(EntityDef::new("Task", "tasks"));
        (db, reg)
    }

    #[test]
    fn lazy_fetch_issues_one_query() {
        let (db, reg) = setup();
        let s = Session::new(&db, &reg, FetchMode::Lazy);
        let ps = s.find_all("Project").unwrap();
        assert_eq!(ps.len(), 3);
        assert!(ps[0].children.is_empty());
        assert_eq!(s.stats().queries, 1);
    }

    #[test]
    fn eager_fetch_loads_children_with_n_plus_one_queries() {
        let (db, reg) = setup();
        let s = Session::new(&db, &reg, FetchMode::Eager);
        let ps = s.find_all("Project").unwrap();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].children["tasks"].len(), 2);
        // 1 parent query + 3 association queries.
        assert_eq!(s.stats().queries, 4);
        assert_eq!(s.stats().objects_loaded, 9);
    }

    #[test]
    fn find_where_filters() {
        let (db, reg) = setup();
        let s = Session::new(&db, &reg, FetchMode::Lazy);
        let ps = s.find_where("Project", "done", Value::from(true)).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].get("id").unwrap(), &Value::from(0));
    }

    #[test]
    fn unknown_entity_is_reported() {
        let (db, reg) = setup();
        let s = Session::new(&db, &reg, FetchMode::Lazy);
        assert!(matches!(s.find_all("Nope"), Err(OrmError::UnknownEntity(_))));
    }
}
