//! Engine-level behavior: staged events, budgets, cancellation, and
//! dialect rendering.

use qbs::{
    Dialect, EventLog, FragmentStatus, PipelineEvent, QbsEngine, QbsError, Stage, StageTimer,
};
use qbs_common::{FieldType, Schema};
use qbs_front::DataModel;
use std::time::Duration;

fn model() -> DataModel {
    let mut m = DataModel::new();
    m.add_entity(
        "User",
        "users",
        Schema::builder("users")
            .field("id", FieldType::Int)
            .field("roleId", FieldType::Int)
            .finish(),
    );
    m.add_dao("userDao", "getUsers", "User");
    m
}

const SELECTION: &str = r#"
class S {
    public List<User> admins() {
        List<User> users = userDao.getUsers();
        List<User> out = new ArrayList<User>();
        for (User u : users) {
            if (u.roleId == 1) { out.add(u); }
        }
        return out;
    }
}
"#;

#[test]
fn events_cover_every_stage_in_order() {
    let engine = QbsEngine::new(model());
    let log = EventLog::new();
    let timer = StageTimer::new();
    let session = engine.session().observe(log.observer()).observe(timer.observer());
    let report = session.run_source(SELECTION).expect("parses");
    assert_eq!(report.counts().translated, 1);

    let events = log.events();
    let stages: Vec<Stage> = events
        .iter()
        .filter_map(|e| match e {
            PipelineEvent::StageFinished { stage, .. } => Some(*stage),
            _ => None,
        })
        .collect();
    assert_eq!(
        stages,
        vec![
            Stage::Lowered,
            Stage::VcGen,
            Stage::Synthesized,
            Stage::Verified,
            Stage::Translated,
        ],
        "stage order"
    );
    assert!(
        events.iter().any(|e| matches!(e, PipelineEvent::CegisIteration { .. })),
        "iteration events must be emitted"
    );
    assert!(
        events.iter().any(
            |e| matches!(e, PipelineEvent::VcsGenerated { conditions, .. } if *conditions > 0)
        ),
        "vcgen counts must be emitted"
    );
    assert!(
        events.iter().any(|e| matches!(
            e,
            PipelineEvent::FragmentFinished { glyph: "X", method, .. } if method == "admins"
        )),
        "fragment completion must carry the status glyph"
    );
    // The timer observed the same stream.
    let timings = timer.timings_for("admins");
    assert!(timings.contains_key(&Stage::Synthesized), "{timings:?}");
}

/// Asserts the `StageStarted`/`StageFinished` protocol: per method,
/// every finish matches the most recent unclosed start, no stage is
/// open when the fragment finishes, and nothing stays open at the end.
fn assert_strictly_nested(events: &[PipelineEvent]) {
    let mut open: std::collections::HashMap<&str, Vec<Stage>> =
        std::collections::HashMap::new();
    for e in events {
        let m = e.method();
        match e {
            PipelineEvent::FragmentStarted { .. } => {
                assert!(
                    open.get(m).is_none_or(Vec::is_empty),
                    "fragment {m} started with stages open"
                );
            }
            PipelineEvent::StageStarted { stage, .. } => {
                open.entry(m).or_default().push(*stage);
            }
            PipelineEvent::StageFinished { stage, .. } => {
                assert_eq!(
                    open.entry(m).or_default().pop(),
                    Some(*stage),
                    "finish must close the innermost open stage of {m}"
                );
            }
            PipelineEvent::FragmentFinished { .. } => {
                assert!(
                    open.get(m).is_none_or(Vec::is_empty),
                    "fragment {m} finished with stages open: {:?}",
                    open[m]
                );
            }
            _ => {}
        }
    }
    for (m, stack) in open {
        assert!(stack.is_empty(), "unclosed stages for {m}: {stack:?}");
    }
}

#[test]
fn stage_events_nest_strictly_per_fragment() {
    // Two fragments in one source: one translates, one fails synthesis —
    // the protocol must hold for both interleavings of outcomes.
    let src = r#"
class S {
    public List<User> admins() {
        List<User> users = userDao.getUsers();
        List<User> out = new ArrayList<User>();
        for (User u : users) {
            if (u.roleId == 1) { out.add(u); }
        }
        return out;
    }
    public int failing() {
        List<User> users = userDao.getUsers();
        Collections.sort(users, new ByName());
        return users.size();
    }
}
"#;
    let engine = QbsEngine::new(model());
    let log = EventLog::new();
    let report = engine.session().observe(log.observer()).run_source(src).expect("parses");
    assert_eq!(report.counts().total, 2);
    let events = log.events();
    assert!(events.iter().any(|e| matches!(e, PipelineEvent::StageStarted { .. })));
    assert_strictly_nested(&events);
}

#[test]
fn stage_events_nest_strictly_under_parallel_batch_runs() {
    use qbs_batch::{BatchConfig, BatchInput, BatchRunner};

    // Four single-method inputs with distinct method names, so the
    // per-method streams interleaved by four workers stay separable.
    let inputs: Vec<BatchInput> = (0..4)
        .map(|i| {
            let src = SELECTION.replace("admins", &format!("admins{i}"));
            BatchInput::new(format!("in{i}"), model(), src)
        })
        .collect();
    let mut config = BatchConfig::with_workers(4);
    // Force every fragment through a real (parallel) search.
    config.memoize = false;
    config.share_counterexamples = false;
    let log = EventLog::new();
    let report = BatchRunner::new(config).run_observed(&inputs, || log.observer());
    assert_eq!(report.counts().translated, 4);
    let events = log.events();
    for i in 0..4 {
        let method = format!("admins{i}");
        assert!(
            events.iter().any(|e| matches!(
                e,
                PipelineEvent::StageFinished { method: m, stage: Stage::Translated, .. }
                    if *m == method
            )),
            "{method} must reach translation"
        );
    }
    assert_strictly_nested(&events);
}

#[test]
fn pipeline_observer_populates_metrics_and_trace_from_a_real_run() {
    use qbs::PipelineObserver;
    use qbs_obs::Obs;

    let obs = Obs::enabled();
    let engine = QbsEngine::new(model());
    let session = engine.session().observe(PipelineObserver::new(&obs));
    let report = session.run_source(SELECTION).expect("parses");
    assert_eq!(report.counts().translated, 1);

    let snap = obs.metrics.snapshot();
    assert_eq!(snap.counters["qbs.fragments.translated"], 1);
    assert!(snap.counters["qbs.vcs.conditions"] > 0);
    assert_eq!(snap.histograms["qbs.fragment_ns"].count, 1);
    assert_eq!(snap.histograms["qbs.prover_ns"].count, 1, "verification observed");
    assert!(snap.histograms["qbs.synth.candidates"].sum > 0, "iterations observed");
    for stage in Stage::ALL {
        let name = format!("qbs.stage.{}_ns", stage.name());
        assert_eq!(snap.histograms[&name].count, 1, "{name}");
    }

    let spans = obs.tracer.spans();
    let frag = spans.iter().find(|s| s.name == "fragment.admins").expect("fragment span");
    assert_eq!(frag.depth, 0);
    // Span intervals are reconstructed as `now - elapsed` at event time,
    // so allow a little clock slack at both ends. Lowering runs at source
    // level, before `FragmentStarted`, so it is excluded from the
    // containment check.
    const SLACK_NS: u64 = 50_000;
    let inner =
        spans.iter().filter(|s| s.name.starts_with("stage.") && s.name != "stage.lowered");
    for s in inner {
        assert_eq!(s.depth, 1);
        assert!(s.start_ns + SLACK_NS >= frag.start_ns, "{} lies within the fragment", s.name);
        assert!(s.start_ns + s.dur_ns <= frag.start_ns + frag.dur_ns + SLACK_NS, "{}", s.name);
    }
    // And the whole trace exports to Chrome's format.
    assert!(obs.chrome_trace().contains("\"traceEvents\""));
}

#[test]
fn stage_events_are_balanced_even_on_failure() {
    // A fragment the paper's pipeline fails on (custom comparator sort).
    let failing = r#"
class S {
    public int failing() {
        List<User> users = userDao.getUsers();
        Collections.sort(users, new ByName());
        return users.size();
    }
}
"#;
    for (src, budget) in [(SELECTION, Some(0)), (failing, None)] {
        let mut builder = QbsEngine::builder(model());
        if let Some(n) = budget {
            builder = builder.iteration_budget(n);
        }
        let engine = builder.build();
        let log = EventLog::new();
        let session = engine.session().observe(log.observer());
        let report = session.run_source(src).expect("parses");
        assert_eq!(report.counts().failed, 1);
        let mut open: Vec<Stage> = Vec::new();
        for e in log.events() {
            match e {
                PipelineEvent::StageStarted { stage, .. } => open.push(stage),
                PipelineEvent::StageFinished { stage, .. } => {
                    assert_eq!(open.pop(), Some(stage), "finish must match last start");
                }
                _ => {}
            }
        }
        assert!(open.is_empty(), "every StageStarted must be closed: {open:?}");
    }
}

#[test]
fn interrupted_failures_are_distinguishable() {
    let engine = QbsEngine::builder(model()).iteration_budget(0).build();
    let report = engine.run_source(SELECTION).expect("parses");
    assert!(report.fragments[0].status.is_interrupted());

    // A genuine (search-concluded) failure is not "interrupted".
    let engine = QbsEngine::new(model());
    let report = engine
        .run_source(
            r#"
class S {
    public int failing() {
        List<User> users = userDao.getUsers();
        Collections.sort(users, new ByName());
        return users.size();
    }
}
"#,
        )
        .expect("parses");
    assert_eq!(report.counts().failed, 1);
    assert!(!report.fragments[0].status.is_interrupted());
}

#[test]
fn iteration_budget_fails_the_fragment_not_the_run() {
    let engine = QbsEngine::builder(model()).iteration_budget(0).build();
    let report = engine.run_source(SELECTION).expect("parse still succeeds");
    match &report.fragments[0].status {
        FragmentStatus::Failed { reason } => {
            assert!(reason.contains("iteration budget"), "{reason}");
        }
        other => panic!("expected budget failure, got {other:?}"),
    }
}

#[test]
fn time_budget_of_zero_fails_immediately() {
    let engine = QbsEngine::builder(model()).time_budget(Duration::ZERO).build();
    let status = engine.session().infer(
        &qbs_front::compile_source(SELECTION, engine.model())
            .unwrap()
            .remove(0)
            .kernel
            .unwrap(),
    );
    match status {
        FragmentStatus::Failed { reason } => {
            assert!(reason.contains("time budget"), "{reason}");
        }
        other => panic!("expected budget failure, got {other:?}"),
    }
}

#[test]
fn cancelled_sessions_stop_with_the_unified_error() {
    let engine = QbsEngine::new(model());
    let session = engine.session();
    session.cancel_token().cancel();
    match session.run_source(SELECTION) {
        Err(QbsError::Cancelled) => {}
        other => panic!("expected cancellation, got {other:?}"),
    }
}

#[test]
fn parse_failures_surface_as_unified_errors_with_sources() {
    use std::error::Error;
    let engine = QbsEngine::new(model());
    let err = engine.run_source("class {{{").expect_err("malformed source");
    match &err {
        QbsError::Parse { source, .. } => {
            assert!(source.is_some(), "original ParseError must be chained");
        }
        other => panic!("expected parse error, got {other}"),
    }
    assert!(err.source().is_some());
    assert!(!err.is_interrupt());
}

#[test]
fn engine_renders_sql_under_its_configured_dialect() {
    let engine = QbsEngine::builder(model()).dialect(Dialect::MySql).build();
    let report = engine.run_source(SELECTION).expect("parses");
    let FragmentStatus::Translated { sql, .. } = &report.fragments[0].status else {
        panic!("expected translation");
    };
    let text = engine.render_sql(sql);
    assert!(text.contains("`users`.`roleId` = 1"), "{text}");
    // The session exposes the same rendering.
    assert_eq!(engine.session().sql_text(sql), text);
    // The stored AST itself stays dialect-neutral.
    assert!(sql.to_string().contains("users.roleId = 1"));
}

#[test]
fn translates_the_papers_running_example() {
    // Ported from the deleted `Pipeline` shim's tests: the Fig. 1 join
    // must translate to the Fig. 3 query through the engine.
    let mut m = model();
    m.add_entity(
        "Role",
        "roles",
        Schema::builder("roles")
            .field("roleId", FieldType::Int)
            .field("name", FieldType::Str)
            .finish(),
    );
    m.add_dao("roleDao", "getRoles", "Role");
    let src = r#"
    class UserService {
        public List<User> getRoleUser() {
            List<User> users = userDao.getUsers();
            List<Role> roles = roleDao.getRoles();
            List<User> listUsers = new ArrayList<User>();
            for (User u : users) {
                for (Role r : roles) {
                    if (u.roleId == r.roleId) {
                        listUsers.add(u);
                    }
                }
            }
            return listUsers;
        }
    }
    "#;
    let report = QbsEngine::new(m).run_source(src).unwrap();
    assert_eq!(report.counts().translated, 1);
    match &report.fragments[0].status {
        FragmentStatus::Translated { sql, .. } => {
            let text = sql.to_string();
            // Fig. 3: a join pushed into the database with order
            // preserved by both rowids.
            assert!(text.contains("FROM users, roles"), "{text}");
            assert!(text.contains("users.roleId = roles.roleId"), "{text}");
            assert!(text.contains("ORDER BY users.rowid, roles.rowid"), "{text}");
        }
        other => panic!("expected translation, got {other:?}"),
    }
    assert!(report.fragments[0].patched_source().unwrap().contains("db.executeQuery"));
}

#[test]
fn counts_rejections_and_failures() {
    let src = r#"
    class S {
        public int rejected() {
            List<User> users = userDao.getUsers();
            for (User u : users) { u.setName("x"); }
            return 0;
        }
        public int failed() {
            List<User> users = userDao.getUsers();
            Collections.sort(users, new ByName());
            return users.size();
        }
    }
    "#;
    let report = QbsEngine::new(model()).run_source(src).unwrap();
    let c = report.counts();
    assert_eq!(c.total, 2);
    assert_eq!(c.rejected, 1);
    assert_eq!(c.failed, 1);
}

#[test]
fn prepare_translated_yields_an_executable_statement() {
    use qbs_db::{Connection, Database, QueryOutput};

    let engine = QbsEngine::builder(model()).dialect(Dialect::Postgres).build();
    let session = engine.session();
    let report = session.run_source(SELECTION).expect("parses");

    let mut db = Database::new();
    db.create_table(
        Schema::builder("users")
            .field("id", FieldType::Int)
            .field("roleId", FieldType::Int)
            .finish(),
    )
    .unwrap();
    for i in 0..4i64 {
        db.insert("users", vec![i.into(), (i % 2).into()]).unwrap();
    }
    let conn = Connection::open(db);
    let stmt = session.prepare_translated(&report.fragments[0].status, &conn).unwrap();
    // The statement renders under the engine's dialect.
    assert!(stmt.sql().contains("\"users\""), "{}", stmt.sql());
    for _ in 0..3 {
        let QueryOutput::Rows(out) = conn.execute(&stmt, &qbs_db::Params::new()).unwrap()
        else {
            panic!("relational fragment");
        };
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.stats.plan_cache_hits, 1, "{:?}", out.stats);
    }

    // A fragment that did not translate has nothing to prepare.
    let failed = FragmentStatus::Failed { reason: "nope".into() };
    match session.prepare_translated(&failed, &conn) {
        Err(QbsError::Translation { .. }) => {}
        other => panic!("expected a translation error, got {other:?}"),
    }
}
