//! The engine-to-observability bridge: a [`PipelineObserver`] maps the
//! session's [`PipelineEvent`] stream onto a [`qbs_obs::Obs`] hub —
//! stages and fragments become spans on the shared trace, and the
//! synthesis loop's statistics land in the metrics registry.
//!
//! ```
//! use qbs::{PipelineObserver, QbsEngine};
//! use qbs_front::DataModel;
//! use qbs_obs::Obs;
//!
//! let obs = Obs::enabled();
//! let engine = QbsEngine::new(DataModel::new());
//! let session = engine.session().observe(PipelineObserver::new(&obs));
//! let _ = session.run_source("class S { }");
//! // obs.chrome_trace() now holds fragment/stage spans;
//! // obs.snapshot_json() the per-stage histograms and glyph counters.
//! ```

use crate::event::{EngineObserver, PipelineEvent, Stage};
use qbs_obs::{count_bounds, time_bounds_ns, Counter, Histogram, LocalSpans, Obs, SpanRecord};
use std::collections::HashMap;

fn stage_index(stage: Stage) -> usize {
    match stage {
        Stage::Lowered => 0,
        Stage::VcGen => 1,
        Stage::Synthesized => 2,
        Stage::Verified => 3,
        Stage::Translated => 4,
    }
}

/// An [`EngineObserver`] publishing the pipeline's events into an
/// [`Obs`] hub.
///
/// Per event it updates pre-registered metric handles (relaxed atomics —
/// no registry lock on the hot path) and, when the hub's tracer is
/// enabled, records stage and fragment spans with their true intervals
/// reconstructed from each event's elapsed time. Spans buffer in a
/// per-observer [`LocalSpans`] and merge into the shared trace at every
/// fragment boundary, so parallel batch workers never contend mid-run.
///
/// Registered metrics (see the README's Observability section):
/// `qbs.stage.<stage>_ns`, `qbs.fragment_ns`, `qbs.prover_ns`,
/// `qbs.synth.candidates`, `qbs.synth.cache_hits` (histograms);
/// `qbs.fragments.{translated,rejected,failed}`, `qbs.counterexamples`,
/// `qbs.memo_hits`, `qbs.vcs.conditions`, `qbs.vcs.unknowns` (counters).
#[derive(Debug)]
pub struct PipelineObserver {
    local: LocalSpans,
    stage_ns: [Histogram; 5],
    fragment_ns: Histogram,
    prover_ns: Histogram,
    synth_candidates: Histogram,
    synth_cache_hits: Histogram,
    translated: Counter,
    rejected: Counter,
    failed: Counter,
    counterexamples: Counter,
    memo_hits: Counter,
    vcs_conditions: Counter,
    vcs_unknowns: Counter,
    /// Latest `(candidates_tried, cache_hits)` per in-flight method,
    /// folded into the synthesis histograms when the fragment finishes.
    progress: HashMap<String, (usize, usize)>,
}

impl PipelineObserver {
    /// Builds an observer over the hub, registering every metric up
    /// front.
    pub fn new(obs: &Obs) -> PipelineObserver {
        let time = time_bounds_ns();
        let counts = count_bounds();
        let stage_ns = Stage::ALL
            .map(|s| obs.metrics.histogram(&format!("qbs.stage.{}_ns", s.name()), &time));
        PipelineObserver {
            local: obs.tracer.local(),
            stage_ns,
            fragment_ns: obs.metrics.histogram("qbs.fragment_ns", &time),
            prover_ns: obs.metrics.histogram("qbs.prover_ns", &time),
            synth_candidates: obs.metrics.histogram("qbs.synth.candidates", &counts),
            synth_cache_hits: obs.metrics.histogram("qbs.synth.cache_hits", &counts),
            translated: obs.metrics.counter("qbs.fragments.translated"),
            rejected: obs.metrics.counter("qbs.fragments.rejected"),
            failed: obs.metrics.counter("qbs.fragments.failed"),
            counterexamples: obs.metrics.counter("qbs.counterexamples"),
            memo_hits: obs.metrics.counter("qbs.memo_hits"),
            vcs_conditions: obs.metrics.counter("qbs.vcs.conditions"),
            vcs_unknowns: obs.metrics.counter("qbs.vcs.unknowns"),
            progress: HashMap::new(),
        }
    }

    /// Records an interval that ended just now, reconstructed from its
    /// elapsed time. No-op while the tracer is disabled.
    fn record_span(&self, name: String, depth: usize, dur_ns: u64, method: &str) {
        if !self.local.tracer().is_enabled() {
            return;
        }
        let end = self.local.tracer().now_ns();
        self.local.record(SpanRecord {
            name,
            cat: "qbs",
            start_ns: end.saturating_sub(dur_ns),
            dur_ns,
            depth,
            thread: self.local.thread(),
            args: vec![("method".to_string(), method.to_string())],
        });
    }
}

impl EngineObserver for PipelineObserver {
    fn on_event(&mut self, event: &PipelineEvent) {
        match event {
            PipelineEvent::StageFinished { method, stage, elapsed } => {
                let ns = elapsed.as_nanos() as u64;
                self.stage_ns[stage_index(*stage)].observe(ns);
                if *stage == Stage::Verified {
                    self.prover_ns.observe(ns);
                }
                self.record_span(format!("stage.{}", stage.name()), 1, ns, method);
            }
            PipelineEvent::VcsGenerated { conditions, unknowns, .. } => {
                self.vcs_conditions.add(*conditions as u64);
                self.vcs_unknowns.add(*unknowns as u64);
            }
            PipelineEvent::CegisIteration { method, candidates_tried, cache_hits, .. } => {
                self.progress.insert(method.clone(), (*candidates_tried, *cache_hits));
            }
            PipelineEvent::CounterexampleFound { .. } => self.counterexamples.inc(),
            PipelineEvent::CacheHit { .. } => self.memo_hits.inc(),
            PipelineEvent::FragmentFinished { method, glyph, elapsed } => {
                let ns = elapsed.as_nanos() as u64;
                self.fragment_ns.observe(ns);
                match *glyph {
                    "X" => self.translated.inc(),
                    "†" => self.rejected.inc(),
                    _ => self.failed.inc(),
                }
                if let Some((tried, hits)) = self.progress.remove(method) {
                    self.synth_candidates.observe(tried as u64);
                    self.synth_cache_hits.observe(hits as u64);
                }
                self.record_span(format!("fragment.{method}"), 0, ns, method);
                // A fragment boundary is the natural merge point: one
                // sink lock per fragment, not per event.
                self.local.flush();
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn finish(obs: &mut PipelineObserver, method: &str, glyph: &'static str) {
        obs.on_event(&PipelineEvent::FragmentFinished {
            method: method.into(),
            glyph,
            elapsed: Duration::from_micros(40),
        });
    }

    #[test]
    fn events_land_in_metrics_and_trace() {
        let hub = Obs::enabled();
        let mut obs = PipelineObserver::new(&hub);
        obs.on_event(&PipelineEvent::FragmentStarted { method: "m".into() });
        obs.on_event(&PipelineEvent::StageFinished {
            method: "m".into(),
            stage: Stage::Verified,
            elapsed: Duration::from_micros(10),
        });
        obs.on_event(&PipelineEvent::VcsGenerated {
            method: "m".into(),
            conditions: 4,
            unknowns: 2,
        });
        obs.on_event(&PipelineEvent::CegisIteration {
            method: "m".into(),
            level: 1,
            candidates_tried: 7,
            cache_hits: 3,
        });
        finish(&mut obs, "m", "X");
        let snap = hub.metrics.snapshot();
        assert_eq!(snap.counters["qbs.fragments.translated"], 1);
        assert_eq!(snap.counters["qbs.vcs.conditions"], 4);
        assert_eq!(snap.histograms["qbs.stage.verified_ns"].count, 1);
        assert_eq!(snap.histograms["qbs.prover_ns"].count, 1);
        assert_eq!(snap.histograms["qbs.synth.candidates"].sum, 7);
        assert_eq!(snap.histograms["qbs.synth.cache_hits"].sum, 3);
        let spans = hub.tracer.spans();
        let stage = spans.iter().find(|s| s.name == "stage.verified").unwrap();
        assert_eq!(stage.depth, 1);
        assert_eq!(stage.dur_ns, 10_000);
        let frag = spans.iter().find(|s| s.name == "fragment.m").unwrap();
        assert_eq!(frag.depth, 0);
        assert!(frag.args.contains(&("method".to_string(), "m".to_string())));
    }

    #[test]
    fn glyphs_map_onto_status_counters() {
        let hub = Obs::new();
        let mut obs = PipelineObserver::new(&hub);
        finish(&mut obs, "a", "X");
        finish(&mut obs, "b", "†");
        finish(&mut obs, "c", "*");
        let snap = hub.metrics.snapshot();
        assert_eq!(snap.counters["qbs.fragments.translated"], 1);
        assert_eq!(snap.counters["qbs.fragments.rejected"], 1);
        assert_eq!(snap.counters["qbs.fragments.failed"], 1);
        // Tracer disabled: metrics flow, no spans are recorded.
        assert!(hub.tracer.spans().is_empty());
    }
}
