//! The historical `Pipeline` API — now a thin, deprecated shim over
//! [`QbsEngine`].

#![allow(deprecated)]

use crate::engine::{EngineConfig, QbsEngine};
use crate::report::{FragmentStatus, QbsReport};
use qbs_front::{compile_source, DataModel, ParseError};
use qbs_kernel::KernelProgram;
use qbs_synth::{SynthConfig, SynthHooks};
use qbs_tor::TypeEnv;

/// Pipeline tuning (the pre-engine configuration surface).
///
/// [`EngineConfig`] supersedes this with dialect and budget knobs; the
/// two convert into each other loss-free on the shared fields.
#[derive(Clone, Debug, Default)]
pub struct PipelineConfig {
    /// Synthesizer configuration.
    pub synth: SynthConfig,
    /// Types of fragment parameters (defaults to `Int`).
    pub param_types: TypeEnv,
}

impl PipelineConfig {
    /// Sets the synthesizer configuration.
    pub fn with_synth(mut self, synth: SynthConfig) -> PipelineConfig {
        self.synth = synth;
        self
    }

    /// Sets the fragment parameter types.
    pub fn with_param_types(mut self, param_types: TypeEnv) -> PipelineConfig {
        self.param_types = param_types;
        self
    }
}

impl From<PipelineConfig> for EngineConfig {
    fn from(config: PipelineConfig) -> EngineConfig {
        EngineConfig::default().with_synth(config.synth).with_param_types(config.param_types)
    }
}

impl From<EngineConfig> for PipelineConfig {
    fn from(config: EngineConfig) -> PipelineConfig {
        PipelineConfig { synth: config.synth, param_types: config.param_types }
    }
}

/// The QBS pipeline: frontend → VC generation → synthesis → SQL.
///
/// Deprecated: this is a compatibility shim delegating to [`QbsEngine`];
/// outcomes are identical (see the `engine_equivalence` integration
/// test). Migrate:
///
/// | old | new |
/// |---|---|
/// | `Pipeline::new(model)` | `QbsEngine::new(model)` |
/// | `.with_config(config)` | `QbsEngine::builder(model).synth(…).param_types(…).build()` |
/// | `.run_source(src)` | `engine.run_source(src)` (returns `QbsError`) |
/// | `.infer(kernel)` | `engine.session().infer(kernel)` |
/// | `.infer_hooked(kernel, hooks)` | `engine.session().infer_hooked(kernel, hooks)` |
#[deprecated(
    since = "0.2.0",
    note = "use QbsEngine::builder(model).build() and Session instead"
)]
#[derive(Clone, Debug)]
pub struct Pipeline {
    engine: QbsEngine,
    config: PipelineConfig,
}

impl Pipeline {
    /// A pipeline over the given object-relational model with default
    /// configuration.
    pub fn new(model: DataModel) -> Pipeline {
        Pipeline { engine: QbsEngine::new(model), config: PipelineConfig::default() }
    }

    /// Overrides the configuration.
    pub fn with_config(self, config: PipelineConfig) -> Pipeline {
        let engine = QbsEngine::builder(self.engine.model().clone())
            .config(config.clone().into())
            .build();
        Pipeline { engine, config }
    }

    /// The object-relational model.
    pub fn model(&self) -> &DataModel {
        self.engine.model()
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the full pipeline on MiniJava source.
    ///
    /// # Errors
    ///
    /// Returns the parse error when the source is malformed; analysis and
    /// synthesis outcomes are reported per fragment.
    pub fn run_source(&self, src: &str) -> Result<QbsReport, ParseError> {
        // Parse here to preserve the historical `ParseError` signature;
        // fragments then go through the engine exactly as
        // `Session::run_source` would send them.
        let fragments = compile_source(src, self.engine.model())?;
        let session = self.engine.session();
        let mut report = QbsReport::default();
        for frag in fragments {
            let (status, kernel) = match frag.kernel {
                Err(reject) => (FragmentStatus::Rejected { reason: reject.reason }, None),
                Ok(kernel) => (session.infer(&kernel), Some(kernel)),
            };
            report.fragments.push(crate::report::FragmentReport {
                method: frag.method,
                status,
                kernel,
            });
        }
        Ok(report)
    }

    /// Runs query inference on a single kernel program.
    pub fn infer(&self, kernel: &KernelProgram) -> FragmentStatus {
        self.engine.session().infer(kernel)
    }

    /// [`Pipeline::infer`] with cross-run CEGIS sharing hooks.
    pub fn infer_hooked(
        &self,
        kernel: &KernelProgram,
        hooks: SynthHooks<'_>,
    ) -> FragmentStatus {
        self.engine.session().infer_hooked(kernel, hooks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_common::{FieldType, Schema};

    fn model() -> DataModel {
        let mut m = DataModel::new();
        m.add_entity(
            "User",
            "users",
            Schema::builder("users")
                .field("id", FieldType::Int)
                .field("roleId", FieldType::Int)
                .finish(),
        );
        m.add_entity(
            "Role",
            "roles",
            Schema::builder("roles")
                .field("roleId", FieldType::Int)
                .field("name", FieldType::Str)
                .finish(),
        );
        m.add_dao("userDao", "getUsers", "User");
        m.add_dao("roleDao", "getRoles", "Role");
        m
    }

    #[test]
    fn translates_the_papers_running_example() {
        let src = r#"
        class UserService {
            public List<User> getRoleUser() {
                List<User> users = userDao.getUsers();
                List<Role> roles = roleDao.getRoles();
                List<User> listUsers = new ArrayList<User>();
                for (User u : users) {
                    for (Role r : roles) {
                        if (u.roleId == r.roleId) {
                            listUsers.add(u);
                        }
                    }
                }
                return listUsers;
            }
        }
        "#;
        let report = Pipeline::new(model()).run_source(src).unwrap();
        assert_eq!(report.counts().translated, 1);
        match &report.fragments[0].status {
            FragmentStatus::Translated { sql, .. } => {
                let text = sql.to_string();
                // Fig. 3: a join pushed into the database with order
                // preserved by both rowids.
                assert!(text.contains("FROM users, roles"), "{text}");
                assert!(text.contains("users.roleId = roles.roleId"), "{text}");
                assert!(text.contains("ORDER BY users.rowid, roles.rowid"), "{text}");
            }
            other => panic!("expected translation, got {other:?}"),
        }
        assert!(report.fragments[0].patched_source().unwrap().contains("db.executeQuery"));
    }

    #[test]
    fn counts_rejections_and_failures() {
        let src = r#"
        class S {
            public int rejected() {
                List<User> users = userDao.getUsers();
                for (User u : users) { u.setName("x"); }
                return 0;
            }
            public int failed() {
                List<User> users = userDao.getUsers();
                Collections.sort(users, new ByName());
                return users.size();
            }
        }
        "#;
        let report = Pipeline::new(model()).run_source(src).unwrap();
        let c = report.counts();
        assert_eq!(c.total, 2);
        assert_eq!(c.rejected, 1);
        assert_eq!(c.failed, 1);
    }

    #[test]
    fn config_round_trips_through_engine_config() {
        let config =
            PipelineConfig::default().with_synth(SynthConfig::default().with_max_level(2));
        let engine: EngineConfig = config.clone().into();
        assert_eq!(engine.synth.max_level, 2);
        let back: PipelineConfig = engine.into();
        assert_eq!(back.synth.max_level, 2);
    }
}
