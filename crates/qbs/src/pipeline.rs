//! Pipeline orchestration.

use crate::report::{FragmentReport, FragmentStatus, QbsReport};
use qbs_front::{compile_source, DataModel, ParseError};
use qbs_kernel::{KExpr, KStmt, KernelProgram};
use qbs_synth::{synthesize_with_hooks, SynthConfig, SynthFailure, SynthHooks};
use qbs_tor::{QuerySpec, TorExpr, TypeEnv};
use qbs_vcgen::subst_expr;

/// Pipeline tuning.
#[derive(Clone, Debug, Default)]
pub struct PipelineConfig {
    /// Synthesizer configuration.
    pub synth: SynthConfig,
    /// Types of fragment parameters (defaults to `Int`).
    pub param_types: TypeEnv,
}

/// The QBS pipeline: frontend → VC generation → synthesis → SQL.
#[derive(Clone, Debug)]
pub struct Pipeline {
    model: DataModel,
    config: PipelineConfig,
}

impl Pipeline {
    /// A pipeline over the given object-relational model with default
    /// configuration.
    pub fn new(model: DataModel) -> Pipeline {
        Pipeline { model, config: PipelineConfig::default() }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: PipelineConfig) -> Pipeline {
        self.config = config;
        self
    }

    /// The object-relational model.
    pub fn model(&self) -> &DataModel {
        &self.model
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the full pipeline on MiniJava source.
    ///
    /// # Errors
    ///
    /// Returns the parse error when the source is malformed; analysis and
    /// synthesis outcomes are reported per fragment.
    pub fn run_source(&self, src: &str) -> Result<QbsReport, ParseError> {
        let fragments = compile_source(src, &self.model)?;
        let mut report = QbsReport::default();
        for frag in fragments {
            let (status, kernel) = match frag.kernel {
                Err(reject) => (FragmentStatus::Rejected { reason: reject.reason }, None),
                Ok(kernel) => (self.infer(&kernel), Some(kernel)),
            };
            report.fragments.push(FragmentReport { method: frag.method, status, kernel });
        }
        Ok(report)
    }

    /// Runs query inference on a single kernel program (the paper's QBS
    /// algorithm proper).
    pub fn infer(&self, kernel: &KernelProgram) -> FragmentStatus {
        self.infer_hooked(kernel, SynthHooks::default())
    }

    /// [`Pipeline::infer`] with cross-run CEGIS sharing hooks.
    ///
    /// Batch drivers use this to seed the synthesizer's counterexample
    /// cache with environments mined while refuting other fragments of the
    /// same template shape, and to harvest the counterexamples this run
    /// mines. Stand-alone callers should use [`Pipeline::infer`].
    pub fn infer_hooked(
        &self,
        kernel: &KernelProgram,
        hooks: SynthHooks<'_>,
    ) -> FragmentStatus {
        let outcome = match synthesize_with_hooks(
            kernel,
            &self.config.param_types,
            &self.config.synth,
            hooks,
        ) {
            Ok(o) => o,
            Err(SynthFailure::Unsupported(reason)) => return FragmentStatus::Failed { reason },
            Err(SynthFailure::NoCandidate(stats)) => {
                return FragmentStatus::Failed {
                    reason: format!(
                        "no valid invariants/postcondition found ({} candidates tried)",
                        stats.candidates_tried
                    ),
                }
            }
        };
        // Replace source variables by their defining Query(...) retrievals so
        // the postcondition is self-contained, then translate to SQL.
        let post = substitute_sources(&outcome.post_rhs, kernel);
        let types = match qbs_kernel::typecheck(kernel, &self.config.param_types) {
            Ok(t) => t,
            Err(e) => return FragmentStatus::Failed { reason: e.to_string() },
        };
        let trans = match qbs_tor::trans(&post, &types.to_type_env()) {
            Ok(t) => t,
            Err(e) => {
                // Verified but untranslatable (e.g. a bare `get` of a sorted
                // relation — the paper's category-C failures).
                return FragmentStatus::Failed {
                    reason: format!("postcondition not translatable to SQL: {e}"),
                };
            }
        };
        match qbs_sql::sql_of(&trans) {
            Ok(sql) => FragmentStatus::Translated {
                sql,
                post,
                proof: outcome.proof,
                stats: outcome.stats,
            },
            Err(e) => FragmentStatus::Failed { reason: e.to_string() },
        }
    }
}

/// Substitutes `Var(v)` by `Query(...)` for every source assignment
/// `v := Query(...)` in the program.
fn substitute_sources(post: &TorExpr, kernel: &KernelProgram) -> TorExpr {
    fn collect(stmts: &[KStmt], out: &mut Vec<(qbs_common::Ident, QuerySpec)>) {
        for s in stmts {
            match s {
                KStmt::Assign(v, KExpr::Query(spec)) => out.push((v.clone(), spec.clone())),
                KStmt::If(_, t, f) => {
                    collect(t, out);
                    collect(f, out);
                }
                KStmt::While(_, b) => collect(b, out),
                _ => {}
            }
        }
    }
    let mut sources = Vec::new();
    collect(kernel.body(), &mut sources);
    let mut cur = post.clone();
    for (v, spec) in sources {
        cur = subst_expr(&cur, &v, &TorExpr::Query(spec));
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_common::{FieldType, Schema};

    fn model() -> DataModel {
        let mut m = DataModel::new();
        m.add_entity(
            "User",
            "users",
            Schema::builder("users")
                .field("id", FieldType::Int)
                .field("roleId", FieldType::Int)
                .finish(),
        );
        m.add_entity(
            "Role",
            "roles",
            Schema::builder("roles")
                .field("roleId", FieldType::Int)
                .field("name", FieldType::Str)
                .finish(),
        );
        m.add_dao("userDao", "getUsers", "User");
        m.add_dao("roleDao", "getRoles", "Role");
        m
    }

    #[test]
    fn translates_the_papers_running_example() {
        let src = r#"
        class UserService {
            public List<User> getRoleUser() {
                List<User> users = userDao.getUsers();
                List<Role> roles = roleDao.getRoles();
                List<User> listUsers = new ArrayList<User>();
                for (User u : users) {
                    for (Role r : roles) {
                        if (u.roleId == r.roleId) {
                            listUsers.add(u);
                        }
                    }
                }
                return listUsers;
            }
        }
        "#;
        let report = Pipeline::new(model()).run_source(src).unwrap();
        assert_eq!(report.counts().translated, 1);
        match &report.fragments[0].status {
            FragmentStatus::Translated { sql, .. } => {
                let text = sql.to_string();
                // Fig. 3: a join pushed into the database with order
                // preserved by both rowids.
                assert!(text.contains("FROM users, roles"), "{text}");
                assert!(text.contains("users.roleId = roles.roleId"), "{text}");
                assert!(text.contains("ORDER BY users.rowid, roles.rowid"), "{text}");
            }
            other => panic!("expected translation, got {other:?}"),
        }
        assert!(report.fragments[0].patched_source().unwrap().contains("db.executeQuery"));
    }

    #[test]
    fn counts_rejections_and_failures() {
        let src = r#"
        class S {
            public int rejected() {
                List<User> users = userDao.getUsers();
                for (User u : users) { u.setName("x"); }
                return 0;
            }
            public int failed() {
                List<User> users = userDao.getUsers();
                Collections.sort(users, new ByName());
                return users.size();
            }
        }
        "#;
        let report = Pipeline::new(model()).run_source(src).unwrap();
        let c = report.counts();
        assert_eq!(c.total, 2);
        assert_eq!(c.rejected, 1);
        assert_eq!(c.failed, 1);
    }
}
