//! Pipeline reports: per-fragment outcomes and aggregate counts.

use qbs_kernel::KernelProgram;
use qbs_sql::SqlQuery;
use qbs_synth::{ProofStatus, SynthStats};
use qbs_tor::TorExpr;
use std::fmt;

/// The outcome for one code fragment, matching the paper's Appendix A
/// statuses.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)] // Translated carries the full result payload by design
pub enum FragmentStatus {
    /// `X` — the fragment was converted to SQL.
    Translated {
        /// The generated query.
        sql: SqlQuery,
        /// The verified postcondition right-hand side (TOR).
        post: TorExpr,
        /// How the candidate was validated.
        proof: ProofStatus,
        /// Synthesis search statistics.
        stats: SynthStats,
    },
    /// `†` — rejected by preprocessing (arrays, updates, type-based
    /// operations, escaping data).
    Rejected {
        /// Reason.
        reason: String,
    },
    /// `*` — QBS failed to find invariants / a translatable postcondition.
    Failed {
        /// Reason.
        reason: String,
    },
}

/// Failure-reason prefix the engine uses for interrupted searches —
/// shared with [`FragmentStatus::is_interrupted`] so the two can never
/// drift apart.
pub(crate) const INTERRUPTED_PREFIX: &str = "synthesis interrupted";

impl FragmentStatus {
    /// The paper's status glyph.
    pub fn glyph(&self) -> &'static str {
        match self {
            FragmentStatus::Translated { .. } => "X",
            FragmentStatus::Rejected { .. } => "†",
            FragmentStatus::Failed { .. } => "*",
        }
    }

    /// The generated query for translated fragments — what differential
    /// oracles execute against the original kernel program.
    pub fn sql(&self) -> Option<&SqlQuery> {
        match self {
            FragmentStatus::Translated { sql, .. } => Some(sql),
            _ => None,
        }
    }

    /// True when the fragment failed because the engine interrupted the
    /// search (cancellation or an exhausted time/iteration budget) rather
    /// than because the search itself concluded.
    ///
    /// Interrupted outcomes are timing-dependent: the same fragment may
    /// succeed on a less loaded machine. Drivers that cache outcomes by
    /// problem fingerprint (e.g. `qbs-batch`) must not memoize them.
    pub fn is_interrupted(&self) -> bool {
        matches!(self, FragmentStatus::Failed { reason } if reason.starts_with(INTERRUPTED_PREFIX))
    }
}

/// Report for one fragment.
#[derive(Clone, Debug)]
pub struct FragmentReport {
    /// Originating method name.
    pub method: String,
    /// Outcome.
    pub status: FragmentStatus,
    /// The kernel program (absent for rejected fragments).
    pub kernel: Option<KernelProgram>,
}

impl FragmentReport {
    /// Renders the transformed method body for translated fragments —
    /// the paper's Fig. 3 output.
    pub fn patched_source(&self) -> Option<String> {
        match &self.status {
            FragmentStatus::Translated { sql, .. } => Some(match sql {
                SqlQuery::Select(_) => format!(
                    "{{\n    List result = db.executeQuery(\n        \"{sql}\");\n    return result;\n}}"
                ),
                SqlQuery::Scalar(_) => format!(
                    "{{\n    return db.executeScalar(\n        \"{sql}\");\n}}"
                ),
            }),
            _ => None,
        }
    }
}

/// Aggregate counts in the shape of the paper's Fig. 13 table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatusCounts {
    /// Fragments examined.
    pub total: usize,
    /// Converted to SQL (`X`).
    pub translated: usize,
    /// Rejected by preprocessing (`†`).
    pub rejected: usize,
    /// Failed synthesis (`*`).
    pub failed: usize,
}

impl fmt::Display for StatusCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fragments: {} translated, {} rejected, {} failed",
            self.total, self.translated, self.rejected, self.failed
        )
    }
}

/// The full pipeline report.
#[derive(Clone, Debug, Default)]
pub struct QbsReport {
    /// Per-fragment outcomes, in source order.
    pub fragments: Vec<FragmentReport>,
}

impl QbsReport {
    /// Aggregate counts (the Fig. 13 row for this input).
    pub fn counts(&self) -> StatusCounts {
        let mut c = StatusCounts { total: self.fragments.len(), ..StatusCounts::default() };
        for fr in &self.fragments {
            match fr.status {
                FragmentStatus::Translated { .. } => c.translated += 1,
                FragmentStatus::Rejected { .. } => c.rejected += 1,
                FragmentStatus::Failed { .. } => c.failed += 1,
            }
        }
        c
    }

    /// The report for a specific method.
    pub fn fragment(&self, method: &str) -> Option<&FragmentReport> {
        self.fragments.iter().find(|f| f.method == method)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_aggregate_by_status() {
        let mk = |status| FragmentReport { method: "m".into(), status, kernel: None };
        let report = QbsReport {
            fragments: vec![
                mk(FragmentStatus::Rejected { reason: "x".into() }),
                mk(FragmentStatus::Failed { reason: "y".into() }),
                mk(FragmentStatus::Failed { reason: "z".into() }),
            ],
        };
        let c = report.counts();
        assert_eq!(c.total, 3);
        assert_eq!(c.rejected, 1);
        assert_eq!(c.failed, 2);
        assert_eq!(c.translated, 0);
        assert_eq!(c.to_string(), "3 fragments: 0 translated, 1 rejected, 2 failed");
    }
}
