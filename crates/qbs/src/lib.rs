//! QBS — Query By Synthesis: the end-to-end pipeline (paper Fig. 5).
//!
//! Given MiniJava application source and its object-relational
//! [`DataModel`](qbs_front::DataModel), the pipeline:
//!
//! 1. identifies and inlines entry-point methods touching persistent data
//!    and lowers each code fragment to the kernel language (`qbs-front`);
//! 2. computes verification conditions with unknown invariants and
//!    postcondition (`qbs-vcgen`);
//! 3. synthesizes invariants + postcondition by incremental template
//!    enumeration with CEGIS and validates them with the symbolic prover /
//!    extended bounded checking (`qbs-synth`, `qbs-verify`);
//! 4. translates the verified postcondition into SQL (`qbs-tor::trans` +
//!    `qbs-sql`) and renders the patched method body (paper Fig. 3).
//!
//! Fragment outcomes mirror the paper's Appendix A statuses: **translated**
//! (`X`), **rejected** by preprocessing (`†`), or **failed** synthesis (`*`).
//!
//! # Example
//!
//! ```
//! use qbs::{Pipeline, FragmentStatus};
//! use qbs_front::DataModel;
//! use qbs_common::{Schema, FieldType};
//!
//! let mut model = DataModel::new();
//! model.add_entity(
//!     "User",
//!     "users",
//!     Schema::builder("users")
//!         .field("id", FieldType::Int)
//!         .field("roleId", FieldType::Int)
//!         .finish(),
//! );
//! model.add_dao("userDao", "getUsers", "User");
//!
//! let src = r#"
//! class S {
//!     public List<User> admins() {
//!         List<User> users = userDao.getUsers();
//!         List<User> out = new ArrayList<User>();
//!         for (User u : users) {
//!             if (u.roleId == 1) { out.add(u); }
//!         }
//!         return out;
//!     }
//! }
//! "#;
//! let report = Pipeline::new(model).run_source(src).unwrap();
//! match &report.fragments[0].status {
//!     FragmentStatus::Translated { sql, .. } => {
//!         assert!(sql.to_string().contains("WHERE users.roleId = 1"));
//!     }
//!     other => panic!("expected translation, got {other:?}"),
//! }
//! ```

mod pipeline;
mod report;

pub use pipeline::{Pipeline, PipelineConfig};
pub use report::{FragmentReport, FragmentStatus, QbsReport, StatusCounts};
