//! QBS — Query By Synthesis: the end-to-end pipeline (paper Fig. 5) as a
//! staged, observable engine.
//!
//! Given MiniJava application source and its object-relational
//! [`DataModel`](qbs_front::DataModel), a [`QbsEngine`] [`Session`] runs
//! each code fragment through explicit stages:
//!
//! 1. **Lowered** — identifies and inlines entry-point methods touching
//!    persistent data and lowers each fragment to the kernel language
//!    (`qbs-front`);
//! 2. **VcGen** — computes verification conditions with unknown
//!    invariants and postcondition (`qbs-vcgen`);
//! 3. **Synthesized** — fills the unknowns by incremental template
//!    enumeration with CEGIS (`qbs-synth`);
//! 4. **Verified** — certifies the accepted candidate with the symbolic
//!    prover / extended bounded checking (`qbs-verify`);
//! 5. **Translated** — renders the verified postcondition as SQL
//!    (`qbs-tor::trans` + `qbs-sql`) under a configurable [`Dialect`].
//!
//! Each stage boundary emits a [`PipelineEvent`] to registered
//! [`EngineObserver`]s; sessions support cooperative cancellation
//! ([`CancelToken`]) and per-fragment time/iteration budgets. All public
//! failures are the unified [`QbsError`].
//! Fragment outcomes mirror the paper's Appendix A statuses: **translated**
//! (`X`), **rejected** by preprocessing (`†`), or **failed** synthesis (`*`).
//!
//! # Example
//!
//! ```
//! use qbs::{FragmentStatus, QbsEngine, StageTimer};
//! use qbs_front::DataModel;
//! use qbs_common::{Schema, FieldType};
//!
//! let mut model = DataModel::new();
//! model.add_entity(
//!     "User",
//!     "users",
//!     Schema::builder("users")
//!         .field("id", FieldType::Int)
//!         .field("roleId", FieldType::Int)
//!         .finish(),
//! );
//! model.add_dao("userDao", "getUsers", "User");
//!
//! let src = r#"
//! class S {
//!     public List<User> admins() {
//!         List<User> users = userDao.getUsers();
//!         List<User> out = new ArrayList<User>();
//!         for (User u : users) {
//!             if (u.roleId == 1) { out.add(u); }
//!         }
//!         return out;
//!     }
//! }
//! "#;
//! let engine = QbsEngine::new(model);
//! let timer = StageTimer::new();
//! let session = engine.session().observe(timer.observer());
//! let report = session.run_source(src).unwrap();
//! match &report.fragments[0].status {
//!     FragmentStatus::Translated { sql, .. } => {
//!         assert!(sql.to_string().contains("WHERE users.roleId = 1"));
//!     }
//!     other => panic!("expected translation, got {other:?}"),
//! }
//! // Per-stage wall-clock observed through events:
//! assert!(timer.totals().contains_key(&qbs::Stage::Synthesized));
//! ```

mod engine;
mod event;
mod obs;
mod report;

pub use engine::{EngineConfig, QbsEngine, QbsEngineBuilder, Session};
pub use event::{CancelToken, EngineObserver, EventLog, PipelineEvent, Stage, StageTimer};
pub use obs::PipelineObserver;
pub use report::{FragmentReport, FragmentStatus, QbsReport, StatusCounts};

// Re-exported so engine consumers can name every type in the public API
// without extra dependencies.
pub use qbs_common::QbsError;
pub use qbs_sql::Dialect;
