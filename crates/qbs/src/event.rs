//! Pipeline observability: stages, events, observers, and cancellation.
//!
//! A [`Session`](crate::Session) emits [`PipelineEvent`]s as fragments
//! move through the engine's stages. Anything implementing
//! [`EngineObserver`] (including plain `FnMut(&PipelineEvent)` closures)
//! can subscribe; [`EventLog`] and [`StageTimer`] are ready-made observers
//! for the two common needs — capturing the event stream and aggregating
//! per-stage wall-clock time.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Locks ignoring poison: observers hold these locks only to push or read
/// plain data, so a panic on another thread (e.g. inside a different
/// observer running on a batch worker) leaves the buffer intact — losing
/// the telemetry collected so far would only compound the failure.
fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The engine's pipeline stages, in execution order (paper Fig. 5).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Stage {
    /// Frontend: parse, inline, and lower to the kernel language.
    Lowered,
    /// Verification-condition generation with unknown invariants.
    VcGen,
    /// CEGIS template search up to a bounded-checking pass.
    Synthesized,
    /// Certification of the accepted candidate (symbolic proof or
    /// extended bounded checking).
    Verified,
    /// TOR-to-SQL translation of the verified postcondition.
    Translated,
}

impl Stage {
    /// All stages, in execution order.
    pub const ALL: [Stage; 5] =
        [Stage::Lowered, Stage::VcGen, Stage::Synthesized, Stage::Verified, Stage::Translated];

    /// Lower-case stage name (used in reports and JSON output).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Lowered => "lowered",
            Stage::VcGen => "vcgen",
            Stage::Synthesized => "synthesized",
            Stage::Verified => "verified",
            Stage::Translated => "translated",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One observable step of a session run.
///
/// The enum is `#[non_exhaustive]`: observers must tolerate (and a
/// wildcard-match) event kinds added later.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum PipelineEvent {
    /// Query inference started for a fragment.
    FragmentStarted {
        /// Method name (or `"<source>"` for whole-source work).
        method: String,
    },
    /// A stage began.
    StageStarted {
        /// Fragment method name.
        method: String,
        /// The stage.
        stage: Stage,
    },
    /// A stage completed.
    StageFinished {
        /// Fragment method name.
        method: String,
        /// The stage.
        stage: Stage,
        /// Wall-clock time spent in the stage.
        elapsed: Duration,
    },
    /// Verification conditions were generated.
    VcsGenerated {
        /// Fragment method name.
        method: String,
        /// Number of conditions.
        conditions: usize,
        /// Number of unknown predicates.
        unknowns: usize,
    },
    /// One CEGIS candidate was screened/checked.
    CegisIteration {
        /// Fragment method name.
        method: String,
        /// Complexity level of the candidate.
        level: usize,
        /// Candidates tried so far (including this one).
        candidates_tried: usize,
        /// Candidates rejected by the counterexample cache so far.
        cache_hits: usize,
    },
    /// Bounded checking refuted a candidate and mined a counterexample.
    CounterexampleFound {
        /// Fragment method name.
        method: String,
    },
    /// A batch driver answered this fragment from its memoization cache
    /// without running a search.
    CacheHit {
        /// Fragment method name.
        method: String,
    },
    /// Query inference finished for a fragment.
    FragmentFinished {
        /// Fragment method name.
        method: String,
        /// The paper's status glyph (`X`, `†`, `*`).
        glyph: &'static str,
        /// End-to-end wall-clock time for the fragment.
        elapsed: Duration,
    },
}

impl PipelineEvent {
    /// The method the event concerns.
    pub fn method(&self) -> &str {
        match self {
            PipelineEvent::FragmentStarted { method }
            | PipelineEvent::StageStarted { method, .. }
            | PipelineEvent::StageFinished { method, .. }
            | PipelineEvent::VcsGenerated { method, .. }
            | PipelineEvent::CegisIteration { method, .. }
            | PipelineEvent::CounterexampleFound { method }
            | PipelineEvent::CacheHit { method }
            | PipelineEvent::FragmentFinished { method, .. } => method,
        }
    }
}

/// A subscriber to a session's [`PipelineEvent`] stream.
///
/// Implemented for free by `FnMut(&PipelineEvent)` closures:
///
/// ```
/// use qbs::{PipelineEvent, QbsEngine};
/// use qbs_front::DataModel;
///
/// let engine = QbsEngine::new(DataModel::new());
/// let session = engine
///     .session()
///     .observe(|e: &PipelineEvent| eprintln!("{} -> {e:?}", e.method()));
/// # let _ = session;
/// ```
pub trait EngineObserver: Send {
    /// Called once per event, in emission order.
    fn on_event(&mut self, event: &PipelineEvent);
}

impl<F: FnMut(&PipelineEvent) + Send> EngineObserver for F {
    fn on_event(&mut self, event: &PipelineEvent) {
        self(event)
    }
}

/// A shared, thread-safe event recorder.
///
/// Clone the log, hand [`EventLog::observer`] to a session, and read
/// [`EventLog::events`] afterwards — clones share the same buffer.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    events: Arc<Mutex<Vec<PipelineEvent>>>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// An observer that appends every event to this log.
    pub fn observer(&self) -> impl EngineObserver {
        let events = Arc::clone(&self.events);
        move |e: &PipelineEvent| locked(&events).push(e.clone())
    }

    /// A snapshot of the events recorded so far.
    pub fn events(&self) -> Vec<PipelineEvent> {
        locked(&self.events).clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        locked(&self.events).len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-stage wall-clock aggregation over [`PipelineEvent::StageFinished`]
/// events.
///
/// Clone the timer, hand [`StageTimer::observer`] to a session, and read
/// [`StageTimer::totals`] (whole run) or [`StageTimer::by_method`]
/// afterwards.
#[derive(Clone, Debug, Default)]
pub struct StageTimer {
    times: Arc<Mutex<BTreeMap<String, BTreeMap<Stage, Duration>>>>,
}

impl StageTimer {
    /// An empty timer.
    pub fn new() -> StageTimer {
        StageTimer::default()
    }

    /// An observer accumulating stage durations into this timer.
    pub fn observer(&self) -> impl EngineObserver {
        let times = Arc::clone(&self.times);
        move |e: &PipelineEvent| {
            if let PipelineEvent::StageFinished { method, stage, elapsed } = e {
                *locked(&times)
                    .entry(method.clone())
                    .or_default()
                    .entry(*stage)
                    .or_default() += *elapsed;
            }
        }
    }

    /// Total time per stage, summed over all methods.
    pub fn totals(&self) -> BTreeMap<Stage, Duration> {
        let mut out = BTreeMap::new();
        for per_stage in locked(&self.times).values() {
            for (stage, d) in per_stage {
                *out.entry(*stage).or_default() += *d;
            }
        }
        out
    }

    /// Per-method stage timings.
    pub fn by_method(&self) -> BTreeMap<String, BTreeMap<Stage, Duration>> {
        locked(&self.times).clone()
    }

    /// The stage timings recorded for one method.
    pub fn timings_for(&self, method: &str) -> BTreeMap<Stage, Duration> {
        locked(&self.times).get(method).cloned().unwrap_or_default()
    }
}

/// A cooperative cancellation token.
///
/// Clone the token out of a session (they share state), hand the clone to
/// another thread, and call [`CancelToken::cancel`]; the session stops at
/// the next candidate boundary with
/// [`QbsError::Cancelled`](qbs_common::QbsError::Cancelled).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] was called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_log_records_and_snapshots() {
        let log = EventLog::new();
        let mut obs = log.observer();
        obs.on_event(&PipelineEvent::FragmentStarted { method: "m".into() });
        obs.on_event(&PipelineEvent::CacheHit { method: "m".into() });
        assert_eq!(log.len(), 2);
        assert_eq!(log.events()[1].method(), "m");
        assert!(!log.is_empty());
    }

    #[test]
    fn stage_timer_accumulates_per_method_and_overall() {
        let timer = StageTimer::new();
        let mut obs = timer.observer();
        for (m, stage, ms) in [
            ("a", Stage::Synthesized, 10),
            ("a", Stage::Synthesized, 5),
            ("a", Stage::Translated, 1),
            ("b", Stage::Synthesized, 2),
        ] {
            obs.on_event(&PipelineEvent::StageFinished {
                method: m.into(),
                stage,
                elapsed: Duration::from_millis(ms),
            });
        }
        let totals = timer.totals();
        assert_eq!(totals[&Stage::Synthesized], Duration::from_millis(17));
        assert_eq!(totals[&Stage::Translated], Duration::from_millis(1));
        assert_eq!(timer.timings_for("a")[&Stage::Synthesized], Duration::from_millis(15));
        assert!(timer.timings_for("zzz").is_empty());
    }

    #[test]
    fn observers_survive_a_poisoned_lock() {
        let log = EventLog::new();
        let timer = StageTimer::new();
        // Poison both locks: panic on a helper thread while holding them.
        let (events, times) = (Arc::clone(&log.events), Arc::clone(&timer.times));
        std::thread::spawn(move || {
            let _e = events.lock().unwrap();
            let _t = times.lock().unwrap();
            panic!("poison the observer locks");
        })
        .join()
        .unwrap_err();
        // Recording and reading still work; nothing recorded before the
        // poison is lost.
        let mut obs = log.observer();
        obs.on_event(&PipelineEvent::FragmentStarted { method: "m".into() });
        assert_eq!(log.len(), 1);
        let mut obs = timer.observer();
        obs.on_event(&PipelineEvent::StageFinished {
            method: "m".into(),
            stage: Stage::Synthesized,
            elapsed: Duration::from_millis(3),
        });
        assert_eq!(timer.totals()[&Stage::Synthesized], Duration::from_millis(3));
        assert_eq!(timer.timings_for("m").len(), 1);
        assert_eq!(timer.by_method().len(), 1);
    }

    #[test]
    fn cancel_token_is_shared_between_clones() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t.is_cancelled());
        t2.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn stages_are_ordered_and_named() {
        assert!(Stage::Lowered < Stage::Translated);
        assert_eq!(Stage::VcGen.to_string(), "vcgen");
        assert_eq!(Stage::ALL.len(), 5);
    }
}
