//! The staged, observable QBS engine.
//!
//! [`QbsEngine`] is the top-level entry point: built once per
//! object-relational model via [`QbsEngine::builder`], it hands out
//! [`Session`]s that run fragments through the explicit stages of paper
//! Fig. 5 (`Lowered → VcGen → Synthesized → Verified → Translated`),
//! emitting [`PipelineEvent`]s to registered observers and honoring
//! cooperative cancellation and per-fragment time/iteration budgets.

use crate::event::{CancelToken, EngineObserver, PipelineEvent, Stage};
use crate::report::{FragmentReport, FragmentStatus, QbsReport, INTERRUPTED_PREFIX};
use qbs_common::QbsError;
use qbs_front::{compile_source, DataModel};
use qbs_kernel::{KExpr, KStmt, KernelProgram};
use qbs_sql::{render_query, Dialect, SqlQuery};
use qbs_synth::{synthesize_with_hooks, Interrupt, SynthConfig, SynthFailure, SynthHooks};
use qbs_tor::{QuerySpec, TorExpr, TypeEnv};
use qbs_vcgen::subst_expr;
use std::cell::RefCell;
use std::time::{Duration, Instant};

/// Complete engine tuning: synthesis knobs, fragment parameter types, the
/// SQL dialect for rendered output, and per-fragment budgets.
#[derive(Clone, Debug, Default)]
pub struct EngineConfig {
    /// Synthesizer configuration.
    pub synth: SynthConfig,
    /// Types of fragment parameters (defaults to `Int`).
    pub param_types: TypeEnv,
    /// Dialect used by [`Session::sql_text`] /
    /// [`QbsEngine::render_sql`]. Does **not** affect the stored SQL AST.
    pub dialect: Dialect,
    /// Per-fragment wall-clock budget for the synthesis search.
    pub time_budget: Option<Duration>,
    /// Per-fragment candidate budget for the synthesis search.
    pub iteration_budget: Option<usize>,
}

impl EngineConfig {
    /// Sets the synthesizer configuration.
    pub fn with_synth(mut self, synth: SynthConfig) -> EngineConfig {
        self.synth = synth;
        self
    }

    /// Sets the fragment parameter types.
    pub fn with_param_types(mut self, param_types: TypeEnv) -> EngineConfig {
        self.param_types = param_types;
        self
    }

    /// Sets the SQL dialect for rendered output.
    pub fn with_dialect(mut self, dialect: Dialect) -> EngineConfig {
        self.dialect = dialect;
        self
    }

    /// Sets the per-fragment wall-clock budget.
    pub fn with_time_budget(mut self, budget: Duration) -> EngineConfig {
        self.time_budget = Some(budget);
        self
    }

    /// Sets the per-fragment candidate budget.
    pub fn with_iteration_budget(mut self, budget: usize) -> EngineConfig {
        self.iteration_budget = Some(budget);
        self
    }
}

/// Builder for [`QbsEngine`] — see [`QbsEngine::builder`].
#[derive(Clone, Debug)]
pub struct QbsEngineBuilder {
    model: DataModel,
    config: EngineConfig,
}

impl QbsEngineBuilder {
    /// Sets the synthesizer configuration.
    pub fn synth(mut self, synth: SynthConfig) -> QbsEngineBuilder {
        self.config.synth = synth;
        self
    }

    /// Sets the fragment parameter types.
    pub fn param_types(mut self, param_types: TypeEnv) -> QbsEngineBuilder {
        self.config.param_types = param_types;
        self
    }

    /// Sets the SQL dialect for rendered output.
    pub fn dialect(mut self, dialect: Dialect) -> QbsEngineBuilder {
        self.config.dialect = dialect;
        self
    }

    /// Bounds each fragment's synthesis search by wall-clock time;
    /// exceeding it fails the fragment (not the whole run).
    pub fn time_budget(mut self, budget: Duration) -> QbsEngineBuilder {
        self.config.time_budget = Some(budget);
        self
    }

    /// Bounds each fragment's synthesis search by candidates tried.
    pub fn iteration_budget(mut self, budget: usize) -> QbsEngineBuilder {
        self.config.iteration_budget = Some(budget);
        self
    }

    /// Replaces the whole configuration at once.
    pub fn config(mut self, config: EngineConfig) -> QbsEngineBuilder {
        self.config = config;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> QbsEngine {
        QbsEngine { model: self.model, config: self.config }
    }
}

/// The QBS engine: frontend → VC generation → synthesis → verification →
/// SQL, as a reusable, observable service over one object-relational
/// model.
///
/// # Example
///
/// ```
/// use qbs::{FragmentStatus, QbsEngine};
/// use qbs_common::{FieldType, Schema};
/// use qbs_front::DataModel;
/// use qbs_sql::Dialect;
///
/// let mut model = DataModel::new();
/// model.add_entity(
///     "User",
///     "users",
///     Schema::builder("users").field("roleId", FieldType::Int).finish(),
/// );
/// model.add_dao("userDao", "getUsers", "User");
///
/// let engine = QbsEngine::builder(model).dialect(Dialect::Postgres).build();
/// let report = engine
///     .run_source(
///         r#"class S {
///             public List<User> admins() {
///                 List<User> users = userDao.getUsers();
///                 List<User> out = new ArrayList<User>();
///                 for (User u : users) {
///                     if (u.roleId == 1) { out.add(u); }
///                 }
///                 return out;
///             }
///         }"#,
///     )
///     .unwrap();
/// let FragmentStatus::Translated { sql, .. } = &report.fragments[0].status else {
///     panic!("expected translation");
/// };
/// assert!(engine.render_sql(sql).contains("\"users\".\"roleId\" = 1"));
/// ```
#[derive(Clone, Debug)]
pub struct QbsEngine {
    model: DataModel,
    config: EngineConfig,
}

impl QbsEngine {
    /// Starts a builder over the given object-relational model.
    pub fn builder(model: DataModel) -> QbsEngineBuilder {
        QbsEngineBuilder { model, config: EngineConfig::default() }
    }

    /// An engine with the default configuration.
    pub fn new(model: DataModel) -> QbsEngine {
        QbsEngine::builder(model).build()
    }

    /// The object-relational model.
    pub fn model(&self) -> &DataModel {
        &self.model
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Opens a session: the unit of observation and cancellation.
    pub fn session(&self) -> Session<'_> {
        Session {
            engine: self,
            observers: RefCell::new(Vec::new()),
            cancel: CancelToken::new(),
        }
    }

    /// Convenience: runs MiniJava source through a throwaway session.
    ///
    /// # Errors
    ///
    /// [`QbsError::Parse`] when the source is malformed (analysis and
    /// synthesis outcomes are reported per fragment), or
    /// [`QbsError::Cancelled`] — unreachable here since the throwaway
    /// session's token is never shared.
    pub fn run_source(&self, src: &str) -> Result<QbsReport, QbsError> {
        self.session().run_source(src)
    }

    /// Renders a query under the engine's configured [`Dialect`].
    pub fn render_sql(&self, sql: &SqlQuery) -> String {
        render_query(sql, self.config.dialect)
    }
}

/// One engine run context: holds the registered observers and the
/// cancellation token. Sessions are cheap; create one per logical run.
///
/// All methods take `&self`; observer dispatch is interior-mutable so
/// event emission can happen from within synthesis callbacks.
pub struct Session<'e> {
    engine: &'e QbsEngine,
    observers: RefCell<Vec<Box<dyn EngineObserver>>>,
    cancel: CancelToken,
}

impl<'e> Session<'e> {
    /// Adds an observer (builder style).
    pub fn observe(self, observer: impl EngineObserver + 'static) -> Session<'e> {
        self.add_observer(observer);
        self
    }

    /// Adds an observer.
    pub fn add_observer(&self, observer: impl EngineObserver + 'static) {
        self.observers.borrow_mut().push(Box::new(observer));
    }

    /// The engine this session runs on.
    pub fn engine(&self) -> &QbsEngine {
        self.engine
    }

    /// A clone of this session's cancellation token; cancel it from any
    /// thread to stop the session at the next candidate boundary.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Renders a query under the engine's configured [`Dialect`].
    pub fn sql_text(&self, sql: &SqlQuery) -> String {
        self.engine.render_sql(sql)
    }

    /// Prepares a translated fragment's SQL on a database
    /// [`Connection`](qbs_db::Connection) — so a synthesized fragment
    /// ends in a reusable plan-once / execute-many handle instead of a
    /// string. The statement renders under the engine's configured
    /// [`Dialect`]; planning and execution go through the connection's
    /// plan cache.
    ///
    /// # Example
    ///
    /// ```
    /// use qbs::QbsEngine;
    /// use qbs_common::{FieldType, Schema, Value};
    /// use qbs_db::{Connection, Database, QueryOutput};
    /// use qbs_front::DataModel;
    ///
    /// let mut model = DataModel::new();
    /// let schema = Schema::builder("users").field("roleId", FieldType::Int).finish();
    /// model.add_entity("User", "users", schema.clone());
    /// model.add_dao("userDao", "getUsers", "User");
    /// let engine = QbsEngine::new(model);
    /// let session = engine.session();
    /// let report = session
    ///     .run_source(
    ///         r#"class S {
    ///             public List<User> admins() {
    ///                 List<User> users = userDao.getUsers();
    ///                 List<User> out = new ArrayList<User>();
    ///                 for (User u : users) {
    ///                     if (u.roleId == 1) { out.add(u); }
    ///                 }
    ///                 return out;
    ///             }
    ///         }"#,
    ///     )
    ///     .unwrap();
    ///
    /// let mut db = Database::new();
    /// db.create_table(schema).unwrap();
    /// db.insert("users", vec![Value::from(1)]).unwrap();
    /// let conn = Connection::open(db);
    /// let stmt = session
    ///     .prepare_translated(&report.fragments[0].status, &conn)
    ///     .unwrap();
    /// // The page-load loop: execute many, plan never recomputed.
    /// for _ in 0..3 {
    ///     let QueryOutput::Rows(out) =
    ///         conn.execute(&stmt, &qbs_db::Params::new()).unwrap()
    ///     else {
    ///         unreachable!()
    ///     };
    ///     assert_eq!(out.rows.len(), 1);
    ///     assert_eq!(out.stats.plan_cache_hits, 1);
    /// }
    /// ```
    ///
    /// # Errors
    ///
    /// [`QbsError::Translation`] when the fragment did not translate.
    pub fn prepare_translated(
        &self,
        status: &FragmentStatus,
        conn: &qbs_db::Connection,
    ) -> Result<qbs_db::PreparedStatement, QbsError> {
        let sql = status.sql().ok_or_else(|| QbsError::Translation {
            reason: "fragment was not translated; no SQL to prepare".to_string(),
            source: None,
        })?;
        Ok(conn.prepare_query_as(sql, self.engine.config.dialect))
    }

    /// Emits an externally produced event to this session's observers —
    /// drivers layered on top of the engine (e.g. `qbs-batch`) use this
    /// to surface their own steps (cache hits) in the same stream.
    pub fn emit(&self, event: PipelineEvent) {
        for obs in self.observers.borrow_mut().iter_mut() {
            obs.on_event(&event);
        }
    }

    /// Emits lazily: the event is only constructed when observers exist.
    fn emit_with(&self, make: impl FnOnce() -> PipelineEvent) {
        if self.observers.borrow().is_empty() {
            return;
        }
        let event = make();
        self.emit(event);
    }

    /// Runs the full pipeline on MiniJava source.
    ///
    /// # Errors
    ///
    /// [`QbsError::Parse`] when the source is malformed, and
    /// [`QbsError::Cancelled`] when this session's token is cancelled
    /// mid-run. Analysis and synthesis outcomes — including per-fragment
    /// budget exhaustion — are reported per fragment in the
    /// [`QbsReport`], mirroring the paper's Appendix A statuses.
    pub fn run_source(&self, src: &str) -> Result<QbsReport, QbsError> {
        let lower_started = Instant::now();
        self.emit_with(|| PipelineEvent::StageStarted {
            method: "<source>".into(),
            stage: Stage::Lowered,
        });
        let fragments = compile_source(src, &self.engine.model)?;
        self.emit_with(|| PipelineEvent::StageFinished {
            method: "<source>".into(),
            stage: Stage::Lowered,
            elapsed: lower_started.elapsed(),
        });
        let mut report = QbsReport::default();
        for frag in fragments {
            if self.cancel.is_cancelled() {
                return Err(QbsError::Cancelled);
            }
            let (status, kernel) = match frag.kernel {
                Err(reject) => {
                    self.emit_with(|| PipelineEvent::FragmentStarted {
                        method: frag.method.clone(),
                    });
                    let status = FragmentStatus::Rejected { reason: reject.reason };
                    self.emit_with(|| PipelineEvent::FragmentFinished {
                        method: frag.method.clone(),
                        glyph: status.glyph(),
                        elapsed: Duration::ZERO,
                    });
                    (status, None)
                }
                Ok(kernel) => (
                    self.infer_named(&kernel, &frag.method, SynthHooks::default()),
                    Some(kernel),
                ),
            };
            report.fragments.push(FragmentReport { method: frag.method, status, kernel });
        }
        if self.cancel.is_cancelled() {
            return Err(QbsError::Cancelled);
        }
        Ok(report)
    }

    /// Runs query inference on a single kernel program (the paper's QBS
    /// algorithm proper). Cancellation and exhausted budgets surface as
    /// [`FragmentStatus::Failed`].
    pub fn infer(&self, kernel: &KernelProgram) -> FragmentStatus {
        self.infer_named(kernel, kernel.name().as_str(), SynthHooks::default())
    }

    /// [`Session::infer`] with cross-run CEGIS sharing hooks — the entry
    /// point used by corpus-scale batch drivers. The engine composes its
    /// own observation/budget hooks with the caller's.
    pub fn infer_hooked(
        &self,
        kernel: &KernelProgram,
        hooks: SynthHooks<'_>,
    ) -> FragmentStatus {
        self.infer_named(kernel, kernel.name().as_str(), hooks)
    }

    fn infer_named(
        &self,
        kernel: &KernelProgram,
        method: &str,
        hooks: SynthHooks<'_>,
    ) -> FragmentStatus {
        let fragment_started = Instant::now();
        self.emit_with(|| PipelineEvent::FragmentStarted { method: method.to_string() });
        let status = self.infer_stages(kernel, method, hooks, fragment_started);
        self.emit_with(|| PipelineEvent::FragmentFinished {
            method: method.to_string(),
            glyph: status.glyph(),
            elapsed: fragment_started.elapsed(),
        });
        status
    }

    fn infer_stages(
        &self,
        kernel: &KernelProgram,
        method: &str,
        hooks: SynthHooks<'_>,
        started: Instant,
    ) -> FragmentStatus {
        let config = &self.engine.config;

        // ── VcGen ───────────────────────────────────────────────────────
        // Generated here purely for observability (counts + timing), so
        // the work is skipped when nobody listens; the synthesizer
        // re-derives the conditions internally, and any error surfaces
        // through the search below with the historical failure text.
        if !self.observers.borrow().is_empty() {
            let vcgen_started = Instant::now();
            self.emit(PipelineEvent::StageStarted {
                method: method.to_string(),
                stage: Stage::VcGen,
            });
            if let Ok(vcs) = qbs_vcgen::generate(kernel) {
                self.emit(PipelineEvent::VcsGenerated {
                    method: method.to_string(),
                    conditions: vcs.conditions.len(),
                    unknowns: vcs.unknowns.len(),
                });
            }
            self.emit(PipelineEvent::StageFinished {
                method: method.to_string(),
                stage: Stage::VcGen,
                elapsed: vcgen_started.elapsed(),
            });
        }

        // ── Synthesized + Verified ──────────────────────────────────────
        let synth_started = Instant::now();
        self.emit_with(|| PipelineEvent::StageStarted {
            method: method.to_string(),
            stage: Stage::Synthesized,
        });
        let cancel = self.cancel.clone();
        let caller_interrupt = hooks.interrupt;
        let interrupt = move |stats: &qbs_synth::SynthStats| -> Option<Interrupt> {
            if cancel.is_cancelled() {
                return Some(Interrupt::Cancelled);
            }
            if let Some(budget) = config.time_budget {
                if started.elapsed() > budget {
                    return Some(Interrupt::TimeBudget(budget));
                }
            }
            if let Some(budget) = config.iteration_budget {
                if stats.candidates_tried >= budget {
                    return Some(Interrupt::IterationBudget(budget));
                }
            }
            caller_interrupt.and_then(|f| f(stats))
        };
        let mut caller_iter = hooks.on_iteration;
        let mut on_iteration = |stats: &qbs_synth::SynthStats| {
            self.emit_with(|| PipelineEvent::CegisIteration {
                method: method.to_string(),
                level: stats.levels_used,
                candidates_tried: stats.candidates_tried,
                cache_hits: stats.cache_hits,
            });
            if let Some(f) = caller_iter.as_mut() {
                f(stats);
            }
        };
        let mut caller_cex = hooks.on_cex;
        let mut on_cex = |env: &qbs_tor::Env| {
            self.emit_with(|| PipelineEvent::CounterexampleFound {
                method: method.to_string(),
            });
            if let Some(f) = caller_cex.as_mut() {
                f(env);
            }
        };
        let merged = SynthHooks {
            seed_cexes: hooks.seed_cexes,
            on_cex: Some(&mut on_cex),
            on_iteration: Some(&mut on_iteration),
            interrupt: Some(&interrupt),
        };
        let outcome =
            match synthesize_with_hooks(kernel, &config.param_types, &config.synth, merged) {
                Ok(o) => o,
                Err(err) => {
                    // Balance the StageStarted above: a failing fragment
                    // still closes the stage it failed in.
                    self.emit_with(|| PipelineEvent::StageFinished {
                        method: method.to_string(),
                        stage: Stage::Synthesized,
                        elapsed: synth_started.elapsed(),
                    });
                    return FragmentStatus::Failed {
                        reason: match err {
                            SynthFailure::Unsupported(reason) => reason,
                            SynthFailure::NoCandidate(stats) => format!(
                                "no valid invariants/postcondition found ({} candidates tried)",
                                stats.candidates_tried
                            ),
                            SynthFailure::Interrupted { interrupt, stats } => format!(
                                "{INTERRUPTED_PREFIX}: {interrupt} ({} candidates tried)",
                                stats.candidates_tried
                            ),
                        },
                    };
                }
            };
        self.emit_with(|| PipelineEvent::StageFinished {
            method: method.to_string(),
            stage: Stage::Synthesized,
            elapsed: outcome.stats.elapsed.saturating_sub(outcome.stats.proof_elapsed),
        });
        // Verification interleaves with the search, so its Started/
        // Finished pair is emitted retrospectively, carrying the time the
        // search spent certifying candidates.
        self.emit_with(|| PipelineEvent::StageStarted {
            method: method.to_string(),
            stage: Stage::Verified,
        });
        self.emit_with(|| PipelineEvent::StageFinished {
            method: method.to_string(),
            stage: Stage::Verified,
            elapsed: outcome.stats.proof_elapsed,
        });

        // ── Translated ──────────────────────────────────────────────────
        let translate_started = Instant::now();
        self.emit_with(|| PipelineEvent::StageStarted {
            method: method.to_string(),
            stage: Stage::Translated,
        });
        let status = translate(kernel, &outcome, &config.param_types);
        self.emit_with(|| PipelineEvent::StageFinished {
            method: method.to_string(),
            stage: Stage::Translated,
            elapsed: translate_started.elapsed(),
        });
        status
    }
}

/// The Translated stage: substitute sources into the verified
/// postcondition, translate to TOR's relational subset, and render SQL.
fn translate(
    kernel: &KernelProgram,
    outcome: &qbs_synth::SynthOutcome,
    param_types: &TypeEnv,
) -> FragmentStatus {
    // Replace source variables by their defining Query(...) retrievals so
    // the postcondition is self-contained, then translate to SQL.
    let post = substitute_sources(&outcome.post_rhs, kernel);
    let types = match qbs_kernel::typecheck(kernel, param_types) {
        Ok(t) => t,
        Err(e) => return FragmentStatus::Failed { reason: e.to_string() },
    };
    let trans = match qbs_tor::trans(&post, &types.to_type_env()) {
        Ok(t) => t,
        Err(e) => {
            // Verified but untranslatable (e.g. a bare `get` of a sorted
            // relation — the paper's category-C failures).
            return FragmentStatus::Failed {
                reason: format!("postcondition not translatable to SQL: {e}"),
            };
        }
    };
    match qbs_sql::sql_of(&trans) {
        Ok(sql) => FragmentStatus::Translated {
            sql,
            post,
            proof: outcome.proof,
            stats: outcome.stats.clone(),
        },
        Err(e) => FragmentStatus::Failed { reason: e.to_string() },
    }
}

/// Substitutes `Var(v)` by `Query(...)` for every source assignment
/// `v := Query(...)` in the program.
fn substitute_sources(post: &TorExpr, kernel: &KernelProgram) -> TorExpr {
    fn collect(stmts: &[KStmt], out: &mut Vec<(qbs_common::Ident, QuerySpec)>) {
        for s in stmts {
            match s {
                KStmt::Assign(v, KExpr::Query(spec)) => out.push((v.clone(), spec.clone())),
                KStmt::If(_, t, f) => {
                    collect(t, out);
                    collect(f, out);
                }
                KStmt::While(_, b) => collect(b, out),
                _ => {}
            }
        }
    }
    let mut sources = Vec::new();
    collect(kernel.body(), &mut sources);
    let mut cur = post.clone();
    for (v, spec) in sources {
        cur = subst_expr(&cur, &v, &TorExpr::Query(spec));
    }
    cur
}
