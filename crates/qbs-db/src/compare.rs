//! Result-set comparison under TOR semantics.
//!
//! The QBS soundness claim is stated over *ordered* relations: where the
//! translated query carries an `ORDER BY` derived from the paper's `Order`
//! function (Fig. 9), the original fragment and the SQL must agree row for
//! row. Queries whose order is not pinned (e.g. an aggregate's input) only
//! promise the same *multiset* of rows. This module provides both
//! equivalences so differential oracles can pick the right one per query.

use qbs_common::{Relation, Value};
use std::cmp::Ordering;

/// Which equality a comparison runs under.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RowsEquivalence {
    /// Row-for-row equality including order (proven-order queries).
    Ordered,
    /// Equality of the row multiset, ignoring order.
    Multiset,
}

/// The first point of disagreement between two row sets, for witness
/// reports.
#[derive(Clone, Debug, PartialEq)]
pub enum RowsDiff {
    /// The sides have different cardinalities.
    Cardinality {
        /// Rows on the left side.
        left: usize,
        /// Rows on the right side.
        right: usize,
    },
    /// Under [`RowsEquivalence::Ordered`]: the first differing position.
    RowAt {
        /// Position of the first differing row.
        index: usize,
        /// Left row values.
        left: Vec<Value>,
        /// Right row values.
        right: Vec<Value>,
    },
    /// Under [`RowsEquivalence::Multiset`]: a row whose multiplicities
    /// differ.
    Multiplicity {
        /// The row in question.
        row: Vec<Value>,
        /// Occurrences on the left side.
        left: usize,
        /// Occurrences on the right side.
        right: usize,
    },
}

impl std::fmt::Display for RowsDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RowsDiff::Cardinality { left, right } => {
                write!(f, "cardinality differs: {left} rows vs {right} rows")
            }
            RowsDiff::RowAt { index, left, right } => {
                write!(f, "row {index} differs: {left:?} vs {right:?}")
            }
            RowsDiff::Multiplicity { row, left, right } => {
                write!(f, "row {row:?} occurs {left} time(s) vs {right} time(s)")
            }
        }
    }
}

fn cmp_rows(a: &[Value], b: &[Value]) -> Ordering {
    a.len().cmp(&b.len()).then_with(|| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or(Ordering::Equal)
    })
}

/// Compares two relations row-wise under the given equivalence, ignoring
/// schemas (the two sides qualify their columns differently — the
/// interpreter under entity schemas, the executor under table aliases).
///
/// Returns `None` on agreement, or the first [`RowsDiff`] found.
pub fn rows_diff(left: &Relation, right: &Relation, eq: RowsEquivalence) -> Option<RowsDiff> {
    if left.len() != right.len() {
        return Some(RowsDiff::Cardinality { left: left.len(), right: right.len() });
    }
    match eq {
        RowsEquivalence::Ordered => {
            for (i, (a, b)) in left.iter().zip(right.iter()).enumerate() {
                if a.values() != b.values() {
                    return Some(RowsDiff::RowAt {
                        index: i,
                        left: a.values().to_vec(),
                        right: b.values().to_vec(),
                    });
                }
            }
            None
        }
        RowsEquivalence::Multiset => {
            let mut l: Vec<Vec<Value>> = left.iter().map(|r| r.values().to_vec()).collect();
            let mut r: Vec<Vec<Value>> = right.iter().map(|r| r.values().to_vec()).collect();
            l.sort_by(|a, b| cmp_rows(a, b));
            r.sort_by(|a, b| cmp_rows(a, b));
            for (a, b) in l.iter().zip(r.iter()) {
                if a != b {
                    // Count multiplicities of the first divergent row.
                    let count = |side: &[Vec<Value>], row: &[Value]| {
                        side.iter().filter(|x| x.as_slice() == row).count()
                    };
                    return Some(RowsDiff::Multiplicity {
                        row: a.clone(),
                        left: count(&l, a),
                        right: count(&r, a),
                    });
                }
            }
            None
        }
    }
}

/// True when the two relations agree under the given equivalence.
pub fn rows_agree(left: &Relation, right: &Relation, eq: RowsEquivalence) -> bool {
    rows_diff(left, right, eq).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_common::{FieldType, Record, Schema};

    fn rel(rows: &[(i64, i64)]) -> Relation {
        let s =
            Schema::builder("t").field("a", FieldType::Int).field("b", FieldType::Int).finish();
        Relation::from_records(
            s.clone(),
            rows.iter()
                .map(|(a, b)| Record::new(s.clone(), vec![Value::from(*a), Value::from(*b)]))
                .collect(),
        )
        .expect("schema matches")
    }

    #[test]
    fn ordered_catches_reordering_multiset_does_not() {
        let a = rel(&[(1, 2), (3, 4)]);
        let b = rel(&[(3, 4), (1, 2)]);
        assert!(matches!(
            rows_diff(&a, &b, RowsEquivalence::Ordered),
            Some(RowsDiff::RowAt { index: 0, .. })
        ));
        assert!(rows_agree(&a, &b, RowsEquivalence::Multiset));
    }

    #[test]
    fn multiset_catches_multiplicity_changes() {
        let a = rel(&[(1, 2), (1, 2), (3, 4)]);
        let b = rel(&[(1, 2), (3, 4), (3, 4)]);
        let diff = rows_diff(&a, &b, RowsEquivalence::Multiset).expect("differs");
        assert!(matches!(diff, RowsDiff::Multiplicity { .. }), "{diff}");
    }

    #[test]
    fn cardinality_reported_first() {
        let a = rel(&[(1, 2)]);
        let b = rel(&[]);
        for eq in [RowsEquivalence::Ordered, RowsEquivalence::Multiset] {
            assert_eq!(
                rows_diff(&a, &b, eq),
                Some(RowsDiff::Cardinality { left: 1, right: 0 })
            );
        }
    }

    #[test]
    fn agreement_across_different_schemas() {
        // Same values, schemas qualified differently: still equal.
        let a = rel(&[(1, 2)]);
        let s = Schema::builder("other")
            .field("x", FieldType::Int)
            .field("y", FieldType::Int)
            .finish();
        let b = Relation::from_records(
            s.clone(),
            vec![Record::new(s.clone(), vec![1.into(), 2.into()])],
        )
        .unwrap();
        assert!(rows_agree(&a, &b, RowsEquivalence::Ordered));
    }
}
