//! Table storage: insertion-ordered rows, hidden rowid, hash indexes.

use qbs_common::{FieldType, Ident, SchemaRef, Value};
use std::collections::HashMap;

/// A stored table.
///
/// Rows are kept in insertion order; the hidden `rowid` column (exposed to
/// queries as `<alias>.rowid`) is the insertion index — the paper's "record
/// order in the database" (Fig. 9).
#[derive(Clone, Debug)]
pub struct Table {
    schema: SchemaRef,
    rows: Vec<Vec<Value>>,
    indexes: HashMap<Ident, HashMap<Value, Vec<usize>>>,
    generation: u64,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: SchemaRef) -> Table {
        Table { schema, rows: Vec::new(), indexes: HashMap::new(), generation: 0 }
    }

    /// The table's generation counter: bumped by every [`Table::insert`]
    /// and [`Table::create_index`]. Cached physical plans record the
    /// generations of the tables they touch and replan when any of them
    /// moved — the invalidation key of the prepared-statement plan cache.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The logical schema (without `rowid`).
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The stored rows, in insertion order.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Appends a row; maintains indexes. The row's `rowid` is its position.
    ///
    /// # Panics
    ///
    /// Panics when the value count does not match the schema arity or a
    /// value's type does not match its column — inserts come from trusted
    /// generators in this workspace.
    pub fn insert(&mut self, values: Vec<Value>) {
        assert_eq!(
            values.len(),
            self.schema.arity(),
            "insert arity mismatch for {}",
            self.schema.describe()
        );
        for (v, f) in values.iter().zip(self.schema.fields()) {
            let ok = matches!(
                (v, f.ty),
                (Value::Bool(_), FieldType::Bool)
                    | (Value::Int(_), FieldType::Int)
                    | (Value::Str(_), FieldType::Str)
            );
            assert!(ok, "value {v:?} does not fit column {f}");
        }
        let rowid = self.rows.len();
        for (col, idx) in self.indexes.iter_mut() {
            let pos = self
                .schema
                .index_of(&qbs_common::FieldRef::new(col.clone()))
                .expect("indexed column exists");
            idx.entry(values[pos].clone()).or_default().push(rowid);
        }
        self.rows.push(values);
        self.generation += 1;
    }

    /// Builds (or rebuilds) a hash index on `column`.
    ///
    /// # Errors
    ///
    /// Returns the schema resolution error when the column does not exist.
    pub fn create_index(&mut self, column: &Ident) -> Result<(), qbs_common::CommonError> {
        let pos = self.schema.index_of(&qbs_common::FieldRef::new(column.clone()))?;
        let mut idx: HashMap<Value, Vec<usize>> = HashMap::new();
        for (rowid, row) in self.rows.iter().enumerate() {
            idx.entry(row[pos].clone()).or_default().push(rowid);
        }
        self.indexes.insert(column.clone(), idx);
        self.generation += 1;
        Ok(())
    }

    /// Row ids (in insertion order) whose `column` equals `value`, when an
    /// index exists.
    pub fn index_lookup(&self, column: &Ident, value: &Value) -> Option<&[usize]> {
        self.indexes.get(column).map(|idx| idx.get(value).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// True when `column` has a hash index.
    pub fn has_index(&self, column: &Ident) -> bool {
        self.indexes.contains_key(column)
    }

    /// Number of distinct keys in `column`'s hash index, when one exists —
    /// the planner's selectivity input (`len / distinct ≈` average bucket).
    pub fn index_cardinality(&self, column: &Ident) -> Option<usize> {
        self.indexes.get(column).map(HashMap::len)
    }

    /// The indexed columns, in schema order (the iteration order of the
    /// internal map is not deterministic, so callers get a stable list).
    pub fn indexed_columns(&self) -> Vec<Ident> {
        self.schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .filter(|c| self.indexes.contains_key(c))
            .collect()
    }

    /// The stored rows as an ordered [`Relation`](qbs_common::Relation)
    /// under the table's schema — the view the kernel interpreter consumes.
    pub fn relation(&self) -> qbs_common::Relation {
        let records = self
            .rows
            .iter()
            .map(|r| qbs_common::Record::new(self.schema.clone(), r.clone()))
            .collect();
        qbs_common::Relation::from_records(self.schema.clone(), records)
            .expect("stored rows satisfy the table schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_common::Schema;

    fn table() -> Table {
        Table::new(
            Schema::builder("t").field("a", FieldType::Int).field("b", FieldType::Str).finish(),
        )
    }

    #[test]
    fn insert_preserves_order() {
        let mut t = table();
        t.insert(vec![2.into(), "x".into()]);
        t.insert(vec![1.into(), "y".into()]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0][0], Value::from(2));
    }

    #[test]
    fn index_lookup_returns_rowids_in_order() {
        let mut t = table();
        t.insert(vec![1.into(), "x".into()]);
        t.insert(vec![2.into(), "y".into()]);
        t.insert(vec![1.into(), "z".into()]);
        t.create_index(&"a".into()).unwrap();
        assert_eq!(t.index_lookup(&"a".into(), &1.into()).unwrap(), &[0, 2]);
        assert_eq!(t.index_lookup(&"a".into(), &9.into()).unwrap(), &[] as &[usize]);
        assert!(t.index_lookup(&"b".into(), &"x".into()).is_none());
    }

    #[test]
    fn index_maintained_on_insert() {
        let mut t = table();
        t.create_index(&"a".into()).unwrap();
        t.insert(vec![5.into(), "x".into()]);
        assert_eq!(t.index_lookup(&"a".into(), &5.into()).unwrap(), &[0]);
    }

    #[test]
    fn generation_bumps_on_insert_and_index_build() {
        let mut t = table();
        assert_eq!(t.generation(), 0);
        t.insert(vec![1.into(), "x".into()]);
        assert_eq!(t.generation(), 1);
        t.create_index(&"a".into()).unwrap();
        assert_eq!(t.generation(), 2);
        t.insert(vec![2.into(), "y".into()]);
        assert_eq!(t.generation(), 3);
    }

    #[test]
    #[should_panic(expected = "does not fit column")]
    fn type_mismatch_panics() {
        let mut t = table();
        t.insert(vec!["oops".into(), "x".into()]);
    }
}
