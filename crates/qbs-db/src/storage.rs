//! MVCC table storage: insertion-ordered rows in immutable, `Arc`-shared
//! copy-on-write chunks, hidden rowid, per-chunk hash indexes.
//!
//! A [`Table`] value *is* a snapshot: cloning it clones a `Vec` of
//! [`Arc`]s (one per chunk), never row data. Writers
//! ([`Table::insert`], [`Table::insert_many`], [`Table::create_index`])
//! build a new chunk list — sharing every untouched chunk with the old
//! value — and bump the generation counter; readers holding an older
//! clone keep reading the rows that existed when they pinned it and never
//! observe a partial write. This is what lets a
//! [`Connection`](crate::Connection) hand whole-database snapshots to
//! concurrent statements while a writer churns inserts.
//!
//! Chunks are **columnar**: each chunk stores one typed vector per schema
//! column ([`ColumnVec`]) instead of a row-major `Vec<Vec<Value>>`. The
//! plan interpreter runs pushed filters and join-key extraction directly
//! over these column slices in batches, stitching full rows only at
//! projection time; row-at-a-time readers go through
//! [`Table::rows`] / [`Table::row`], which materialize owned rows on
//! demand.
//!
//! Single-row inserts install one-row chunks; to keep scans and index
//! probes from degrading into a per-row chunk walk, a geometric tail
//! merge (same shape as an LSM level merge) runs after every write, so a
//! table of `n` rows holds `O(log n)` chunks no matter how it was built.

use qbs_common::{FieldType, Ident, SchemaRef, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// One column of a chunk as a typed vector — the struct-of-arrays half of
/// the columnar layout. Values are unwrapped at insert time (types were
/// already checked against the schema), so scans over a column touch one
/// homogeneous `Vec` with no per-value tag dispatch.
#[derive(Debug)]
pub(crate) enum ColumnVec {
    /// A `Bool` column.
    Bool(Vec<bool>),
    /// An `Int` column.
    Int(Vec<i64>),
    /// A `Str` column (`Arc<str>` clones are refcount bumps).
    Str(Vec<Arc<str>>),
}

impl ColumnVec {
    fn with_capacity(ty: FieldType, cap: usize) -> ColumnVec {
        match ty {
            FieldType::Bool => ColumnVec::Bool(Vec::with_capacity(cap)),
            FieldType::Int => ColumnVec::Int(Vec::with_capacity(cap)),
            FieldType::Str => ColumnVec::Str(Vec::with_capacity(cap)),
        }
    }

    /// Appends a value whose type was already checked against the column.
    fn push(&mut self, v: &Value) {
        match (self, v) {
            (ColumnVec::Bool(col), Value::Bool(b)) => col.push(*b),
            (ColumnVec::Int(col), Value::Int(i)) => col.push(*i),
            (ColumnVec::Str(col), Value::Str(s)) => col.push(s.clone()),
            (col, v) => unreachable!("value {v:?} in {col:?} after schema check"),
        }
    }

    fn extend_from(&mut self, other: &ColumnVec) {
        match (self, other) {
            (ColumnVec::Bool(a), ColumnVec::Bool(b)) => a.extend_from_slice(b),
            (ColumnVec::Int(a), ColumnVec::Int(b)) => a.extend_from_slice(b),
            (ColumnVec::Str(a), ColumnVec::Str(b)) => a.extend_from_slice(b),
            (a, b) => unreachable!("merging {a:?} into {b:?} across column types"),
        }
    }

    /// The value at position `i`, re-wrapped as a [`Value`].
    pub(crate) fn value(&self, i: usize) -> Value {
        match self {
            ColumnVec::Bool(col) => Value::Bool(col[i]),
            ColumnVec::Int(col) => Value::Int(col[i]),
            ColumnVec::Str(col) => Value::Str(col[i].clone()),
        }
    }
}

/// An immutable run of consecutive rows, stored column-major. Never
/// mutated after creation — snapshots share chunks by reference.
#[derive(Debug)]
pub(crate) struct Chunk {
    /// Global rowid of the first row (fixed at creation: rows are only
    /// ever appended after existing ones, so a chunk's position in the
    /// table never moves).
    base: usize,
    /// Number of rows (every column vector has this length).
    len: usize,
    /// One typed vector per schema column.
    cols: Vec<ColumnVec>,
}

impl Chunk {
    /// Transposes row-major input (already schema-checked) into a
    /// columnar chunk.
    fn from_rows(base: usize, schema: &SchemaRef, rows: Vec<Vec<Value>>) -> Chunk {
        let mut cols: Vec<ColumnVec> = schema
            .fields()
            .iter()
            .map(|f| ColumnVec::with_capacity(f.ty, rows.len()))
            .collect();
        for row in &rows {
            for (col, v) in cols.iter_mut().zip(row) {
                col.push(v);
            }
        }
        Chunk { base, len: rows.len(), cols }
    }

    /// Global rowid of the first row.
    pub(crate) fn base(&self) -> usize {
        self.base
    }

    /// Number of rows in the chunk.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The typed vector of column `pos` (schema order).
    pub(crate) fn col(&self, pos: usize) -> &ColumnVec {
        &self.cols[pos]
    }

    /// Materializes row `i` (chunk-local index) as an owned row.
    pub(crate) fn row_values(&self, i: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.value(i)).collect()
    }
}

/// Per-column hash index, chunk-aligned: one immutable map per chunk from
/// value to the **global** rowids (ascending) holding it. A write only
/// builds the map for the chunk it installs; the maps of shared chunks
/// are shared right along with them.
type ColumnIndex = Vec<Arc<HashMap<Value, Vec<usize>>>>;

/// A stored table — and, because clones share all row data, a snapshot.
///
/// Rows are kept in insertion order; the hidden `rowid` column (exposed to
/// queries as `<alias>.rowid`) is the insertion index — the paper's "record
/// order in the database" (Fig. 9).
#[derive(Clone, Debug)]
pub struct Table {
    schema: SchemaRef,
    chunks: Vec<Arc<Chunk>>,
    len: usize,
    indexes: BTreeMap<Ident, ColumnIndex>,
    generation: u64,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: SchemaRef) -> Table {
        Table { schema, chunks: Vec::new(), len: 0, indexes: BTreeMap::new(), generation: 0 }
    }

    /// The table's generation counter: bumped by every [`Table::insert`],
    /// [`Table::insert_many`] (once per call, however many rows), and
    /// [`Table::create_index`]. Cached physical plans record the
    /// generations of the tables they touch and replan when any of them
    /// moved — the invalidation key of the prepared-statement plan cache.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The logical schema (without `rowid`).
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of storage chunks (diagnostics; bounded at `O(log n)` by
    /// the tail merge).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The storage chunks, in rowid order — the executor's entry point
    /// for columnar scans.
    pub(crate) fn chunks(&self) -> &[Arc<Chunk>] {
        &self.chunks
    }

    /// The stored rows, in insertion order (rowid order), materialized
    /// from the columnar chunks on demand.
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        self.chunks.iter().flat_map(|c| (0..c.len).map(move |i| c.row_values(i)))
    }

    /// The row at `rowid`, when in bounds, materialized from its chunk.
    pub fn row(&self, rowid: usize) -> Option<Vec<Value>> {
        if rowid >= self.len {
            return None;
        }
        let i = self.chunks.partition_point(|c| c.base <= rowid).checked_sub(1)?;
        let chunk = &self.chunks[i];
        (rowid - chunk.base < chunk.len).then(|| chunk.row_values(rowid - chunk.base))
    }

    fn check_row(&self, values: &[Value]) {
        assert_eq!(
            values.len(),
            self.schema.arity(),
            "insert arity mismatch for {}",
            self.schema.describe()
        );
        for (v, f) in values.iter().zip(self.schema.fields()) {
            let ok = matches!(
                (v, f.ty),
                (Value::Bool(_), FieldType::Bool)
                    | (Value::Int(_), FieldType::Int)
                    | (Value::Str(_), FieldType::Str)
            );
            assert!(ok, "value {v:?} does not fit column {f}");
        }
    }

    /// Appends a row as a new copy-on-write chunk; maintains indexes. The
    /// row's `rowid` is its position. Clones taken before the call keep
    /// seeing the table without it.
    ///
    /// # Panics
    ///
    /// Panics when the value count does not match the schema arity or a
    /// value's type does not match its column — inserts come from trusted
    /// generators in this workspace.
    pub fn insert(&mut self, values: Vec<Value>) {
        self.check_row(&values);
        self.install_chunk(vec![values]);
        self.generation += 1;
    }

    /// Appends many rows as **one** new chunk, bumping the generation
    /// **once** — so bulk loads (datagen, benchmark setup) trigger one
    /// plan invalidation instead of one per row, and concurrent readers
    /// see either none or all of the batch. An empty batch is a no-op
    /// (no chunk, no generation bump).
    ///
    /// # Panics
    ///
    /// As [`Table::insert`], per row.
    pub fn insert_many(&mut self, rows: Vec<Vec<Value>>) {
        if rows.is_empty() {
            return;
        }
        for r in &rows {
            self.check_row(r);
        }
        self.install_chunk(rows);
        self.generation += 1;
    }

    /// Installs `rows` as a fresh columnar chunk, extends every column
    /// index with the chunk's map, and runs the geometric tail merge.
    fn install_chunk(&mut self, rows: Vec<Vec<Value>>) {
        let base = self.len;
        self.len += rows.len();
        let chunk = Chunk::from_rows(base, &self.schema, rows);
        for (col, idx) in self.indexes.iter_mut() {
            let pos = self
                .schema
                .index_of(&qbs_common::FieldRef::new(col.clone()))
                .expect("indexed column exists");
            idx.push(Arc::new(chunk_index(&chunk, pos)));
        }
        self.chunks.push(Arc::new(chunk));
        // Geometric tail merge: while the last chunk has grown at least as
        // large as its predecessor, fold the two into one freshly built
        // chunk (snapshots keep the originals). Sizes then fall strictly,
        // like a binary counter, bounding the chunk count at O(log n) with
        // amortized O(log n) row copies per insert.
        while self.chunks.len() >= 2 {
            let last = self.chunks[self.chunks.len() - 1].len;
            let prev = self.chunks[self.chunks.len() - 2].len;
            if last < prev {
                break;
            }
            let b = self.chunks.pop().expect("two chunks");
            let a = self.chunks.pop().expect("two chunks");
            // Column-wise concatenation: each merged column is one typed
            // extend, never a row-at-a-time rebuild.
            let mut cols: Vec<ColumnVec> = self
                .schema
                .fields()
                .iter()
                .map(|f| ColumnVec::with_capacity(f.ty, a.len + b.len))
                .collect();
            for (pos, col) in cols.iter_mut().enumerate() {
                col.extend_from(a.col(pos));
                col.extend_from(b.col(pos));
            }
            let merged = Arc::new(Chunk { base: a.base, len: a.len + b.len, cols });
            for (col, idx) in self.indexes.iter_mut() {
                let pos = self
                    .schema
                    .index_of(&qbs_common::FieldRef::new(col.clone()))
                    .expect("indexed column exists");
                idx.pop();
                idx.pop();
                idx.push(Arc::new(chunk_index(&merged, pos)));
            }
            self.chunks.push(merged);
        }
    }

    /// Builds (or rebuilds) a hash index on `column`.
    ///
    /// # Errors
    ///
    /// Returns the schema resolution error when the column does not exist.
    pub fn create_index(&mut self, column: &Ident) -> Result<(), qbs_common::CommonError> {
        let pos = self.schema.index_of(&qbs_common::FieldRef::new(column.clone()))?;
        let idx = self.chunks.iter().map(|c| Arc::new(chunk_index(c, pos))).collect();
        self.indexes.insert(column.clone(), idx);
        self.generation += 1;
        Ok(())
    }

    /// Row ids (in insertion order) whose `column` equals `value`, when an
    /// index exists. Per-chunk maps are probed in chunk order; each map's
    /// rowids are ascending and chunks are disjoint ascending ranges, so
    /// the concatenation is insertion order.
    pub fn index_lookup(&self, column: &Ident, value: &Value) -> Option<Vec<usize>> {
        let idx = self.indexes.get(column)?;
        let mut out = Vec::new();
        for map in idx {
            if let Some(rowids) = map.get(value) {
                out.extend_from_slice(rowids);
            }
        }
        Some(out)
    }

    /// True when `column` has a hash index.
    pub fn has_index(&self, column: &Ident) -> bool {
        self.indexes.contains_key(column)
    }

    /// Number of distinct keys in `column`'s hash index, when one exists —
    /// the planner's selectivity input (`len / distinct ≈` average bucket).
    /// Exact across chunks (a key present in several chunks counts once).
    pub fn index_cardinality(&self, column: &Ident) -> Option<usize> {
        let idx = self.indexes.get(column)?;
        if idx.len() == 1 {
            return Some(idx[0].len());
        }
        let mut distinct: std::collections::HashSet<&Value> = std::collections::HashSet::new();
        for map in idx {
            distinct.extend(map.keys());
        }
        Some(distinct.len())
    }

    /// The indexed columns, in schema order (the iteration order of the
    /// internal map is not deterministic, so callers get a stable list).
    pub fn indexed_columns(&self) -> Vec<Ident> {
        self.schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .filter(|c| self.indexes.contains_key(c))
            .collect()
    }

    /// The stored rows as an ordered [`Relation`](qbs_common::Relation)
    /// under the table's schema — the view the kernel interpreter consumes.
    pub fn relation(&self) -> qbs_common::Relation {
        let records =
            self.rows().map(|r| qbs_common::Record::new(self.schema.clone(), r)).collect();
        qbs_common::Relation::from_records(self.schema.clone(), records)
            .expect("stored rows satisfy the table schema")
    }
}

/// The per-chunk index map for one column: value → ascending global
/// rowids, read straight off the chunk's typed column vector.
fn chunk_index(chunk: &Chunk, pos: usize) -> HashMap<Value, Vec<usize>> {
    let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
    let col = chunk.col(pos);
    for i in 0..chunk.len {
        map.entry(col.value(i)).or_default().push(chunk.base + i);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_common::Schema;

    fn table() -> Table {
        Table::new(
            Schema::builder("t").field("a", FieldType::Int).field("b", FieldType::Str).finish(),
        )
    }

    #[test]
    fn insert_preserves_order() {
        let mut t = table();
        t.insert(vec![2.into(), "x".into()]);
        t.insert(vec![1.into(), "y".into()]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(0).unwrap()[0], Value::from(2));
        let firsts: Vec<Value> = t.rows().map(|r| r[0].clone()).collect();
        assert_eq!(firsts, vec![Value::from(2), Value::from(1)]);
    }

    #[test]
    fn chunks_are_columnar_and_typed() {
        let mut t = table();
        t.insert_many((0..4i64).map(|i| vec![i.into(), format!("r{i}").into()]).collect());
        assert_eq!(t.chunk_count(), 1);
        let chunk = &t.chunks()[0];
        assert_eq!(chunk.len(), 4);
        match chunk.col(0) {
            ColumnVec::Int(col) => assert_eq!(col, &vec![0, 1, 2, 3]),
            other => panic!("Int column stored as {other:?}"),
        }
        match chunk.col(1) {
            ColumnVec::Str(col) => assert_eq!(col.len(), 4),
            other => panic!("Str column stored as {other:?}"),
        }
        assert_eq!(chunk.row_values(2), vec![Value::from(2), "r2".into()]);
    }

    #[test]
    fn index_lookup_returns_rowids_in_order() {
        let mut t = table();
        t.insert(vec![1.into(), "x".into()]);
        t.insert(vec![2.into(), "y".into()]);
        t.insert(vec![1.into(), "z".into()]);
        t.create_index(&"a".into()).unwrap();
        assert_eq!(t.index_lookup(&"a".into(), &1.into()).unwrap(), vec![0, 2]);
        assert_eq!(t.index_lookup(&"a".into(), &9.into()).unwrap(), Vec::<usize>::new());
        assert!(t.index_lookup(&"b".into(), &"x".into()).is_none());
    }

    #[test]
    fn index_maintained_on_insert() {
        let mut t = table();
        t.create_index(&"a".into()).unwrap();
        t.insert(vec![5.into(), "x".into()]);
        assert_eq!(t.index_lookup(&"a".into(), &5.into()).unwrap(), vec![0]);
    }

    #[test]
    fn index_survives_tail_merges() {
        let mut t = table();
        t.create_index(&"a".into()).unwrap();
        for i in 0..100i64 {
            t.insert(vec![(i % 7).into(), format!("r{i}").into()]);
        }
        let hits = t.index_lookup(&"a".into(), &3.into()).unwrap();
        let expect: Vec<usize> = (0..100).filter(|i| i % 7 == 3).collect();
        assert_eq!(hits, expect);
        assert_eq!(t.index_cardinality(&"a".into()), Some(7));
    }

    #[test]
    fn generation_bumps_on_insert_and_index_build() {
        let mut t = table();
        assert_eq!(t.generation(), 0);
        t.insert(vec![1.into(), "x".into()]);
        assert_eq!(t.generation(), 1);
        t.create_index(&"a".into()).unwrap();
        assert_eq!(t.generation(), 2);
        t.insert(vec![2.into(), "y".into()]);
        assert_eq!(t.generation(), 3);
    }

    #[test]
    fn insert_many_installs_one_chunk_and_bumps_once() {
        let mut t = table();
        t.create_index(&"a".into()).unwrap();
        assert_eq!(t.generation(), 1);
        t.insert_many((0..50i64).map(|i| vec![i.into(), format!("r{i}").into()]).collect());
        assert_eq!(t.generation(), 2, "one bump for the whole batch");
        assert_eq!(t.len(), 50);
        assert_eq!(t.chunk_count(), 1);
        assert_eq!(t.index_lookup(&"a".into(), &7.into()).unwrap(), vec![7]);
        // Empty batches change nothing at all.
        t.insert_many(Vec::new());
        assert_eq!(t.generation(), 2);
    }

    #[test]
    fn clones_are_snapshots_sharing_chunks() {
        let mut t = table();
        t.insert_many((0..8i64).map(|i| vec![i.into(), "x".into()]).collect());
        let snap = t.clone();
        t.insert(vec![99.into(), "y".into()]);
        t.insert_many(vec![vec![100.into(), "z".into()]]);
        // The snapshot still reads exactly the rows that existed.
        assert_eq!(snap.len(), 8);
        assert_eq!(t.len(), 10);
        assert!(snap.row(8).is_none());
        // And the first chunk is shared by reference, not copied.
        assert!(Arc::ptr_eq(&snap.chunks[0], &t.chunks[0]));
    }

    #[test]
    fn tail_merge_bounds_chunk_count_logarithmically() {
        let mut t = table();
        for i in 0..1000i64 {
            t.insert(vec![i.into(), "x".into()]);
        }
        assert!(t.chunk_count() <= 11, "chunks: {}", t.chunk_count());
        // Every row is still addressable and in order.
        assert_eq!(t.len(), 1000);
        for i in 0..1000usize {
            assert_eq!(t.row(i).unwrap()[0], Value::from(i as i64));
        }
        assert_eq!(t.rows().count(), 1000);
    }

    #[test]
    #[should_panic(expected = "does not fit column")]
    fn type_mismatch_panics() {
        let mut t = table();
        t.insert(vec!["oops".into(), "x".into()]);
    }

    #[test]
    #[should_panic(expected = "does not fit column")]
    fn insert_many_type_mismatch_panics_before_installing() {
        let mut t = table();
        t.insert_many(vec![vec![1.into(), "ok".into()], vec!["oops".into(), "x".into()]]);
    }
}
