//! The plan bytecode VM: [`PhysicalPlan`] lowered to a straight-line
//! register program, executed by one dispatch loop.
//!
//! The tree-walking interpreter ([`Database::execute_plan_with`] and
//! friends) re-derives a pile of per-execute decisions every call: the
//! LIMIT/OFFSET shapes, whether the limit can be pushed into the scan,
//! whether the projection fuses into the last operator, whether each scan
//! takes the vectorized columnar path, and — most expensively — the
//! [`ColKernel`] compilation of every pushed filter. All of those are
//! functions of the plan and the config alone, so [`compile_plan`] runs
//! them once and records the answers in a [`PlanProgram`]: a flat
//! [`Program`] of operator-granularity [`PlanOp`]s over frame registers,
//! plus the pre-resolved scan kernels, join strategies, and paging shape.
//! [`PlanProgram::run`] is then a single `for`-loop over opcodes whose
//! data work delegates to the *same* executor primitives the interpreter
//! uses (`scan_node`, `hash_join`, `filter`, `sort`, `distinct`), so rows
//! and [`ExecStats`] are identical by construction.
//!
//! Compilation declines (returns `None`) for the shapes whose execution
//! is dynamic by nature — no `FROM`, an unresolved projection, a
//! non-constant non-parameter LIMIT/OFFSET — and for
//! [`PlanConfig::force_interpreter`] (handled by the callers); those
//! statements keep the interpreter, which stays the differential
//! baseline for the oracle and the equivalence suite.
//!
//! Per-opcode dispatch counts and compile times land in this crate's
//! [`vm_metrics`] registry (`vm.dispatch.<op>`, `vm.compile_ns`,
//! `vm.compile.plans`, `vm.compile.kernels`).

use crate::db::{
    finish_frame, ColKernel, Database, DbError, Params, ScanKernel, SelectOutput, SubqueryState,
};
use crate::exec::{
    self, distinct, filter, hash_join, nested_loop_join, sort, sort_positions, EvalCtx,
    ExecStats, Frame, FrameCol, JoinLayout,
};
use crate::planner::{JoinAlgorithm, PhysicalPlan, PlanConfig, ScanSource};
use qbs_common::{Ident, OpCode, Program, SchemaRef, Value};
use qbs_obs::{Counter, Histogram, Metrics};
use qbs_sql::SqlExpr;
use qbs_tor::CmpOp;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// One instruction of a compiled plan. Registers hold executor
/// [`Frame`]s; indices into the plan's scan/join vectors identify the
/// node an instruction executes.
#[derive(Clone, Debug)]
pub(crate) enum PlanOp {
    /// Run scan `node` with its pre-resolved kernel into register `dst`.
    Scan { node: usize, dst: usize },
    /// Join registers `left` and `right` via join step `step` into `dst`;
    /// `emit` fuses the statement projection into the join output.
    Join { step: usize, left: usize, right: usize, dst: usize, emit: bool },
    /// Apply the plan's residual predicate to `reg`.
    Residual { reg: usize },
    /// Hash-aggregate `reg` (grouped keys then `#agg<i>` columns) and
    /// apply the plan's rewritten HAVING filter to the grouped output.
    Aggregate { reg: usize },
    /// Sort `reg` by the compile-time-resolved ORDER BY spec.
    Sort { reg: usize },
    /// Apply OFFSET/LIMIT to `reg` (the non-DISTINCT placement, before
    /// projection).
    PageEarly { reg: usize },
    /// Apply the statically resolved projection to `reg`.
    Project { reg: usize },
    /// Deduplicate `reg`.
    Distinct { reg: usize },
    /// Apply OFFSET/LIMIT to `reg` (the DISTINCT placement, after dedup).
    PageLate { reg: usize },
    /// Finish: flush dispatch counters and return `reg`.
    Ret { reg: usize },
}

impl OpCode for PlanOp {
    const NAMES: &'static [&'static str] = &[
        "scan",
        "join",
        "residual",
        "aggregate",
        "sort",
        "page_early",
        "project",
        "distinct",
        "page_late",
        "ret",
    ];

    fn index(&self) -> usize {
        match self {
            PlanOp::Scan { .. } => 0,
            PlanOp::Join { .. } => 1,
            PlanOp::Residual { .. } => 2,
            PlanOp::Aggregate { .. } => 3,
            PlanOp::Sort { .. } => 4,
            PlanOp::PageEarly { .. } => 5,
            PlanOp::Project { .. } => 6,
            PlanOp::Distinct { .. } => 7,
            PlanOp::PageLate { .. } => 8,
            PlanOp::Ret { .. } => 9,
        }
    }
}

/// A LIMIT/OFFSET operand with its shape resolved at compile time. Only
/// the shapes the interpreter supports are representable; anything else
/// declines compilation (and the interpreter owns the runtime error).
#[derive(Clone, Debug)]
enum PageParam {
    Absent,
    Const(usize),
    Param(Ident),
}

impl PageParam {
    fn of(e: Option<&SqlExpr>) -> Option<PageParam> {
        match e {
            None => Some(PageParam::Absent),
            Some(SqlExpr::Lit(Value::Int(n))) => Some(PageParam::Const((*n).max(0) as usize)),
            Some(SqlExpr::Param(p)) => Some(PageParam::Param(p.clone())),
            Some(_) => None,
        }
    }

    fn is_absent(&self) -> bool {
        matches!(self, PageParam::Absent)
    }

    /// Resolves against this execution's bindings. `what` names the
    /// clause in the unbound-parameter error, matching the interpreter's
    /// message exactly.
    fn resolve(&self, params: &Params, what: &str) -> Result<Option<usize>, DbError> {
        match self {
            PageParam::Absent => Ok(None),
            PageParam::Const(n) => Ok(Some(*n)),
            PageParam::Param(p) => {
                let n = params
                    .get(p)
                    .and_then(Value::as_int)
                    .ok_or_else(|| DbError::Exec(format!("unbound {what} parameter :{p}")))?;
                Ok(Some(n.max(0) as usize))
            }
        }
    }
}

/// The scan strategy chosen at compile time for one scan node — what the
/// interpreter re-decides (and re-compiles) on every execute.
#[derive(Debug)]
pub(crate) enum KernelChoice {
    /// Vectorized, no filter: every row survives.
    AllRows,
    /// Vectorized with a fully compiled, parameter-free kernel — compiled
    /// once here instead of once per execute.
    Ready(ColKernel),
    /// Vectorized filter whose comparisons reference bind parameters:
    /// columns are resolved, only the parameter values are substituted
    /// per execute. An unbound parameter falls back to the row path,
    /// exactly as the interpreter's per-execute compilation would.
    Template(KernelTemplate),
    /// Row-at-a-time (probe, pushed limit, `force_row_store`, or a filter
    /// outside the kernel grammar).
    Row,
}

/// A [`ColKernel`] with parameter references left symbolic.
#[derive(Debug)]
pub(crate) enum KernelTemplate {
    Cmp { pos: usize, op: CmpOp, rhs: RhsTemplate },
    And(Vec<KernelTemplate>),
    Or(Vec<KernelTemplate>),
    Not(Box<KernelTemplate>),
}

#[derive(Debug)]
pub(crate) enum RhsTemplate {
    Const(Value),
    Param(Ident),
}

impl KernelTemplate {
    fn has_params(&self) -> bool {
        match self {
            KernelTemplate::Cmp { rhs, .. } => matches!(rhs, RhsTemplate::Param(_)),
            KernelTemplate::And(ps) | KernelTemplate::Or(ps) => {
                ps.iter().any(KernelTemplate::has_params)
            }
            KernelTemplate::Not(x) => x.has_params(),
        }
    }

    /// Substitutes this execution's bindings; `None` (some parameter is
    /// unbound) means "use the row path", matching what the interpreter's
    /// per-execute [`compile_kernel`](crate::db::compile_kernel) would decide.
    fn instantiate(&self, params: &Params) -> Option<ColKernel> {
        match self {
            KernelTemplate::Cmp { pos, op, rhs } => {
                let rhs = match rhs {
                    RhsTemplate::Const(v) => v.clone(),
                    RhsTemplate::Param(p) => params.get(p).cloned()?,
                };
                Some(ColKernel::Cmp { pos: *pos, op: *op, rhs })
            }
            KernelTemplate::And(ps) => ps
                .iter()
                .map(|p| p.instantiate(params))
                .collect::<Option<Vec<_>>>()
                .map(ColKernel::And),
            KernelTemplate::Or(ps) => ps
                .iter()
                .map(|p| p.instantiate(params))
                .collect::<Option<Vec<_>>>()
                .map(ColKernel::Or),
            KernelTemplate::Not(x) => {
                x.instantiate(params).map(|k| ColKernel::Not(Box::new(k)))
            }
        }
    }
}

enum TemplateOperand {
    Col(usize),
    Const(Value),
    Param(Ident),
}

fn template_operand(e: &SqlExpr, shell: &Frame) -> Option<TemplateOperand> {
    match e {
        SqlExpr::Column { qualifier, name } => {
            shell.resolve(qualifier.as_ref(), name).map(TemplateOperand::Col)
        }
        SqlExpr::Lit(v) => Some(TemplateOperand::Const(v.clone())),
        SqlExpr::Param(p) => Some(TemplateOperand::Param(p.clone())),
        _ => None,
    }
}

/// [`compile_kernel`](crate::db::compile_kernel) with bind parameters kept symbolic: the grammar is
/// identical (column-vs-constant comparisons under AND/OR/NOT), so any
/// filter this declines would also keep the interpreter on the row path.
fn compile_template(e: &SqlExpr, shell: &Frame) -> Option<KernelTemplate> {
    match e {
        SqlExpr::Cmp(a, op, b) => {
            match (template_operand(a, shell)?, template_operand(b, shell)?) {
                (TemplateOperand::Col(pos), TemplateOperand::Const(v)) => {
                    Some(KernelTemplate::Cmp { pos, op: *op, rhs: RhsTemplate::Const(v) })
                }
                (TemplateOperand::Col(pos), TemplateOperand::Param(p)) => {
                    Some(KernelTemplate::Cmp { pos, op: *op, rhs: RhsTemplate::Param(p) })
                }
                (TemplateOperand::Const(v), TemplateOperand::Col(pos)) => {
                    Some(KernelTemplate::Cmp { pos, op: op.flip(), rhs: RhsTemplate::Const(v) })
                }
                (TemplateOperand::Param(p), TemplateOperand::Col(pos)) => {
                    Some(KernelTemplate::Cmp { pos, op: op.flip(), rhs: RhsTemplate::Param(p) })
                }
                _ => None,
            }
        }
        SqlExpr::And(ps) if !ps.is_empty() => {
            let parts: Vec<KernelTemplate> =
                ps.iter().map(|p| compile_template(p, shell)).collect::<Option<_>>()?;
            Some(KernelTemplate::And(parts))
        }
        SqlExpr::Or(ps) if !ps.is_empty() => {
            let parts: Vec<KernelTemplate> =
                ps.iter().map(|p| compile_template(p, shell)).collect::<Option<_>>()?;
            Some(KernelTemplate::Or(parts))
        }
        SqlExpr::Not(x) => Some(KernelTemplate::Not(Box::new(compile_template(x, shell)?))),
        _ => None,
    }
}

/// The ORDER BY strategy resolved at compile time.
#[derive(Clone, Debug)]
enum SortSpec {
    /// Every key is a plain column resolved against the pre-sort layout:
    /// rows sort in place comparing key positions, skipping the
    /// interpreter's per-row key evaluation and decoration.
    Cols(Vec<(usize, bool)>),
    /// Fallback for computed or unresolvable keys: the interpreter's
    /// decorate-and-sort, with the key expressions pre-cloned (and any
    /// evaluation error surfacing exactly as the interpreter's would).
    Exprs(Vec<(SqlExpr, bool)>),
}

/// The join strategy resolved at compile time for one join step.
#[derive(Clone, Debug)]
enum JoinSpec {
    /// Hash join on plan-resolved key positions.
    HashIdx(usize, usize),
    /// Hash join with per-row key expression evaluation.
    HashExpr,
    /// Nested-loop join.
    Loop,
}

/// A compiled plan: the opcode vector plus everything the interpreter
/// used to re-derive per execute. Cached on `PreparedStatement` next to
/// the plan it was compiled from and invalidated with it.
#[derive(Debug)]
pub struct PlanProgram {
    plan: Arc<PhysicalPlan>,
    code: Program<PlanOp>,
    kernels: Vec<KernelChoice>,
    joins: Vec<JoinSpec>,
    /// Per-step output/pair layouts, precomputed when every input layout
    /// is a compile-time fact (`None` keeps the per-execute derivation).
    join_layouts: Vec<Option<JoinLayout>>,
    limit: PageParam,
    offset: PageParam,
    /// The single-scan shape allows pushing LIMIT+OFFSET into the scan.
    scan_limit: bool,
    /// The single-scan fused shape materializes scan rows in output shape.
    scan_emit: bool,
    sort: SortSpec,
    /// Per-opcode dispatch counts, precomputed: plan programs are
    /// straight-line (no branches), so every run dispatches exactly the
    /// ops in `code` — the tally is a compile-time constant and the run
    /// loop only flushes it, never counts.
    dispatch_counts: Vec<(usize, u64)>,
}

impl PlanProgram {
    /// Number of instructions (exposed for tests and reporting).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the program has no instructions (never, for a compiled
    /// plan — present for the conventional pair with [`PlanProgram::len`]).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Executes the program against `db`. One loop, no tree walking: every
    /// opcode's data work calls the same executor primitive the
    /// interpreter would, so rows and [`ExecStats`] match it exactly.
    #[allow(clippy::too_many_arguments)] // mirrors the interpreter's internal plumbing
    pub(crate) fn run(
        &self,
        db: &Database,
        params: &Params,
        ctx: &EvalCtx<'_>,
        stats: &mut ExecStats,
        shared: &SubqueryState,
        version: u64,
    ) -> Result<Frame, DbError> {
        let plan = &*self.plan;
        let limit_n = self.limit.resolve(params, "LIMIT")?;
        let offset_n = self.offset.resolve(params, "OFFSET")?.unwrap_or(0);
        let scan_limit =
            if self.scan_limit { limit_n.map(|n| n.saturating_add(offset_n)) } else { None };
        let scan_emit = if self.scan_emit {
            Some(plan.projection.as_ref().expect("compiled plans have projections"))
        } else {
            None
        };

        // Registers live on the stack for the common arities; only
        // wide-join programs pay a heap allocation per run.
        let mut stack_regs: [Option<Frame>; 8] = Default::default();
        let mut heap_regs: Vec<Option<Frame>>;
        let regs: &mut [Option<Frame>] = if self.code.regs <= stack_regs.len() {
            &mut stack_regs[..self.code.regs]
        } else {
            heap_regs = (0..self.code.regs).map(|_| None).collect();
            &mut heap_regs
        };
        for op in &self.code.ops {
            match op {
                PlanOp::Scan { node, dst } => {
                    let instantiated;
                    let kernel = match &self.kernels[*node] {
                        KernelChoice::Row => ScanKernel::Row,
                        KernelChoice::AllRows => ScanKernel::Vector(None),
                        KernelChoice::Ready(k) => ScanKernel::Vector(Some(k)),
                        KernelChoice::Template(t) => match t.instantiate(params) {
                            Some(k) => {
                                instantiated = k;
                                ScanKernel::Vector(Some(&instantiated))
                            }
                            None => ScanKernel::Row,
                        },
                    };
                    let frame = db.scan_node(
                        &plan.scans[*node],
                        params,
                        ctx,
                        stats,
                        shared,
                        version,
                        scan_limit,
                        scan_emit,
                        kernel,
                    )?;
                    regs[*dst] = Some(frame);
                }
                PlanOp::Join { step, left, right, dst, emit } => {
                    let s = &plan.joins[*step];
                    let l = regs[*left].take().expect("left operand scanned");
                    let r = regs[*right].take().expect("right operand scanned");
                    let emit = (*emit)
                        .then(|| plan.projection.as_ref().expect("compiled plans project"));
                    let layout = self.join_layouts[*step].as_ref();
                    let out = match &self.joins[*step] {
                        JoinSpec::HashIdx(li, ri) => hash_join(
                            l,
                            r,
                            exec::JoinKey::Idx(*li),
                            exec::JoinKey::Idx(*ri),
                            s.residual.as_ref(),
                            emit,
                            layout,
                            ctx,
                            stats,
                        )?,
                        JoinSpec::HashExpr => {
                            let (lk, rk) = s.key.as_ref().expect("hash join keyed");
                            hash_join(
                                l,
                                r,
                                exec::JoinKey::Expr(lk),
                                exec::JoinKey::Expr(rk),
                                s.residual.as_ref(),
                                emit,
                                layout,
                                ctx,
                                stats,
                            )?
                        }
                        JoinSpec::Loop => nested_loop_join(
                            l,
                            r,
                            s.residual.as_ref(),
                            emit,
                            layout,
                            ctx,
                            stats,
                        )?,
                    };
                    regs[*dst] = Some(out);
                }
                PlanOp::Residual { reg } => {
                    let f = regs[*reg].take().expect("pipeline register filled");
                    let pred = plan.residual.as_ref().expect("residual op implies predicate");
                    regs[*reg] = Some(filter(f, pred, ctx)?);
                }
                PlanOp::Aggregate { reg } => {
                    let f = regs[*reg].take().expect("pipeline register filled");
                    let agg = plan.aggregate.as_ref().expect("aggregate op implies node");
                    let mut out = exec::hash_aggregate(f, agg, ctx)?;
                    if let Some(h) = &agg.having {
                        out = filter(out, h, ctx)?;
                    }
                    regs[*reg] = Some(out);
                }
                PlanOp::Sort { reg } => {
                    let f = regs[*reg].take().expect("pipeline register filled");
                    regs[*reg] = Some(match &self.sort {
                        SortSpec::Cols(keys) => sort_positions(f, keys),
                        SortSpec::Exprs(keys) => sort(f, keys, ctx)?,
                    });
                }
                PlanOp::PageEarly { reg } | PlanOp::PageLate { reg } => {
                    let f = regs[*reg].as_mut().expect("pipeline register filled");
                    if offset_n > 0 {
                        f.rows.drain(..offset_n.min(f.rows.len()));
                    }
                    if let Some(n) = limit_n {
                        f.rows.truncate(n);
                    }
                }
                PlanOp::Project { reg } => {
                    let f = regs[*reg].take().expect("pipeline register filled");
                    let (cols, idx) = plan.projection.as_ref().expect("compiled plans project");
                    let rows = f
                        .rows
                        .into_iter()
                        .map(|r| idx.iter().map(|&i| r[i].clone()).collect())
                        .collect();
                    regs[*reg] = Some(Frame { cols: cols.clone(), rows });
                }
                PlanOp::Distinct { reg } => {
                    let f = regs[*reg].take().expect("pipeline register filled");
                    regs[*reg] = Some(distinct(f));
                }
                PlanOp::Ret { reg } => {
                    let ins = instruments();
                    for (i, n) in &self.dispatch_counts {
                        ins.dispatch[*i].add(*n);
                    }
                    return Ok(regs[*reg].take().expect("pipeline register filled"));
                }
            }
        }
        unreachable!("plan programs end with Ret")
    }
}

/// Compiles a plan into a [`PlanProgram`], or `None` when the plan's
/// shape needs the interpreter (no `FROM`, dynamic projection, or a
/// LIMIT/OFFSET outside the constant/parameter shapes). Observes
/// `vm.compile_ns` and the `vm.compile.*` counters.
pub(crate) fn compile_plan(
    plan: &Arc<PhysicalPlan>,
    config: &PlanConfig,
) -> Option<PlanProgram> {
    let started = Instant::now();
    let built = build_program(plan, config);
    let ins = instruments();
    ins.compile_ns.observe(started.elapsed().as_nanos() as u64);
    if let Some(p) = &built {
        ins.compiled_plans.inc();
        let kernels = p
            .kernels
            .iter()
            .filter(|k| matches!(k, KernelChoice::Ready(_) | KernelChoice::Template(_)))
            .count();
        ins.compiled_kernels.add(kernels as u64);
    }
    built
}

fn build_program(plan: &Arc<PhysicalPlan>, config: &PlanConfig) -> Option<PlanProgram> {
    // "Query without FROM" and dynamically resolved projections keep the
    // interpreter: the former is a runtime error it owns, the latter
    // carries runtime resolution (and its errors) the VM does not model.
    if plan.scans.is_empty() || plan.projection.is_none() {
        return None;
    }
    let limit = PageParam::of(plan.limit.as_ref())?;
    let offset = PageParam::of(plan.offset.as_ref())?;

    // The same shape analyses the interpreter performs per execute, done
    // once. `scan_limit` here records only whether the *shape* allows the
    // pushdown; the pushed value still depends on this execution's
    // bindings, resolved in `run`.
    let scan_limit = plan.scans.len() == 1
        && plan.joins.is_empty()
        && plan.residual.is_none()
        && plan.aggregate.is_none()
        && plan.order_by.is_empty()
        && !plan.distinct;
    let fused = plan.residual.is_none() && plan.aggregate.is_none() && plan.order_by.is_empty();
    let scan_emit = fused && plan.scans.len() == 1;
    // When the shape pushes a limit the scan must run row-at-a-time (the
    // "stop at the k-th match" contract); a present LIMIT always resolves
    // to a pushed value in that shape, so the choice is static.
    let pushes_limit = scan_limit && !limit.is_absent();

    let kernels: Vec<KernelChoice> = plan
        .scans
        .iter()
        .map(|node| {
            if matches!(node.source, ScanSource::Subquery { .. })
                || node.probe.is_some()
                || pushes_limit
                || config.force_row_store
            {
                return KernelChoice::Row;
            }
            match &node.filter {
                None => KernelChoice::AllRows,
                Some(pred) => {
                    let shell = Frame::new(node.cols.clone());
                    match compile_template(pred, &shell) {
                        None => KernelChoice::Row,
                        Some(t) if t.has_params() => KernelChoice::Template(t),
                        Some(t) => KernelChoice::Ready(
                            t.instantiate(&Params::new())
                                .expect("parameter-free template instantiates"),
                        ),
                    }
                }
            }
        })
        .collect();

    let joins: Vec<JoinSpec> = plan
        .joins
        .iter()
        .map(|step| match (&step.algorithm, &step.key) {
            (JoinAlgorithm::Hash, Some(_)) => match step.key_idx {
                Some((li, ri)) => JoinSpec::HashIdx(li, ri),
                None => JoinSpec::HashExpr,
            },
            _ => JoinSpec::Loop,
        })
        .collect();

    // Join layouts: in the operator pipeline every table scan
    // materializes its pruned layout and joins concatenate left-to-right,
    // so each step's output/pair columns are compile-time facts — what
    // `join_cols` otherwise re-clones per execute. A subquery scan's
    // layout materializes at run time and keeps the per-execute path.
    let scan_layout = |node: &crate::planner::ScanNode| match node.source {
        ScanSource::Table(_) => Some(node.out_cols()),
        ScanSource::Subquery { .. } => None,
    };
    let mut join_layouts: Vec<Option<JoinLayout>> = Vec::with_capacity(plan.joins.len());
    let mut acc = scan_layout(&plan.scans[0]);
    for k in 0..plan.joins.len() {
        acc = match (acc.take(), scan_layout(&plan.scans[k + 1])) {
            (Some(l), Some(r)) => {
                let mut pair = l;
                pair.extend(r);
                let out = if fused && k + 1 == plan.joins.len() {
                    plan.projection.as_ref().expect("compiled plans project").0.clone()
                } else {
                    pair.clone()
                };
                join_layouts
                    .push(Some(JoinLayout { out: out.clone(), pair: Frame::new(pair) }));
                Some(out)
            }
            _ => {
                join_layouts.push(None);
                None
            }
        };
    }

    let pages = !limit.is_absent() || !offset.is_absent();
    let mut ops: Vec<PlanOp> = Vec::new();
    for i in 0..plan.scans.len() {
        ops.push(PlanOp::Scan { node: i, dst: i });
    }
    for k in 0..plan.joins.len() {
        ops.push(PlanOp::Join {
            step: k,
            left: 0,
            right: k + 1,
            dst: 0,
            emit: fused && k + 1 == plan.joins.len(),
        });
    }
    if plan.residual.is_some() {
        ops.push(PlanOp::Residual { reg: 0 });
    }
    if plan.aggregate.is_some() {
        ops.push(PlanOp::Aggregate { reg: 0 });
    }
    if !plan.order_by.is_empty() {
        ops.push(PlanOp::Sort { reg: 0 });
    }
    if !plan.distinct && pages {
        ops.push(PlanOp::PageEarly { reg: 0 });
    }
    if !fused {
        ops.push(PlanOp::Project { reg: 0 });
    }
    if plan.distinct {
        ops.push(PlanOp::Distinct { reg: 0 });
        if pages {
            ops.push(PlanOp::PageLate { reg: 0 });
        }
    }
    ops.push(PlanOp::Ret { reg: 0 });

    let mut tally = qbs_common::DispatchTally::new(PlanOp::NAMES.len());
    for op in &ops {
        tally.record(op.index());
    }
    Some(PlanProgram {
        plan: plan.clone(),
        code: Program { regs: plan.scans.len(), ops },
        kernels,
        joins,
        join_layouts,
        limit,
        offset,
        scan_limit,
        scan_emit,
        sort: sort_spec(plan),
        dispatch_counts: tally.drain().collect(),
    })
}

/// Resolves ORDER BY keys against the pre-sort layout. The sort only runs
/// in the non-fused pipeline, where every scan materializes its pruned
/// layout ([`ScanNode::out_cols`]) and joins concatenate their inputs —
/// so for table-only plans the layout is a compile-time fact. Any
/// subquery scan (layout materializes at run time), computed key, or
/// unresolvable/ambiguous reference falls back to the expression sort.
fn sort_spec(plan: &PhysicalPlan) -> SortSpec {
    let exprs = || plan.order_by.iter().map(|k| (k.expr.clone(), k.asc)).collect();
    if plan.order_by.is_empty() {
        return SortSpec::Exprs(exprs());
    }
    // Post-aggregate, rows sort in the aggregate's output layout — a
    // compile-time fact regardless of what the scans materialize.
    let cols: Vec<FrameCol> = match &plan.aggregate {
        Some(agg) => agg.out_cols.clone(),
        None => {
            if plan.scans.iter().any(|n| matches!(n.source, ScanSource::Subquery { .. })) {
                return SortSpec::Exprs(exprs());
            }
            plan.scans.iter().flat_map(|node| node.out_cols()).collect()
        }
    };
    let mut keys = Vec::with_capacity(plan.order_by.len());
    for k in &plan.order_by {
        let SqlExpr::Column { qualifier, name } = &k.expr else {
            return SortSpec::Exprs(exprs());
        };
        match exec::resolve_cols(&cols, qualifier.as_ref(), name) {
            Some(pos) => keys.push((pos, k.asc)),
            None => return SortSpec::Exprs(exprs()),
        }
    }
    SortSpec::Cols(keys)
}

impl Database {
    /// Executes a compiled [`PlanProgram`] — the VM counterpart of
    /// [`Database::execute_plan_cached`], sharing its hoisting scaffolding
    /// and output materialization so the two paths differ only in how the
    /// operator pipeline is driven.
    pub(crate) fn execute_program(
        &self,
        prog: &PlanProgram,
        params: &Params,
        shared: &SubqueryState,
        version: u64,
        schema_cache: Option<&OnceLock<SchemaRef>>,
    ) -> Result<SelectOutput, DbError> {
        let mut stats = ExecStats::default();
        let started = Instant::now();
        let frame = self.with_hoisting(params, &mut stats, shared, version, |ctx, stats| {
            prog.run(self, params, ctx, stats, shared, version)
        })?;
        stats.exec_ns = started.elapsed().as_nanos() as u64;
        finish_frame(frame, stats, schema_cache)
    }
}

/// The VM's metrics: one pre-registered handle per counter so the
/// dispatch-loop flush is pure atomic adds (no name formatting or
/// registry locking on the hot path).
struct VmInstruments {
    metrics: Metrics,
    dispatch: Vec<Counter>,
    compile_ns: Histogram,
    compiled_plans: Counter,
    compiled_kernels: Counter,
}

fn instruments() -> &'static VmInstruments {
    static VM: OnceLock<VmInstruments> = OnceLock::new();
    VM.get_or_init(|| {
        let metrics = Metrics::new();
        let dispatch = PlanOp::NAMES
            .iter()
            .map(|n| metrics.counter(&format!("vm.dispatch.{n}")))
            .collect();
        VmInstruments {
            dispatch,
            compile_ns: metrics.histogram("vm.compile_ns", &qbs_obs::time_bounds_ns()),
            compiled_plans: metrics.counter("vm.compile.plans"),
            compiled_kernels: metrics.counter("vm.compile.kernels"),
            metrics,
        }
    })
}

/// The process-wide plan-VM metrics registry: per-opcode dispatch
/// counters (`vm.dispatch.<op>`), the `vm.compile_ns` histogram, and the
/// `vm.compile.plans` / `vm.compile.kernels` totals.
pub fn vm_metrics() -> Metrics {
    instruments().metrics.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::plan_with;
    use qbs_common::{FieldType, Schema};
    use qbs_sql::parse_query;

    fn setup() -> Database {
        let mut db = Database::new();
        db.create_table(
            Schema::builder("users")
                .field("id", FieldType::Int)
                .field("roleId", FieldType::Int)
                .finish(),
        )
        .unwrap();
        db.create_table(
            Schema::builder("roles")
                .field("roleId", FieldType::Int)
                .field("label", FieldType::Str)
                .finish(),
        )
        .unwrap();
        for i in 0..8i64 {
            db.insert("users", vec![Value::from(i), Value::from(i % 3)]).unwrap();
        }
        for r in 0..3i64 {
            db.insert("roles", vec![Value::from(r), Value::from(format!("role{r}"))]).unwrap();
        }
        db
    }

    fn run_program(db: &Database, prog: &PlanProgram, params: &Params) -> SelectOutput {
        let shared = SubqueryState::new(PlanConfig::default());
        db.execute_program(prog, params, &shared, 0, None).unwrap()
    }

    #[test]
    fn compiled_join_matches_interpreter_rows_and_stats() {
        let db = setup();
        let cfg = PlanConfig::default();
        let q = parse_query(
            "SELECT users.id, roles.label FROM users, roles \
             WHERE users.roleId = roles.roleId AND users.id > 1",
        )
        .unwrap();
        let plan = Arc::new(plan_with(&q, &db, &cfg));
        let prog = compile_plan(&plan, &cfg).expect("join plans compile");
        let vm = run_program(&db, &prog, &Params::new());
        let interp = db.execute_plan_with(&plan, &Params::new(), &cfg).unwrap();
        assert_eq!(vm.rows, interp.rows);
        assert_eq!(vm.stats, interp.stats);
        assert_eq!(vm.stats.joins, vec!["hash"]);
    }

    #[test]
    fn parameterized_filter_compiles_to_a_template() {
        let db = setup();
        let cfg = PlanConfig::default();
        let q = parse_query("SELECT id FROM users WHERE roleId = :r").unwrap();
        let plan = Arc::new(plan_with(&q, &db, &cfg));
        let prog = compile_plan(&plan, &cfg).expect("parameterized filters compile");
        assert!(
            matches!(prog.kernels[0], KernelChoice::Template(_)),
            "parameter comparisons stay symbolic until execute",
        );
        let mut params = Params::new();
        params.insert("r".into(), Value::from(1));
        let vm = run_program(&db, &prog, &params);
        let interp = db.execute_plan_with(&plan, &params, &cfg).unwrap();
        assert_eq!(vm, interp);
    }

    #[test]
    fn pushed_limit_keeps_the_row_path_and_early_exit() {
        let db = setup();
        let cfg = PlanConfig::default();
        let q = parse_query("SELECT id FROM users LIMIT 2").unwrap();
        let plan = Arc::new(plan_with(&q, &db, &cfg));
        let prog = compile_plan(&plan, &cfg).expect("limit plans compile");
        assert!(matches!(prog.kernels[0], KernelChoice::Row));
        let vm = run_program(&db, &prog, &Params::new());
        assert_eq!(vm.rows.len(), 2);
        assert_eq!(vm.stats.rows_scanned, 2, "early exit preserved");
    }

    #[test]
    fn shapes_outside_the_vm_decline_to_compile() {
        let db = setup();
        let cfg = PlanConfig::default();
        // LIMIT on a non-constant, non-parameter expression never plans
        // from SQL text; emulate by clearing the projection instead.
        let q = parse_query("SELECT id FROM users").unwrap();
        let mut plan = plan_with(&q, &db, &cfg);
        plan.projection = None;
        assert!(compile_plan(&Arc::new(plan), &cfg).is_none());
    }

    #[test]
    fn compiled_group_by_matches_interpreter_rows_and_stats() {
        let db = setup();
        let cfg = PlanConfig::default();
        for sql in [
            "SELECT roleId, COUNT(*) FROM users GROUP BY roleId",
            "SELECT roleId, SUM(id), MIN(id), MAX(id) FROM users GROUP BY roleId",
            "SELECT roleId, COUNT(*) FROM users GROUP BY roleId HAVING SUM(id) > 5",
            "SELECT roleId, SUM(id) FROM users GROUP BY roleId ORDER BY roleId DESC",
        ] {
            let q = parse_query(sql).unwrap();
            let plan = Arc::new(plan_with(&q, &db, &cfg));
            let prog = compile_plan(&plan, &cfg).expect("grouped plans compile");
            let vm = run_program(&db, &prog, &Params::new());
            let interp = db.execute_plan_with(&plan, &Params::new(), &cfg).unwrap();
            assert_eq!(vm.rows, interp.rows, "{sql}");
            assert_eq!(vm.stats, interp.stats, "{sql}");
            assert!(!vm.rows.is_empty(), "{sql}");
        }
    }

    #[test]
    fn aggregate_dispatch_counter_accumulates() {
        let db = setup();
        let cfg = PlanConfig::default();
        let q = parse_query("SELECT roleId, COUNT(*) FROM users GROUP BY roleId").unwrap();
        let plan = Arc::new(plan_with(&q, &db, &cfg));
        let prog = compile_plan(&plan, &cfg).expect("compiles");
        let before = vm_metrics().counter("vm.dispatch.aggregate").get();
        let _ = run_program(&db, &prog, &Params::new());
        let after = vm_metrics().counter("vm.dispatch.aggregate").get();
        assert_eq!(after - before, 1, "one aggregate dispatch per run");
    }

    #[test]
    fn dispatch_counters_accumulate() {
        let db = setup();
        let cfg = PlanConfig::default();
        let q = parse_query("SELECT id FROM users WHERE roleId = 1 ORDER BY id").unwrap();
        let plan = Arc::new(plan_with(&q, &db, &cfg));
        let prog = compile_plan(&plan, &cfg).expect("compiles");
        let before = vm_metrics().counter("vm.dispatch.sort").get();
        let _ = run_program(&db, &prog, &Params::new());
        let after = vm_metrics().counter("vm.dispatch.sort").get();
        assert_eq!(after - before, 1, "one sort dispatch per run");
    }
}
