//! Query planning: the [`PhysicalPlan`] IR.
//!
//! [`plan_with`] runs every planning decision exactly once — selection
//! pushdown, index selection, equi-join key extraction, greedy join
//! ordering, cardinality estimation — and records the result as a
//! [`PhysicalPlan`]. [`explain`] is a cheap rendering of that IR and
//! `Database::execute_select` interprets it; because both sides consume the
//! same value there is no second planning pass that could diverge from the
//! executor (the pre-IR `explain()` re-derived the decisions by hand and,
//! for example, counted one index scan per pushed equality predicate while
//! the executor used at most one index per scan).

use crate::exec::FrameCol;
use qbs_common::Ident;
use qbs_sql::{FromItem, OrderKey, SelectItem, SqlExpr, SqlSelect};
use qbs_tor::{AggKind, CmpOp};
use std::collections::BTreeSet;
use std::fmt;

/// Join algorithm chosen for one join step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JoinAlgorithm {
    /// Hash join on an equality key — `O(n + m)`.
    Hash,
    /// Nested-loop join — `O(n·m)`.
    NestedLoop,
}

/// Planner tuning knobs.
#[derive(Clone, Debug, Default)]
pub struct PlanConfig {
    /// Order joins greedily by estimated cardinality (smallest first)
    /// instead of `FROM`-clause order. Reordering is applied only when it
    /// cannot change observable results: either no `ORDER BY`/`LIMIT` pins an
    /// observable order (results compare as multisets), or the `ORDER BY`
    /// totally orders rows via every alias's `rowid`.
    pub reorder_joins: bool,
    /// Force every join step onto the nested-loop algorithm. Benchmarks use
    /// this to measure the hash-join/pushdown speedup against the
    /// application-code baseline; never enable it for production execution.
    pub force_nested_loop: bool,
    /// Force scans onto the row-at-a-time materialization path instead of
    /// the vectorized columnar one. Benchmarks use this to measure the
    /// columnar speedup; the equivalence suite uses it to prove both
    /// executors observationally identical. Never enable it for
    /// production execution.
    pub force_row_store: bool,
    /// Force plan execution onto the tree-walking interpreter instead of
    /// the compiled bytecode VM. The equivalence suite uses this to prove
    /// the VM observationally identical to the interpreter; the VM bench
    /// uses it as the baseline side. Never enable it for production
    /// execution.
    pub force_interpreter: bool,
}

/// An index probe: `column = value` answered by a hash index.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexProbe {
    /// The indexed column.
    pub column: Ident,
    /// The probe value — a literal or a bind parameter.
    pub value: SqlExpr,
}

/// Where a scan's rows come from.
#[derive(Clone, Debug, PartialEq)]
pub enum ScanSource {
    /// A base table.
    Table(Ident),
    /// A `FROM (subquery) alias` — planned recursively.
    Subquery {
        /// The sub-query's own physical plan.
        plan: Box<PhysicalPlan>,
    },
}

/// One `FROM` item with its pushed-down selections resolved.
#[derive(Clone, Debug, PartialEq)]
pub struct ScanNode {
    /// The alias column references use.
    pub alias: Ident,
    /// Base table or sub-query.
    pub source: ScanSource,
    /// The scan's *evaluation* layout, resolved at plan time: table
    /// schema plus the hidden `rowid` for base tables, the projected
    /// columns of a sub-query. Pushed filters evaluate against this
    /// layout (the raw row), independent of what gets materialized.
    pub cols: Vec<FrameCol>,
    /// Column pruning: positions of [`cols`](Self::cols) actually
    /// materialized into the output frame (`None` = all). Columns no
    /// post-scan operator references are never copied out of the table.
    pub emit: Option<Vec<usize>>,
    /// At most one indexed equality probe (the executor uses at most one
    /// index per scan; the plan records exactly that).
    pub probe: Option<IndexProbe>,
    /// Pushed predicates not answered by the probe, conjoined.
    pub filter: Option<SqlExpr>,
    /// Column-batch metadata for the columnar executor: the positions of
    /// [`cols`](Self::cols) a vectorized scan actually touches — the
    /// pushed filter's column references plus the emitted columns, in
    /// ascending position order.
    pub cols_read: Vec<usize>,
    /// How many conjuncts were pushed down to this scan (probe included).
    pub pushed_filters: usize,
    /// Estimated output cardinality (exact for literal index probes,
    /// coarse selectivity heuristics otherwise).
    pub estimated_rows: usize,
}

impl ScanNode {
    /// The columns the scan actually materializes:
    /// [`cols`](Self::cols) restricted to [`emit`](Self::emit).
    pub fn out_cols(&self) -> Vec<FrameCol> {
        match &self.emit {
            Some(keep) => keep.iter().map(|&i| self.cols[i].clone()).collect(),
            None => self.cols.clone(),
        }
    }

    /// One-line description of the scan — the shared vocabulary of the
    /// plain explain rendering and `explain_analyze`'s annotated one.
    pub(crate) fn describe(&self) -> String {
        let source = match &self.source {
            ScanSource::Table(name) => format!("table {name}"),
            ScanSource::Subquery { .. } => "subquery".to_string(),
        };
        let mut out =
            format!("scan {} ({source}, est {} rows", self.alias, self.estimated_rows);
        if let Some(p) = &self.probe {
            out.push_str(&format!(", index {} = {:?}", p.column, p.value));
        }
        if self.filter.is_some() {
            out.push_str(", filtered");
        }
        out.push(')');
        out
    }
}

/// One join step: `acc ⋈ scans[k+1]`.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinStep {
    /// Chosen algorithm.
    pub algorithm: JoinAlgorithm,
    /// Equality keys (left, right) driving a hash join.
    pub key: Option<(SqlExpr, SqlExpr)>,
    /// The keys resolved to column positions (left position in the
    /// accumulated layout, right position in the joined scan) when both
    /// are plain column references — the executor then probes by direct
    /// row access instead of per-row expression evaluation.
    pub key_idx: Option<(usize, usize)>,
    /// Remaining connecting predicates, evaluated on each candidate pair.
    pub residual: Option<SqlExpr>,
    /// Estimated cardinality after this step.
    pub estimated_rows: usize,
}

impl JoinStep {
    /// One-line description of the join step (shared with
    /// `explain_analyze`).
    pub(crate) fn describe(&self) -> String {
        let algo = match self.algorithm {
            JoinAlgorithm::Hash => "hash join",
            JoinAlgorithm::NestedLoop => "nested-loop join",
        };
        format!("  └ {algo} (est {} rows)", self.estimated_rows)
    }
}

/// One aggregate column of an [`AggregateNode`].
#[derive(Clone, Debug, PartialEq)]
pub struct AggSpec {
    /// The aggregate function.
    pub agg: AggKind,
    /// Its input expression (`None` = `COUNT(*)`).
    pub input: Option<SqlExpr>,
}

/// Grouped aggregation (`GROUP BY` / `HAVING`): one hash-aggregate pass
/// between the residual filter and the sort.
///
/// The operator replaces the joined frame with its grouped output —
/// every plan element downstream of it (`HAVING`, `ORDER BY`, the
/// projection) is resolved against [`out_cols`](Self::out_cols), never
/// the joined layout.
#[derive(Clone, Debug, PartialEq)]
pub struct AggregateNode {
    /// Group-key expressions, resolved against the joined frame at run
    /// time (plain column references in every planned query).
    pub keys: Vec<SqlExpr>,
    /// Aggregates computed per group, in output order after the keys.
    pub aggs: Vec<AggSpec>,
    /// The operator's output layout: one column per key, then one
    /// synthetic `#agg<i>` column per aggregate.
    pub out_cols: Vec<FrameCol>,
    /// `HAVING`, with every aggregate rewritten to its `#agg<i>` output
    /// column — an ordinary filter over the grouped frame.
    pub having: Option<SqlExpr>,
}

impl AggregateNode {
    /// One-line description of the aggregate (shared by the plain explain
    /// rendering and `explain_analyze`'s annotated one).
    pub(crate) fn describe(&self) -> String {
        format!(
            "hash aggregate ({} keys, {} aggs{})",
            self.keys.len(),
            self.aggs.len(),
            if self.having.is_some() { ", having" } else { "" },
        )
    }
}

/// The physical plan: every decision the executor will take, computed once.
///
/// `explain()` renders it into a [`Plan`] summary; `Database::execute_plan`
/// interprets it. The struct clones the query's projection/ordering clauses
/// so the interpreter needs no access to the original `SqlSelect`.
#[derive(Clone, Debug, PartialEq)]
pub struct PhysicalPlan {
    /// Scans in execution (join) order — reordered when permitted.
    pub scans: Vec<ScanNode>,
    /// Join steps; `joins[k]` combines the accumulator with `scans[k + 1]`.
    pub joins: Vec<JoinStep>,
    /// Post-join leftover predicates (alias-free literals, predicates over
    /// already-joined aliases), conjoined.
    pub residual: Option<SqlExpr>,
    /// Grouped aggregation (`GROUP BY`/`HAVING`), applied after the
    /// residual filter and before the sort. When present, limit pushdown
    /// and projection fusion are disabled: every row must reach the
    /// aggregate, and the projection addresses its output layout.
    pub aggregate: Option<AggregateNode>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// Projection list (empty = `SELECT *`).
    pub columns: Vec<SelectItem>,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// `LIMIT` expression.
    pub limit: Option<SqlExpr>,
    /// `OFFSET` expression (rows skipped before the `LIMIT` prefix).
    pub offset: Option<SqlExpr>,
    /// True when the greedy optimizer changed the `FROM` order.
    pub reordered: bool,
    /// Uncorrelated `IN (SELECT …)` predicates reachable from this query
    /// (its `WHERE` clause plus nested sub-queries' clauses); the executor
    /// hoists each into a hash set built once per statement.
    pub hoisted_subqueries: usize,
    /// True when the query's `ORDER BY` was proven redundant and dropped
    /// from [`order_by`](Self::order_by): base-table scans yield rowid-
    /// ascending rows and both join algorithms produce left-major order,
    /// so a join pipeline's output is already sorted lexicographically by
    /// `(scans[0].rowid, scans[1].rowid, …)` — a stable sort by any prefix
    /// of those keys is the identity.
    pub sort_elided: bool,
    /// The projection resolved at plan time against the joined layout:
    /// output columns plus their positions. `None` falls back to per-call
    /// resolution (and its runtime errors) when a column cannot be
    /// resolved statically.
    pub projection: Option<(Vec<FrameCol>, Vec<usize>)>,
}

impl PhysicalPlan {
    /// The plan summary — what `explain()` returns.
    pub fn summary(&self) -> Plan {
        Plan {
            joins: self.joins.iter().map(|j| j.algorithm).collect(),
            pushed_filters: self.scans.iter().map(|s| s.pushed_filters).sum(),
            index_scans: self.scans.iter().filter(|s| s.probe.is_some()).count(),
            join_order: self.scans.iter().map(|s| s.alias.clone()).collect(),
            estimated_rows: self.scans.iter().map(|s| s.estimated_rows).collect(),
            reordered: self.reordered,
            hoisted_subqueries: self.hoisted_subqueries,
        }
    }

    /// Estimated output cardinality: the last join estimate (or the single
    /// scan's), reduced by a literal `OFFSET` and clamped by a literal
    /// `LIMIT`.
    pub fn estimated_output(&self) -> usize {
        let mut base = self
            .joins
            .last()
            .map(|j| j.estimated_rows)
            .or_else(|| self.scans.first().map(|s| s.estimated_rows))
            .unwrap_or(0);
        if let Some(SqlExpr::Lit(v)) = &self.offset {
            if let Some(n) = v.as_int().filter(|n| *n >= 0) {
                base = base.saturating_sub(n as usize);
            }
        }
        match &self.limit {
            Some(SqlExpr::Lit(v)) => match v.as_int() {
                Some(n) if n >= 0 => base.min(n as usize),
                _ => base,
            },
            _ => base,
        }
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, scan) in self.scans.iter().enumerate() {
            writeln!(f, "{}", scan.describe())?;
            if k > 0 {
                writeln!(f, "{}", self.joins[k - 1].describe())?;
            }
        }
        if self.residual.is_some() {
            writeln!(f, "filter (post-join residual)")?;
        }
        if let Some(agg) = &self.aggregate {
            writeln!(f, "{}", agg.describe())?;
        }
        if !self.order_by.is_empty() {
            writeln!(f, "sort ({} keys)", self.order_by.len())?;
        }
        if self.distinct {
            writeln!(f, "distinct")?;
        }
        if self.limit.is_some() {
            writeln!(f, "limit")?;
        }
        if self.offset.is_some() {
            writeln!(f, "offset")?;
        }
        Ok(())
    }
}

/// A human-inspectable plan summary (used by tests and benches to assert
/// that the optimizer made the expected choices). Produced by rendering a
/// [`PhysicalPlan`] — never computed independently of the executor's plan.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Plan {
    /// Join algorithm per join step, in execution order.
    pub joins: Vec<JoinAlgorithm>,
    /// Number of predicates pushed down to single-table scans.
    pub pushed_filters: usize,
    /// Number of scans satisfied by a hash index (at most one index per
    /// scan, mirroring the executor exactly).
    pub index_scans: usize,
    /// Scan aliases in execution order — differs from the `FROM` order only
    /// when greedy join reordering was enabled and permitted.
    pub join_order: Vec<Ident>,
    /// Estimated cardinality per scan, in `join_order` order.
    pub estimated_rows: Vec<usize>,
    /// True when the optimizer changed the `FROM` order.
    pub reordered: bool,
    /// Uncorrelated `IN`-subquery predicates (nested ones included)
    /// hoisted to once-per-statement hash sets.
    pub hoisted_subqueries: usize,
}

/// The table aliases a predicate references.
pub(crate) fn aliases_of(e: &SqlExpr, out: &mut BTreeSet<Ident>) {
    match e {
        SqlExpr::Column { qualifier, .. } => {
            if let Some(q) = qualifier {
                out.insert(q.clone());
            }
        }
        SqlExpr::Lit(_) | SqlExpr::Param(_) => {}
        SqlExpr::Cmp(a, _, b) => {
            aliases_of(a, out);
            aliases_of(b, out);
        }
        SqlExpr::And(ps) | SqlExpr::Or(ps) => {
            for p in ps {
                aliases_of(p, out);
            }
        }
        SqlExpr::Not(x) => aliases_of(x, out),
        SqlExpr::InSubquery(x, _) => aliases_of(x, out),
        SqlExpr::RowInSubquery(xs, _) => {
            for x in xs {
                aliases_of(x, out);
            }
        }
        SqlExpr::Agg { arg, .. } => {
            if let Some(a) = arg {
                aliases_of(a, out);
            }
        }
    }
}

/// Splits a `WHERE` clause into conjuncts.
pub(crate) fn conjuncts(e: &SqlExpr) -> Vec<SqlExpr> {
    match e {
        SqlExpr::And(ps) => ps.iter().flat_map(conjuncts).collect(),
        other => vec![other.clone()],
    }
}

/// Counts `IN (subquery)` predicates in an expression tree, *including*
/// those nested inside a sub-query's own `WHERE` clause — every one of
/// them executes through the statement's hoisting cache, so this is the
/// upper bound on `ExecStats::subqueries_executed`.
fn count_subquery_preds(e: &SqlExpr) -> usize {
    match e {
        SqlExpr::InSubquery(x, q) => 1 + count_subquery_preds(x) + count_select_preds(q),
        SqlExpr::RowInSubquery(xs, q) => {
            1 + xs.iter().map(count_subquery_preds).sum::<usize>() + count_select_preds(q)
        }
        SqlExpr::Cmp(a, _, b) => count_subquery_preds(a) + count_subquery_preds(b),
        SqlExpr::And(ps) | SqlExpr::Or(ps) => ps.iter().map(count_subquery_preds).sum(),
        SqlExpr::Not(x) => count_subquery_preds(x),
        SqlExpr::Agg { arg, .. } => arg.as_ref().map(|a| count_subquery_preds(a)).unwrap_or(0),
        SqlExpr::Column { .. } | SqlExpr::Lit(_) | SqlExpr::Param(_) => 0,
    }
}

/// [`count_subquery_preds`] over a whole `SELECT`: its `WHERE` clause plus
/// the clauses of its `FROM` sub-queries (their predicate sub-queries also
/// run through the shared hoisting cache when the plan is interpreted).
fn count_select_preds(q: &SqlSelect) -> usize {
    q.where_clause.as_ref().map(count_subquery_preds).unwrap_or(0)
        + q.from
            .iter()
            .map(|f| match f {
                FromItem::Subquery { query, .. } => count_select_preds(query),
                FromItem::Table { .. } => 0,
            })
            .sum::<usize>()
}

/// Recognizes `a.x = b.y` equi-join predicates between two alias sets.
pub(crate) fn equi_join_keys(
    e: &SqlExpr,
    left: &BTreeSet<Ident>,
    right: &BTreeSet<Ident>,
) -> Option<(SqlExpr, SqlExpr)> {
    if let SqlExpr::Cmp(a, CmpOp::Eq, b) = e {
        let mut qa = BTreeSet::new();
        aliases_of(a, &mut qa);
        let mut qb = BTreeSet::new();
        aliases_of(b, &mut qb);
        if !qa.is_empty() && !qb.is_empty() {
            if qa.is_subset(left) && qb.is_subset(right) {
                return Some(((**a).clone(), (**b).clone()));
            }
            if qa.is_subset(right) && qb.is_subset(left) {
                return Some(((**b).clone(), (**a).clone()));
            }
        }
    }
    None
}

/// Recognizes `alias.col = <lit|param>` for index-scan pushdown; returns the
/// column name and the value expression.
pub(crate) fn index_eq(e: &SqlExpr, alias: &Ident) -> Option<(Ident, SqlExpr)> {
    if let SqlExpr::Cmp(a, CmpOp::Eq, b) = e {
        let col = |x: &SqlExpr| -> Option<Ident> {
            if let SqlExpr::Column { qualifier, name } = x {
                // Unqualified columns are attributed to the scan being
                // planned (single-table pushdown).
                if qualifier.is_none() || qualifier.as_ref() == Some(alias) {
                    return Some(name.clone());
                }
            }
            None
        };
        let is_const = |x: &SqlExpr| matches!(x, SqlExpr::Lit(_) | SqlExpr::Param(_));
        if let Some(c) = col(a) {
            if is_const(b) {
                return Some((c, (**b).clone()));
            }
        }
        if let Some(c) = col(b) {
            if is_const(a) {
                return Some((c, (**a).clone()));
            }
        }
    }
    None
}

/// True when the `ORDER BY` clause pins a total order over the join result:
/// every `FROM` alias contributes its `rowid` as a sort key, making each
/// output row's key unique — sorting then yields one canonical sequence no
/// matter what order the join produced.
fn order_pinned_total(q: &SqlSelect) -> bool {
    !q.order_by.is_empty()
        && q.from.iter().all(|item| {
            q.order_by.iter().any(|k| {
                matches!(&k.expr, SqlExpr::Column { qualifier: Some(a), name }
                    if a == item.alias() && name.as_str() == "rowid")
            })
        })
}

/// When greedy join reordering may be applied without changing observable
/// results. The TOR semantics is order-sensitive (the `⋈` axioms fix
/// left-major order), so reordering is sound only when
///
/// * the query has no `ORDER BY` and no `LIMIT` — results are compared as
///   multisets (the oracle's `proven_equivalence` for such queries), and a
///   join reorder permutes but never changes the multiset; or
/// * the `ORDER BY` pins a total order via every alias's `rowid`
///   ([`order_pinned_total`]) — the sort canonicalizes whatever order the
///   joins produced, `LIMIT`/`OFFSET` included.
fn reorder_permitted(q: &SqlSelect) -> bool {
    if q.limit.is_some() || q.offset.is_some() || !q.order_by.is_empty() {
        order_pinned_total(q)
    } else {
        true
    }
}

/// Cardinality estimate for one scan after pushdown, from table sizes and
/// index selectivity. Deliberately coarse — the estimates only have to rank
/// scans for the greedy join order:
///
/// * index probe on a literal: the exact bucket length;
/// * index probe on a parameter: `len / distinct_keys` (average bucket);
/// * non-indexed equality pushdown: `len / 10`;
/// * any other pushdown: `len / 3`;
/// * bare scan: `len`.
fn estimate_table(
    table: &crate::storage::Table,
    probe: &Option<IndexProbe>,
    pushed: usize,
    has_eq: bool,
) -> usize {
    let len = table.len();
    if let Some(p) = probe {
        if let SqlExpr::Lit(v) = &p.value {
            return table.index_lookup(&p.column, v).map(|rows| rows.len()).unwrap_or(0);
        }
        let distinct = table.index_cardinality(&p.column).unwrap_or(1).max(1);
        return (len / distinct).max(1).min(len);
    }
    if pushed > 0 {
        let divisor = if has_eq { 10 } else { 3 };
        return (len / divisor).max(1).min(len.max(1));
    }
    len
}

/// Computes the full physical plan for a query against the given database.
///
/// Pushdown classification, index selection, join-key extraction, join
/// ordering and cardinality estimation all happen here — `explain` renders
/// the result, `Database::execute_plan` interprets it.
pub fn plan_with(q: &SqlSelect, db: &crate::Database, config: &PlanConfig) -> PhysicalPlan {
    let mut remaining: Vec<SqlExpr> =
        q.where_clause.as_ref().map(conjuncts).unwrap_or_default();
    let hoisted_subqueries = count_select_preds(q);

    // Selection pushdown + per-scan index selection, in FROM order (the
    // classification is per-alias and independent of the join order).
    let mut nodes: Vec<ScanNode> = Vec::with_capacity(q.from.len());
    for item in &q.from {
        let alias = item.alias().clone();
        let mut mine = BTreeSet::new();
        mine.insert(alias.clone());
        let mut pushed = Vec::new();
        let mut rest = Vec::new();
        for c in remaining.drain(..) {
            let mut used = BTreeSet::new();
            aliases_of(&c, &mut used);
            // Unqualified predicates are pushable when there is only one
            // FROM item to attribute them to.
            let pushable = used.is_subset(&mine) && (!used.is_empty() || q.from.len() == 1);
            if pushable {
                pushed.push(c);
            } else {
                rest.push(c);
            }
        }
        remaining = rest;

        let pushed_filters = pushed.len();
        let has_eq = pushed.iter().any(|c| index_eq(c, &alias).is_some());
        let (source, cols, probe, residual, estimated_rows) = match item {
            FromItem::Table { name, .. } => {
                let table = db.table(name);
                // At most one indexed equality probe per scan; the rest of
                // the pushed conjuncts stay as a residual filter.
                let mut probe = None;
                let mut residual = Vec::new();
                for c in pushed {
                    if probe.is_none() {
                        if let Some((col, value)) = index_eq(&c, &alias) {
                            if table.is_some_and(|t| t.has_index(&col)) {
                                probe = Some(IndexProbe { column: col, value });
                                continue;
                            }
                        }
                    }
                    residual.push(c);
                }
                let est = table
                    .map(|t| estimate_table(t, &probe, pushed_filters, has_eq))
                    .unwrap_or(0);
                // The scan's frame layout, fixed at plan time: the table's
                // schema columns plus the hidden rowid.
                let mut cols: Vec<FrameCol> = table
                    .map(|t| {
                        t.schema()
                            .fields()
                            .iter()
                            .map(|f| FrameCol { alias: alias.clone(), name: f.name.clone() })
                            .collect()
                    })
                    .unwrap_or_default();
                cols.push(FrameCol { alias: alias.clone(), name: "rowid".into() });
                (ScanSource::Table(name.clone()), cols, probe, residual, est)
            }
            FromItem::Subquery { query, alias: sub_alias } => {
                // An inner reorder permutes the sub-query's output order,
                // which the *outer* query observes through its own ORDER BY
                // tie-breaking or LIMIT/OFFSET window. Only let inner plans
                // reorder when the outer result is order-insensitive (no
                // ORDER BY, no LIMIT, no OFFSET — multiset semantics end to
                // end).
                let pinned;
                let inner_config = if config.reorder_joins
                    && !(q.order_by.is_empty() && q.limit.is_none() && q.offset.is_none())
                {
                    pinned = PlanConfig { reorder_joins: false, ..config.clone() };
                    &pinned
                } else {
                    config
                };
                let inner = plan_with(query, db, inner_config);
                let est = inner.estimated_output();
                let cols = query
                    .columns
                    .iter()
                    .enumerate()
                    .map(|(k, c)| FrameCol {
                        alias: sub_alias.clone(),
                        name: c
                            .alias
                            .clone()
                            .or_else(|| match &c.expr {
                                SqlExpr::Column { name, .. } => Some(name.clone()),
                                _ => None,
                            })
                            .unwrap_or_else(|| Ident::new(format!("c{k}"))),
                    })
                    .collect();
                (ScanSource::Subquery { plan: Box::new(inner) }, cols, None, pushed, est)
            }
        };
        nodes.push(ScanNode {
            alias,
            source,
            cols,
            emit: None,
            probe,
            filter: (!residual.is_empty()).then(|| SqlExpr::conjoin(residual)),
            cols_read: Vec::new(),
            pushed_filters,
            estimated_rows,
        });
    }

    // Join ordering: greedy smallest-estimated-cardinality-first, gated on
    // observable-order safety; otherwise the FROM order (the axiom order).
    let order: Vec<usize> = if config.reorder_joins && nodes.len() > 1 && reorder_permitted(q) {
        greedy_order(&nodes, &remaining)
    } else {
        (0..nodes.len()).collect()
    };
    let reordered = order.iter().enumerate().any(|(k, &i)| k != i);
    let mut scans: Vec<ScanNode> = Vec::with_capacity(nodes.len());
    for &i in &order {
        scans.push(nodes[i].clone());
    }

    // Join steps, in execution order: pull the connecting conjuncts for
    // each step out of the remaining pool; the first equi-join predicate
    // becomes the hash key, the rest the step residual. (Key positions
    // are resolved in a later pass, once column pruning has fixed the
    // final layouts.)
    let mut joins: Vec<JoinStep> = Vec::with_capacity(scans.len().saturating_sub(1));
    let mut joined: BTreeSet<Ident> = BTreeSet::new();
    let mut acc_est = scans.first().map(|s| s.estimated_rows).unwrap_or(0);
    for (k, scan) in scans.iter().enumerate() {
        if k == 0 {
            joined.insert(scan.alias.clone());
            continue;
        }
        let alias = scan.alias.clone();
        let mut right_set = BTreeSet::new();
        right_set.insert(alias.clone());
        let mut key: Option<(SqlExpr, SqlExpr)> = None;
        let mut connecting = Vec::new();
        let mut rest = Vec::new();
        for c in remaining.drain(..) {
            let mut used = BTreeSet::new();
            aliases_of(&c, &mut used);
            let mut both = joined.clone();
            both.insert(alias.clone());
            if used.is_subset(&both) && used.contains(&alias) {
                if key.is_none() && !config.force_nested_loop {
                    if let Some(k) = equi_join_keys(&c, &joined, &right_set) {
                        key = Some(k);
                        continue;
                    }
                }
                connecting.push(c);
            } else {
                rest.push(c);
            }
        }
        remaining = rest;
        let algorithm =
            if key.is_some() { JoinAlgorithm::Hash } else { JoinAlgorithm::NestedLoop };
        acc_est = match algorithm {
            // An equi join keeps roughly the larger side's cardinality.
            JoinAlgorithm::Hash => acc_est.max(scan.estimated_rows),
            JoinAlgorithm::NestedLoop => acc_est.saturating_mul(scan.estimated_rows.max(1)),
        };
        joins.push(JoinStep {
            algorithm,
            key,
            key_idx: None,
            residual: (!connecting.is_empty()).then(|| SqlExpr::conjoin(connecting)),
            estimated_rows: acc_est,
        });
        joined.insert(alias);
    }

    // Sort elision: scans of base tables emit rowid-ascending rows and
    // both join algorithms are left-major, so the pipeline's output is
    // already ordered lexicographically by (scans[0].rowid, scans[1].rowid,
    // …). An ORDER BY whose keys are exactly a prefix of those rowids
    // (all ascending) is satisfied by construction — a stable sort would
    // be the identity — and is dropped from the plan.
    let sort_elided = !q.order_by.is_empty()
        && q.group_by.is_empty()
        && q.order_by.len() <= scans.len()
        && q.order_by.iter().zip(&scans).all(|(k, scan)| {
            k.asc
                && matches!(scan.source, ScanSource::Table(_))
                && matches!(&k.expr, SqlExpr::Column { qualifier: Some(a), name }
                    if a == &scan.alias && name.as_str() == "rowid")
        });
    let mut order_by = if sort_elided { Vec::new() } else { q.order_by.clone() };

    // Resolve the projection against the *full* layout first — whether it
    // resolves statically gates column pruning (the dynamic fallback may
    // reference anything).
    let full_layout: Vec<FrameCol> =
        scans.iter().flat_map(|s| s.cols.iter().cloned()).collect();
    let full_projection = resolve_projection(&q.columns, &full_layout);

    // Grouped aggregation: collect the distinct aggregate expressions
    // (select list first, then HAVING-only ones), fix the operator's
    // output layout — key columns then one synthetic `#agg<i>` column per
    // aggregate — and rewrite everything downstream of the operator
    // (HAVING, the select list) to reference that layout. A HAVING-only
    // aggregate gets computed and filtered on, then dropped by the
    // projection.
    let mut columns = q.columns.clone();
    let aggregate = if q.group_by.is_empty() {
        None
    } else {
        let mut agg_exprs: Vec<SqlExpr> = Vec::new();
        for item in &q.columns {
            collect_aggs(&item.expr, &mut agg_exprs);
        }
        if let Some(h) = &q.having {
            collect_aggs(h, &mut agg_exprs);
        }
        for k in &q.order_by {
            collect_aggs(&k.expr, &mut agg_exprs);
        }
        let mut out_cols: Vec<FrameCol> = q
            .group_by
            .iter()
            .map(|k| match k {
                SqlExpr::Column { qualifier, name } => {
                    match crate::exec::resolve_cols(&full_layout, qualifier.as_ref(), name) {
                        Some(i) => full_layout[i].clone(),
                        None => FrameCol {
                            alias: qualifier.clone().unwrap_or_else(|| Ident::new("")),
                            name: name.clone(),
                        },
                    }
                }
                _ => FrameCol { alias: Ident::new(""), name: Ident::new("#key") },
            })
            .collect();
        for i in 0..agg_exprs.len() {
            out_cols
                .push(FrameCol { alias: Ident::new(""), name: Ident::new(format!("#agg{i}")) });
        }
        columns = columns
            .iter()
            .map(|item| SelectItem {
                expr: rewrite_aggs(&item.expr, &agg_exprs),
                alias: item.alias.clone(),
            })
            .collect();
        // ORDER BY runs downstream of the aggregate too (sort elision is
        // off under grouping, so `order_by` is exactly `q.order_by` here).
        order_by = order_by
            .iter()
            .map(|k| OrderKey { expr: rewrite_aggs(&k.expr, &agg_exprs), asc: k.asc })
            .collect();
        Some(AggregateNode {
            keys: q.group_by.clone(),
            aggs: agg_exprs
                .iter()
                .map(|e| match e {
                    SqlExpr::Agg { agg, arg } => {
                        AggSpec { agg: *agg, input: arg.as_deref().cloned() }
                    }
                    other => unreachable!("collect_aggs collects aggregates, got {other:?}"),
                })
                .collect(),
            out_cols,
            having: q.having.as_ref().map(|h| rewrite_aggs(h, &agg_exprs)),
        })
    };

    // Column pruning: a scan column that no post-scan operator (join key,
    // step or plan residual, order key, projection) references is never
    // materialized. Pushed scan filters evaluate against the raw row
    // before materialization, so they impose nothing.
    if full_projection.is_some() || aggregate.is_some() {
        let mut needed: Vec<(Option<Ident>, Ident)> = Vec::new();
        for step in &joins {
            if let Some((lk, rk)) = &step.key {
                column_refs(lk, &mut needed);
                column_refs(rk, &mut needed);
            }
            if let Some(r) = &step.residual {
                column_refs(r, &mut needed);
            }
        }
        for c in &remaining {
            column_refs(c, &mut needed);
        }
        for k in &order_by {
            column_refs(&k.expr, &mut needed);
        }
        // The aggregate's inputs: group keys, aggregate arguments (via the
        // `Agg` arm of `column_refs` below), and HAVING references.
        for k in &q.group_by {
            column_refs(k, &mut needed);
        }
        if let Some(h) = &q.having {
            column_refs(h, &mut needed);
        }
        if aggregate.is_some() {
            // Pre-rewrite ORDER BY keys: an aggregate ordered on reads its
            // argument columns from the scans, not from `order_by` (which
            // now references the post-aggregate `#agg<i>` layout).
            for k in &q.order_by {
                column_refs(&k.expr, &mut needed);
            }
        }
        let keep_all_non_rowid = q.columns.is_empty();
        for item in &q.columns {
            column_refs(&item.expr, &mut needed);
        }
        let is_needed = |col: &FrameCol| {
            (keep_all_non_rowid && col.name.as_str() != "rowid")
                || needed.iter().any(|(qual, name)| {
                    &col.name == name && qual.as_ref().is_none_or(|qq| qq == &col.alias)
                })
        };
        for scan in &mut scans {
            // Only base tables prune (a sub-query's columns were already
            // chosen by its own projection).
            if !matches!(scan.source, ScanSource::Table(_)) {
                continue;
            }
            let keep: Vec<usize> =
                (0..scan.cols.len()).filter(|&i| is_needed(&scan.cols[i])).collect();
            if keep.len() < scan.cols.len() {
                scan.emit = Some(keep);
            }
        }
    }

    // Column-batch metadata: record which positions of each scan's layout
    // a vectorized interpretation touches — the emitted columns plus the
    // pushed filter's references. Computed after pruning so `emit` is
    // final.
    for scan in &mut scans {
        let mut read: BTreeSet<usize> = match &scan.emit {
            Some(keep) => keep.iter().copied().collect(),
            None => (0..scan.cols.len()).collect(),
        };
        if let Some(f) = &scan.filter {
            let mut refs = Vec::new();
            column_refs(f, &mut refs);
            for (qual, name) in &refs {
                if let Some(i) = crate::exec::resolve_cols(&scan.cols, qual.as_ref(), name) {
                    read.insert(i);
                }
            }
        }
        scan.cols_read = read.into_iter().collect();
    }

    // Final (post-pruning) layouts: resolve join-key positions and the
    // projection once, against exactly the columns the executor will
    // materialize.
    let eff_cols: Vec<Vec<FrameCol>> = scans.iter().map(ScanNode::out_cols).collect();
    let mut layout: Vec<FrameCol> = eff_cols.first().cloned().unwrap_or_default();
    for (k, step) in joins.iter_mut().enumerate() {
        let right = &eff_cols[k + 1];
        step.key_idx = step.key.as_ref().and_then(|(lk, rk)| {
            let li = match lk {
                SqlExpr::Column { qualifier, name } => {
                    crate::exec::resolve_cols(&layout, qualifier.as_ref(), name)
                }
                _ => None,
            }?;
            let ri = match rk {
                SqlExpr::Column { qualifier, name } => {
                    crate::exec::resolve_cols(right, qualifier.as_ref(), name)
                }
                _ => None,
            }?;
            Some((li, ri))
        });
        layout.extend(right.iter().cloned());
    }
    let projection = match &aggregate {
        // Post-aggregate, the frame layout is the operator's output —
        // resolve the rewritten select list against it, never the joined
        // layout.
        Some(agg) => resolve_projection(&columns, &agg.out_cols),
        None => match full_projection {
            Some(_) => resolve_projection(&q.columns, &layout),
            None => None,
        },
    };

    PhysicalPlan {
        scans,
        joins,
        residual: (!remaining.is_empty()).then(|| SqlExpr::conjoin(remaining)),
        aggregate,
        order_by,
        columns,
        distinct: q.distinct,
        limit: q.limit.clone(),
        offset: q.offset.clone(),
        reordered,
        hoisted_subqueries,
        sort_elided,
        projection,
    }
}

/// Statically resolves a select list against a column layout (`columns`
/// empty = `SELECT *`, all non-rowid columns); `None` when any item needs
/// runtime resolution.
fn resolve_projection(
    columns: &[SelectItem],
    layout: &[FrameCol],
) -> Option<(Vec<FrameCol>, Vec<usize>)> {
    if columns.is_empty() {
        let mut out_cols = Vec::new();
        let mut out_idx = Vec::new();
        for (i, c) in layout.iter().enumerate() {
            if c.name.as_str() != "rowid" {
                out_cols.push(c.clone());
                out_idx.push(i);
            }
        }
        return Some((out_cols, out_idx));
    }
    columns
        .iter()
        .map(|item| match &item.expr {
            SqlExpr::Column { qualifier, name } => {
                let i = crate::exec::resolve_cols(layout, qualifier.as_ref(), name)?;
                Some((
                    FrameCol {
                        alias: item.alias.clone().unwrap_or_else(|| layout[i].alias.clone()),
                        name: item.alias.clone().unwrap_or_else(|| name.clone()),
                    },
                    i,
                ))
            }
            _ => None,
        })
        .collect::<Option<Vec<(FrameCol, usize)>>>()
        .map(|pairs| pairs.into_iter().unzip())
}

/// Collects every column reference of an expression (qualifier and name).
/// Predicate sub-queries contribute only their probe expressions — their
/// bodies resolve inside their own plans.
fn column_refs(e: &SqlExpr, out: &mut Vec<(Option<Ident>, Ident)>) {
    match e {
        SqlExpr::Column { qualifier, name } => out.push((qualifier.clone(), name.clone())),
        SqlExpr::Lit(_) | SqlExpr::Param(_) => {}
        SqlExpr::Cmp(a, _, b) => {
            column_refs(a, out);
            column_refs(b, out);
        }
        SqlExpr::And(ps) | SqlExpr::Or(ps) => ps.iter().for_each(|p| column_refs(p, out)),
        SqlExpr::Not(x) => column_refs(x, out),
        SqlExpr::InSubquery(x, _) => column_refs(x, out),
        SqlExpr::RowInSubquery(xs, _) => xs.iter().for_each(|x| column_refs(x, out)),
        SqlExpr::Agg { arg, .. } => {
            if let Some(a) = arg {
                column_refs(a, out);
            }
        }
    }
}

/// Collects the distinct aggregate expressions of `e`, in first-appearance
/// order — the order that fixes each aggregate's `#agg<i>` output column.
fn collect_aggs(e: &SqlExpr, out: &mut Vec<SqlExpr>) {
    match e {
        SqlExpr::Agg { .. } if !out.contains(e) => {
            out.push(e.clone());
        }
        SqlExpr::Agg { .. } => {}
        SqlExpr::Cmp(a, _, b) => {
            collect_aggs(a, out);
            collect_aggs(b, out);
        }
        SqlExpr::And(ps) | SqlExpr::Or(ps) => ps.iter().for_each(|p| collect_aggs(p, out)),
        SqlExpr::Not(x) => collect_aggs(x, out),
        _ => {}
    }
}

/// Rewrites every aggregate sub-expression to its `#agg<i>` output column
/// (positions taken from `aggs`, the [`collect_aggs`] order) — how HAVING
/// and the select list become ordinary expressions over the grouped frame.
fn rewrite_aggs(e: &SqlExpr, aggs: &[SqlExpr]) -> SqlExpr {
    if let Some(i) = aggs.iter().position(|a| a == e) {
        return SqlExpr::col(format!("#agg{i}"));
    }
    match e {
        SqlExpr::Cmp(a, op, b) => {
            SqlExpr::Cmp(Box::new(rewrite_aggs(a, aggs)), *op, Box::new(rewrite_aggs(b, aggs)))
        }
        SqlExpr::And(ps) => SqlExpr::And(ps.iter().map(|p| rewrite_aggs(p, aggs)).collect()),
        SqlExpr::Or(ps) => SqlExpr::Or(ps.iter().map(|p| rewrite_aggs(p, aggs)).collect()),
        SqlExpr::Not(x) => SqlExpr::Not(Box::new(rewrite_aggs(x, aggs))),
        other => other.clone(),
    }
}

/// Greedy join order: start from the smallest estimated scan, then
/// repeatedly append the smallest scan that is equi-connected to the set
/// already joined (falling back to the smallest remaining scan when nothing
/// connects — a cross product either way). Ties keep `FROM` order.
fn greedy_order(nodes: &[ScanNode], conjuncts: &[SqlExpr]) -> Vec<usize> {
    let mut remaining: Vec<usize> = (0..nodes.len()).collect();
    let mut order = Vec::with_capacity(nodes.len());
    let smallest = |cands: &[usize]| -> usize {
        *cands
            .iter()
            .min_by_key(|&&i| (nodes[i].estimated_rows, i))
            .expect("candidate set is non-empty")
    };
    let first = smallest(&remaining);
    remaining.retain(|&i| i != first);
    order.push(first);
    let mut joined: BTreeSet<Ident> = BTreeSet::new();
    joined.insert(nodes[first].alias.clone());
    while !remaining.is_empty() {
        let connected: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| {
                let mut right = BTreeSet::new();
                right.insert(nodes[i].alias.clone());
                conjuncts.iter().any(|c| equi_join_keys(c, &joined, &right).is_some())
            })
            .collect();
        let next =
            if connected.is_empty() { smallest(&remaining) } else { smallest(&connected) };
        remaining.retain(|&i| i != next);
        joined.insert(nodes[next].alias.clone());
        order.push(next);
    }
    order
}

/// Plans with the default configuration (no reordering — the TOR axiom
/// order is preserved exactly).
pub fn plan(q: &SqlSelect, db: &crate::Database) -> PhysicalPlan {
    plan_with(q, db, &PlanConfig::default())
}

/// Computes the plan summary for a query against the given database — a
/// rendering of the *same* [`PhysicalPlan`] that
/// [`Database::execute_select`](crate::Database::execute_select) interprets.
pub fn explain(q: &SqlSelect, db: &crate::Database) -> Plan {
    plan(q, db).summary()
}

/// [`explain`] under a non-default [`PlanConfig`].
pub fn explain_with(q: &SqlSelect, db: &crate::Database, config: &PlanConfig) -> Plan {
    plan_with(q, db, config).summary()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting_flattens() {
        let e = SqlExpr::And(vec![
            SqlExpr::cmp(SqlExpr::col("a"), CmpOp::Eq, SqlExpr::int(1)),
            SqlExpr::And(vec![SqlExpr::cmp(SqlExpr::col("b"), CmpOp::Gt, SqlExpr::int(2))]),
        ]);
        assert_eq!(conjuncts(&e).len(), 2);
    }

    #[test]
    fn equi_join_detection_both_orientations() {
        let mut l = BTreeSet::new();
        l.insert(Ident::new("u"));
        let mut r = BTreeSet::new();
        r.insert(Ident::new("r"));
        let e = SqlExpr::cmp(SqlExpr::qcol("u", "k"), CmpOp::Eq, SqlExpr::qcol("r", "k"));
        assert!(equi_join_keys(&e, &l, &r).is_some());
        let flipped = SqlExpr::cmp(SqlExpr::qcol("r", "k"), CmpOp::Eq, SqlExpr::qcol("u", "k"));
        let (lk, _) = equi_join_keys(&flipped, &l, &r).unwrap();
        assert_eq!(lk, SqlExpr::qcol("u", "k"));
        // Non-equality is not an equi-join.
        let lt = SqlExpr::cmp(SqlExpr::qcol("u", "k"), CmpOp::Lt, SqlExpr::qcol("r", "k"));
        assert!(equi_join_keys(&lt, &l, &r).is_none());
    }

    #[test]
    fn index_eq_recognizes_literal_and_param() {
        let alias = Ident::new("t");
        let e = SqlExpr::cmp(SqlExpr::qcol("t", "id"), CmpOp::Eq, SqlExpr::int(5));
        assert!(index_eq(&e, &alias).is_some());
        let p = SqlExpr::cmp(SqlExpr::Param("uid".into()), CmpOp::Eq, SqlExpr::qcol("t", "id"));
        assert!(index_eq(&p, &alias).is_some());
        let col2 = SqlExpr::cmp(SqlExpr::qcol("t", "id"), CmpOp::Eq, SqlExpr::qcol("t", "x"));
        assert!(index_eq(&col2, &alias).is_none());
    }

    #[test]
    fn reorder_gate_requires_total_order_or_multiset_semantics() {
        let mut q = qbs_sql::parse_query(
            "SELECT users.id FROM users, roles WHERE users.roleId = roles.roleId",
        )
        .unwrap();
        // No ORDER BY, no LIMIT: multiset comparison — reordering allowed.
        assert!(reorder_permitted(&q));
        // A non-total ORDER BY pins observable order: not allowed.
        q.order_by = vec![OrderKey { expr: SqlExpr::qcol("users", "id"), asc: true }];
        assert!(!reorder_permitted(&q));
        // Every alias's rowid in the ORDER BY makes the sort canonical.
        q.order_by = vec![
            OrderKey { expr: SqlExpr::qcol("users", "rowid"), asc: true },
            OrderKey { expr: SqlExpr::qcol("roles", "rowid"), asc: true },
        ];
        assert!(reorder_permitted(&q));
        // LIMIT without a total order is order-sensitive even for multisets.
        q.order_by.clear();
        q.limit = Some(SqlExpr::int(3));
        assert!(!reorder_permitted(&q));
        // So is OFFSET alone: it selects a positional window.
        q.limit = None;
        q.offset = Some(SqlExpr::int(2));
        assert!(!reorder_permitted(&q));
    }
}
