//! Query planning: predicate classification, join-algorithm selection,
//! selection pushdown.

use qbs_common::Ident;
use qbs_sql::{SqlExpr, SqlSelect};
use qbs_tor::CmpOp;
use std::collections::BTreeSet;

/// Join algorithm chosen for one join step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JoinAlgorithm {
    /// Hash join on an equality key — `O(n + m)`.
    Hash,
    /// Nested-loop join — `O(n·m)`.
    NestedLoop,
}

/// A human-inspectable plan summary (used by tests and benches to assert
/// that the optimizer made the expected choices).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Plan {
    /// Join algorithm per join step, in execution order.
    pub joins: Vec<JoinAlgorithm>,
    /// Number of predicates pushed down to single-table scans.
    pub pushed_filters: usize,
    /// Number of scans satisfied by a hash index.
    pub index_scans: usize,
}

/// The table aliases a predicate references.
pub(crate) fn aliases_of(e: &SqlExpr, out: &mut BTreeSet<Ident>) {
    match e {
        SqlExpr::Column { qualifier, .. } => {
            if let Some(q) = qualifier {
                out.insert(q.clone());
            }
        }
        SqlExpr::Lit(_) | SqlExpr::Param(_) => {}
        SqlExpr::Cmp(a, _, b) => {
            aliases_of(a, out);
            aliases_of(b, out);
        }
        SqlExpr::And(ps) | SqlExpr::Or(ps) => {
            for p in ps {
                aliases_of(p, out);
            }
        }
        SqlExpr::Not(x) => aliases_of(x, out),
        SqlExpr::InSubquery(x, _) => aliases_of(x, out),
        SqlExpr::RowInSubquery(xs, _) => {
            for x in xs {
                aliases_of(x, out);
            }
        }
    }
}

/// Splits a `WHERE` clause into conjuncts.
pub(crate) fn conjuncts(e: &SqlExpr) -> Vec<SqlExpr> {
    match e {
        SqlExpr::And(ps) => ps.iter().flat_map(conjuncts).collect(),
        other => vec![other.clone()],
    }
}

/// Recognizes `a.x = b.y` equi-join predicates between two alias sets.
pub(crate) fn equi_join_keys(
    e: &SqlExpr,
    left: &BTreeSet<Ident>,
    right: &BTreeSet<Ident>,
) -> Option<(SqlExpr, SqlExpr)> {
    if let SqlExpr::Cmp(a, CmpOp::Eq, b) = e {
        let mut qa = BTreeSet::new();
        aliases_of(a, &mut qa);
        let mut qb = BTreeSet::new();
        aliases_of(b, &mut qb);
        if !qa.is_empty() && !qb.is_empty() {
            if qa.is_subset(left) && qb.is_subset(right) {
                return Some(((**a).clone(), (**b).clone()));
            }
            if qa.is_subset(right) && qb.is_subset(left) {
                return Some(((**b).clone(), (**a).clone()));
            }
        }
    }
    None
}

/// Recognizes `alias.col = <lit|param>` for index-scan pushdown; returns the
/// column name and the value expression.
pub(crate) fn index_eq(e: &SqlExpr, alias: &Ident) -> Option<(Ident, SqlExpr)> {
    if let SqlExpr::Cmp(a, CmpOp::Eq, b) = e {
        let col = |x: &SqlExpr| -> Option<Ident> {
            if let SqlExpr::Column { qualifier, name } = x {
                // Unqualified columns are attributed to the scan being
                // planned (single-table pushdown).
                if qualifier.is_none() || qualifier.as_ref() == Some(alias) {
                    return Some(name.clone());
                }
            }
            None
        };
        let is_const = |x: &SqlExpr| matches!(x, SqlExpr::Lit(_) | SqlExpr::Param(_));
        if let Some(c) = col(a) {
            if is_const(b) {
                return Some((c, (**b).clone()));
            }
        }
        if let Some(c) = col(b) {
            if is_const(a) {
                return Some((c, (**a).clone()));
            }
        }
    }
    None
}

/// Computes the plan summary for a query against the given database —
/// the same decisions [`crate::Database::execute_select`] makes.
pub fn explain(q: &SqlSelect, db: &crate::Database) -> Plan {
    let mut plan = Plan::default();
    let mut remaining: Vec<SqlExpr> =
        q.where_clause.as_ref().map(conjuncts).unwrap_or_default();

    // Selection pushdown per FROM item.
    for item in &q.from {
        let alias = item.alias().clone();
        let mut mine = BTreeSet::new();
        mine.insert(alias.clone());
        let mut rest = Vec::new();
        for c in remaining.drain(..) {
            let mut used = BTreeSet::new();
            aliases_of(&c, &mut used);
            let pushable = used.is_subset(&mine) && (!used.is_empty() || q.from.len() == 1);
            if pushable {
                plan.pushed_filters += 1;
                if let qbs_sql::FromItem::Table { name, .. } = item {
                    if let Some((col, _)) = index_eq(&c, &alias) {
                        if db.table(name).is_some_and(|t| t.has_index(&col)) {
                            plan.index_scans += 1;
                        }
                    }
                }
            } else {
                rest.push(c);
            }
        }
        remaining = rest;
    }

    // Join steps.
    let mut joined: BTreeSet<Ident> = BTreeSet::new();
    for (k, item) in q.from.iter().enumerate() {
        let alias = item.alias().clone();
        if k == 0 {
            joined.insert(alias);
            continue;
        }
        let mut right = BTreeSet::new();
        right.insert(alias.clone());
        let has_equi = remaining.iter().any(|c| equi_join_keys(c, &joined, &right).is_some());
        plan.joins.push(if has_equi { JoinAlgorithm::Hash } else { JoinAlgorithm::NestedLoop });
        // Consume the predicates that connect this step.
        remaining.retain(|c| {
            let mut used = BTreeSet::new();
            aliases_of(c, &mut used);
            let mut both = joined.clone();
            both.insert(alias.clone());
            !(used.is_subset(&both) && used.iter().any(|a| a == &alias))
        });
        joined.insert(alias);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting_flattens() {
        let e = SqlExpr::And(vec![
            SqlExpr::cmp(SqlExpr::col("a"), CmpOp::Eq, SqlExpr::int(1)),
            SqlExpr::And(vec![SqlExpr::cmp(SqlExpr::col("b"), CmpOp::Gt, SqlExpr::int(2))]),
        ]);
        assert_eq!(conjuncts(&e).len(), 2);
    }

    #[test]
    fn equi_join_detection_both_orientations() {
        let mut l = BTreeSet::new();
        l.insert(Ident::new("u"));
        let mut r = BTreeSet::new();
        r.insert(Ident::new("r"));
        let e = SqlExpr::cmp(SqlExpr::qcol("u", "k"), CmpOp::Eq, SqlExpr::qcol("r", "k"));
        assert!(equi_join_keys(&e, &l, &r).is_some());
        let flipped = SqlExpr::cmp(SqlExpr::qcol("r", "k"), CmpOp::Eq, SqlExpr::qcol("u", "k"));
        let (lk, _) = equi_join_keys(&flipped, &l, &r).unwrap();
        assert_eq!(lk, SqlExpr::qcol("u", "k"));
        // Non-equality is not an equi-join.
        let lt = SqlExpr::cmp(SqlExpr::qcol("u", "k"), CmpOp::Lt, SqlExpr::qcol("r", "k"));
        assert!(equi_join_keys(&lt, &l, &r).is_none());
    }

    #[test]
    fn index_eq_recognizes_literal_and_param() {
        let alias = Ident::new("t");
        let e = SqlExpr::cmp(SqlExpr::qcol("t", "id"), CmpOp::Eq, SqlExpr::int(5));
        assert!(index_eq(&e, &alias).is_some());
        let p = SqlExpr::cmp(SqlExpr::Param("uid".into()), CmpOp::Eq, SqlExpr::qcol("t", "id"));
        assert!(index_eq(&p, &alias).is_some());
        let col2 = SqlExpr::cmp(SqlExpr::qcol("t", "id"), CmpOp::Eq, SqlExpr::qcol("t", "x"));
        assert!(index_eq(&col2, &alias).is_none());
    }
}
