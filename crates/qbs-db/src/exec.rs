//! Execution frames and order-preserving operators.

use qbs_common::{Ident, Value};
use qbs_sql::SqlExpr;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A column of an execution frame.
#[derive(Clone, Debug, PartialEq)]
pub struct FrameCol {
    /// The table alias (or sub-query alias) the column came from.
    pub alias: Ident,
    /// Column name.
    pub name: Ident,
}

/// A batch of rows flowing between operators.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Column descriptors.
    pub cols: Vec<FrameCol>,
    /// Row data.
    pub rows: Vec<Vec<Value>>,
}

impl Frame {
    /// An empty frame with the given columns.
    pub fn new(cols: Vec<FrameCol>) -> Frame {
        Frame { cols, rows: Vec::new() }
    }

    /// Resolves a column reference to a position.
    pub fn resolve(&self, qualifier: Option<&Ident>, name: &Ident) -> Option<usize> {
        resolve_cols(&self.cols, qualifier, name)
    }
}

/// Resolves a column reference against a column layout: the unique
/// matching position, or `None` when the reference is unknown or
/// ambiguous. The planner uses this at plan time (join keys, projection)
/// and [`Frame::resolve`] delegates here, so both sides agree exactly.
pub(crate) fn resolve_cols(
    cols: &[FrameCol],
    qualifier: Option<&Ident>,
    name: &Ident,
) -> Option<usize> {
    let mut found = None;
    for (i, c) in cols.iter().enumerate() {
        let matches = c.name == *name
            && match qualifier {
                Some(q) => &c.alias == q,
                None => true,
            };
        if matches {
            if found.is_some() {
                return None; // ambiguous
            }
            found = Some(i);
        }
    }
    found
}

/// A row as seen by expression evaluation: either one materialized slice or
/// the logical concatenation of two slices — the latter lets joins evaluate
/// their predicate *before* cloning the combined row.
#[derive(Clone, Copy)]
pub(crate) enum RowRef<'a> {
    /// One contiguous row.
    Slice(&'a [Value]),
    /// `left ++ right` without materialization.
    Pair(&'a [Value], &'a [Value]),
}

impl<'a> RowRef<'a> {
    fn at(&self, i: usize) -> &'a Value {
        match self {
            RowRef::Slice(r) => &r[i],
            RowRef::Pair(l, r) => {
                if i < l.len() {
                    &l[i]
                } else {
                    &r[i - l.len()]
                }
            }
        }
    }
}

/// Execution counters for benchmarks and plan tests.
///
/// Equality compares the *counters* only: the wall-clock fields
/// ([`parse_ns`](Self::parse_ns), [`plan_ns`](Self::plan_ns),
/// [`exec_ns`](Self::exec_ns)) vary run to run and are excluded, so two
/// executions of the same plan over the same data still compare equal.
#[derive(Clone, Debug, Default)]
pub struct ExecStats {
    /// Rows read from base tables.
    pub rows_scanned: usize,
    /// Row pairs compared by join operators.
    pub join_comparisons: usize,
    /// Join algorithms used by the top-level query, in execution order.
    pub joins: Vec<&'static str>,
    /// True when an index satisfied a selection of the top-level query.
    pub used_index: bool,
    /// Predicate sub-queries (`IN (SELECT …)`) actually executed; with the
    /// hoisting cache each distinct sub-query runs once per statement.
    pub subqueries_executed: usize,
    /// Predicate sub-query evaluations answered from the hoisting cache.
    pub subquery_cache_hits: usize,
    /// Executions that reused an already-computed [`PhysicalPlan`]
    /// (prepared statement or plan-cache hit) instead of planning afresh
    /// — always 0 on the plain `execute_*` paths, which plan per call.
    ///
    /// [`PhysicalPlan`]: crate::PhysicalPlan
    pub plan_cache_hits: usize,
    /// Executions that re-planned because a referenced table's generation
    /// counter moved since the plan was computed (inserts, index builds).
    pub replans: usize,
    /// Wall-clock time spent parsing SQL text for this call — non-zero
    /// only on paths that parse (a `query_cached` miss); prepared
    /// statements parse once, at prepare time.
    pub parse_ns: u64,
    /// Wall-clock time spent planning (or resolving a cached plan) for
    /// this call.
    pub plan_ns: u64,
    /// Wall-clock time spent interpreting the plan for this call.
    pub exec_ns: u64,
}

impl PartialEq for ExecStats {
    fn eq(&self, other: &ExecStats) -> bool {
        // Timing fields are deliberately excluded — see the type docs.
        self.rows_scanned == other.rows_scanned
            && self.join_comparisons == other.join_comparisons
            && self.joins == other.joins
            && self.used_index == other.used_index
            && self.subqueries_executed == other.subqueries_executed
            && self.subquery_cache_hits == other.subquery_cache_hits
            && self.plan_cache_hits == other.plan_cache_hits
            && self.replans == other.replans
    }
}

impl ExecStats {
    /// Folds the base-table and sub-query counters of `other` into `self`.
    /// `joins` and `used_index` are *not* merged: they describe the
    /// top-level statement, not its nested sub-queries.
    pub(crate) fn absorb_nested(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.join_comparisons += other.join_comparisons;
        self.subqueries_executed += other.subqueries_executed;
        self.subquery_cache_hits += other.subquery_cache_hits;
    }
}

/// Errors raised during execution.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecError {
    /// Description.
    pub message: String,
}

impl ExecError {
    pub(crate) fn new(m: impl Into<String>) -> ExecError {
        ExecError { message: m.into() }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution error: {}", self.message)
    }
}

impl std::error::Error for ExecError {}

/// The hoisted result of one uncorrelated predicate sub-query: the rows in
/// execution order plus hash sets for O(1) membership probes.
pub(crate) struct SubResult {
    /// First-column values (what `x IN (SELECT …)` probes).
    firsts: HashSet<Value>,
    /// Whole rows (what `(x, y) IN (SELECT …)` probes).
    rowset: HashSet<Vec<Value>>,
}

impl SubResult {
    pub(crate) fn from_frame(frame: Frame) -> SubResult {
        let firsts = frame.rows.iter().filter_map(|r| r.first().cloned()).collect();
        let rowset = frame.rows.into_iter().collect();
        SubResult { firsts, rowset }
    }
}

/// Evaluation context: bind parameters plus a callback resolving an
/// `IN (subquery)` to its hoisted [`SubResult`] (executed once, cached).
pub(crate) struct EvalCtx<'a> {
    pub params: &'a super::db::Params,
    pub subquery: &'a dyn Fn(&qbs_sql::SqlSelect) -> Result<Arc<SubResult>, ExecError>,
}

/// Evaluates a scalar SQL expression against one (possibly split) row.
pub(crate) fn eval_expr(
    e: &SqlExpr,
    frame: &Frame,
    row: RowRef<'_>,
    ctx: &EvalCtx<'_>,
) -> Result<Value, ExecError> {
    match e {
        SqlExpr::Column { qualifier, name } => frame
            .resolve(qualifier.as_ref(), name)
            .map(|i| row.at(i).clone())
            .ok_or_else(|| {
                ExecError::new(format!(
                    "unresolved column {}{name}",
                    qualifier.as_ref().map(|q| format!("{q}.")).unwrap_or_default()
                ))
            }),
        SqlExpr::Lit(v) => Ok(v.clone()),
        SqlExpr::Param(p) => ctx
            .params
            .get(p)
            .cloned()
            .ok_or_else(|| ExecError::new(format!("unbound parameter :{p}"))),
        SqlExpr::Cmp(a, op, b) => {
            let x = eval_expr(a, frame, row, ctx)?;
            let y = eval_expr(b, frame, row, ctx)?;
            Ok(Value::from(op.test(x.total_cmp(&y))))
        }
        SqlExpr::And(parts) => {
            for p in parts {
                if !truthy(&eval_expr(p, frame, row, ctx)?)? {
                    return Ok(Value::from(false));
                }
            }
            Ok(Value::from(true))
        }
        SqlExpr::Or(parts) => {
            for p in parts {
                if truthy(&eval_expr(p, frame, row, ctx)?)? {
                    return Ok(Value::from(true));
                }
            }
            Ok(Value::from(false))
        }
        SqlExpr::Not(x) => Ok(Value::from(!truthy(&eval_expr(x, frame, row, ctx)?)?)),
        SqlExpr::InSubquery(x, q) => {
            let v = eval_expr(x, frame, row, ctx)?;
            let sub = (ctx.subquery)(q)?;
            Ok(Value::from(sub.firsts.contains(&v)))
        }
        SqlExpr::RowInSubquery(xs, q) => {
            let vs = xs
                .iter()
                .map(|x| eval_expr(x, frame, row, ctx))
                .collect::<Result<Vec<_>, _>>()?;
            let sub = (ctx.subquery)(q)?;
            Ok(Value::from(sub.rowset.contains(&vs)))
        }
        // Aggregates never evaluate against a single row: the planner
        // rewrites every aggregate reference to its hash-aggregate output
        // column before execution.
        SqlExpr::Agg { agg, .. } => {
            Err(ExecError::new(format!("aggregate {} outside a grouped context", agg.sql())))
        }
    }
}

pub(crate) fn truthy(v: &Value) -> Result<bool, ExecError> {
    v.as_bool().ok_or_else(|| ExecError::new(format!("expected boolean, got {v:?}")))
}

/// Order-preserving filter.
pub(crate) fn filter(
    frame: Frame,
    pred: &SqlExpr,
    ctx: &EvalCtx<'_>,
) -> Result<Frame, ExecError> {
    let shell = Frame::new(frame.cols.clone());
    let mut rows = Vec::new();
    for row in frame.rows {
        if truthy(&eval_expr(pred, &shell, RowRef::Slice(&row), ctx)?)? {
            rows.push(row);
        }
    }
    Ok(Frame { cols: frame.cols, rows })
}

/// Materializes one joined output row: the concatenated pair, or — when
/// the statement's projection is fused into this join — just the gathered
/// output columns, never building the full combined row.
fn emit_pair(
    l: &[Value],
    r: &[Value],
    emit: Option<&(Vec<FrameCol>, Vec<usize>)>,
) -> Vec<Value> {
    match emit {
        Some((_, idx)) => {
            let pair = RowRef::Pair(l, r);
            idx.iter().map(|&i| pair.at(i).clone()).collect()
        }
        None => {
            let mut combined = l.to_vec();
            combined.extend(r.iter().cloned());
            combined
        }
    }
}

/// The output layout of a join: the concatenated input columns, or the
/// fused projection's columns.
fn join_cols(
    left: &Frame,
    right: &Frame,
    emit: Option<&(Vec<FrameCol>, Vec<usize>)>,
) -> (Vec<FrameCol>, Frame) {
    let mut pair_cols = left.cols.clone();
    pair_cols.extend(right.cols.clone());
    let pair_frame = Frame::new(pair_cols.clone());
    let out = match emit {
        Some((cols, _)) => cols.clone(),
        None => pair_cols,
    };
    (out, pair_frame)
}

/// A join's layouts precomputed at plan-compile time: what [`join_cols`]
/// re-derives (three column-vector clones) on every execute. The bytecode
/// VM builds one per join step whenever both input layouts are
/// compile-time facts; the interpreter always passes `None`.
#[derive(Debug)]
pub(crate) struct JoinLayout {
    /// The join's output columns (the concatenated pair, or the fused
    /// projection's columns).
    pub out: Vec<FrameCol>,
    /// The concatenated-pair shell frame residual predicates evaluate in.
    pub pair: Frame,
}

/// The (output columns, pair shell) for one join execution: borrowed from
/// the precomputed layout when one exists, otherwise derived from the
/// input frames exactly as before.
fn join_layout<'a>(
    left: &Frame,
    right: &Frame,
    emit: Option<&(Vec<FrameCol>, Vec<usize>)>,
    layout: Option<&'a JoinLayout>,
    computed: &'a mut Option<Frame>,
) -> (Vec<FrameCol>, &'a Frame) {
    match layout {
        Some(l) => (l.out.clone(), &l.pair),
        None => {
            let (out, pair) = join_cols(left, right, emit);
            (out, computed.insert(pair))
        }
    }
}

/// Nested-loop join: left-major order, right insertion order (the TOR `⋈`
/// axiom order). `O(n·m)`. The predicate is evaluated on a split row view,
/// so only matching pairs are ever materialized.
pub(crate) fn nested_loop_join(
    left: Frame,
    right: Frame,
    pred: Option<&SqlExpr>,
    emit: Option<&(Vec<FrameCol>, Vec<usize>)>,
    layout: Option<&JoinLayout>,
    ctx: &EvalCtx<'_>,
    stats: &mut ExecStats,
) -> Result<Frame, ExecError> {
    let mut computed = None;
    let (cols, pair_frame) = join_layout(&left, &right, emit, layout, &mut computed);
    let mut rows = Vec::new();
    for l in &left.rows {
        for r in &right.rows {
            stats.join_comparisons += 1;
            let keep = match pred {
                Some(p) => truthy(&eval_expr(p, pair_frame, RowRef::Pair(l, r), ctx)?)?,
                None => true,
            };
            if keep {
                rows.push(emit_pair(l, r, emit));
            }
        }
    }
    stats.joins.push("nested-loop");
    Ok(Frame { cols, rows })
}

/// A hash-join key: a column position resolved at plan time (the fast
/// path — direct row access, no per-row expression walk) or an arbitrary
/// key expression evaluated per row.
pub(crate) enum JoinKey<'a> {
    /// Key at a fixed column position of the input frame.
    Idx(usize),
    /// Key computed by evaluating an expression against each row.
    Expr(&'a SqlExpr),
}

/// Hash join on equality keys: builds on the right input (buckets keep right
/// insertion order), probes left rows in order — output order is identical
/// to the nested-loop join. `O(n + m)`.
#[allow(clippy::too_many_arguments)] // one call site; mirrors nested_loop_join
pub(crate) fn hash_join(
    left: Frame,
    right: Frame,
    left_key: JoinKey<'_>,
    right_key: JoinKey<'_>,
    residual: Option<&SqlExpr>,
    emit: Option<&(Vec<FrameCol>, Vec<usize>)>,
    layout: Option<&JoinLayout>,
    ctx: &EvalCtx<'_>,
    stats: &mut ExecStats,
) -> Result<Frame, ExecError> {
    let mut buckets: HashMap<Value, Vec<usize>> = HashMap::new();
    for (i, r) in right.rows.iter().enumerate() {
        let k = match &right_key {
            JoinKey::Idx(j) => r[*j].clone(),
            JoinKey::Expr(e) => eval_expr(e, &right, RowRef::Slice(r), ctx)?,
        };
        buckets.entry(k).or_default().push(i);
    }
    let mut computed = None;
    let (cols, pair_frame) = join_layout(&left, &right, emit, layout, &mut computed);
    let mut rows = Vec::new();
    for l in &left.rows {
        let probe_owned;
        let matches = match &left_key {
            JoinKey::Idx(j) => buckets.get(&l[*j]),
            JoinKey::Expr(e) => {
                probe_owned = eval_expr(e, &left, RowRef::Slice(l), ctx)?;
                buckets.get(&probe_owned)
            }
        };
        if let Some(matches) = matches {
            for &ri in matches {
                stats.join_comparisons += 1;
                let r = &right.rows[ri];
                let keep = match residual {
                    Some(p) => truthy(&eval_expr(p, pair_frame, RowRef::Pair(l, r), ctx)?)?,
                    None => true,
                };
                if keep {
                    rows.push(emit_pair(l, r, emit));
                }
            }
        }
    }
    stats.joins.push("hash");
    Ok(Frame { cols, rows })
}

/// Stable sort by keys (ascending/descending per key).
pub(crate) fn sort(
    frame: Frame,
    keys: &[(SqlExpr, bool)],
    ctx: &EvalCtx<'_>,
) -> Result<Frame, ExecError> {
    let shell = Frame::new(frame.cols.clone());
    let mut decorated: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(frame.rows.len());
    for row in frame.rows {
        let mut ks = Vec::with_capacity(keys.len());
        for (k, _) in keys {
            ks.push(eval_expr(k, &shell, RowRef::Slice(&row), ctx)?);
        }
        decorated.push((ks, row));
    }
    decorated.sort_by(|(ka, _), (kb, _)| {
        for (i, (_, asc)) in keys.iter().enumerate() {
            let ord = ka[i].total_cmp(&kb[i]);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(Frame { cols: frame.cols, rows: decorated.into_iter().map(|(_, r)| r).collect() })
}

/// [`sort`] specialized to key positions resolved at plan-compile time:
/// the same stable order (`total_cmp` per key, ascending/descending) with
/// rows compared in place — no per-row key evaluation, cloning, or
/// decoration. The bytecode VM takes this path when every ORDER BY key is
/// a plain column it can resolve against the pre-sort layout.
pub(crate) fn sort_positions(mut frame: Frame, keys: &[(usize, bool)]) -> Frame {
    frame.rows.sort_by(|a, b| {
        for (pos, asc) in keys {
            let ord = a[*pos].total_cmp(&b[*pos]);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    frame
}

/// Grouped hash aggregation — the `GROUP BY` operator shared by the plan
/// interpreter and the bytecode VM. One output row per distinct key tuple,
/// in first-occurrence key order: the TOR `Group` axiom order, which is
/// also the iteration order of the kernel's map-accumulator loops.
///
/// Runs in two columnar passes over the materialized input. Pass one
/// assigns each row a group id (keys resolve to column positions up
/// front; only a non-column key, never planned today, pays per-row
/// evaluation). Pass two transposes each aggregate's input column into a
/// typed `i64` vector and folds it group-wise against the id vector.
///
/// The error doctrine mirrors the scalar aggregates
/// ([`Database`](crate::Database) on a `SqlScalar`): a non-integer value
/// under `SUM`/`MIN`/`MAX` is a type error with the same message, and
/// `SUM` uses checked addition. But an empty *group* cannot exist — a key
/// only appears because a row carried it — so grouped `MIN`/`MAX` never
/// raise the empty-aggregate error; empty input yields zero groups.
pub(crate) fn hash_aggregate(
    frame: Frame,
    node: &crate::planner::AggregateNode,
    ctx: &EvalCtx<'_>,
) -> Result<Frame, ExecError> {
    use qbs_tor::AggKind;
    let shell = Frame::new(frame.cols.clone());
    let resolve_pos = |e: &SqlExpr| match e {
        SqlExpr::Column { qualifier, name } => frame.resolve(qualifier.as_ref(), name),
        _ => None,
    };
    // Pass 1: group ids in first-occurrence order. The single resolved
    // key — every planned `GROUP BY` today — probes the hash table with
    // the borrowed cell value, no per-row key vector or clone; compound
    // or computed keys take the general path.
    let key_pos: Vec<Option<usize>> = node.keys.iter().map(&resolve_pos).collect();
    let mut group_keys: Vec<Vec<Value>> = Vec::new();
    let mut gids: Vec<usize> = Vec::with_capacity(frame.rows.len());
    if let [Some(pos)] = key_pos[..] {
        let mut index: HashMap<&Value, usize> = HashMap::new();
        for row in &frame.rows {
            let next = group_keys.len();
            let gid = *index.entry(&row[pos]).or_insert(next);
            if gid == next {
                group_keys.push(vec![row[pos].clone()]);
            }
            gids.push(gid);
        }
    } else {
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        for row in &frame.rows {
            let mut key = Vec::with_capacity(node.keys.len());
            for (k, pos) in node.keys.iter().zip(&key_pos) {
                key.push(match pos {
                    Some(i) => row[*i].clone(),
                    None => eval_expr(k, &shell, RowRef::Slice(row), ctx)?,
                });
            }
            let gid = match index.get(&key) {
                Some(&g) => g,
                None => {
                    let g = group_keys.len();
                    index.insert(key.clone(), g);
                    group_keys.push(key);
                    g
                }
            };
            gids.push(gid);
        }
    }

    // Pass 2: fold each aggregate over (group id, input) pairs.
    let n = group_keys.len();
    let mut agg_cols: Vec<Vec<i64>> = Vec::with_capacity(node.aggs.len());
    for spec in &node.aggs {
        let col = match (&spec.agg, &spec.input) {
            // COUNT ignores its argument: rows carry no NULLs, so
            // `COUNT(c)` and `COUNT(*)` agree.
            (AggKind::Count, _) => {
                let mut counts = vec![0i64; n];
                for &g in &gids {
                    counts[g] += 1;
                }
                counts
            }
            (agg, None) => {
                return Err(ExecError::new(format!("{} requires an argument", agg.sql())))
            }
            (agg, Some(input)) => {
                // Transpose the input column into a typed vector — the
                // scalar aggregates' type doctrine, applied per value.
                let pos = resolve_pos(input);
                let int_of = |v: &Value| {
                    v.as_int().ok_or_else(|| {
                        ExecError::new(format!("{} over non-integer value {v:?}", agg.sql()))
                    })
                };
                let mut xs: Vec<i64> = Vec::with_capacity(frame.rows.len());
                for row in &frame.rows {
                    xs.push(match pos {
                        Some(i) => int_of(&row[i])?,
                        None => int_of(&eval_expr(input, &shell, RowRef::Slice(row), ctx)?)?,
                    });
                }
                match agg {
                    AggKind::Sum => {
                        let mut acc = vec![0i64; n];
                        for (&g, &x) in gids.iter().zip(&xs) {
                            acc[g] = acc[g]
                                .checked_add(x)
                                .ok_or_else(|| ExecError::new("SUM overflows i64"))?;
                        }
                        acc
                    }
                    AggKind::Min => fold_extremum(&gids, &xs, n, i64::min),
                    AggKind::Max => fold_extremum(&gids, &xs, n, i64::max),
                    AggKind::Count => unreachable!("COUNT handled above"),
                }
            }
        };
        agg_cols.push(col);
    }

    let mut rows = Vec::with_capacity(n);
    for (g, key) in group_keys.into_iter().enumerate() {
        let mut row = key;
        row.extend(agg_cols.iter().map(|c| Value::from(c[g])));
        rows.push(row);
    }
    Ok(Frame { cols: node.out_cols.clone(), rows })
}

/// Group-wise `MIN`/`MAX` fold. Every group has at least one row (its key
/// came from one), so the per-group accumulator always initializes.
fn fold_extremum(gids: &[usize], xs: &[i64], n: usize, pick: fn(i64, i64) -> i64) -> Vec<i64> {
    let mut acc: Vec<Option<i64>> = vec![None; n];
    for (&g, &x) in gids.iter().zip(xs) {
        acc[g] = Some(match acc[g] {
            None => x,
            Some(a) => pick(a, x),
        });
    }
    acc.into_iter().map(|a| a.expect("group has at least one row")).collect()
}

/// First-occurrence duplicate elimination (preserves order) — hash-set
/// membership, `O(n)` expected instead of the old `O(n²)` linear scan.
pub(crate) fn distinct(frame: Frame) -> Frame {
    let mut seen: HashSet<Vec<Value>> = HashSet::with_capacity(frame.rows.len());
    let mut rows = Vec::with_capacity(frame.rows.len());
    for r in frame.rows {
        if !seen.contains(&r) {
            seen.insert(r.clone());
            rows.push(r);
        }
    }
    Frame { cols: frame.cols, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_tor::CmpOp;

    fn fc(alias: &str, name: &str) -> FrameCol {
        FrameCol { alias: alias.into(), name: name.into() }
    }

    fn ctx<'a>(params: &'a super::super::db::Params) -> EvalCtx<'a> {
        EvalCtx { params, subquery: &|_| Err(ExecError::new("no subqueries in this test")) }
    }

    fn two_frames() -> (Frame, Frame) {
        let left = Frame {
            cols: vec![fc("l", "k"), fc("l", "x")],
            rows: vec![
                vec![1.into(), 10.into()],
                vec![2.into(), 20.into()],
                vec![1.into(), 30.into()],
            ],
        };
        let right = Frame {
            cols: vec![fc("r", "k"), fc("r", "y")],
            rows: vec![
                vec![1.into(), 100.into()],
                vec![1.into(), 200.into()],
                vec![3.into(), 300.into()],
            ],
        };
        (left, right)
    }

    #[test]
    fn hash_join_order_matches_nested_loop() {
        let params = super::super::db::Params::new();
        let c = ctx(&params);
        let (l, r) = two_frames();
        let pred = SqlExpr::cmp(SqlExpr::qcol("l", "k"), CmpOp::Eq, SqlExpr::qcol("r", "k"));
        let mut s1 = ExecStats::default();
        let nl = nested_loop_join(l.clone(), r.clone(), Some(&pred), None, None, &c, &mut s1)
            .unwrap();
        let mut s2 = ExecStats::default();
        let lk = SqlExpr::qcol("l", "k");
        let rk = SqlExpr::qcol("r", "k");
        let hj = hash_join(
            l.clone(),
            r.clone(),
            JoinKey::Expr(&lk),
            JoinKey::Expr(&rk),
            None,
            None,
            None,
            &c,
            &mut s2,
        )
        .unwrap();
        assert_eq!(nl.rows, hj.rows, "hash join must preserve the axiom order");
        assert_eq!(nl.rows.len(), 4);
        // Hash join does asymptotically less work.
        assert!(s2.join_comparisons < s1.join_comparisons);
        // Plan-resolved key positions take the same path to the same rows.
        let mut s3 = ExecStats::default();
        let by_idx =
            hash_join(l, r, JoinKey::Idx(0), JoinKey::Idx(0), None, None, None, &c, &mut s3)
                .unwrap();
        assert_eq!(by_idx.rows, hj.rows);
        assert_eq!(s3.join_comparisons, s2.join_comparisons);
    }

    #[test]
    fn distinct_keeps_first_occurrence() {
        let f = Frame {
            cols: vec![fc("t", "a")],
            rows: vec![vec![1.into()], vec![2.into()], vec![1.into()]],
        };
        let d = distinct(f);
        assert_eq!(d.rows, vec![vec![Value::from(1)], vec![Value::from(2)]]);
    }

    #[test]
    fn sort_is_stable_and_supports_desc() {
        let params = super::super::db::Params::new();
        let c = ctx(&params);
        let f = Frame {
            cols: vec![fc("t", "a"), fc("t", "b")],
            rows: vec![
                vec![1.into(), 1.into()],
                vec![2.into(), 2.into()],
                vec![1.into(), 3.into()],
            ],
        };
        let sorted = sort(f, &[(SqlExpr::qcol("t", "a"), false)], &c).unwrap();
        assert_eq!(sorted.rows[0][0], Value::from(2));
        // Equal keys keep input order (b = 1 before b = 3).
        assert_eq!(sorted.rows[1][1], Value::from(1));
        assert_eq!(sorted.rows[2][1], Value::from(3));
    }

    #[test]
    fn ambiguous_column_is_detected() {
        let f = Frame { cols: vec![fc("a", "k"), fc("b", "k")], rows: vec![] };
        assert_eq!(f.resolve(None, &"k".into()), None);
        assert_eq!(f.resolve(Some(&"a".into()), &"k".into()), Some(0));
    }

    #[test]
    fn split_row_view_resolves_across_the_seam() {
        let params = super::super::db::Params::new();
        let c = ctx(&params);
        let frame =
            Frame { cols: vec![fc("l", "k"), fc("l", "x"), fc("r", "y")], rows: vec![] };
        let l: Vec<Value> = vec![1.into(), 2.into()];
        let r: Vec<Value> = vec![3.into()];
        let e = SqlExpr::cmp(SqlExpr::qcol("r", "y"), CmpOp::Gt, SqlExpr::qcol("l", "x"));
        let v = eval_expr(&e, &frame, RowRef::Pair(&l, &r), &c).unwrap();
        assert_eq!(v, Value::from(true));
    }
}
