//! An in-memory relational database engine — the evaluation substrate.
//!
//! The paper's experiments run against MySQL through Hibernate; this crate
//! provides the equivalent substrate: tables with insertion-ordered rows and
//! a hidden monotone `rowid` column, hash indexes, and a planner/executor
//! that chooses between nested-loop and hash joins, pushes selections down
//! to (optionally indexed) scans, and implements `ORDER BY`/`LIMIT`/
//! `DISTINCT`/aggregates.
//!
//! Planning happens **once**: [`plan`]/[`plan_with`] compute a
//! [`PhysicalPlan`] (pushdown, index probes, join keys, join order,
//! cardinality estimates, `IN`-subquery hoisting), [`explain`] renders that
//! IR as a [`Plan`] summary, and [`Database::execute_plan`] interprets it —
//! the summary cannot diverge from execution because both consume the same
//! value.
//!
//! Two properties matter for reproducing the paper:
//!
//! * **Order preservation.** Scans yield insertion order; filters and
//!   projections keep their input order; both join algorithms produce the
//!   left-major, right-insertion-order sequence of the TOR `⋈` axioms (the
//!   hash join builds its table on the right input with per-key buckets in
//!   insertion order, then probes left rows in order).
//! * **Asymptotics.** The nested-loop join is `O(n·m)` while the hash join
//!   is `O(n + m)` — the source of the Fig. 14c gap between application-code
//!   joins and pushed-down joins.
//!
//! # Example
//!
//! ```
//! use qbs_common::{Schema, FieldType, Value};
//! use qbs_db::{Database, Params, QueryOutput};
//! use qbs_sql::parse_query;
//!
//! let mut db = Database::new();
//! db.create_table(
//!     Schema::builder("users")
//!         .field("id", FieldType::Int)
//!         .field("roleId", FieldType::Int)
//!         .finish(),
//! ).unwrap();
//! db.insert("users", vec![Value::from(1), Value::from(10)]).unwrap();
//! db.insert("users", vec![Value::from(2), Value::from(20)]).unwrap();
//!
//! let q = parse_query("SELECT id FROM users WHERE roleId = 10").unwrap();
//! let out = db.execute_select(&q, &Params::new()).unwrap();
//! assert_eq!(out.rows.len(), 1);
//! ```

mod analyze;
mod compare;
mod conn;
mod db;
mod exec;
mod planner;
mod stmt;
mod storage;
mod vm;

pub use analyze::{AnalyzedPlan, OpActuals, PlanActuals, ScanActuals};
pub use compare::{rows_agree, rows_diff, RowsDiff, RowsEquivalence};
pub use conn::{Connection, PlanCacheStats};
pub use db::{Database, DbError, Params, QueryOutput, SelectOutput};
pub use exec::{ExecStats, Frame, FrameCol};
pub use planner::{
    explain, explain_with, plan, plan_with, IndexProbe, JoinAlgorithm, JoinStep, PhysicalPlan,
    Plan, PlanConfig, ScanNode, ScanSource,
};
pub use stmt::{Binder, ParamSlot, PreparedStatement};
pub use storage::Table;
pub use vm::{vm_metrics, PlanProgram};
