//! The database façade: catalog plus query execution.
//!
//! Planning and execution are split: [`crate::planner::plan_with`] computes
//! a [`PhysicalPlan`] once, and [`Database::execute_plan`] interprets that
//! IR. `explain()` renders the *same* plan value, so the planner cannot
//! drift from the executor.

use crate::analyze::{OpActuals, PlanActuals, ScanActuals};
use crate::exec::{
    self, distinct, eval_expr, filter, hash_join, nested_loop_join, sort, EvalCtx, ExecStats,
    Frame, RowRef, SubResult,
};
use crate::planner::{plan_with, PhysicalPlan, PlanConfig, ScanNode, ScanSource};
use crate::storage::{Chunk, ColumnVec, Table};
use qbs_common::{FieldType, Ident, Record, Relation, Schema, SchemaRef, Value};
use qbs_sql::{SqlExpr, SqlQuery, SqlSelect};
use qbs_tor::{AggKind, CmpOp};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Bind parameters for query execution.
pub type Params = BTreeMap<Ident, Value>;

/// Errors from the database layer.
#[derive(Clone, Debug, PartialEq)]
pub enum DbError {
    /// Unknown table.
    UnknownTable(Ident),
    /// A table with this name already exists.
    DuplicateTable(Ident),
    /// Schema problem (bad column etc.).
    Schema(String),
    /// `MIN`/`MAX` over an empty relation: the paper's TOR axioms assign
    /// the infinities, but a concrete executor has no honest `i64` for
    /// ±∞ — callers (e.g. the differential oracle) must treat the case
    /// explicitly instead of comparing sentinel garbage.
    EmptyAggregate(String),
    /// A bind-parameter problem: missing, unknown, or type-mismatched
    /// against a prepared statement's typed slots.
    Param(String),
    /// Runtime execution failure.
    Exec(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            DbError::DuplicateTable(t) => write!(f, "table `{t}` already exists"),
            DbError::Schema(e) => write!(f, "schema error: {e}"),
            DbError::EmptyAggregate(agg) => {
                write!(f, "{agg} over an empty relation has no value")
            }
            DbError::Param(e) => write!(f, "bind error: {e}"),
            DbError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<exec::ExecError> for DbError {
    fn from(e: exec::ExecError) -> Self {
        DbError::Exec(e.to_string())
    }
}

/// Result rows of a select, plus execution stats.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectOutput {
    /// The rows as an ordered relation.
    pub rows: Relation,
    /// Execution counters.
    pub stats: ExecStats,
}

/// Result of executing any [`SqlQuery`].
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutput {
    /// Relational result.
    Rows(SelectOutput),
    /// Scalar (aggregate / boolean) result.
    Scalar {
        /// The value.
        value: Value,
        /// Execution counters.
        stats: ExecStats,
    },
}

/// The cross-statement hoisting cache for uncorrelated predicate
/// sub-queries, shared by every statement running through one
/// [`Connection`](crate::Connection) (the plain `execute_*` paths create a
/// fresh state per statement).
///
/// Only **parameter-free** sub-queries live here — a result that depends on
/// bind parameters is only valid for the statement execution that computed
/// it, so those are cached per plan run instead ([`LocalSubs`]). Each
/// entry is tagged with the database *version* it was computed under:
/// under MVCC, statements pinned to different snapshots execute
/// concurrently through the same connection, and a hash set materialized
/// from an older snapshot must not answer probes from a newer one (or vice
/// versa). A table mutation bumps the connection version and additionally
/// clears the cache ([`SubqueryState::clear`]).
pub(crate) struct SubqueryState {
    config: PlanConfig,
    cache: Mutex<Vec<(SqlSelect, u64, Arc<SubResult>)>>,
}

impl SubqueryState {
    pub(crate) fn new(config: PlanConfig) -> SubqueryState {
        SubqueryState { config, cache: Mutex::new(Vec::new()) }
    }

    /// Drops every cached sub-query result (table data changed).
    pub(crate) fn clear(&self) {
        self.lock().clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<(SqlSelect, u64, Arc<SubResult>)>> {
        // A poisoned cache only means another statement panicked mid-push;
        // the entries themselves are immutable results, still valid.
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lookup(&self, q: &SqlSelect, version: u64) -> Option<Arc<SubResult>> {
        self.lock().iter().find(|(s, v, _)| *v == version && s == q).map(|(_, _, r)| r.clone())
    }

    fn insert(&self, q: SqlSelect, version: u64, result: Arc<SubResult>) {
        self.lock().push((q, version, result));
    }
}

/// Per-plan-run sub-query state: the counters nested executions accumulate
/// (folded into the statement's [`ExecStats`] when the run finishes — no
/// shared mutable counters between concurrent statements) and the cache
/// for hoisted sub-queries that reference bind parameters (valid only for
/// this run's bindings).
#[derive(Default)]
struct LocalSubs {
    stats: ExecStats,
    cache: Vec<(SqlSelect, Arc<SubResult>)>,
}

/// The in-memory database: a catalog of [`Table`]s plus the executor.
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: BTreeMap<Ident, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Creates a table from a named schema.
    ///
    /// # Errors
    ///
    /// [`DbError::DuplicateTable`] when the name is taken;
    /// [`DbError::Schema`] when the schema is anonymous.
    pub fn create_table(&mut self, schema: SchemaRef) -> Result<(), DbError> {
        let name = schema
            .name()
            .cloned()
            .ok_or_else(|| DbError::Schema("tables need named schemas".to_string()))?;
        if self.tables.contains_key(&name) {
            return Err(DbError::DuplicateTable(name));
        }
        self.tables.insert(name, Table::new(schema));
        Ok(())
    }

    /// Inserts a row.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownTable`] when the table does not exist.
    ///
    /// # Panics
    ///
    /// Panics on arity/type mismatch (see [`Table::insert`]).
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> Result<(), DbError> {
        self.tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.into()))?
            .insert(values);
        Ok(())
    }

    /// Inserts a batch of rows as one storage chunk with one generation
    /// bump (see [`Table::insert_many`]) — the bulk-load path for datagen
    /// and benchmark setup, and the atomic unit concurrent readers see.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownTable`] when the table does not exist.
    ///
    /// # Panics
    ///
    /// Panics on arity/type mismatch (see [`Table::insert_many`]).
    pub fn insert_many(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<(), DbError> {
        self.tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.into()))?
            .insert_many(rows);
        Ok(())
    }

    /// Builds a hash index on `table.column` (the paper notes Hibernate
    /// auto-creates indexes on key columns).
    ///
    /// # Errors
    ///
    /// Unknown table or column.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<(), DbError> {
        self.tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.into()))?
            .create_index(&column.into())
            .map_err(|e| DbError::Schema(e.to_string()))
    }

    /// Table lookup.
    pub fn table(&self, name: &Ident) -> Option<&Table> {
        self.tables.get(name)
    }

    /// All table names.
    pub fn table_names(&self) -> impl Iterator<Item = &Ident> {
        self.tables.keys()
    }

    /// A kernel-interpreter environment with every table bound as an
    /// ordered relation — the bridge that lets the original imperative
    /// fragment and the SQL executor run against the *same* data (the
    /// differential-oracle setup).
    pub fn env(&self) -> qbs_tor::Env {
        let mut env = qbs_tor::Env::new();
        for (name, table) in &self.tables {
            env.bind_table(name.clone(), table.relation());
        }
        env
    }

    /// Interprets one scan node: base-table rows (via the index probe when
    /// the plan chose one) or a recursive sub-query plan, with the pushed
    /// filter evaluated *before* each row is materialized. `limit` stops
    /// the scan early once enough rows passed the filter (only set by the
    /// planner when no later operator could change the prefix). `emit`
    /// fuses the statement's projection into the scan itself (single-scan
    /// plans with nothing between scan and projection): rows materialize
    /// directly in output shape. `kernel` selects the scan strategy: the
    /// interpreter passes [`ScanKernel::Auto`] (decide per execute, as
    /// always), the bytecode VM passes the decision it already made at
    /// compile time.
    #[allow(clippy::too_many_arguments)] // two call sites; a param struct would just rename these
    pub(crate) fn scan_node(
        &self,
        node: &ScanNode,
        params: &Params,
        ctx: &EvalCtx<'_>,
        stats: &mut ExecStats,
        shared: &SubqueryState,
        version: u64,
        limit: Option<usize>,
        emit: Option<&(Vec<exec::FrameCol>, Vec<usize>)>,
        kernel: ScanKernel<'_>,
    ) -> Result<Frame, DbError> {
        match &node.source {
            ScanSource::Table(name) => {
                let table =
                    self.tables.get(name).ok_or_else(|| DbError::UnknownTable(name.clone()))?;
                // The plan's layout was computed against some database's
                // catalog; executing it against a table of a different
                // shape must fail loudly, not mis-project.
                let arity = table.schema().arity();
                if arity + 1 != node.cols.len() {
                    return Err(DbError::Exec(format!(
                        "plan was computed against a different shape of table {name} \
                         ({} columns, now {})",
                        node.cols.len().saturating_sub(1),
                        arity,
                    )));
                }

                let index_rows: Option<Vec<usize>> = match &node.probe {
                    Some(probe) => {
                        let v = match &probe.value {
                            SqlExpr::Lit(v) => v.clone(),
                            SqlExpr::Param(p) => params.get(p).cloned().ok_or_else(|| {
                                DbError::from(exec::ExecError::new(format!(
                                    "unbound parameter :{p}"
                                )))
                            })?,
                            other => {
                                return Err(DbError::Exec(format!(
                                    "non-constant index probe {other:?}"
                                )))
                            }
                        };
                        stats.used_index = true;
                        // A probe is only planned against an existing index;
                        // executing the plan on a database without it (the
                        // plan/database pair diverged) must not silently
                        // read an empty bucket.
                        let rows = table.index_lookup(&probe.column, &v).ok_or_else(|| {
                            DbError::Exec(format!(
                                "plan expects an index on {}.{} that this database \
                                 does not have",
                                name, probe.column
                            ))
                        })?;
                        Some(rows)
                    }
                    None => None,
                };

                // The filter evaluates against the full scan layout (the
                // raw row plus rowid), independent of what is emitted; the
                // shell frame is only needed when a filter exists *and* the
                // scan may take the row path (a pre-chosen vectorized scan
                // never touches it, so the per-execute allocation is
                // skipped).
                let shell = match (&kernel, &node.filter) {
                    (ScanKernel::Vector(_), _) | (_, None) => None,
                    (_, Some(_)) => Some(Frame::new(node.cols.clone())),
                };
                // Effective gather into the raw row: the fused projection
                // (whose indices address the pruned output layout) composed
                // over the scan's own column pruning.
                let gather: Option<(Vec<exec::FrameCol>, Vec<usize>)> = match (emit, &node.emit)
                {
                    (Some((cols, idx)), Some(e)) => {
                        Some((cols.clone(), idx.iter().map(|&i| e[i]).collect()))
                    }
                    (Some((cols, idx)), None) => Some((cols.clone(), idx.clone())),
                    (None, Some(e)) => Some((node.out_cols(), e.clone())),
                    (None, None) => None,
                };
                let mut frame = Frame::new(match &gather {
                    Some((cols, _)) => cols.clone(),
                    None => node.cols.clone(),
                });

                // Vectorized columnar path: a full-table scan whose pushed
                // filter (if any) compiles to a column kernel evaluates it
                // over typed column slices in `SCAN_BATCH`-row batches,
                // stitching output rows only for surviving positions. Index
                // probes, pushed limits (whose "stop at the k-th match"
                // contract is row-at-a-time by nature), and filters outside
                // the kernel grammar keep the row path below. Under
                // [`ScanKernel::Auto`] the decision (and the kernel
                // compilation) happens here per execute; the VM resolves
                // both at plan-compile time and passes the result in.
                let auto_kernel: Option<ColKernel>;
                let vector: Option<Option<&ColKernel>> = match kernel {
                    ScanKernel::Row => None,
                    ScanKernel::Vector(k) => Some(k),
                    ScanKernel::Auto => {
                        if index_rows.is_none()
                            && limit.is_none()
                            && !shared.config.force_row_store
                        {
                            match &node.filter {
                                None => Some(None),
                                Some(pred) => {
                                    auto_kernel = compile_kernel(
                                        pred,
                                        shell.as_ref().expect("shell built alongside filter"),
                                        params,
                                    );
                                    auto_kernel.as_ref().map(Some)
                                }
                            }
                        } else {
                            None
                        }
                    }
                };
                if let Some(kernel) = vector {
                    let gather_row = |chunk: &Chunk, i: usize, frame: &mut Frame| {
                        let rowid = chunk.base() + i;
                        let out = match &gather {
                            Some((_, idx)) => idx
                                .iter()
                                .map(|&c| {
                                    if c < arity {
                                        chunk.col(c).value(i)
                                    } else {
                                        Value::from(rowid as i64)
                                    }
                                })
                                .collect(),
                            None => {
                                let mut out = chunk.row_values(i);
                                out.push(Value::from(rowid as i64));
                                out
                            }
                        };
                        frame.rows.push(out);
                    };
                    match kernel {
                        // No filter: every row survives, no mask needed.
                        None => {
                            frame.rows.reserve(table.len());
                            for chunk in table.chunks() {
                                stats.rows_scanned += chunk.len();
                                for i in 0..chunk.len() {
                                    gather_row(chunk, i, &mut frame);
                                }
                            }
                        }
                        Some(k) => {
                            // The mask is sized to the widest batch that
                            // can actually occur — page-load-sized tables
                            // pay bytes, not SCAN_BATCH, per execution.
                            let cap = table
                                .chunks()
                                .iter()
                                .map(|c| c.len())
                                .max()
                                .unwrap_or(0)
                                .min(SCAN_BATCH);
                            let mut mask = vec![true; cap];
                            for chunk in table.chunks() {
                                // Every row of every chunk is examined
                                // exactly once — the same count the row
                                // path reports.
                                stats.rows_scanned += chunk.len();
                                let mut start = 0usize;
                                while start < chunk.len() {
                                    let n = SCAN_BATCH.min(chunk.len() - start);
                                    let mask = &mut mask[..n];
                                    eval_kernel(k, chunk, start, arity, mask);
                                    for (j, keep) in mask.iter().enumerate() {
                                        if *keep {
                                            gather_row(chunk, start + j, &mut frame);
                                        }
                                    }
                                    start += n;
                                }
                            }
                        }
                    }
                    return Ok(frame);
                }

                let mut push_row = |rowid: usize,
                                    row: &[Value],
                                    stats: &mut ExecStats|
                 -> Result<bool, DbError> {
                    stats.rows_scanned += 1;
                    let rv = [Value::from(rowid as i64)];
                    let keep = match &node.filter {
                        Some(pred) => exec::truthy(&eval_expr(
                            pred,
                            shell.as_ref().expect("shell built alongside filter"),
                            RowRef::Pair(row, &rv),
                            ctx,
                        )?)?,
                        None => true,
                    };
                    if keep {
                        let out = match &gather {
                            // Gather output columns straight from the raw
                            // row (position `arity` is the rowid).
                            Some((_, idx)) => idx
                                .iter()
                                .map(
                                    |&i| if i < arity { row[i].clone() } else { rv[0].clone() },
                                )
                                .collect(),
                            None => {
                                let mut out = row.to_vec();
                                out.push(rv.into_iter().next().expect("one rowid"));
                                out
                            }
                        };
                        frame.rows.push(out);
                    }
                    Ok(keep)
                };
                let mut kept = 0usize;
                match index_rows {
                    Some(ids) => {
                        for rowid in ids {
                            if limit.is_some_and(|n| kept >= n) {
                                break;
                            }
                            let row = table.row(rowid).ok_or_else(|| {
                                DbError::Exec(format!("index rowid {rowid} out of range"))
                            })?;
                            kept += usize::from(push_row(rowid, &row, stats)?);
                        }
                    }
                    None => {
                        for (rowid, row) in table.rows().enumerate() {
                            if limit.is_some_and(|n| kept >= n) {
                                break;
                            }
                            kept += usize::from(push_row(rowid, &row, stats)?);
                        }
                    }
                }
                Ok(frame)
            }
            ScanSource::Subquery { plan } => {
                // Fresh counters for the inner plan: `joins`/`used_index`
                // describe the top-level statement (what `Plan::summary`
                // renders), so only the row/comparison work is absorbed —
                // the same contract as hoisted predicate sub-queries.
                let mut inner_stats = ExecStats::default();
                let inner =
                    self.run_plan(plan, params, &mut inner_stats, shared, version, None)?;
                stats.absorb_nested(&inner_stats);
                let mut f = Frame::new(node.cols.clone());
                f.rows = inner.rows;
                if let Some(pred) = &node.filter {
                    f = filter(f, pred, ctx)?;
                }
                if let Some(n) = limit {
                    f.rows.truncate(n);
                }
                if let Some((cols, idx)) = emit {
                    let rows = f
                        .rows
                        .into_iter()
                        .map(|r| idx.iter().map(|&i| r[i].clone()).collect())
                        .collect();
                    f = Frame { cols: cols.clone(), rows };
                }
                Ok(f)
            }
        }
    }

    /// Executes a relational query (plans once, interprets the plan).
    ///
    /// # Errors
    ///
    /// Propagates unknown tables/columns and evaluation failures.
    pub fn execute_select(
        &self,
        q: &SqlSelect,
        params: &Params,
    ) -> Result<SelectOutput, DbError> {
        self.execute_select_with(q, params, &PlanConfig::default())
    }

    /// [`Database::execute_select`] under a non-default [`PlanConfig`].
    ///
    /// # Errors
    ///
    /// Propagates unknown tables/columns and evaluation failures.
    pub fn execute_select_with(
        &self,
        q: &SqlSelect,
        params: &Params,
        config: &PlanConfig,
    ) -> Result<SelectOutput, DbError> {
        let planned = Instant::now();
        let plan = plan_with(q, self, config);
        let plan_ns = planned.elapsed().as_nanos() as u64;
        let mut out = self.execute_plan_with(&plan, params, config)?;
        out.stats.plan_ns = plan_ns;
        Ok(out)
    }

    /// Interprets an already-computed [`PhysicalPlan`] — the other consumer
    /// of the exact value `explain()` renders.
    ///
    /// # Errors
    ///
    /// Propagates unknown tables/columns and evaluation failures.
    pub fn execute_plan(
        &self,
        plan: &PhysicalPlan,
        params: &Params,
    ) -> Result<SelectOutput, DbError> {
        self.execute_plan_with(plan, params, &PlanConfig::default())
    }

    /// [`Database::execute_plan`] under a non-default [`PlanConfig`].
    ///
    /// Pass the *same* configuration the plan was computed with: the
    /// config also governs how hoisted predicate sub-queries encountered
    /// during interpretation are planned (e.g. a `force_nested_loop`
    /// baseline plan executed under the default config would run its
    /// `IN (SELECT …)` sub-queries with hash joins).
    ///
    /// # Errors
    ///
    /// Propagates unknown tables/columns and evaluation failures.
    pub fn execute_plan_with(
        &self,
        plan: &PhysicalPlan,
        params: &Params,
        config: &PlanConfig,
    ) -> Result<SelectOutput, DbError> {
        self.execute_plan_shared(plan, params, &SubqueryState::new(config.clone()), 0)
    }

    /// [`Database::execute_plan_with`] against a caller-owned
    /// [`SubqueryState`] — how a [`Connection`](crate::Connection) lets
    /// hoisted sub-query results survive across statements. `version` is
    /// the snapshot version this database value was pinned at (0 for
    /// one-shot executions with a fresh state).
    pub(crate) fn execute_plan_shared(
        &self,
        plan: &PhysicalPlan,
        params: &Params,
        shared: &SubqueryState,
        version: u64,
    ) -> Result<SelectOutput, DbError> {
        self.execute_plan_cached(plan, params, shared, version, None)
    }

    /// [`Database::execute_plan_shared`] with an optional output-schema
    /// cache: a prepared statement's result schema is identical across
    /// executions (types come from the table schemas), so re-deriving it
    /// per call is waste on the execute-many hot path. The cache is only
    /// written from a row-bearing result (an empty result cannot sniff
    /// types) and only read when the arity matches.
    pub(crate) fn execute_plan_cached(
        &self,
        plan: &PhysicalPlan,
        params: &Params,
        shared: &SubqueryState,
        version: u64,
        schema_cache: Option<&OnceLock<SchemaRef>>,
    ) -> Result<SelectOutput, DbError> {
        self.execute_plan_instrumented(plan, params, shared, version, schema_cache, None)
    }

    /// [`Database::execute_plan_cached`] with optional per-operator
    /// instrumentation: when `actuals` is provided the interpreter
    /// records rows and elapsed time per plan node into it — the engine
    /// of `EXPLAIN ANALYZE`. With `None` the interpreter takes no
    /// per-node clock readings at all (only the whole-plan `exec_ns`).
    pub(crate) fn execute_plan_instrumented(
        &self,
        plan: &PhysicalPlan,
        params: &Params,
        shared: &SubqueryState,
        version: u64,
        schema_cache: Option<&OnceLock<SchemaRef>>,
        mut actuals: Option<&mut PlanActuals>,
    ) -> Result<SelectOutput, DbError> {
        let mut stats = ExecStats::default();
        let started = Instant::now();
        let frame =
            self.run_plan(plan, params, &mut stats, shared, version, actuals.as_deref_mut())?;
        stats.exec_ns = started.elapsed().as_nanos() as u64;
        if let Some(a) = actuals {
            a.output_rows = frame.rows.len();
            a.total_ns = stats.exec_ns;
        }
        finish_frame(frame, stats, schema_cache)
    }

    /// The plan interpreter: scans, join steps, residual filter, sort,
    /// projection, distinct, limit — exactly the decisions recorded in the
    /// [`PhysicalPlan`], no re-planning.
    ///
    /// With `actuals` set, every operator's row count and wall-clock time
    /// is recorded (the `EXPLAIN ANALYZE` path); with `None` the
    /// interpreter reads no per-node clocks. Nested plans (sub-query
    /// scans, hoisted predicate sub-queries) are never instrumented —
    /// their work shows up in the enclosing scan's figures.
    fn run_plan(
        &self,
        plan: &PhysicalPlan,
        params: &Params,
        stats: &mut ExecStats,
        shared: &SubqueryState,
        version: u64,
        actuals: Option<&mut PlanActuals>,
    ) -> Result<Frame, DbError> {
        self.with_hoisting(params, stats, shared, version, |ctx, stats| {
            self.run_plan_ops(plan, params, ctx, stats, shared, version, actuals)
        })
    }

    /// Runs `f` with the sub-query hoisting machinery wired into an
    /// [`EvalCtx`] — the shared scaffolding under both plan executors
    /// (the tree-walking interpreter and the bytecode VM).
    ///
    /// Uncorrelated predicate sub-queries are hoisted: executed at most
    /// once per statement, with hash-set membership for the per-row
    /// probes. Parameter-free results go through the connection-shared
    /// version-tagged cache; parameter-dependent ones (valid only for
    /// this run's bindings) and all nested counters stay in run-local
    /// state, folded into `stats` at the end — concurrent statements
    /// never touch each other's counters.
    pub(crate) fn with_hoisting<T>(
        &self,
        params: &Params,
        stats: &mut ExecStats,
        shared: &SubqueryState,
        version: u64,
        f: impl FnOnce(&EvalCtx<'_>, &mut ExecStats) -> Result<T, DbError>,
    ) -> Result<T, DbError> {
        let local: RefCell<LocalSubs> = RefCell::new(LocalSubs::default());
        let sub = |s: &SqlSelect| -> Result<Arc<SubResult>, exec::ExecError> {
            let param_free = !s.has_params();
            let hit = if param_free {
                shared.lookup(s, version)
            } else {
                local.borrow().cache.iter().find(|(q, _)| q == s).map(|(_, r)| r.clone())
            };
            if let Some(hit) = hit {
                local.borrow_mut().stats.subquery_cache_hits += 1;
                return Ok(hit);
            }
            let inner = plan_with(s, self, &shared.config);
            let mut st = ExecStats::default();
            let frame = self
                .run_plan(&inner, params, &mut st, shared, version, None)
                .map_err(|e| exec::ExecError::new(e.to_string()))?;
            let result = Arc::new(SubResult::from_frame(frame));
            {
                // `st` already folded the counters of anything nested
                // deeper, so propagating its four nested fields keeps the
                // whole-tree totals (plus this execution itself).
                let mut l = local.borrow_mut();
                l.stats.subqueries_executed += 1 + st.subqueries_executed;
                l.stats.subquery_cache_hits += st.subquery_cache_hits;
                l.stats.rows_scanned += st.rows_scanned;
                l.stats.join_comparisons += st.join_comparisons;
            }
            if param_free {
                shared.insert(s.clone(), version, result.clone());
            } else {
                local.borrow_mut().cache.push((s.clone(), result.clone()));
            }
            Ok(result)
        };
        let ctx = EvalCtx { params, subquery: &sub };
        let out = f(&ctx, stats);
        stats.absorb_nested(&local.borrow().stats);
        out
    }

    /// The operator pipeline of [`Database::run_plan`], with the hoisting
    /// closure already built into `ctx`.
    #[allow(clippy::too_many_arguments)] // one call site; split from run_plan for the local fold
    fn run_plan_ops(
        &self,
        plan: &PhysicalPlan,
        params: &Params,
        ctx: &EvalCtx<'_>,
        stats: &mut ExecStats,
        shared: &SubqueryState,
        version: u64,
        mut actuals: Option<&mut PlanActuals>,
    ) -> Result<Frame, DbError> {
        let limit_n: Option<usize> = match &plan.limit {
            None => None,
            Some(SqlExpr::Lit(Value::Int(n))) => Some((*n).max(0) as usize),
            Some(SqlExpr::Param(p)) => {
                let n = params
                    .get(p)
                    .and_then(Value::as_int)
                    .ok_or_else(|| DbError::Exec(format!("unbound LIMIT parameter :{p}")))?;
                Some(n.max(0) as usize)
            }
            Some(other) => return Err(DbError::Exec(format!("unsupported LIMIT {other:?}"))),
        };
        let offset_n: usize = match &plan.offset {
            None => 0,
            Some(SqlExpr::Lit(Value::Int(n))) => (*n).max(0) as usize,
            Some(SqlExpr::Param(p)) => {
                let n = params
                    .get(p)
                    .and_then(Value::as_int)
                    .ok_or_else(|| DbError::Exec(format!("unbound OFFSET parameter :{p}")))?;
                n.max(0) as usize
            }
            Some(other) => return Err(DbError::Exec(format!("unsupported OFFSET {other:?}"))),
        };
        // LIMIT pushed into the scan itself: sound only when no later
        // operator can reject or reorder rows. An OFFSET widens the prefix
        // the scan must produce — the first `offset` keepers are dropped
        // again below, so the scan has to fetch `limit + offset` rows.
        let scan_limit = (plan.scans.len() == 1
            && plan.joins.is_empty()
            && plan.residual.is_none()
            && plan.aggregate.is_none()
            && plan.order_by.is_empty()
            && !plan.distinct)
            .then_some(limit_n.map(|n| n.saturating_add(offset_n)))
            .flatten();

        // Projection fusion: with a statically resolved projection and no
        // operator between the last scan/join and the projection, the
        // final operator materializes rows directly in output shape and
        // the separate projection pass disappears. An aggregate never
        // fuses: its projection addresses the grouped output layout, not
        // the scan/join layout.
        let fused = plan.projection.is_some()
            && plan.residual.is_none()
            && plan.aggregate.is_none()
            && plan.order_by.is_empty();
        let scan_emit =
            (fused && plan.scans.len() == 1).then(|| plan.projection.as_ref().expect("fused"));

        // Per-node clock readings only happen on the analyze path — the
        // production interpreter's instrumentation cost is one branch per
        // operator.
        let timing = actuals.is_some();
        let mut frames: Vec<Frame> = Vec::with_capacity(plan.scans.len());
        for node in &plan.scans {
            let opened = timing.then(Instant::now);
            let scanned_before = stats.rows_scanned;
            let frame = self.scan_node(
                node,
                params,
                ctx,
                stats,
                shared,
                version,
                scan_limit,
                scan_emit,
                ScanKernel::Auto,
            )?;
            if let Some(a) = actuals.as_deref_mut() {
                a.scans.push(ScanActuals {
                    rows_scanned: stats.rows_scanned - scanned_before,
                    rows_out: frame.rows.len(),
                    elapsed_ns: opened.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
                    via_index: node.probe.is_some(),
                });
            }
            frames.push(frame);
        }

        let mut iter = frames.into_iter();
        let mut acc =
            iter.next().ok_or_else(|| DbError::Exec("query without FROM".to_string()))?;
        for (k, (step, right)) in plan.joins.iter().zip(iter).enumerate() {
            let emit = (fused && k + 1 == plan.joins.len())
                .then(|| plan.projection.as_ref().expect("fused"));
            let opened = timing.then(Instant::now);
            acc = match (&step.algorithm, &step.key) {
                (crate::planner::JoinAlgorithm::Hash, Some((lk, rk))) => {
                    // Plan-resolved key positions skip per-row expression
                    // evaluation entirely.
                    let (lkey, rkey) = match step.key_idx {
                        Some((li, ri)) => (exec::JoinKey::Idx(li), exec::JoinKey::Idx(ri)),
                        None => (exec::JoinKey::Expr(lk), exec::JoinKey::Expr(rk)),
                    };
                    hash_join(
                        acc,
                        right,
                        lkey,
                        rkey,
                        step.residual.as_ref(),
                        emit,
                        None,
                        ctx,
                        stats,
                    )?
                }
                _ => nested_loop_join(
                    acc,
                    right,
                    step.residual.as_ref(),
                    emit,
                    None,
                    ctx,
                    stats,
                )?,
            };
            if let Some(a) = actuals.as_deref_mut() {
                a.joins.push(OpActuals {
                    rows_out: acc.rows.len(),
                    elapsed_ns: opened.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
                });
            }
        }

        // Leftover predicates (alias-free literals etc.).
        if let Some(pred) = &plan.residual {
            let opened = timing.then(Instant::now);
            acc = filter(acc, pred, ctx)?;
            if let Some(a) = actuals.as_deref_mut() {
                a.residual = Some(OpActuals {
                    rows_out: acc.rows.len(),
                    elapsed_ns: opened.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
                });
            }
        }

        // Grouped aggregation between the residual filter and the sort:
        // hash-aggregate the joined frame, then apply the rewritten
        // HAVING as an ordinary filter over the grouped output.
        if let Some(agg) = &plan.aggregate {
            let opened = timing.then(Instant::now);
            acc = exec::hash_aggregate(acc, agg, ctx)?;
            if let Some(h) = &agg.having {
                acc = filter(acc, h, ctx)?;
            }
            if let Some(a) = actuals.as_deref_mut() {
                a.aggregate = Some(OpActuals {
                    rows_out: acc.rows.len(),
                    elapsed_ns: opened.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
                });
            }
        }

        // ORDER BY before projection (keys may be unprojected).
        if !plan.order_by.is_empty() {
            let keys: Vec<(SqlExpr, bool)> =
                plan.order_by.iter().map(|k| (k.expr.clone(), k.asc)).collect();
            let opened = timing.then(Instant::now);
            acc = sort(acc, &keys, ctx)?;
            if let Some(a) = actuals.as_deref_mut() {
                a.sort = Some(OpActuals {
                    rows_out: acc.rows.len(),
                    elapsed_ns: opened.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
                });
            }
        }

        // Without DISTINCT the page window is already final after the
        // sort: drop the offset prefix and truncate before paying for
        // projection.
        if !plan.distinct {
            if offset_n > 0 {
                acc.rows.drain(..offset_n.min(acc.rows.len()));
            }
            if let Some(n) = limit_n {
                acc.rows.truncate(n);
            }
        }

        // Projection — already fused into the final scan/join above when
        // possible.
        if fused {
            let mut frame = acc;
            if plan.distinct {
                let opened = timing.then(Instant::now);
                frame = distinct(frame);
                if let Some(a) = actuals.as_deref_mut() {
                    a.distinct = Some(OpActuals {
                        rows_out: frame.rows.len(),
                        elapsed_ns: opened.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
                    });
                }
                if offset_n > 0 {
                    frame.rows.drain(..offset_n.min(frame.rows.len()));
                }
                if let Some(n) = limit_n {
                    frame.rows.truncate(n);
                }
            }
            return Ok(frame);
        }
        // The plan usually resolved the projection statically; the dynamic
        // path remains for plans whose select items could not be resolved
        // at plan time (and carries the runtime errors).
        let (out_cols, out_idx): (Vec<exec::FrameCol>, Vec<usize>) = match &plan.projection {
            Some((cols, idx)) => (cols.clone(), idx.clone()),
            None => {
                let mut out_cols = Vec::new();
                let mut out_idx: Vec<usize> = Vec::new();
                if plan.columns.is_empty() {
                    for (i, c) in acc.cols.iter().enumerate() {
                        if c.name != "rowid" {
                            out_cols.push(c.clone());
                            out_idx.push(i);
                        }
                    }
                } else {
                    for (k, item) in plan.columns.iter().enumerate() {
                        match &item.expr {
                            SqlExpr::Column { qualifier, name } => {
                                let i =
                                    acc.resolve(qualifier.as_ref(), name).ok_or_else(|| {
                                        DbError::Exec(format!(
                                            "unresolved select column {name}"
                                        ))
                                    })?;
                                out_cols.push(exec::FrameCol {
                                    alias: item
                                        .alias
                                        .clone()
                                        .unwrap_or_else(|| acc.cols[i].alias.clone()),
                                    name: item.alias.clone().unwrap_or_else(|| name.clone()),
                                });
                                out_idx.push(i);
                            }
                            other => {
                                return Err(DbError::Exec(format!(
                                    "unsupported select expression {other:?} at position {k}"
                                )))
                            }
                        }
                    }
                }
                (out_cols, out_idx)
            }
        };
        let rows = acc
            .rows
            .into_iter()
            .map(|r| out_idx.iter().map(|&i| r[i].clone()).collect())
            .collect();
        let mut frame = Frame { cols: out_cols, rows };

        if plan.distinct {
            let opened = timing.then(Instant::now);
            frame = distinct(frame);
            if let Some(a) = actuals {
                a.distinct = Some(OpActuals {
                    rows_out: frame.rows.len(),
                    elapsed_ns: opened.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
                });
            }
            if offset_n > 0 {
                frame.rows.drain(..offset_n.min(frame.rows.len()));
            }
            if let Some(n) = limit_n {
                frame.rows.truncate(n);
            }
        }
        Ok(frame)
    }

    /// Executes any query (relational or scalar).
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn execute(&self, q: &SqlQuery, params: &Params) -> Result<QueryOutput, DbError> {
        self.execute_with(q, params, &PlanConfig::default())
    }

    /// [`Database::execute`] under a non-default [`PlanConfig`].
    ///
    /// # Errors
    ///
    /// Propagates execution errors. `MIN`/`MAX` over an empty relation is
    /// [`DbError::EmptyAggregate`]; a non-integer value under `SUM`/`MIN`/
    /// `MAX` and `i64` overflow of `SUM` are [`DbError::Exec`].
    pub fn execute_with(
        &self,
        q: &SqlQuery,
        params: &Params,
        config: &PlanConfig,
    ) -> Result<QueryOutput, DbError> {
        match q {
            SqlQuery::Select(s) => {
                Ok(QueryOutput::Rows(self.execute_select_with(s, params, config)?))
            }
            SqlQuery::Scalar(s) => {
                let inner = scalar_core(s);
                let out = self.execute_select_with(&inner, params, config)?;
                self.finish_scalar(s, out, params)
            }
        }
    }

    /// Folds a scalar query's aggregate (and optional trailing comparison)
    /// over the already-executed relational core — shared by the per-call
    /// path above and prepared-statement execution, which plans the core
    /// once and interprets it per call.
    pub(crate) fn finish_scalar(
        &self,
        s: &qbs_sql::SqlScalar,
        out: SelectOutput,
        params: &Params,
    ) -> Result<QueryOutput, DbError> {
        let stats = out.stats;
        let value = match s.agg {
            AggKind::Count => Value::from(out.rows.len() as i64),
            agg => aggregate(agg, &out.rows)?,
        };
        let value = match &s.compare {
            None => value,
            Some((op, rhs)) => {
                let no_sub =
                    |_: &qbs_sql::SqlSelect| -> Result<Arc<SubResult>, exec::ExecError> {
                        Err(exec::ExecError::new("no sub-queries in scalar comparisons"))
                    };
                let ctx = EvalCtx { params, subquery: &no_sub };
                let empty = Frame::new(vec![]);
                let r = eval_expr(rhs, &empty, RowRef::Slice(&[]), &ctx)?;
                Value::from(op.test(value.total_cmp(&r)))
            }
        };
        Ok(QueryOutput::Scalar { value, stats })
    }
}

/// The relational core a scalar query aggregates over: its inner query
/// with the aggregated column as the projection (for `COUNT(*)` the inner
/// projection is kept as-is). This is the select that prepared statements
/// plan once.
pub(crate) fn scalar_core(s: &qbs_sql::SqlScalar) -> SqlSelect {
    let mut inner = s.query.clone();
    if let Some(col) = &s.column {
        inner.columns = vec![qbs_sql::SelectItem { expr: col.clone(), alias: None }];
    }
    inner
}

/// Folds a non-`COUNT` aggregate over the first column of `rows`.
///
/// Unlike the old `filter_map(Value::as_int)` fold, a non-integer value is a
/// type error (it used to be silently dropped, under-counting `SUM`), `SUM`
/// uses checked addition (it used to wrap or panic on overflow), and
/// `MIN`/`MAX` over an empty relation is [`DbError::EmptyAggregate`] (they
/// used to return the `i64::MAX`/`i64::MIN` infinity sentinels as if they
/// were data).
fn aggregate(agg: AggKind, rows: &Relation) -> Result<Value, DbError> {
    let mut nums: Vec<i64> = Vec::with_capacity(rows.len());
    for r in rows.iter() {
        let first = r
            .values()
            .first()
            .ok_or_else(|| DbError::Exec(format!("{} over a zero-column row", agg.sql())))?;
        match first {
            Value::Int(i) => nums.push(*i),
            other => {
                return Err(DbError::Exec(format!(
                    "{} over non-integer value {other:?}",
                    agg.sql()
                )))
            }
        }
    }
    match agg {
        AggKind::Sum => nums
            .iter()
            .try_fold(0i64, |acc, n| acc.checked_add(*n))
            .map(Value::from)
            .ok_or_else(|| DbError::Exec("SUM overflows i64".to_string())),
        AggKind::Max => nums
            .iter()
            .copied()
            .max()
            .map(Value::from)
            .ok_or_else(|| DbError::EmptyAggregate(agg.sql().to_string())),
        AggKind::Min => nums
            .iter()
            .copied()
            .min()
            .map(Value::from)
            .ok_or_else(|| DbError::EmptyAggregate(agg.sql().to_string())),
        AggKind::Count => unreachable!("COUNT is handled before the numeric fold"),
    }
}

/// Builds the output relation from an executed frame: anonymous schema
/// over the frame columns, reused from the cache when one is provided and
/// fits — the materialization tail shared by the plan interpreter and the
/// bytecode VM.
pub(crate) fn finish_frame(
    frame: Frame,
    stats: ExecStats,
    schema_cache: Option<&OnceLock<SchemaRef>>,
) -> Result<SelectOutput, DbError> {
    let cached =
        schema_cache.and_then(|c| c.get().cloned()).filter(|s| s.arity() == frame.cols.len());
    let schema = match cached {
        Some(schema) => schema,
        None => {
            let mut b = Schema::anonymous();
            for (k, c) in frame.cols.iter().enumerate() {
                let ty = frame
                    .rows
                    .first()
                    .map(|r| match &r[k] {
                        Value::Bool(_) => FieldType::Bool,
                        Value::Int(_) => FieldType::Int,
                        Value::Str(_) => FieldType::Str,
                    })
                    .unwrap_or(FieldType::Int);
                b = b.push(qbs_common::Field::qualified(c.alias.clone(), c.name.clone(), ty));
            }
            let schema = b.finish();
            if let (Some(cache), false) = (schema_cache, frame.rows.is_empty()) {
                let _ = cache.set(schema.clone());
            }
            schema
        }
    };
    let records = frame.rows.into_iter().map(|r| Record::new(schema.clone(), r)).collect();
    let rows =
        Relation::from_records(schema, records).map_err(|e| DbError::Schema(e.to_string()))?;
    Ok(SelectOutput { rows, stats })
}

/// How [`Database::scan_node`] should execute one scan, as chosen by the
/// caller. The tree-walking interpreter always passes [`ScanKernel::Auto`]
/// (decide per execute — the historical behavior); the bytecode VM makes
/// the decision once at plan-compile time and passes [`ScanKernel::Vector`]
/// (with the pre-compiled kernel, or `None` for an unfiltered columnar
/// sweep) or [`ScanKernel::Row`].
pub(crate) enum ScanKernel<'a> {
    /// Decide per execute from the probe/limit/config and the filter shape.
    Auto,
    /// Take the vectorized columnar path with this pre-compiled kernel
    /// (`None`: no filter, every row survives).
    Vector(Option<&'a ColKernel>),
    /// Take the row-at-a-time path unconditionally.
    Row,
}

/// Batch size for the vectorized scan path: large enough to amortize
/// per-batch dispatch, small enough that the selection mask and the column
/// slices it covers stay cache-resident.
pub(crate) const SCAN_BATCH: usize = 1024;

/// A pushed scan filter compiled against the chunk column layout. Only
/// shapes whose batch evaluation is *infallible* are representable:
/// comparisons between one column and one constant (bind parameters are
/// resolved to constants at compile time), closed under AND/OR/NOT.
/// Everything else — column-to-column comparisons, unresolved names,
/// unbound parameters, sub-queries, bare literals — declines to compile,
/// and the scan falls back to the row-at-a-time path, which owns the
/// error reporting for those cases.
#[derive(Debug)]
pub(crate) enum ColKernel {
    /// `column <op> constant`; constants on the left arrive here with the
    /// operator flipped.
    Cmp {
        pos: usize,
        op: CmpOp,
        rhs: Value,
    },
    And(Vec<ColKernel>),
    Or(Vec<ColKernel>),
    Not(Box<ColKernel>),
}

enum KernelOperand {
    Col(usize),
    Const(Value),
}

fn kernel_operand(e: &SqlExpr, shell: &Frame, params: &Params) -> Option<KernelOperand> {
    match e {
        SqlExpr::Column { qualifier, name } => {
            shell.resolve(qualifier.as_ref(), name).map(KernelOperand::Col)
        }
        SqlExpr::Lit(v) => Some(KernelOperand::Const(v.clone())),
        SqlExpr::Param(p) => params.get(p).cloned().map(KernelOperand::Const),
        _ => None,
    }
}

/// Compiles a pushed filter into a [`ColKernel`] against the scan's column
/// layout (`shell` carries the raw row plus rowid). `None` means "use the
/// row path".
pub(crate) fn compile_kernel(e: &SqlExpr, shell: &Frame, params: &Params) -> Option<ColKernel> {
    match e {
        SqlExpr::Cmp(a, op, b) => {
            match (kernel_operand(a, shell, params)?, kernel_operand(b, shell, params)?) {
                (KernelOperand::Col(pos), KernelOperand::Const(rhs)) => {
                    Some(ColKernel::Cmp { pos, op: *op, rhs })
                }
                (KernelOperand::Const(rhs), KernelOperand::Col(pos)) => {
                    Some(ColKernel::Cmp { pos, op: op.flip(), rhs })
                }
                _ => None,
            }
        }
        SqlExpr::And(ps) if !ps.is_empty() => {
            let parts: Vec<ColKernel> =
                ps.iter().map(|p| compile_kernel(p, shell, params)).collect::<Option<_>>()?;
            Some(ColKernel::And(parts))
        }
        SqlExpr::Or(ps) if !ps.is_empty() => {
            let parts: Vec<ColKernel> =
                ps.iter().map(|p| compile_kernel(p, shell, params)).collect::<Option<_>>()?;
            Some(ColKernel::Or(parts))
        }
        SqlExpr::Not(x) => Some(ColKernel::Not(Box::new(compile_kernel(x, shell, params)?))),
        _ => None,
    }
}

/// Evaluates a kernel over `mask.len()` rows of `chunk` starting at
/// `start`, writing one keep/drop bit per row. Column position `arity` is
/// the rowid pseudo-column (positional, not stored).
pub(crate) fn eval_kernel(
    k: &ColKernel,
    chunk: &Chunk,
    start: usize,
    arity: usize,
    mask: &mut [bool],
) {
    match k {
        ColKernel::Cmp { pos, op, rhs } => {
            if *pos == arity {
                for (j, m) in mask.iter_mut().enumerate() {
                    let v = Value::from((chunk.base() + start + j) as i64);
                    *m = op.test(v.total_cmp(rhs));
                }
                return;
            }
            match (chunk.col(*pos), rhs) {
                (ColumnVec::Int(xs), Value::Int(r)) => {
                    for (j, m) in mask.iter_mut().enumerate() {
                        *m = op.test(xs[start + j].cmp(r));
                    }
                }
                (ColumnVec::Str(xs), Value::Str(r)) => {
                    let r: &str = r;
                    for (j, m) in mask.iter_mut().enumerate() {
                        *m = op.test((*xs[start + j]).cmp(r));
                    }
                }
                (ColumnVec::Bool(xs), Value::Bool(r)) => {
                    for (j, m) in mask.iter_mut().enumerate() {
                        *m = op.test(xs[start + j].cmp(r));
                    }
                }
                // Mixed runtime types order by type tag
                // (`Value::total_cmp`), and a column is homogeneous: the
                // whole batch compares identically. Evaluate once, fill.
                (col, rhs) => mask.fill(op.test(col.value(start).total_cmp(rhs))),
            }
        }
        ColKernel::And(parts) => {
            let (first, rest) = parts.split_first().expect("non-empty by construction");
            eval_kernel(first, chunk, start, arity, mask);
            let mut scratch = vec![false; mask.len()];
            for p in rest {
                eval_kernel(p, chunk, start, arity, &mut scratch);
                for (m, s) in mask.iter_mut().zip(&scratch) {
                    *m = *m && *s;
                }
            }
        }
        ColKernel::Or(parts) => {
            let (first, rest) = parts.split_first().expect("non-empty by construction");
            eval_kernel(first, chunk, start, arity, mask);
            let mut scratch = vec![false; mask.len()];
            for p in rest {
                eval_kernel(p, chunk, start, arity, &mut scratch);
                for (m, s) in mask.iter_mut().zip(&scratch) {
                    *m = *m || *s;
                }
            }
        }
        ColKernel::Not(inner) => {
            eval_kernel(inner, chunk, start, arity, mask);
            for m in mask.iter_mut() {
                *m = !*m;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{explain, explain_with, JoinAlgorithm};
    use qbs_sql::parse_query;
    use qbs_tor::CmpOp;

    fn setup() -> Database {
        let mut db = Database::new();
        db.create_table(
            Schema::builder("users")
                .field("id", FieldType::Int)
                .field("roleId", FieldType::Int)
                .finish(),
        )
        .unwrap();
        db.create_table(
            Schema::builder("roles")
                .field("roleId", FieldType::Int)
                .field("label", FieldType::Str)
                .finish(),
        )
        .unwrap();
        for i in 0..6i64 {
            db.insert("users", vec![Value::from(i), Value::from(i % 3)]).unwrap();
        }
        for r in 0..3i64 {
            db.insert("roles", vec![Value::from(r), Value::from(format!("role{r}"))]).unwrap();
        }
        db
    }

    #[test]
    fn select_star_strips_rowid() {
        let db = setup();
        let q = parse_query("SELECT * FROM users").unwrap();
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(out.rows.len(), 6);
        assert_eq!(out.rows.schema().arity(), 2);
    }

    #[test]
    fn where_filters_and_index_is_used() {
        let mut db = setup();
        db.create_index("users", "roleId").unwrap();
        let q = parse_query("SELECT id FROM users WHERE roleId = 1").unwrap();
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert!(out.stats.used_index);
        // Only the matching rows were touched.
        assert_eq!(out.stats.rows_scanned, 2);
    }

    #[test]
    fn join_uses_hash_algorithm_and_preserves_order() {
        let db = setup();
        let q = parse_query(
            "SELECT users.id, roles.label FROM users, roles WHERE users.roleId = roles.roleId \
             ORDER BY users.rowid, roles.rowid",
        )
        .unwrap();
        // Need two FROM items: extend the parser output manually.
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(out.rows.len(), 6);
        assert_eq!(out.stats.joins, vec!["hash"]);
        // users in insertion order: ids 0..6.
        let ids: Vec<i64> = out.rows.iter().map(|r| r.value_at(0).as_int().unwrap()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn explain_reports_hash_join_and_index() {
        let mut db = setup();
        db.create_index("users", "roleId").unwrap();
        let q =
            parse_query("SELECT users.id FROM users, roles WHERE users.roleId = roles.roleId")
                .unwrap();
        let plan = explain(&q, &db);
        assert_eq!(plan.joins, vec![JoinAlgorithm::Hash]);
        assert_eq!(plan.join_order, vec![Ident::new("users"), Ident::new("roles")]);
        let q2 = parse_query("SELECT id FROM users WHERE roleId = 2").unwrap();
        let plan2 = explain(&q2, &db);
        assert_eq!(plan2.index_scans, 1);
        // The index probe on a literal gives an exact estimate.
        assert_eq!(plan2.estimated_rows, vec![2]);
    }

    #[test]
    fn explain_and_execute_consume_the_same_plan_value() {
        let mut db = setup();
        db.create_index("users", "roleId").unwrap();
        let q = parse_query(
            "SELECT users.id FROM users, roles \
             WHERE users.roleId = roles.roleId AND users.roleId = 1",
        )
        .unwrap();
        let plan = crate::planner::plan(&q, &db);
        let summary = plan.summary();
        let out = db.execute_plan(&plan, &Params::new()).unwrap();
        let algos: Vec<&str> = summary
            .joins
            .iter()
            .map(|j| match j {
                JoinAlgorithm::Hash => "hash",
                JoinAlgorithm::NestedLoop => "nested-loop",
            })
            .collect();
        assert_eq!(out.stats.joins, algos);
        assert_eq!(summary.index_scans > 0, out.stats.used_index);
        // And the convenience path produces identical rows and stats.
        let direct = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(direct, out);
    }

    #[test]
    fn two_indexed_equalities_use_one_index_scan() {
        // Regression for the pre-IR divergence: explain() counted one index
        // scan per pushed indexed equality, while the executor probes at
        // most one index per scan.
        let mut db = setup();
        db.create_index("users", "roleId").unwrap();
        db.create_index("users", "id").unwrap();
        let q = parse_query("SELECT id FROM users WHERE roleId = 1 AND id = 4").unwrap();
        let plan = explain(&q, &db);
        assert_eq!(plan.index_scans, 1, "{plan:?}");
        assert_eq!(plan.pushed_filters, 2, "{plan:?}");
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert!(out.stats.used_index);
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn order_by_limit_distinct() {
        let db = setup();
        let q = parse_query("SELECT DISTINCT roleId FROM users ORDER BY roleId DESC LIMIT 2");
        // The parser has no DISTINCT support; build by hand.
        drop(q);
        let mut q =
            parse_query("SELECT roleId FROM users ORDER BY roleId DESC LIMIT 2").unwrap();
        q.distinct = true;
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows.get(0).unwrap().value_at(0), &Value::from(2));
    }

    #[test]
    fn limit_pushdown_stops_the_scan_early() {
        let db = setup();
        let q = parse_query("SELECT id FROM users LIMIT 2").unwrap();
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(out.rows.len(), 2);
        // Only the limit prefix was ever read from the base table.
        assert_eq!(out.stats.rows_scanned, 2);
        // With a filter the scan reads until enough rows pass.
        let q = parse_query("SELECT id FROM users WHERE roleId = 1 LIMIT 1").unwrap();
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.stats.rows_scanned, 2, "rows 0..=1 examined, row 1 matched");
    }

    fn int_column(out: &SelectOutput) -> Vec<i64> {
        out.rows.iter().map(|r| r.value_at(0).as_int().expect("int column")).collect()
    }

    #[test]
    fn offset_skips_rows_and_the_pushed_scan_fetches_limit_plus_offset() {
        let db = setup();
        let q = parse_query("SELECT id FROM users LIMIT 2 OFFSET 3").unwrap();
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(int_column(&out), vec![3, 4]);
        // The pushed scan must fetch limit + offset rows, not just limit:
        // truncating to 2 before the skip would return ids 0..2 minus the
        // offset — an empty (and wrong) page.
        assert_eq!(out.stats.rows_scanned, 5);

        // OFFSET without LIMIT skips a prefix of the full result.
        let q = parse_query("SELECT id FROM users OFFSET 4").unwrap();
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(int_column(&out), vec![4, 5]);

        // Skipping past the end is empty, not an error.
        let q = parse_query("SELECT id FROM users LIMIT 3 OFFSET 100").unwrap();
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert!(out.rows.is_empty());
    }

    #[test]
    fn offset_applies_after_order_by_and_distinct() {
        let db = setup();
        let q = parse_query("SELECT id FROM users ORDER BY id DESC LIMIT 2 OFFSET 1").unwrap();
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(int_column(&out), vec![4, 3]);

        let mut q =
            parse_query("SELECT roleId FROM users ORDER BY roleId LIMIT 5 OFFSET 1").unwrap();
        q.distinct = true;
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(int_column(&out), vec![1, 2], "offset skips deduplicated rows");
    }

    #[test]
    fn offset_parameters_bind_like_limit_parameters() {
        let db = setup();
        let q =
            parse_query("SELECT id FROM users ORDER BY id LIMIT :cap OFFSET :skip").unwrap();
        let mut params = Params::new();
        params.insert("cap".into(), Value::from(2));
        params.insert("skip".into(), Value::from(2));
        let out = db.execute_select(&q, &params).unwrap();
        assert_eq!(int_column(&out), vec![2, 3]);

        params.remove("skip");
        let err = db.execute_select(&q, &params).unwrap_err();
        assert!(err.to_string().contains("unbound OFFSET parameter :skip"), "{err}");
    }

    #[test]
    fn scalar_count_and_comparison() {
        let db = setup();
        let inner = parse_query("SELECT * FROM users WHERE roleId = 0").unwrap();
        let scalar = qbs_sql::SqlScalar {
            agg: AggKind::Count,
            column: None,
            query: inner,
            compare: None,
        };
        match db.execute(&SqlQuery::Scalar(scalar.clone()), &Params::new()).unwrap() {
            QueryOutput::Scalar { value, .. } => assert_eq!(value, Value::from(2)),
            other => panic!("unexpected {other:?}"),
        }
        let exists =
            qbs_sql::SqlScalar { compare: Some((CmpOp::Gt, SqlExpr::int(0))), ..scalar };
        match db.execute(&SqlQuery::Scalar(exists), &Params::new()).unwrap() {
            QueryOutput::Scalar { value, .. } => assert_eq!(value, Value::from(true)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn min_max_over_empty_relation_is_an_error_not_a_sentinel() {
        let db = setup();
        let inner = parse_query("SELECT id FROM users WHERE roleId = 99").unwrap();
        for agg in [AggKind::Min, AggKind::Max] {
            let scalar = qbs_sql::SqlScalar {
                agg,
                column: Some(SqlExpr::col("id")),
                query: inner.clone(),
                compare: None,
            };
            let got = db.execute(&SqlQuery::Scalar(scalar), &Params::new());
            assert!(
                matches!(got, Err(DbError::EmptyAggregate(_))),
                "expected EmptyAggregate, got {got:?}"
            );
        }
        // SUM over the empty relation stays 0 (it has a true unit).
        let sum = qbs_sql::SqlScalar {
            agg: AggKind::Sum,
            column: Some(SqlExpr::col("id")),
            query: inner,
            compare: None,
        };
        match db.execute(&SqlQuery::Scalar(sum), &Params::new()).unwrap() {
            QueryOutput::Scalar { value, .. } => assert_eq!(value, Value::from(0)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregate_over_non_integer_column_is_a_type_error() {
        let db = setup();
        let inner = parse_query("SELECT label FROM roles").unwrap();
        let scalar = qbs_sql::SqlScalar {
            agg: AggKind::Sum,
            column: Some(SqlExpr::col("label")),
            query: inner,
            compare: None,
        };
        let got = db.execute(&SqlQuery::Scalar(scalar), &Params::new());
        match got {
            Err(DbError::Exec(msg)) => {
                assert!(msg.contains("non-integer"), "{msg}")
            }
            other => panic!("expected a type error, got {other:?}"),
        }
    }

    #[test]
    fn sum_overflow_is_a_checked_error() {
        let mut db = Database::new();
        db.create_table(Schema::builder("big").field("n", FieldType::Int).finish()).unwrap();
        db.insert("big", vec![Value::from(i64::MAX)]).unwrap();
        db.insert("big", vec![Value::from(1)]).unwrap();
        let scalar = qbs_sql::SqlScalar {
            agg: AggKind::Sum,
            column: Some(SqlExpr::col("n")),
            query: parse_query("SELECT n FROM big").unwrap(),
            compare: None,
        };
        let got = db.execute(&SqlQuery::Scalar(scalar), &Params::new());
        match got {
            Err(DbError::Exec(msg)) => assert!(msg.contains("overflow"), "{msg}"),
            other => panic!("expected overflow error, got {other:?}"),
        }
    }

    #[test]
    fn bind_parameters_resolve() {
        let db = setup();
        let q = parse_query("SELECT id FROM users WHERE id = :uid").unwrap();
        let mut params = Params::new();
        params.insert("uid".into(), Value::from(3));
        let out = db.execute_select(&q, &params).unwrap();
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn in_subquery_executes_once_and_probes_a_hash_set() {
        let db = setup();
        let sub = parse_query("SELECT roleId FROM roles WHERE roleId = 1").unwrap();
        let mut q = parse_query("SELECT id FROM users").unwrap();
        q.where_clause = Some(SqlExpr::InSubquery(
            Box::new(SqlExpr::qcol("users", "roleId")),
            Box::new(sub.clone()),
        ));
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(out.rows.len(), 2);
        // Six probe rows, one sub-query execution, five cache hits.
        assert_eq!(out.stats.subqueries_executed, 1, "{:?}", out.stats);
        assert_eq!(out.stats.subquery_cache_hits, 5, "{:?}", out.stats);

        // The same sub-query twice in one WHERE shares the hoisted result.
        let mut q2 = parse_query("SELECT id FROM users").unwrap();
        q2.where_clause = Some(SqlExpr::And(vec![
            SqlExpr::InSubquery(
                Box::new(SqlExpr::qcol("users", "roleId")),
                Box::new(sub.clone()),
            ),
            SqlExpr::InSubquery(Box::new(SqlExpr::qcol("users", "roleId")), Box::new(sub)),
        ]));
        let out2 = db.execute_select(&q2, &Params::new()).unwrap();
        assert_eq!(out2.rows.len(), 2);
        assert_eq!(out2.stats.subqueries_executed, 1, "{:?}", out2.stats);
    }

    #[test]
    fn nested_in_subqueries_count_toward_hoisting() {
        let db = setup();
        let innermost = parse_query("SELECT roleId FROM roles WHERE roleId = 1").unwrap();
        let mut mid = parse_query("SELECT roleId FROM roles").unwrap();
        mid.where_clause = Some(SqlExpr::InSubquery(
            Box::new(SqlExpr::qcol("roles", "roleId")),
            Box::new(innermost),
        ));
        let mut q = parse_query("SELECT id FROM users").unwrap();
        q.where_clause = Some(SqlExpr::InSubquery(
            Box::new(SqlExpr::qcol("users", "roleId")),
            Box::new(mid),
        ));
        let summary = explain(&q, &db);
        assert_eq!(summary.hoisted_subqueries, 2, "{summary:?}");
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(out.rows.len(), 2);
        // The nested sub-query executes through the same hoisting cache,
        // and the documented bound holds.
        assert!(out.stats.subqueries_executed <= summary.hoisted_subqueries, "{:?}", out.stats);
    }

    #[test]
    fn executing_a_plan_against_an_unindexed_database_errors() {
        let mut indexed = setup();
        indexed.create_index("users", "roleId").unwrap();
        let bare = setup(); // same tables, no index
        let q = parse_query("SELECT id FROM users WHERE roleId = 1").unwrap();
        let p = crate::planner::plan(&q, &indexed);
        assert_eq!(p.summary().index_scans, 1);
        // The plan's probe cannot be satisfied: loud error, not 0 rows.
        let got = bare.execute_plan(&p, &Params::new());
        match got {
            Err(DbError::Exec(msg)) => assert!(msg.contains("index"), "{msg}"),
            other => panic!("expected an index error, got {other:?}"),
        }
    }

    /// `SELECT <alias>.<col> FROM (inner) <alias>`.
    fn wrap_in_from_subquery(inner: qbs_sql::SqlSelect, alias: &str, col: &str) -> SqlSelect {
        qbs_sql::SqlSelect::new(
            vec![qbs_sql::SelectItem { expr: SqlExpr::qcol(alias, col), alias: None }],
            vec![qbs_sql::FromItem::Subquery { query: Box::new(inner), alias: alias.into() }],
        )
    }

    #[test]
    fn from_subquery_stats_stay_top_level() {
        // The inner plan probes an index and (in the join variant) runs a
        // hash join; `joins`/`used_index` must still describe only the
        // top-level statement — the invariant Plan::summary renders.
        let mut db = setup();
        db.create_index("users", "roleId").unwrap();
        let inner = parse_query("SELECT id FROM users WHERE roleId = 1").unwrap();
        let q = wrap_in_from_subquery(inner, "s", "id");
        let plan = explain(&q, &db);
        assert_eq!(plan.index_scans, 0, "{plan:?}");
        assert!(plan.joins.is_empty(), "{plan:?}");
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert!(!out.stats.used_index, "{:?}", out.stats);
        assert!(out.stats.joins.is_empty(), "{:?}", out.stats);
        // The inner scan's row work is still accounted for.
        assert_eq!(out.stats.rows_scanned, 2, "{:?}", out.stats);
    }

    #[test]
    fn order_sensitive_outer_query_pins_inner_subquery_order() {
        let db = setup();
        let join =
            parse_query("SELECT users.id FROM users, roles WHERE users.roleId = roles.roleId")
                .unwrap();
        let cfg = PlanConfig { reorder_joins: true, ..PlanConfig::default() };

        // Outer LIMIT observes the inner row order: the inner join must
        // not be reordered, and the result equals the default execution.
        let mut limited = wrap_in_from_subquery(join.clone(), "s", "id");
        limited.limit = Some(SqlExpr::int(3));
        let plan = crate::planner::plan_with(&limited, &db, &cfg);
        let crate::planner::ScanSource::Subquery { plan: inner, .. } = &plan.scans[0].source
        else {
            panic!("subquery scan expected");
        };
        assert!(!inner.reordered, "{inner:?}");
        let base = db.execute_select(&limited, &Params::new()).unwrap();
        let reordered = db.execute_select_with(&limited, &Params::new(), &cfg).unwrap();
        assert_eq!(base.rows, reordered.rows);

        // Without the outer LIMIT the whole result is a multiset and the
        // inner join may reorder (roles is smaller than users).
        let free = wrap_in_from_subquery(join, "s", "id");
        let plan = crate::planner::plan_with(&free, &db, &cfg);
        let crate::planner::ScanSource::Subquery { plan: inner, .. } = &plan.scans[0].source
        else {
            panic!("subquery scan expected");
        };
        assert!(inner.reordered, "{inner:?}");
    }

    #[test]
    fn reordered_join_preserves_the_multiset() {
        let db = setup();
        // roles (3 rows) is smaller than users (6): greedy order flips.
        let q =
            parse_query("SELECT users.id FROM users, roles WHERE users.roleId = roles.roleId")
                .unwrap();
        let cfg = PlanConfig { reorder_joins: true, ..PlanConfig::default() };
        let plan = explain_with(&q, &db, &cfg);
        assert!(plan.reordered, "{plan:?}");
        assert_eq!(plan.join_order, vec![Ident::new("roles"), Ident::new("users")]);
        let base = db.execute_select(&q, &Params::new()).unwrap();
        let reordered = db.execute_select_with(&q, &Params::new(), &cfg).unwrap();
        assert!(crate::compare::rows_agree(
            &base.rows,
            &reordered.rows,
            crate::compare::RowsEquivalence::Multiset
        ));
    }

    fn row_ints(out: &SelectOutput) -> Vec<Vec<i64>> {
        out.rows
            .iter()
            .map(|r| {
                (0..out.rows.schema().arity())
                    .map(|k| r.value_at(k).as_int().expect("int column"))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn group_by_counts_in_first_occurrence_key_order() {
        let db = setup();
        let q = parse_query("SELECT roleId, COUNT(*) FROM users GROUP BY roleId").unwrap();
        let out = db.execute_select(&q, &Params::new()).unwrap();
        // roleId = i % 3 over ids 0..6: keys first occur in order 0, 1, 2.
        assert_eq!(row_ints(&out), vec![vec![0, 2], vec![1, 2], vec![2, 2]]);
    }

    #[test]
    fn group_by_sum_min_max_per_key() {
        let db = setup();
        let q =
            parse_query("SELECT roleId, SUM(id), MIN(id), MAX(id) FROM users GROUP BY roleId")
                .unwrap();
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(row_ints(&out), vec![vec![0, 3, 0, 3], vec![1, 5, 1, 4], vec![2, 7, 2, 5]]);
    }

    #[test]
    fn having_filters_groups_and_having_only_aggregates_are_dropped() {
        let db = setup();
        // SUM(id) appears only in HAVING: computed, filtered on, dropped.
        let q = parse_query(
            "SELECT roleId, COUNT(*) FROM users GROUP BY roleId HAVING SUM(id) > 3",
        )
        .unwrap();
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(out.rows.schema().arity(), 2);
        assert_eq!(row_ints(&out), vec![vec![1, 2], vec![2, 2]]);
    }

    #[test]
    fn grouped_order_by_sorts_keys_and_aggregates() {
        let db = setup();
        let q = parse_query(
            "SELECT roleId, SUM(id) FROM users GROUP BY roleId ORDER BY roleId DESC",
        )
        .unwrap();
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(row_ints(&out), vec![vec![2, 7], vec![1, 5], vec![0, 3]]);
        // Ordering on an aggregate expression resolves through the same
        // `#agg<i>` rewrite as the select list (the parser has no aggregate
        // ORDER BY surface; build the key by hand).
        let mut q = parse_query("SELECT roleId, SUM(id) FROM users GROUP BY roleId").unwrap();
        q.order_by = vec![qbs_sql::OrderKey {
            expr: SqlExpr::agg(AggKind::Sum, Some(SqlExpr::col("id"))),
            asc: false,
        }];
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(row_ints(&out), vec![vec![2, 7], vec![1, 5], vec![0, 3]]);
    }

    #[test]
    fn grouped_aggregate_over_empty_input_is_zero_rows_not_empty_aggregate() {
        // A group only exists because a row landed in it, so grouped
        // MIN/MAX can never see an empty group: empty input means an
        // empty result, never `DbError::EmptyAggregate`.
        let db = setup();
        let q = parse_query(
            "SELECT roleId, MIN(id), MAX(id) FROM users WHERE roleId = 99 GROUP BY roleId",
        )
        .unwrap();
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert!(out.rows.is_empty());
    }

    #[test]
    fn grouped_aggregate_over_non_integer_column_is_a_type_error() {
        let db = setup();
        let q = parse_query("SELECT roleId, SUM(label) FROM roles GROUP BY roleId").unwrap();
        let got = db.execute_select(&q, &Params::new());
        match got {
            Err(DbError::Exec(msg)) => assert!(msg.contains("non-integer"), "{msg}"),
            other => panic!("expected a type error, got {other:?}"),
        }
    }

    #[test]
    fn grouped_sum_overflow_is_a_checked_error() {
        let mut db = Database::new();
        db.create_table(
            Schema::builder("big")
                .field("k", FieldType::Int)
                .field("n", FieldType::Int)
                .finish(),
        )
        .unwrap();
        db.insert("big", vec![Value::from(0), Value::from(i64::MAX)]).unwrap();
        db.insert("big", vec![Value::from(0), Value::from(1)]).unwrap();
        let q = parse_query("SELECT k, SUM(n) FROM big GROUP BY k").unwrap();
        let got = db.execute_select(&q, &Params::new());
        match got {
            Err(DbError::Exec(msg)) => assert!(msg.contains("overflow"), "{msg}"),
            other => panic!("expected overflow error, got {other:?}"),
        }
    }

    #[test]
    fn explain_renders_the_hash_aggregate_node() {
        let db = setup();
        let q = parse_query(
            "SELECT roleId, COUNT(*) FROM users GROUP BY roleId HAVING COUNT(*) > 1",
        )
        .unwrap();
        let plan = crate::planner::plan(&q, &db);
        let text = plan.to_string();
        assert!(text.contains("hash aggregate (1 keys, 1 aggs, having)"), "{text}");
    }

    #[test]
    fn group_by_prunes_unreferenced_scan_columns() {
        let db = setup();
        let q = parse_query("SELECT roleId, COUNT(*) FROM users GROUP BY roleId").unwrap();
        let plan = crate::planner::plan(&q, &db);
        // `id` feeds nothing downstream of the scan; only the key survives.
        let cols: Vec<Ident> =
            plan.scans[0].out_cols().iter().map(|c| c.name.clone()).collect();
        assert_eq!(cols, vec![Ident::new("roleId")], "{plan}");
    }

    #[test]
    fn rowid_prefix_sort_elision_survives_and_grouping_disables_it() {
        let db = setup();
        let q = parse_query("SELECT id FROM users ORDER BY users.rowid").unwrap();
        let plan = crate::planner::plan(&q, &db);
        assert!(plan.sort_elided, "{plan}");
        assert!(plan.order_by.is_empty(), "{plan}");
        // A grouped plan changes row cardinality between the scan and the
        // sort, so the rowid-prefix guarantee no longer holds — the gate
        // must keep the sort even when the keys would otherwise qualify.
        let mut q = parse_query("SELECT roleId, COUNT(*) FROM users GROUP BY roleId").unwrap();
        q.order_by =
            vec![qbs_sql::OrderKey { expr: SqlExpr::qcol("users", "rowid"), asc: true }];
        let plan = crate::planner::plan(&q, &db);
        assert!(!plan.sort_elided, "{plan}");
        assert_eq!(plan.order_by.len(), 1, "{plan}");
    }

    #[test]
    fn unknown_table_is_reported() {
        let db = setup();
        let q = parse_query("SELECT * FROM missing").unwrap();
        assert!(matches!(db.execute_select(&q, &Params::new()), Err(DbError::UnknownTable(_))));
    }
}
