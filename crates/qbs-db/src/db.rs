//! The database façade: catalog plus query execution.

use crate::exec::{
    self, distinct, eval_expr, filter, hash_join, nested_loop_join, sort, EvalCtx, ExecStats,
    Frame,
};
use crate::planner::{aliases_of, conjuncts, equi_join_keys, index_eq};
use crate::storage::Table;
use qbs_common::{FieldType, Ident, Record, Relation, Schema, SchemaRef, Value};
use qbs_sql::{FromItem, SqlExpr, SqlQuery, SqlSelect};
use qbs_tor::AggKind;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Bind parameters for query execution.
pub type Params = BTreeMap<Ident, Value>;

/// Errors from the database layer.
#[derive(Clone, Debug, PartialEq)]
pub enum DbError {
    /// Unknown table.
    UnknownTable(Ident),
    /// A table with this name already exists.
    DuplicateTable(Ident),
    /// Schema problem (bad column etc.).
    Schema(String),
    /// Runtime execution failure.
    Exec(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            DbError::DuplicateTable(t) => write!(f, "table `{t}` already exists"),
            DbError::Schema(e) => write!(f, "schema error: {e}"),
            DbError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<exec::ExecError> for DbError {
    fn from(e: exec::ExecError) -> Self {
        DbError::Exec(e.to_string())
    }
}

/// Result rows of a select, plus execution stats.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectOutput {
    /// The rows as an ordered relation.
    pub rows: Relation,
    /// Execution counters.
    pub stats: ExecStats,
}

/// Result of executing any [`SqlQuery`].
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutput {
    /// Relational result.
    Rows(SelectOutput),
    /// Scalar (aggregate / boolean) result.
    Scalar {
        /// The value.
        value: Value,
        /// Execution counters.
        stats: ExecStats,
    },
}

/// The in-memory database: a catalog of [`Table`]s plus the executor.
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: BTreeMap<Ident, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Creates a table from a named schema.
    ///
    /// # Errors
    ///
    /// [`DbError::DuplicateTable`] when the name is taken;
    /// [`DbError::Schema`] when the schema is anonymous.
    pub fn create_table(&mut self, schema: SchemaRef) -> Result<(), DbError> {
        let name = schema
            .name()
            .cloned()
            .ok_or_else(|| DbError::Schema("tables need named schemas".to_string()))?;
        if self.tables.contains_key(&name) {
            return Err(DbError::DuplicateTable(name));
        }
        self.tables.insert(name, Table::new(schema));
        Ok(())
    }

    /// Inserts a row.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownTable`] when the table does not exist.
    ///
    /// # Panics
    ///
    /// Panics on arity/type mismatch (see [`Table::insert`]).
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> Result<(), DbError> {
        self.tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.into()))?
            .insert(values);
        Ok(())
    }

    /// Builds a hash index on `table.column` (the paper notes Hibernate
    /// auto-creates indexes on key columns).
    ///
    /// # Errors
    ///
    /// Unknown table or column.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<(), DbError> {
        self.tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.into()))?
            .create_index(&column.into())
            .map_err(|e| DbError::Schema(e.to_string()))
    }

    /// Table lookup.
    pub fn table(&self, name: &Ident) -> Option<&Table> {
        self.tables.get(name)
    }

    /// All table names.
    pub fn table_names(&self) -> impl Iterator<Item = &Ident> {
        self.tables.keys()
    }

    /// A kernel-interpreter environment with every table bound as an
    /// ordered relation — the bridge that lets the original imperative
    /// fragment and the SQL executor run against the *same* data (the
    /// differential-oracle setup).
    pub fn env(&self) -> qbs_tor::Env {
        let mut env = qbs_tor::Env::new();
        for (name, table) in &self.tables {
            env.bind_table(name.clone(), table.relation());
        }
        env
    }

    /// Scans a table into a frame (columns qualified by `alias`, plus the
    /// hidden `rowid`), applying pushed-down predicates — via the hash index
    /// when an equality predicate matches an indexed column.
    fn scan(
        &self,
        name: &Ident,
        alias: &Ident,
        pushed: &[SqlExpr],
        params: &Params,
        ctx: &EvalCtx<'_>,
        stats: &mut ExecStats,
    ) -> Result<Frame, DbError> {
        let table = self.tables.get(name).ok_or_else(|| DbError::UnknownTable(name.clone()))?;
        let mut cols: Vec<exec::FrameCol> = table
            .schema()
            .fields()
            .iter()
            .map(|f| exec::FrameCol { alias: alias.clone(), name: f.name.clone() })
            .collect();
        cols.push(exec::FrameCol { alias: alias.clone(), name: "rowid".into() });

        // Try an index for one equality predicate.
        let mut index_rows: Option<Vec<usize>> = None;
        let mut residual = Vec::new();
        for p in pushed {
            if index_rows.is_none() {
                if let Some((col, valexpr)) = index_eq(p, alias) {
                    if table.has_index(&col) {
                        let v = match &valexpr {
                            SqlExpr::Lit(v) => Some(v.clone()),
                            SqlExpr::Param(p) => params.get(p).cloned(),
                            _ => None,
                        };
                        if let Some(v) = v {
                            index_rows =
                                Some(table.index_lookup(&col, &v).unwrap_or(&[]).to_vec());
                            stats.used_index = true;
                            continue;
                        }
                    }
                }
            }
            residual.push(p.clone());
        }

        let mut frame = Frame::new(cols);
        match index_rows {
            Some(ids) => {
                stats.rows_scanned += ids.len();
                for rowid in ids {
                    let mut row = table.rows()[rowid].clone();
                    row.push(Value::from(rowid as i64));
                    frame.rows.push(row);
                }
            }
            None => {
                stats.rows_scanned += table.len();
                for (rowid, r) in table.rows().iter().enumerate() {
                    let mut row = r.clone();
                    row.push(Value::from(rowid as i64));
                    frame.rows.push(row);
                }
            }
        }
        if !residual.is_empty() {
            let pred = SqlExpr::conjoin(residual);
            frame = filter(frame, &pred, ctx)?;
        }
        Ok(frame)
    }

    /// Executes a relational query.
    ///
    /// # Errors
    ///
    /// Propagates unknown tables/columns and evaluation failures.
    pub fn execute_select(
        &self,
        q: &SqlSelect,
        params: &Params,
    ) -> Result<SelectOutput, DbError> {
        let mut stats = ExecStats::default();
        let frame = self.run_select(q, params, &mut stats)?;
        // Build the output relation: anonymous schema over the frame columns.
        let mut b = Schema::anonymous();
        for (k, c) in frame.cols.iter().enumerate() {
            let ty = frame
                .rows
                .first()
                .map(|r| match &r[k] {
                    Value::Bool(_) => FieldType::Bool,
                    Value::Int(_) => FieldType::Int,
                    Value::Str(_) => FieldType::Str,
                })
                .unwrap_or(FieldType::Int);
            b = b.push(qbs_common::Field::qualified(c.alias.clone(), c.name.clone(), ty));
        }
        let schema = b.finish();
        let records = frame.rows.into_iter().map(|r| Record::new(schema.clone(), r)).collect();
        let rows = Relation::from_records(schema, records)
            .map_err(|e| DbError::Schema(e.to_string()))?;
        Ok(SelectOutput { rows, stats })
    }

    fn run_select(
        &self,
        q: &SqlSelect,
        params: &Params,
        stats: &mut ExecStats,
    ) -> Result<Frame, DbError> {
        let db = self;
        let sub = |s: &SqlSelect| -> Result<Frame, exec::ExecError> {
            let mut st = ExecStats::default();
            db.run_select(s, params, &mut st).map_err(|e| exec::ExecError::new(e.to_string()))
        };
        let ctx = EvalCtx { params, subquery: &sub };

        let mut remaining: Vec<SqlExpr> =
            q.where_clause.as_ref().map(conjuncts).unwrap_or_default();

        // Per-item frames with pushdown.
        let mut frames: Vec<(Ident, Frame)> = Vec::new();
        for item in &q.from {
            let alias = item.alias().clone();
            let mut mine = BTreeSet::new();
            mine.insert(alias.clone());
            let mut pushed = Vec::new();
            let mut rest = Vec::new();
            for c in remaining.drain(..) {
                let mut used = BTreeSet::new();
                aliases_of(&c, &mut used);
                // Unqualified predicates are pushable when there is only one
                // FROM item to attribute them to.
                let pushable = used.is_subset(&mine) && (!used.is_empty() || q.from.len() == 1);
                if pushable {
                    pushed.push(c);
                } else {
                    rest.push(c);
                }
            }
            remaining = rest;
            let frame = match item {
                FromItem::Table { name, alias } => {
                    self.scan(name, alias, &pushed, params, &ctx, stats)?
                }
                FromItem::Subquery { query, alias } => {
                    let inner = self.run_select(query, params, stats)?;
                    let cols = query
                        .columns
                        .iter()
                        .enumerate()
                        .map(|(k, c)| exec::FrameCol {
                            alias: alias.clone(),
                            name: c
                                .alias
                                .clone()
                                .or_else(|| match &c.expr {
                                    SqlExpr::Column { name, .. } => Some(name.clone()),
                                    _ => None,
                                })
                                .unwrap_or_else(|| Ident::new(format!("c{k}"))),
                        })
                        .collect();
                    let mut f = Frame::new(cols);
                    f.rows = inner.rows;
                    if !pushed.is_empty() {
                        let pred = SqlExpr::conjoin(pushed);
                        f = filter(f, &pred, &ctx)?;
                    }
                    f
                }
            };
            frames.push((alias, frame));
        }

        // Fold joins left to right.
        let mut iter = frames.into_iter();
        let (first_alias, mut acc) =
            iter.next().ok_or_else(|| DbError::Exec("query without FROM".to_string()))?;
        let mut joined: BTreeSet<Ident> = BTreeSet::new();
        joined.insert(first_alias);
        for (alias, right) in iter {
            let mut right_set = BTreeSet::new();
            right_set.insert(alias.clone());
            // Find one equi-join key pair; remaining connecting predicates
            // become the residual.
            let mut key: Option<(SqlExpr, SqlExpr)> = None;
            let mut connecting = Vec::new();
            let mut rest = Vec::new();
            for c in remaining.drain(..) {
                let mut used = BTreeSet::new();
                aliases_of(&c, &mut used);
                let mut both = joined.clone();
                both.insert(alias.clone());
                if used.is_subset(&both) && used.contains(&alias) {
                    if key.is_none() {
                        if let Some(k) = equi_join_keys(&c, &joined, &right_set) {
                            key = Some(k);
                            continue;
                        }
                    }
                    connecting.push(c);
                } else {
                    rest.push(c);
                }
            }
            remaining = rest;
            let residual = (!connecting.is_empty()).then(|| SqlExpr::conjoin(connecting));
            acc = match key {
                Some((lk, rk)) => {
                    hash_join(acc, right, &lk, &rk, residual.as_ref(), &ctx, stats)?
                }
                None => nested_loop_join(acc, right, residual.as_ref(), &ctx, stats)?,
            };
            joined.insert(alias);
        }

        // Leftover predicates (alias-free literals etc.).
        if !remaining.is_empty() {
            let pred = SqlExpr::conjoin(remaining);
            acc = filter(acc, &pred, &ctx)?;
        }

        // ORDER BY before projection (keys may be unprojected).
        if !q.order_by.is_empty() {
            let keys: Vec<(SqlExpr, bool)> =
                q.order_by.iter().map(|k| (k.expr.clone(), k.asc)).collect();
            acc = sort(acc, &keys, &ctx)?;
        }

        // Projection. An empty column list is `SELECT *`: all non-rowid
        // columns.
        let mut out_cols = Vec::new();
        let mut out_idx: Vec<usize> = Vec::new();
        if q.columns.is_empty() {
            for (i, c) in acc.cols.iter().enumerate() {
                if c.name != "rowid" {
                    out_cols.push(c.clone());
                    out_idx.push(i);
                }
            }
        } else {
            for (k, item) in q.columns.iter().enumerate() {
                match &item.expr {
                    SqlExpr::Column { qualifier, name } => {
                        let i = acc.resolve(qualifier.as_ref(), name).ok_or_else(|| {
                            DbError::Exec(format!("unresolved select column {name}"))
                        })?;
                        out_cols.push(exec::FrameCol {
                            alias: item
                                .alias
                                .clone()
                                .unwrap_or_else(|| acc.cols[i].alias.clone()),
                            name: item.alias.clone().unwrap_or_else(|| name.clone()),
                        });
                        out_idx.push(i);
                    }
                    other => {
                        return Err(DbError::Exec(format!(
                            "unsupported select expression {other:?} at position {k}"
                        )))
                    }
                }
            }
        }
        let rows = acc
            .rows
            .into_iter()
            .map(|r| out_idx.iter().map(|&i| r[i].clone()).collect())
            .collect();
        let mut frame = Frame { cols: out_cols, rows };

        if q.distinct {
            frame = distinct(frame);
        }

        if let Some(l) = &q.limit {
            let n = match l {
                SqlExpr::Lit(Value::Int(n)) => *n,
                SqlExpr::Param(p) => params
                    .get(p)
                    .and_then(Value::as_int)
                    .ok_or_else(|| DbError::Exec(format!("unbound LIMIT parameter :{p}")))?,
                other => return Err(DbError::Exec(format!("unsupported LIMIT {other:?}"))),
            };
            frame.rows.truncate(n.max(0) as usize);
        }
        Ok(frame)
    }

    /// Executes any query (relational or scalar).
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn execute(&self, q: &SqlQuery, params: &Params) -> Result<QueryOutput, DbError> {
        match q {
            SqlQuery::Select(s) => Ok(QueryOutput::Rows(self.execute_select(s, params)?)),
            SqlQuery::Scalar(s) => {
                let mut stats = ExecStats::default();
                // Aggregate input: the relational part with projection; for
                // COUNT(*) project nothing special.
                let mut inner = s.query.clone();
                if let Some(col) = &s.column {
                    inner.columns =
                        vec![qbs_sql::SelectItem { expr: col.clone(), alias: None }];
                }
                let frame = self.run_select(&inner, params, &mut stats)?;
                let value = match s.agg {
                    AggKind::Count => Value::from(frame.rows.len() as i64),
                    agg => {
                        let nums: Vec<i64> = frame
                            .rows
                            .iter()
                            .filter_map(|r| r.first().and_then(Value::as_int))
                            .collect();
                        match agg {
                            AggKind::Sum => Value::from(nums.iter().sum::<i64>()),
                            AggKind::Max => {
                                Value::from(nums.iter().copied().fold(i64::MIN, i64::max))
                            }
                            AggKind::Min => {
                                Value::from(nums.iter().copied().fold(i64::MAX, i64::min))
                            }
                            AggKind::Count => unreachable!("handled above"),
                        }
                    }
                };
                let value = match &s.compare {
                    None => value,
                    Some((op, rhs)) => {
                        let no_sub =
                            |_: &qbs_sql::SqlSelect| -> Result<Frame, exec::ExecError> {
                                Err(exec::ExecError::new(
                                    "no sub-queries in scalar comparisons",
                                ))
                            };
                        let ctx = EvalCtx { params, subquery: &no_sub };
                        let empty = Frame::new(vec![]);
                        let r = eval_expr(rhs, &empty, &[], &ctx)?;
                        Value::from(op.test(value.total_cmp(&r)))
                    }
                };
                Ok(QueryOutput::Scalar { value, stats })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{explain, JoinAlgorithm};
    use qbs_sql::parse_query;
    use qbs_tor::CmpOp;

    fn setup() -> Database {
        let mut db = Database::new();
        db.create_table(
            Schema::builder("users")
                .field("id", FieldType::Int)
                .field("roleId", FieldType::Int)
                .finish(),
        )
        .unwrap();
        db.create_table(
            Schema::builder("roles")
                .field("roleId", FieldType::Int)
                .field("label", FieldType::Str)
                .finish(),
        )
        .unwrap();
        for i in 0..6i64 {
            db.insert("users", vec![Value::from(i), Value::from(i % 3)]).unwrap();
        }
        for r in 0..3i64 {
            db.insert("roles", vec![Value::from(r), Value::from(format!("role{r}"))]).unwrap();
        }
        db
    }

    #[test]
    fn select_star_strips_rowid() {
        let db = setup();
        let q = parse_query("SELECT * FROM users").unwrap();
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(out.rows.len(), 6);
        assert_eq!(out.rows.schema().arity(), 2);
    }

    #[test]
    fn where_filters_and_index_is_used() {
        let mut db = setup();
        db.create_index("users", "roleId").unwrap();
        let q = parse_query("SELECT id FROM users WHERE roleId = 1").unwrap();
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert!(out.stats.used_index);
        // Only the matching rows were touched.
        assert_eq!(out.stats.rows_scanned, 2);
    }

    #[test]
    fn join_uses_hash_algorithm_and_preserves_order() {
        let db = setup();
        let q = parse_query(
            "SELECT users.id, roles.label FROM users, roles WHERE users.roleId = roles.roleId \
             ORDER BY users.rowid, roles.rowid",
        )
        .unwrap();
        // Need two FROM items: extend the parser output manually.
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(out.rows.len(), 6);
        assert_eq!(out.stats.joins, vec!["hash"]);
        // users in insertion order: ids 0..6.
        let ids: Vec<i64> = out.rows.iter().map(|r| r.value_at(0).as_int().unwrap()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn explain_reports_hash_join_and_index() {
        let mut db = setup();
        db.create_index("users", "roleId").unwrap();
        let q =
            parse_query("SELECT users.id FROM users, roles WHERE users.roleId = roles.roleId")
                .unwrap();
        let plan = explain(&q, &db);
        assert_eq!(plan.joins, vec![JoinAlgorithm::Hash]);
        let q2 = parse_query("SELECT id FROM users WHERE roleId = 2").unwrap();
        let plan2 = explain(&q2, &db);
        assert_eq!(plan2.index_scans, 1);
    }

    #[test]
    fn order_by_limit_distinct() {
        let db = setup();
        let q = parse_query("SELECT DISTINCT roleId FROM users ORDER BY roleId DESC LIMIT 2");
        // The parser has no DISTINCT support; build by hand.
        drop(q);
        let mut q =
            parse_query("SELECT roleId FROM users ORDER BY roleId DESC LIMIT 2").unwrap();
        q.distinct = true;
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows.get(0).unwrap().value_at(0), &Value::from(2));
    }

    #[test]
    fn scalar_count_and_comparison() {
        let db = setup();
        let inner = parse_query("SELECT * FROM users WHERE roleId = 0").unwrap();
        let scalar = qbs_sql::SqlScalar {
            agg: AggKind::Count,
            column: None,
            query: inner,
            compare: None,
        };
        match db.execute(&SqlQuery::Scalar(scalar.clone()), &Params::new()).unwrap() {
            QueryOutput::Scalar { value, .. } => assert_eq!(value, Value::from(2)),
            other => panic!("unexpected {other:?}"),
        }
        let exists =
            qbs_sql::SqlScalar { compare: Some((CmpOp::Gt, SqlExpr::int(0))), ..scalar };
        match db.execute(&SqlQuery::Scalar(exists), &Params::new()).unwrap() {
            QueryOutput::Scalar { value, .. } => assert_eq!(value, Value::from(true)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bind_parameters_resolve() {
        let db = setup();
        let q = parse_query("SELECT id FROM users WHERE id = :uid").unwrap();
        let mut params = Params::new();
        params.insert("uid".into(), Value::from(3));
        let out = db.execute_select(&q, &params).unwrap();
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn in_subquery_executes() {
        let db = setup();
        let sub = parse_query("SELECT roleId FROM roles WHERE roleId = 1").unwrap();
        let mut q = parse_query("SELECT id FROM users").unwrap();
        q.where_clause = Some(SqlExpr::InSubquery(
            Box::new(SqlExpr::qcol("users", "roleId")),
            Box::new(sub),
        ));
        let out = db.execute_select(&q, &Params::new()).unwrap();
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn unknown_table_is_reported() {
        let db = setup();
        let q = parse_query("SELECT * FROM missing").unwrap();
        assert!(matches!(db.execute_select(&q, &Params::new()), Err(DbError::UnknownTable(_))));
    }
}
