//! `EXPLAIN ANALYZE`: per-operator actuals recorded during one
//! interpretation of a [`PhysicalPlan`], rendered next to the planner's
//! estimates.
//!
//! [`Connection::explain_analyze`](crate::Connection::explain_analyze)
//! executes a prepared statement with the interpreter's per-node
//! instrumentation switched on and returns an [`AnalyzedPlan`]: the plan
//! that ran, a [`PlanActuals`] with rows and elapsed time per operator,
//! and the execution's [`ExecStats`]. Rendering the result annotates the
//! same tree `explain()` prints, so a cardinality misestimate is visible
//! as `est 100 rows … actual 3 rows` on the node that caused it.

use crate::exec::ExecStats;
use crate::planner::PhysicalPlan;
use std::fmt;
use std::sync::Arc;

/// Actuals of one scan node.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScanActuals {
    /// Base-table rows read by this scan (nested sub-query scans
    /// included).
    pub rows_scanned: usize,
    /// Rows the scan emitted after its pushed filter.
    pub rows_out: usize,
    /// Wall-clock time in the scan.
    pub elapsed_ns: u64,
    /// True when an index probe answered the scan.
    pub via_index: bool,
}

/// Actuals of one non-scan operator (join step, residual filter, sort,
/// distinct).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpActuals {
    /// Rows the operator emitted.
    pub rows_out: usize,
    /// Wall-clock time in the operator.
    pub elapsed_ns: u64,
}

/// Per-operator actuals of one plan interpretation, in the same shape as
/// the [`PhysicalPlan`] they were recorded against.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanActuals {
    /// One entry per plan scan, in execution order.
    pub scans: Vec<ScanActuals>,
    /// One entry per join step, in execution order.
    pub joins: Vec<OpActuals>,
    /// The post-join residual filter, when the plan has one.
    pub residual: Option<OpActuals>,
    /// The hash aggregate (HAVING filter included), when the plan has one.
    pub aggregate: Option<OpActuals>,
    /// The sort, when the plan has one.
    pub sort: Option<OpActuals>,
    /// The distinct pass, when the plan has one.
    pub distinct: Option<OpActuals>,
    /// Rows in the statement's final output.
    pub output_rows: usize,
    /// End-to-end wall-clock time of the interpretation.
    pub total_ns: u64,
}

/// Formats a nanosecond duration for plan annotations (`850ns`,
/// `12.3µs`, `4.5ms`, `1.20s`).
pub(crate) fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1_000.0),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1_000_000.0),
        _ => format!("{:.2}s", ns as f64 / 1_000_000_000.0),
    }
}

/// The result of `explain_analyze`: the plan that ran, annotated with
/// what actually happened.
///
/// `Display` renders the tree with timings; [`AnalyzedPlan::render`]
/// with `with_times = false` omits every wall-clock figure, giving a
/// fully deterministic rendering for golden tests.
#[derive(Clone, Debug)]
pub struct AnalyzedPlan {
    /// The plan that was interpreted.
    pub plan: Arc<PhysicalPlan>,
    /// Per-operator actuals.
    pub actuals: PlanActuals,
    /// The execution's counters (cache hits, sub-queries, timing fields).
    pub stats: ExecStats,
}

impl AnalyzedPlan {
    /// Renders the annotated plan tree. With `with_times` the per-node
    /// and total wall-clock figures are included; without, only the
    /// deterministic row counts — the golden-test form.
    pub fn render(&self, with_times: bool) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let time =
            |ns: u64| if with_times { format!(", {}", fmt_ns(ns)) } else { String::new() };
        for (k, scan) in self.plan.scans.iter().enumerate() {
            let a = self.actuals.scans.get(k).cloned().unwrap_or_default();
            writeln!(
                out,
                "{} [actual {} rows, scanned {}{}]",
                scan.describe(),
                a.rows_out,
                a.rows_scanned,
                time(a.elapsed_ns),
            )
            .expect("write to string");
            if k > 0 {
                let a = self.actuals.joins.get(k - 1).cloned().unwrap_or_default();
                writeln!(
                    out,
                    "{} [actual {} rows{}]",
                    self.plan.joins[k - 1].describe(),
                    a.rows_out,
                    time(a.elapsed_ns),
                )
                .expect("write to string");
            }
        }
        let mut op = |label: String, a: &Option<OpActuals>| {
            let a = a.clone().unwrap_or_default();
            writeln!(out, "{label} [actual {} rows{}]", a.rows_out, time(a.elapsed_ns))
                .expect("write to string");
        };
        if self.plan.residual.is_some() {
            op("filter (post-join residual)".to_string(), &self.actuals.residual);
        }
        if let Some(agg) = &self.plan.aggregate {
            op(agg.describe(), &self.actuals.aggregate);
        }
        if !self.plan.order_by.is_empty() {
            op(format!("sort ({} keys)", self.plan.order_by.len()), &self.actuals.sort);
        }
        if self.plan.distinct {
            op("distinct".to_string(), &self.actuals.distinct);
        }
        if self.plan.limit.is_some() {
            writeln!(out, "limit").expect("write to string");
        }
        if self.plan.offset.is_some() {
            writeln!(out, "offset").expect("write to string");
        }
        write!(
            out,
            "output: {} rows{}; {} scanned, {} subquer{} executed ({} cache hits)",
            self.actuals.output_rows,
            if with_times {
                format!(" in {}", fmt_ns(self.actuals.total_ns))
            } else {
                String::new()
            },
            self.stats.rows_scanned,
            self.stats.subqueries_executed,
            if self.stats.subqueries_executed == 1 { "y" } else { "ies" },
            self.stats.subquery_cache_hits,
        )
        .expect("write to string");
        out
    }

    /// Estimate-vs-actual pairs per cardinality-bearing node: the node's
    /// one-line label, the planner's estimate, and the observed row
    /// count. This is what `BENCH_obs.json`'s error distribution is
    /// computed over.
    pub fn estimate_errors(&self) -> Vec<(String, usize, usize)> {
        let mut out = Vec::new();
        for (scan, a) in self.plan.scans.iter().zip(&self.actuals.scans) {
            out.push((format!("scan {}", scan.alias), scan.estimated_rows, a.rows_out));
        }
        for (k, (step, a)) in self.plan.joins.iter().zip(&self.actuals.joins).enumerate() {
            out.push((format!("join #{k}"), step.estimated_rows, a.rows_out));
        }
        out
    }
}

impl fmt::Display for AnalyzedPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_a_sensible_unit() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(850), "850ns");
        assert_eq!(fmt_ns(12_300), "12.3µs");
        assert_eq!(fmt_ns(4_500_000), "4.5ms");
        assert_eq!(fmt_ns(1_200_000_000), "1.20s");
    }
}
