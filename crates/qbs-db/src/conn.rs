//! Connections: the plan-once / execute-many session surface over a
//! [`Database`], safe to share across threads.
//!
//! The QBS story is repeated execution — the inferred query replaces code
//! that runs on *every page load* — yet the plain [`Database::execute`]
//! path re-parses and re-plans the SQL text on every call. A
//! [`Connection`] is the production-shaped client handle: it owns a
//! fingerprint-keyed cache of [`PhysicalPlan`]s, a persistent hoisting
//! cache for uncorrelated sub-queries, and hands out
//! [`PreparedStatement`]s whose typed parameter slots are re-validated on
//! every bind without ever re-planning.
//!
//! # Concurrency
//!
//! `Connection` is `Send + Sync + Clone`: clones share the database and
//! every cache, so a pool of worker threads each holding a clone is the
//! intended serving shape. Reads are MVCC snapshot reads: a statement
//! *pins* the current database value (one `Arc` clone under a briefly
//! held read lock) and executes entirely against that immutable snapshot
//! — no lock is held during execution, and a concurrent writer can never
//! make it observe a partial write. Writers ([`Connection::insert`],
//! [`Connection::insert_many`], [`Connection::create_index`]) serialize
//! among themselves, build a *new* database value copy-on-write (table
//! chunks are `Arc`-shared, so this copies catalog structure, not rows),
//! and swap it in with a bumped version.
//!
//! Plans stay valid until a referenced table's generation counter moves
//! (inserts and index builds bump it); execution then replans
//! transparently and records the event in
//! [`ExecStats::replans`](crate::ExecStats).

use crate::analyze::{AnalyzedPlan, PlanActuals};
use crate::db::{Database, DbError, Params, QueryOutput, SelectOutput, SubqueryState};
use crate::planner::{plan_with, PhysicalPlan, PlanConfig};
use crate::stmt::{fingerprint, replan, snapshot, PlanState, PreparedStatement, Snapshot};
use crate::storage::Table;
use crate::vm::PlanProgram;
use qbs_common::Value;
use qbs_sql::{Dialect, SqlQuery};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Aggregate counters of a connection's plan cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered by a still-valid cached plan (prepared handle or
    /// fingerprint cache).
    pub hits: usize,
    /// Plans computed because nothing valid was cached.
    pub misses: usize,
    /// Cached plans discarded because a referenced table's generation
    /// counter moved.
    pub invalidations: usize,
}

impl PlanCacheStats {
    /// Hits over total lookups (1.0 for an untouched cache).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 1.0;
        }
        self.hits as f64 / total as f64
    }
}

struct CachedPlan {
    plan: Arc<PhysicalPlan>,
    snapshot: Snapshot,
}

/// Plan-cache counters held as atomics so [`Connection::cache_stats`] is
/// a lock-free read: a snapshot never blocks an in-flight increment, and
/// incrementing never waits on a reader.
#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicUsize,
    misses: AtomicUsize,
    invalidations: AtomicUsize,
}

impl CacheCounters {
    fn snapshot(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

/// The connection's current database value and its monotonically
/// increasing version — the MVCC head. Readers clone the `Arc` (a
/// snapshot pin); writers replace the whole value.
struct DbVersion {
    db: Arc<Database>,
    version: u64,
}

/// Locks a `RwLock` for reading, surviving poisoning: every writer
/// replaces guarded state wholesale (never mutates it in place), so a
/// panicked writer cannot have left it half-written.
fn rlock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-lock counterpart of [`rlock`], same poisoning argument.
fn wlock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

struct ConnInner {
    /// The MVCC head. The lock is held only long enough to clone (pin) or
    /// swap the `Arc` — never across planning or execution.
    current: RwLock<DbVersion>,
    /// Serializes writers: each clones the pinned database, mutates the
    /// clone, and installs it. Readers never take this.
    write_lock: Mutex<()>,
    config: PlanConfig,
    dialect: Dialect,
    /// Fingerprint → plan + the generation snapshot it was computed under.
    plans: RwLock<HashMap<u64, CachedPlan>>,
    /// SQL text → prepared statement (the `query_cached` fast path).
    stmts: RwLock<HashMap<String, Arc<PreparedStatement>>>,
    subqueries: SubqueryState,
    stats: CacheCounters,
}

/// A session handle over a [`Database`]: prepared statements, a plan
/// cache, and mutation entry points that keep both honest.
///
/// Cloning is cheap and shares the database and every cache — the shape
/// of a pooled client connection. Clones may execute prepared statements
/// from different threads concurrently; see the
/// [crate docs](crate) for the snapshot semantics.
///
/// # Example
///
/// ```
/// use qbs_common::{FieldType, Schema, Value};
/// use qbs_db::{Connection, Database, QueryOutput};
///
/// let mut db = Database::new();
/// db.create_table(Schema::builder("users").field("id", FieldType::Int).finish()).unwrap();
/// db.insert("users", vec![Value::from(7)]).unwrap();
///
/// let conn = Connection::open(db);
/// // The first call parses + plans; every call executes a cached plan.
/// for _ in 0..3 {
///     let QueryOutput::Rows(out) =
///         conn.query_cached("SELECT id FROM users", &qbs_db::Params::new()).unwrap()
///     else {
///         unreachable!()
///     };
///     assert_eq!(out.rows.len(), 1);
///     assert_eq!(out.stats.plan_cache_hits, 1);
///     assert_eq!(out.stats.replans, 0);
/// }
/// assert_eq!(conn.plan_cache_stats().misses, 1, "one planning pass total");
/// ```
#[derive(Clone)]
pub struct Connection {
    inner: Arc<ConnInner>,
}

impl Connection {
    /// Opens a connection over a database with the default planner
    /// configuration and the generic dialect.
    pub fn open(db: Database) -> Connection {
        Connection::open_with(db, PlanConfig::default(), Dialect::default())
    }

    /// Opens a connection with an explicit planner configuration and
    /// statement dialect.
    pub fn open_with(db: Database, config: PlanConfig, dialect: Dialect) -> Connection {
        Connection {
            inner: Arc::new(ConnInner {
                current: RwLock::new(DbVersion { db: Arc::new(db), version: 0 }),
                write_lock: Mutex::new(()),
                subqueries: SubqueryState::new(config.clone()),
                config,
                dialect,
                plans: RwLock::new(HashMap::new()),
                stmts: RwLock::new(HashMap::new()),
                stats: CacheCounters::default(),
            }),
        }
    }

    /// The dialect prepared statements render under.
    pub fn dialect(&self) -> Dialect {
        self.inner.dialect
    }

    /// The planner configuration every plan is computed with.
    pub fn config(&self) -> &PlanConfig {
        &self.inner.config
    }

    /// Pins the current snapshot: the database value and its version.
    /// The read lock is held only for the `Arc` clone.
    fn pin(&self) -> (Arc<Database>, u64) {
        let cur = rlock(&self.inner.current);
        (cur.db.clone(), cur.version)
    }

    /// Pins and returns the current database snapshot. The returned value
    /// is immutable and stays exactly as it was pinned — concurrent
    /// writers on this connection publish *new* database values without
    /// disturbing handed-out snapshots.
    pub fn database(&self) -> Arc<Database> {
        self.pin().0
    }

    /// The version of the current snapshot (bumped by every mutation
    /// through this connection or its clones).
    pub fn version(&self) -> u64 {
        self.pin().1
    }

    /// Closes the connection and returns the database. When this is the
    /// only handle (no connection clones, no outstanding snapshots) the
    /// database moves out without copying (what a throwaway connection
    /// over an owned database wants — e.g. the oracle's witness
    /// minimization executing one candidate after another); otherwise the
    /// current snapshot is copied out.
    pub fn into_database(self) -> Database {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => {
                let cur = inner.current.into_inner().unwrap_or_else(PoisonError::into_inner);
                Arc::try_unwrap(cur.db).unwrap_or_else(|shared| (*shared).clone())
            }
            Err(shared) => (*rlock(&shared.current).db).clone(),
        }
    }

    /// The writer path: serializes with other writers, copies the current
    /// database value (copy-on-write — row chunks are shared), applies
    /// `f`, and atomically publishes the result under `version + 1`.
    /// In-flight readers keep their pinned snapshot; an error from `f`
    /// publishes nothing.
    fn mutate<T>(
        &self,
        f: impl FnOnce(&mut Database) -> Result<T, DbError>,
    ) -> Result<T, DbError> {
        let _writer = self.inner.write_lock.lock().unwrap_or_else(PoisonError::into_inner);
        let (base, version) = self.pin();
        let mut db = (*base).clone();
        let out = f(&mut db)?;
        *wlock(&self.inner.current) = DbVersion { db: Arc::new(db), version: version + 1 };
        // Hoisted sub-query results were computed against older versions;
        // drop them (their version tags would keep them unreachable
        // anyway, but there is no point retaining dead entries).
        self.inner.subqueries.clear();
        Ok(out)
    }

    /// Inserts a row; bumps the table's generation counter, so cached
    /// plans over it replan on next execution, and drops the hoisted
    /// sub-query cache. Concurrent readers keep their snapshot.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownTable`] when the table does not exist.
    pub fn insert(&self, table: &str, values: Vec<Value>) -> Result<(), DbError> {
        self.mutate(|db| db.insert(table, values))
    }

    /// Inserts a batch of rows atomically: one storage chunk, one
    /// generation bump, one published version — a concurrent reader sees
    /// none or all of the batch, and cached plans are invalidated once
    /// instead of once per row. See [`Table::insert_many`].
    ///
    /// An empty batch is a complete no-op: nothing changed, so no version
    /// is published, no generation moves, and cached plans and hoisted
    /// sub-query results stay valid (it used to go through the writer
    /// path and spuriously replan every prepared statement).
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownTable`] when the table does not exist.
    pub fn insert_many(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<(), DbError> {
        if rows.is_empty() {
            let (db, _) = self.pin();
            return match db.table(&table.into()) {
                Some(_) => Ok(()),
                None => Err(DbError::UnknownTable(table.into())),
            };
        }
        self.mutate(|db| db.insert_many(table, rows))
    }

    /// Builds a hash index; bumps the table's generation counter so
    /// cached plans replan (and may now probe the new index).
    ///
    /// # Errors
    ///
    /// Unknown table or column.
    pub fn create_index(&self, table: &str, column: &str) -> Result<(), DbError> {
        self.mutate(|db| db.create_index(table, column))
    }

    /// Parses and prepares a statement: one parse, one plan, typed slots.
    ///
    /// # Errors
    ///
    /// [`DbError::Exec`] when the text is not parseable SQL.
    pub fn prepare(&self, sql: &str) -> Result<PreparedStatement, DbError> {
        let query = qbs_sql::parse(sql).map_err(|e| DbError::Exec(e.to_string()))?;
        Ok(self.prepare_query(&query))
    }

    /// Prepares an already-parsed query (the path engine sessions use for
    /// synthesized fragments).
    pub fn prepare_query(&self, query: &SqlQuery) -> PreparedStatement {
        self.prepare_query_as(query, self.inner.dialect)
    }

    /// [`prepare_query`](Self::prepare_query) rendered under an explicit
    /// dialect (the statement text and placeholder spelling follow it;
    /// planning is dialect-independent).
    pub fn prepare_query_as(&self, query: &SqlQuery, dialect: Dialect) -> PreparedStatement {
        let (db, _) = self.pin();
        let core = match query {
            SqlQuery::Select(s) => s.clone(),
            SqlQuery::Scalar(s) => crate::db::scalar_core(s),
        };
        let (canonical, _) = qbs_sql::render_query_with_params(query, Dialect::Generic);
        let fp = fingerprint(&canonical, &self.inner.config);
        let tables = query.referenced_tables();
        let current = snapshot(&db, &tables);
        // Prepare consults the plan cache too: two statements with the
        // same canonical text share one planning pass.
        let plan = {
            let plans = rlock(&self.inner.plans);
            match plans.get(&fp) {
                Some(entry) if entry.snapshot == current => {
                    self.inner.stats.hits.fetch_add(1, Ordering::Relaxed);
                    Some(entry.plan.clone())
                }
                _ => None,
            }
        };
        let plan = plan.unwrap_or_else(|| {
            let plan = Arc::new(plan_with(&core, &db, &self.inner.config));
            self.inner.stats.misses.fetch_add(1, Ordering::Relaxed);
            wlock(&self.inner.plans)
                .insert(fp, CachedPlan { plan: plan.clone(), snapshot: current.clone() });
            plan
        });
        PreparedStatement::new(&db, query.clone(), core, fp, tables, current, dialect, plan)
    }

    /// Executes a prepared statement against a snapshot pinned for the
    /// whole call.
    ///
    /// Parameters are validated against the statement's typed slots, the
    /// plan is reused when every referenced table's generation counter is
    /// unchanged (recorded as
    /// [`ExecStats::plan_cache_hits`](crate::ExecStats)), and replanned
    /// otherwise (recorded as [`ExecStats::replans`](crate::ExecStats)).
    /// Plan resolution and execution both use the same pinned snapshot,
    /// so a concurrent writer cannot wedge a plan from one version
    /// against data from another.
    ///
    /// A statement may be executed on any connection whose catalog is
    /// compatible with the one it was prepared on; a plan probing an
    /// index the database lacks fails loudly rather than reading garbage.
    ///
    /// # Errors
    ///
    /// [`DbError::Param`] on bind problems; execution errors otherwise.
    pub fn execute(
        &self,
        stmt: &PreparedStatement,
        params: &Params,
    ) -> Result<QueryOutput, DbError> {
        stmt.validate(params)?;
        let (db, version) = self.pin();
        let opened = Instant::now();
        let (plan, program, reused) = self.plan_for(stmt, &db);
        let plan_ns = opened.elapsed().as_nanos() as u64;
        // The compiled bytecode program (cached on the statement next to
        // the plan) drives execution; plans the VM declined — and every
        // plan under `force_interpreter` — run the tree-walking
        // interpreter, which remains the differential baseline.
        let mut out = match &program {
            Some(prog) => db.execute_program(
                prog,
                params,
                &self.inner.subqueries,
                version,
                Some(&stmt.out_schema),
            )?,
            None => db.execute_plan_cached(
                &plan,
                params,
                &self.inner.subqueries,
                version,
                Some(&stmt.out_schema),
            )?,
        };
        out.stats.plan_ns = plan_ns;
        if reused {
            out.stats.plan_cache_hits += 1;
        } else {
            out.stats.replans += 1;
        }
        match stmt.query() {
            SqlQuery::Select(_) => Ok(QueryOutput::Rows(out)),
            SqlQuery::Scalar(s) => db.finish_scalar(s, out, params),
        }
    }

    /// Executes a relational prepared statement, erroring on scalar ones.
    ///
    /// # Errors
    ///
    /// As [`execute`](Self::execute), plus [`DbError::Exec`] for scalar
    /// statements.
    pub fn execute_select(
        &self,
        stmt: &PreparedStatement,
        params: &Params,
    ) -> Result<SelectOutput, DbError> {
        match self.execute(stmt, params)? {
            QueryOutput::Rows(out) => Ok(out),
            QueryOutput::Scalar { .. } => {
                Err(DbError::Exec("scalar statement where rows were expected".to_string()))
            }
        }
    }

    /// One-shot execution with statement caching: the first call for a
    /// given text parses, plans and caches a prepared statement; later
    /// calls skip straight to execution.
    ///
    /// # Errors
    ///
    /// As [`prepare`](Self::prepare) and [`execute`](Self::execute).
    pub fn query_cached(&self, sql: &str, params: &Params) -> Result<QueryOutput, DbError> {
        let cached = rlock(&self.inner.stmts).get(sql).cloned();
        let mut parse_ns = 0;
        let stmt = match cached {
            Some(stmt) => stmt,
            None => {
                let opened = Instant::now();
                let query = qbs_sql::parse(sql).map_err(|e| DbError::Exec(e.to_string()))?;
                parse_ns = opened.elapsed().as_nanos() as u64;
                let stmt = Arc::new(self.prepare_query(&query));
                // Two threads may race to prepare the same text; the first
                // insert wins and both execute a valid statement.
                wlock(&self.inner.stmts).entry(sql.to_string()).or_insert(stmt).clone()
            }
        };
        let mut out = self.execute(&stmt, params)?;
        match &mut out {
            QueryOutput::Rows(o) => o.stats.parse_ns = parse_ns,
            QueryOutput::Scalar { stats, .. } => stats.parse_ns = parse_ns,
        }
        Ok(out)
    }

    /// Executes a prepared statement with the interpreter's per-node
    /// instrumentation switched on and returns the plan annotated with
    /// per-operator actuals — rows in and out, elapsed time, index use —
    /// next to the planner's `estimated_rows`.
    ///
    /// The statement really executes: the plan cache, hoisted sub-query
    /// cache, and generation-based invalidation all behave exactly as in
    /// [`execute`](Self::execute), so the actuals are those of the
    /// production path, not of a detached re-run. Scalar statements are
    /// analyzed over their relational core.
    ///
    /// # Errors
    ///
    /// As [`execute`](Self::execute).
    pub fn explain_analyze(
        &self,
        stmt: &PreparedStatement,
        params: &Params,
    ) -> Result<AnalyzedPlan, DbError> {
        stmt.validate(params)?;
        let (db, version) = self.pin();
        let opened = Instant::now();
        // EXPLAIN ANALYZE stays on the tree-walking interpreter: the
        // per-node instrumentation lives there, and analysis is not a
        // serving hot path.
        let (plan, _program, reused) = self.plan_for(stmt, &db);
        let plan_ns = opened.elapsed().as_nanos() as u64;
        let mut actuals = PlanActuals::default();
        let out = db.execute_plan_instrumented(
            &plan,
            params,
            &self.inner.subqueries,
            version,
            Some(&stmt.out_schema),
            Some(&mut actuals),
        )?;
        let mut stats = out.stats;
        stats.plan_ns = plan_ns;
        if reused {
            stats.plan_cache_hits += 1;
        } else {
            stats.replans += 1;
        }
        Ok(AnalyzedPlan { plan, actuals, stats })
    }

    /// A lock-free, by-value snapshot of the plan-cache counters shared
    /// by every clone of this connection. Reads three relaxed atomics —
    /// no lock is taken, so it is safe to call from a hot loop or while
    /// other clones are mid-execution.
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.inner.stats.snapshot()
    }

    /// The plan-cache counters accumulated by this connection (shared
    /// across clones). Alias of [`cache_stats`](Self::cache_stats).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.cache_stats()
    }

    /// Resolves the statement's current plan against the *pinned*
    /// database: the statement's own plan when its snapshot is current,
    /// the fingerprint cache next, a fresh planning pass last. Returns
    /// the plan, its compiled bytecode program (compiled lazily on first
    /// use, `None` when the VM declined the shape or the config forces
    /// the interpreter), and whether the plan was reused.
    fn plan_for(
        &self,
        stmt: &PreparedStatement,
        db: &Database,
    ) -> (Arc<PhysicalPlan>, Option<Arc<PlanProgram>>, bool) {
        // Steady-state fast path: compare the recorded generations in
        // place, no snapshot allocation.
        {
            let cur = stmt.lock_current();
            if cur.snapshot.iter().all(|(t, g)| db.table(t).map(Table::generation) == *g) {
                self.inner.stats.hits.fetch_add(1, Ordering::Relaxed);
                let program = self.program_for(&cur);
                return (cur.plan.clone(), program, true);
            }
        }
        let current = snapshot(db, &stmt.tables);
        // The statement's view is stale. Another statement (or clone of
        // this connection) may already have replanned the same query.
        let cached = {
            let plans = rlock(&self.inner.plans);
            plans
                .get(&stmt.fingerprint)
                .and_then(|entry| (entry.snapshot == current).then(|| entry.plan.clone()))
        };
        if let Some(plan) = cached {
            self.inner.stats.hits.fetch_add(1, Ordering::Relaxed);
            self.inner.stats.invalidations.fetch_add(1, Ordering::Relaxed);
            let state = PlanState::new(plan.clone(), current);
            let program = self.program_for(&state);
            *stmt.lock_current() = state;
            return (plan, program, false);
        }
        let plan = replan(stmt, db, &self.inner.config);
        self.inner.stats.misses.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.invalidations.fetch_add(1, Ordering::Relaxed);
        wlock(&self.inner.plans).insert(
            stmt.fingerprint,
            CachedPlan { plan: plan.clone(), snapshot: current.clone() },
        );
        let state = PlanState::new(plan.clone(), current);
        let program = self.program_for(&state);
        *stmt.lock_current() = state;
        (plan, program, false)
    }

    /// The compiled program of a plan state, compiling on first use.
    /// `None` inside the cell records a shape the VM declined (or a
    /// `force_interpreter` config), so the decision is made exactly once
    /// per plan.
    fn program_for(&self, state: &PlanState) -> Option<Arc<PlanProgram>> {
        state
            .program
            .get_or_init(|| {
                (!self.inner.config.force_interpreter)
                    .then(|| crate::vm::compile_plan(&state.plan, &self.inner.config))
                    .flatten()
                    .map(Arc::new)
            })
            .clone()
    }
}

impl Database {
    /// Opens a [`Connection`] over a clone of this database — the
    /// plan-once / execute-many client surface. See [`Connection`] for
    /// the cache and invalidation contract; mutate through the connection
    /// (its [`insert`](Connection::insert) /
    /// [`create_index`](Connection::create_index)) so the caches observe
    /// every generation bump.
    pub fn connect(&self) -> Connection {
        Connection::open(self.clone())
    }
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.plan_cache_stats();
        f.debug_struct("Connection")
            .field("dialect", &self.inner.dialect)
            .field("version", &self.version())
            .field("plans", &rlock(&self.inner.plans).len())
            .field("statements", &rlock(&self.inner.stmts).len())
            .field("stats", &stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_common::{FieldType, Schema};

    fn setup() -> Database {
        let mut db = Database::new();
        db.create_table(
            Schema::builder("users")
                .field("id", FieldType::Int)
                .field("roleId", FieldType::Int)
                .field("name", FieldType::Str)
                .finish(),
        )
        .unwrap();
        for i in 0..6i64 {
            db.insert(
                "users",
                vec![Value::from(i), Value::from(i % 3), Value::from(format!("u{i}"))],
            )
            .unwrap();
        }
        db
    }

    fn rows(out: QueryOutput) -> SelectOutput {
        match out {
            QueryOutput::Rows(o) => o,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn prepare_once_execute_many_reuses_the_plan() {
        let conn = Connection::open(setup());
        let stmt = conn.prepare("SELECT id FROM users WHERE roleId = :r").unwrap();
        for r in 0..3i64 {
            let params = stmt.bind().set("r", r).unwrap().finish().unwrap();
            let out = rows(conn.execute(&stmt, &params).unwrap());
            assert_eq!(out.rows.len(), 2);
            assert_eq!(out.stats.plan_cache_hits, 1, "{:?}", out.stats);
            assert_eq!(out.stats.replans, 0);
        }
        let stats = conn.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.invalidations), (3, 1, 0));
    }

    #[test]
    fn typed_slots_reject_mismatched_bindings() {
        let conn = Connection::open(setup());
        let stmt = conn.prepare("SELECT id FROM users WHERE name = :who").unwrap();
        assert_eq!(stmt.slots().len(), 1);
        assert_eq!(stmt.slots()[0].ty, Some(FieldType::Str));
        // Binding an integer where the column is a string fails at bind
        // time, before any execution.
        let got = stmt.bind().set("who", 3);
        assert!(matches!(got, Err(DbError::Param(_))), "{got:?}");
        // And a correct bind flows through.
        let params = stmt.bind().set("who", "u4").unwrap().finish().unwrap();
        let out = rows(conn.execute(&stmt, &params).unwrap());
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn unbound_and_unknown_parameters_error() {
        let conn = Connection::open(setup());
        let stmt = conn.prepare("SELECT id FROM users WHERE roleId = :r").unwrap();
        assert!(matches!(conn.execute(&stmt, &Params::new()), Err(DbError::Param(_))));
        // Extra bindings are tolerated on execute (the oracle binds one
        // map for kernel and SQL sides) …
        let mut params = Params::new();
        params.insert("r".into(), Value::from(1));
        params.insert("extra".into(), Value::from(1));
        assert!(conn.execute(&stmt, &params).is_ok());
        // … but the typed binder is strict about names.
        assert!(stmt.bind().set("typo", 1).is_err());
    }

    #[test]
    fn compiled_program_and_filter_kernels_are_cached_on_the_statement() {
        let conn = Connection::open(setup());
        let stmt = conn.prepare("SELECT id FROM users WHERE roleId = :r").unwrap();
        let params = stmt.bind().set("r", 1).unwrap().finish().unwrap();
        let db = conn.database();
        let (_, prog1, _) = conn.plan_for(&stmt, &db);
        let (_, prog2, reused) = conn.plan_for(&stmt, &db);
        assert!(reused);
        let p1 = prog1.expect("parameterized filter compiles to a program");
        let p2 = prog2.expect("steady state returns the cached program");
        // Same allocation: the program — and the filter kernels compiled
        // into it — is reused across executes, never recompiled per call.
        assert!(Arc::ptr_eq(&p1, &p2));
        let out = rows(conn.execute(&stmt, &params).unwrap());
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.stats.plan_cache_hits, 1, "{:?}", out.stats);
        // A mutation replaces the plan state, which drops the stale
        // program with it and compiles a fresh one.
        conn.insert("users", vec![Value::from(6), Value::from(1), Value::from("u6")]).unwrap();
        let db = conn.database();
        let (_, prog3, reused) = conn.plan_for(&stmt, &db);
        assert!(!reused);
        let p3 = prog3.expect("replanned statement recompiles");
        assert!(!Arc::ptr_eq(&p1, &p3), "stale program was invalidated with the plan");
    }

    #[test]
    fn force_interpreter_never_compiles_a_program() {
        let config = PlanConfig { force_interpreter: true, ..PlanConfig::default() };
        let conn = Connection::open_with(setup(), config, Dialect::Generic);
        let stmt = conn.prepare("SELECT id FROM users WHERE roleId = 1").unwrap();
        let db = conn.database();
        let (_, program, _) = conn.plan_for(&stmt, &db);
        assert!(program.is_none(), "force_interpreter keeps the tree-walking baseline");
        let out = rows(conn.execute(&stmt, &Params::new()).unwrap());
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn insert_invalidates_and_replans() {
        let conn = Connection::open(setup());
        let stmt = conn.prepare("SELECT id FROM users WHERE roleId = 1").unwrap();
        let params = Params::new();
        assert_eq!(rows(conn.execute(&stmt, &params).unwrap()).rows.len(), 2);
        conn.insert("users", vec![Value::from(6), Value::from(1), Value::from("u6")]).unwrap();
        let out = rows(conn.execute(&stmt, &params).unwrap());
        assert_eq!(out.rows.len(), 3, "the new row is visible");
        assert_eq!(out.stats.replans, 1, "{:?}", out.stats);
        assert_eq!(out.stats.plan_cache_hits, 0);
        // Steady state again afterwards.
        let out = rows(conn.execute(&stmt, &params).unwrap());
        assert_eq!(out.stats.plan_cache_hits, 1);
        assert_eq!(conn.plan_cache_stats().invalidations, 1);
    }

    #[test]
    fn insert_many_invalidates_once_for_the_whole_batch() {
        let conn = Connection::open(setup());
        let stmt = conn.prepare("SELECT id FROM users WHERE roleId = 1").unwrap();
        let params = Params::new();
        assert_eq!(rows(conn.execute(&stmt, &params).unwrap()).rows.len(), 2);
        conn.insert_many(
            "users",
            (6..16i64)
                .map(|i| vec![Value::from(i), Value::from(1), Value::from(format!("u{i}"))])
                .collect(),
        )
        .unwrap();
        let out = rows(conn.execute(&stmt, &params).unwrap());
        assert_eq!(out.rows.len(), 12, "all ten new rows visible at once");
        assert_eq!(out.stats.replans, 1, "{:?}", out.stats);
        // One batch, one invalidation — not ten.
        assert_eq!(conn.plan_cache_stats().invalidations, 1);
        assert_eq!(conn.version(), 1);
    }

    #[test]
    fn index_built_after_prepare_is_picked_up_by_the_replan() {
        let conn = Connection::open(setup());
        let stmt = conn.prepare("SELECT id FROM users WHERE roleId = 2").unwrap();
        let params = Params::new();
        let before = rows(conn.execute(&stmt, &params).unwrap());
        assert!(!before.stats.used_index);
        conn.create_index("users", "roleId").unwrap();
        let after = rows(conn.execute(&stmt, &params).unwrap());
        assert!(after.stats.used_index, "replanned onto the new index: {:?}", after.stats);
        assert_eq!(after.stats.replans, 1);
        assert_eq!(after.rows, before.rows);
    }

    #[test]
    fn query_cached_skips_parse_and_plan_on_repeat() {
        let conn = Connection::open(setup());
        let params = Params::new();
        for _ in 0..4 {
            let out = rows(conn.query_cached("SELECT id FROM users", &params).unwrap());
            assert_eq!(out.rows.len(), 6);
            assert_eq!(out.stats.plan_cache_hits, 1);
            assert_eq!(out.stats.replans, 0);
        }
        let stats = conn.plan_cache_stats();
        assert_eq!(stats.misses, 1, "one parse + one plan for four calls");
        assert_eq!(stats.hits, 4);
    }

    #[test]
    fn clones_share_caches_and_statements_share_fingerprints() {
        let conn = Connection::open(setup());
        let clone = conn.clone();
        let a = conn.prepare("SELECT id FROM users WHERE roleId = 0").unwrap();
        // Same canonical text on a clone: the planning pass is shared.
        let _b = clone.prepare("SELECT id FROM users WHERE roleId = 0").unwrap();
        let stats = conn.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        let out = rows(clone.execute(&a, &Params::new()).unwrap());
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn scalar_statements_prepare_and_execute() {
        let conn = Connection::open(setup());
        let stmt = conn.prepare("SELECT COUNT(*) > :n FROM users WHERE roleId = 0").unwrap();
        assert_eq!(stmt.slots()[0].ty, Some(FieldType::Int));
        let params = stmt.bind().set("n", 1).unwrap().finish().unwrap();
        match conn.execute(&stmt, &params).unwrap() {
            QueryOutput::Scalar { value, stats } => {
                assert_eq!(value, Value::from(true));
                assert_eq!(stats.plan_cache_hits, 1);
            }
            other => panic!("expected scalar, got {other:?}"),
        }
    }

    #[test]
    fn param_free_subquery_results_persist_across_statements() {
        let conn = Connection::open(setup());
        let sql =
            "SELECT id FROM users WHERE roleId IN (SELECT roleId FROM users WHERE id = 0)";
        let params = Params::new();
        let first = rows(conn.query_cached(sql, &params).unwrap());
        assert_eq!(first.stats.subqueries_executed, 1, "{:?}", first.stats);
        let second = rows(conn.query_cached(sql, &params).unwrap());
        assert_eq!(second.stats.subqueries_executed, 0, "hoisted result persisted");
        assert!(second.stats.subquery_cache_hits > 0);
        // A mutation drops the persisted result.
        conn.insert("users", vec![Value::from(9), Value::from(0), Value::from("u9")]).unwrap();
        let third = rows(conn.query_cached(sql, &params).unwrap());
        assert_eq!(third.stats.subqueries_executed, 1, "{:?}", third.stats);
    }

    #[test]
    fn snapshots_pinned_before_a_write_do_not_move() {
        let conn = Connection::open(setup());
        let before = conn.database();
        assert_eq!(conn.version(), 0);
        conn.insert("users", vec![Value::from(6), Value::from(1), Value::from("u6")]).unwrap();
        assert_eq!(conn.version(), 1);
        // The pinned snapshot still sees six rows; the head sees seven.
        assert_eq!(before.table(&"users".into()).unwrap().len(), 6);
        assert_eq!(conn.database().table(&"users".into()).unwrap().len(), 7);
    }

    #[test]
    fn explain_analyze_annotates_every_node_with_actuals() {
        let conn = Connection::open(setup());
        let stmt = conn.prepare("SELECT name FROM users WHERE roleId = :r").unwrap();
        let params = stmt.bind().set("r", 1).unwrap().finish().unwrap();
        let analyzed = conn.explain_analyze(&stmt, &params).unwrap();
        assert_eq!(analyzed.actuals.output_rows, 2);
        assert_eq!(analyzed.actuals.scans.len(), 1);
        assert_eq!(analyzed.actuals.scans[0].rows_out, 2);
        assert!(analyzed.actuals.scans[0].rows_scanned >= 2);
        assert_eq!(analyzed.stats.plan_cache_hits, 1, "{:?}", analyzed.stats);
        // The deterministic rendering carries estimates and actuals side
        // by side, with no wall-clock figures.
        let text = analyzed.render(false);
        assert!(text.contains("est"), "{text}");
        assert!(text.contains("actual 2 rows"), "{text}");
        assert!(!text.contains("ns"), "{text}");
        // The analyzed execution matches the production path.
        let out = rows(conn.execute(&stmt, &params).unwrap());
        assert_eq!(out.rows.len(), analyzed.actuals.output_rows);
        // Estimate-vs-actual pairs cover every cardinality-bearing node.
        let errors = analyzed.estimate_errors();
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert_eq!(errors[0].2, 2);
    }

    #[test]
    fn grouped_statements_prepare_cache_and_analyze() {
        let conn = Connection::open(setup());
        let stmt = conn
            .prepare(
                "SELECT roleId, COUNT(*) FROM users WHERE id > :min \
                 GROUP BY roleId HAVING COUNT(*) > 1",
            )
            .unwrap();
        assert_eq!(stmt.slots()[0].ty, Some(FieldType::Int));
        assert!(stmt.explain().contains("hash aggregate (1 keys, 1 aggs, having)"));
        // ids 1..6 → roleId 1: {1, 4}, roleId 2: {2, 5}, roleId 0: {3}.
        let params = stmt.bind().set("min", 0).unwrap().finish().unwrap();
        let out = rows(conn.execute(&stmt, &params).unwrap());
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.stats.plan_cache_hits, 1, "{:?}", out.stats);
        // Re-execution under a different binding reuses the cached plan.
        let params = stmt.bind().set("min", 5).unwrap().finish().unwrap();
        let out = rows(conn.execute(&stmt, &params).unwrap());
        assert!(out.rows.is_empty());
        assert_eq!(out.stats.replans, 0, "{:?}", out.stats);
        // EXPLAIN ANALYZE annotates the aggregate with its actuals.
        let params = stmt.bind().set("min", 0).unwrap().finish().unwrap();
        let analyzed = conn.explain_analyze(&stmt, &params).unwrap();
        let agg = analyzed.actuals.aggregate.as_ref().expect("aggregate actuals");
        assert_eq!(agg.rows_out, 2, "post-HAVING row count");
        let text = analyzed.render(false);
        assert!(
            text.contains("hash aggregate (1 keys, 1 aggs, having) [actual 2 rows]"),
            "{text}"
        );
    }

    #[test]
    fn explain_analyze_observes_index_probes_and_replans() {
        let conn = Connection::open(setup());
        let stmt = conn.prepare("SELECT id FROM users WHERE roleId = 2").unwrap();
        conn.create_index("users", "roleId").unwrap();
        let analyzed = conn.explain_analyze(&stmt, &Params::new()).unwrap();
        assert!(analyzed.actuals.scans[0].via_index, "{analyzed:?}");
        assert_eq!(analyzed.stats.replans, 1);
        assert!(analyzed.to_string().contains("index"), "{analyzed}");
    }

    #[test]
    fn cache_stats_snapshot_is_consistent_under_concurrent_updates() {
        use std::thread;
        let counters = Arc::new(CacheCounters::default());
        let threads = 4;
        let per_thread = 1_000;
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&counters);
                thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.hits.fetch_add(1, Ordering::Relaxed);
                        c.misses.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        // Snapshots taken mid-flight are lock-free and never exceed the
        // number of increments issued.
        for _ in 0..100 {
            let snap = counters.snapshot();
            assert!(snap.hits <= threads * per_thread);
            assert!(snap.misses <= threads * per_thread);
        }
        for w in workers {
            w.join().unwrap();
        }
        let snap = counters.snapshot();
        assert_eq!(snap.hits, threads * per_thread);
        assert_eq!(snap.misses, threads * per_thread);
        assert_eq!(snap.invalidations, 0);
    }

    #[test]
    fn clones_execute_prepared_statements_from_many_threads() {
        use std::thread;
        let conn = Connection::open(setup());
        let stmt = Arc::new(conn.prepare("SELECT id FROM users WHERE roleId = :r").unwrap());
        thread::scope(|scope| {
            for t in 0..4 {
                let conn = conn.clone();
                let stmt = stmt.clone();
                scope.spawn(move || {
                    for i in 0..50i64 {
                        let params =
                            stmt.bind().set("r", (t + i) % 3).unwrap().finish().unwrap();
                        let out = rows(conn.execute(&stmt, &params).unwrap());
                        assert_eq!(out.rows.len(), 2);
                    }
                });
            }
        });
        let stats = conn.plan_cache_stats();
        assert_eq!(stats.hits + stats.misses, 4 * 50 + 1, "every execution resolved a plan");
        assert_eq!(stats.invalidations, 0, "no writes, no invalidations");
    }

    #[test]
    fn timing_fields_are_populated_but_do_not_affect_equality() {
        let conn = Connection::open(setup());
        let params = Params::new();
        let first = rows(conn.query_cached("SELECT id FROM users", &params).unwrap());
        assert!(first.stats.parse_ns > 0, "miss path parses: {:?}", first.stats);
        assert!(first.stats.exec_ns > 0, "{:?}", first.stats);
        let second = rows(conn.query_cached("SELECT id FROM users", &params).unwrap());
        assert_eq!(second.stats.parse_ns, 0, "hit path skips the parser");
        // Equality compares counters only, so reruns with different
        // wall-clock timings still compare equal.
        assert_eq!(first.stats, second.stats);
    }

    #[test]
    fn render_bound_inlines_validated_params() {
        let conn = Connection::open_with(setup(), PlanConfig::default(), Dialect::Postgres);
        let stmt = conn.prepare("SELECT id FROM users WHERE name = :who").unwrap();
        assert!(stmt.sql().contains("$1"), "{}", stmt.sql());
        let params = stmt.bind().set("who", "o'brien").unwrap().finish().unwrap();
        let text = stmt.render_bound(&params).unwrap();
        assert!(text.contains("'o''brien'"), "{text}");
        assert!(matches!(stmt.render_bound(&Params::new()), Err(DbError::Param(_))));
    }
}
