//! Prepared statements: parse and plan a query **once**, execute it many
//! times with typed bind parameters.
//!
//! A [`PreparedStatement`] is created by
//! [`Connection::prepare`](crate::Connection::prepare) and carries
//!
//! * the parsed [`SqlQuery`] and its canonical rendering under the
//!   connection's [`Dialect`] (placeholders spelled per the dialect's
//!   [`ParamStyle`](qbs_sql::ParamStyle): `:name`, `$1`, or `?`);
//! * the [`PhysicalPlan`] of its relational core, computed at prepare
//!   time;
//! * a generation snapshot of every referenced table, so executing after
//!   an insert or index build transparently replans; and
//! * typed parameter slots inferred from the schema, so binding an
//!   integer where the column is a string fails at bind time — without
//!   re-planning.

use crate::db::{Database, DbError, Params};
use crate::planner::{plan_with, PhysicalPlan, PlanConfig};
use qbs_common::{FieldType, Ident, SchemaRef, Value};
use qbs_sql::{
    render_query_bound, render_query_with_params, Dialect, FromItem, SqlExpr, SqlQuery,
    SqlSelect,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// One typed bind-parameter slot of a prepared statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamSlot {
    /// Parameter name (named style) or its positional synthetic name.
    pub name: Ident,
    /// Schema-inferred value type; `None` when the parameter's use site
    /// does not pin a type (any value binds).
    pub ty: Option<FieldType>,
}

/// Generation counters of the tables a statement reads, at plan time.
/// `None` records a table that did not exist — creating it later is a
/// change like any other.
pub(crate) type Snapshot = Vec<(Ident, Option<u64>)>;

pub(crate) fn snapshot(db: &Database, tables: &BTreeSet<Ident>) -> Snapshot {
    tables.iter().map(|t| (t.clone(), db.table(t).map(|t| t.generation()))).collect()
}

/// A statement's plan together with the generation snapshot it was
/// computed against — one value behind one lock, so a concurrent replan
/// can never pair a new plan with an old snapshot (or vice versa).
///
/// The compiled bytecode program rides in the same value: it is compiled
/// lazily from `plan` on the first execution (`None` inside the cell
/// records "the VM declined this shape" so the interpreter is used
/// without re-attempting compilation), and because a replan replaces the
/// whole `PlanState`, the program can never outlive the plan it was
/// compiled from — the same generation counters invalidate both.
#[derive(Debug)]
pub(crate) struct PlanState {
    pub(crate) plan: Arc<PhysicalPlan>,
    pub(crate) snapshot: Snapshot,
    pub(crate) program: OnceLock<Option<Arc<crate::vm::PlanProgram>>>,
}

impl PlanState {
    pub(crate) fn new(plan: Arc<PhysicalPlan>, snapshot: Snapshot) -> PlanState {
        PlanState { plan, snapshot, program: OnceLock::new() }
    }
}

/// Hashes the statement's canonical text together with the planner
/// configuration — the key of the connection's plan cache.
pub(crate) fn fingerprint(canonical: &str, config: &PlanConfig) -> u64 {
    let mut h = DefaultHasher::new();
    canonical.hash(&mut h);
    config.reorder_joins.hash(&mut h);
    config.force_nested_loop.hash(&mut h);
    config.force_row_store.hash(&mut h);
    config.force_interpreter.hash(&mut h);
    h.finish()
}

/// A query prepared on a [`Connection`](crate::Connection): planned once,
/// executable many times.
///
/// # Example
///
/// ```
/// use qbs_common::{FieldType, Schema, Value};
/// use qbs_db::{Connection, Database, QueryOutput};
///
/// let mut db = Database::new();
/// db.create_table(
///     Schema::builder("users")
///         .field("id", FieldType::Int)
///         .field("roleId", FieldType::Int)
///         .finish(),
/// )
/// .unwrap();
/// db.insert("users", vec![Value::from(1), Value::from(10)]).unwrap();
/// db.insert("users", vec![Value::from(2), Value::from(20)]).unwrap();
///
/// let conn = Connection::open(db);
/// let stmt = conn.prepare("SELECT id FROM users WHERE roleId = :r").unwrap();
/// for (role, expect) in [(10, 1), (20, 1), (99, 0)] {
///     let params = stmt.bind().set("r", role).unwrap().finish().unwrap();
///     let QueryOutput::Rows(out) = conn.execute(&stmt, &params).unwrap() else {
///         unreachable!()
///     };
///     assert_eq!(out.rows.len(), expect);
///     // Executions after the first never re-plan.
///     assert_eq!(out.stats.plan_cache_hits, 1);
/// }
/// ```
#[derive(Debug)]
pub struct PreparedStatement {
    query: SqlQuery,
    /// The relational core the plan covers (the select itself, or the
    /// aggregate input of a scalar query).
    pub(crate) core: SqlSelect,
    text: String,
    param_order: Vec<Ident>,
    slots: Vec<ParamSlot>,
    dialect: Dialect,
    pub(crate) fingerprint: u64,
    pub(crate) tables: BTreeSet<Ident>,
    pub(crate) current: Mutex<PlanState>,
    /// The result schema, sniffed once from a row-bearing execution —
    /// identical across executions since value types come from the table
    /// schemas (survives replans: inserts and index builds cannot change
    /// the output layout).
    pub(crate) out_schema: OnceLock<SchemaRef>,
}

impl PreparedStatement {
    /// Assembles a statement from the pieces the connection already
    /// computed during planning (`core`, `fingerprint`, `tables`,
    /// `snapshot`) — nothing is re-derived here beyond the dialect
    /// rendering and slot typing.
    #[allow(clippy::too_many_arguments)] // one call site, in Connection::prepare_query_as
    pub(crate) fn new(
        db: &Database,
        query: SqlQuery,
        core: SqlSelect,
        fingerprint: u64,
        tables: BTreeSet<Ident>,
        snapshot: Snapshot,
        dialect: Dialect,
        plan: Arc<PhysicalPlan>,
    ) -> PreparedStatement {
        let (text, param_order) = render_query_with_params(&query, dialect);
        PreparedStatement {
            slots: infer_slots(db, &query),
            fingerprint,
            core,
            text,
            param_order,
            dialect,
            current: Mutex::new(PlanState::new(plan, snapshot)),
            out_schema: OnceLock::new(),
            tables,
            query,
        }
    }

    /// Locks the current plan/snapshot pair. Poisoning is survivable: the
    /// state is only ever *replaced whole*, so a panic elsewhere cannot
    /// leave it half-written.
    pub(crate) fn lock_current(&self) -> MutexGuard<'_, PlanState> {
        self.current.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The parsed query.
    pub fn query(&self) -> &SqlQuery {
        &self.query
    }

    /// The statement text under its dialect — placeholders included
    /// (what a driver would send to the backend).
    pub fn sql(&self) -> &str {
        &self.text
    }

    /// The dialect the statement renders under.
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// The bind order of [`sql`](PreparedStatement::sql)'s placeholders:
    /// one entry per distinct parameter for `$n` styles, one per
    /// occurrence for `:name`/`?` styles (see
    /// [`qbs_sql::render_query_with_params`]).
    pub fn param_order(&self) -> &[Ident] {
        &self.param_order
    }

    /// The typed parameter slots, one per distinct parameter, in
    /// first-appearance order.
    pub fn slots(&self) -> &[ParamSlot] {
        &self.slots
    }

    /// The current physical plan (replaced in place when execution
    /// detects a stale generation snapshot).
    pub fn plan(&self) -> Arc<PhysicalPlan> {
        self.lock_current().plan.clone()
    }

    /// Renders the statement's current plan tree — the `EXPLAIN` form,
    /// estimates only. See
    /// [`Connection::explain_analyze`](crate::Connection::explain_analyze)
    /// for the same tree annotated with per-operator actuals.
    pub fn explain(&self) -> String {
        self.lock_current().plan.to_string()
    }

    /// Starts a typed binding for one execution.
    pub fn bind(&self) -> Binder<'_> {
        Binder { stmt: self, params: Params::new(), next: 0 }
    }

    /// Checks a parameter map against the statement's typed slots.
    /// Bindings that are not slots of this statement are ignored (like
    /// [`Database::execute`]) — callers such as the differential oracle
    /// bind one map for both the kernel interpreter and the SQL side;
    /// [`Binder::set`] is the strict, typo-catching path.
    ///
    /// # Errors
    ///
    /// [`DbError::Param`] when a slot is unbound or a value's type
    /// contradicts the inferred slot type.
    pub fn validate(&self, params: &Params) -> Result<(), DbError> {
        for slot in &self.slots {
            let value = params.get(&slot.name).ok_or_else(|| {
                DbError::Param(format!("parameter `{}` is not bound", slot.name))
            })?;
            check_type(&slot.name, slot.ty, value)?;
        }
        Ok(())
    }

    /// Renders the statement with `params` inlined as literals under its
    /// dialect — the fully-bound text, validated against the slots first.
    ///
    /// # Errors
    ///
    /// [`DbError::Param`] exactly as [`validate`](Self::validate).
    pub fn render_bound(&self, params: &Params) -> Result<String, DbError> {
        self.validate(params)?;
        Ok(render_query_bound(&self.query, self.dialect, params).0)
    }
}

/// A typed parameter binding in progress — see [`PreparedStatement::bind`].
#[derive(Debug)]
pub struct Binder<'s> {
    stmt: &'s PreparedStatement,
    params: Params,
    next: usize,
}

impl Binder<'_> {
    /// Binds a parameter by name, type-checked against its slot.
    ///
    /// # Errors
    ///
    /// [`DbError::Param`] on an unknown name or a type mismatch.
    pub fn set(
        mut self,
        name: impl Into<Ident>,
        value: impl Into<Value>,
    ) -> Result<Self, DbError> {
        let name = name.into();
        let slot = self
            .stmt
            .slots
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| DbError::Param(format!("`{name}` is not a parameter")))?;
        let value = value.into();
        check_type(&name, slot.ty, &value)?;
        self.params.insert(name, value);
        Ok(self)
    }

    /// Binds the next unbound slot positionally (slot order = first
    /// appearance in the statement), type-checked.
    ///
    /// # Errors
    ///
    /// [`DbError::Param`] when every slot is already bound or the value's
    /// type contradicts the slot.
    pub fn value(mut self, value: impl Into<Value>) -> Result<Self, DbError> {
        let slot = self.stmt.slots.get(self.next).ok_or_else(|| {
            DbError::Param(format!(
                "statement has {} parameter(s), all bound",
                self.stmt.slots.len()
            ))
        })?;
        let value = value.into();
        check_type(&slot.name, slot.ty, &value)?;
        self.params.insert(slot.name.clone(), value);
        self.next += 1;
        Ok(self)
    }

    /// Finishes the binding, checking that every slot is bound.
    ///
    /// # Errors
    ///
    /// [`DbError::Param`] when a slot is still unbound.
    pub fn finish(self) -> Result<Params, DbError> {
        self.stmt.validate(&self.params)?;
        Ok(self.params)
    }
}

fn check_type(name: &Ident, expected: Option<FieldType>, value: &Value) -> Result<(), DbError> {
    let Some(ty) = expected else { return Ok(()) };
    let ok = matches!(
        (value, ty),
        (Value::Bool(_), FieldType::Bool)
            | (Value::Int(_), FieldType::Int)
            | (Value::Str(_), FieldType::Str)
    );
    if ok {
        Ok(())
    } else {
        Err(DbError::Param(format!("parameter `{name}` expects {ty:?}, got {value:?}")))
    }
}

/// Best-effort slot typing: a parameter compared against a column takes
/// that column's schema type; `LIMIT :n`/`OFFSET :n` and scalar comparisons take
/// `Int`; anything else stays untyped. Conflicting uses keep the first
/// inferred type (the contradiction will fail one comparison at run time
/// regardless).
fn infer_slots(db: &Database, query: &SqlQuery) -> Vec<ParamSlot> {
    let mut slots: Vec<ParamSlot> = Vec::new();
    let mut note = |name: &Ident, ty: Option<FieldType>| match slots
        .iter_mut()
        .find(|s| &s.name == name)
    {
        Some(slot) => {
            if slot.ty.is_none() {
                slot.ty = ty;
            }
        }
        None => slots.push(ParamSlot { name: name.clone(), ty }),
    };

    fn column_type(
        db: &Database,
        aliases: &BTreeMap<Ident, Ident>,
        single: Option<&Ident>,
        qualifier: Option<&Ident>,
        name: &Ident,
    ) -> Option<FieldType> {
        if name.as_str() == "rowid" {
            return Some(FieldType::Int);
        }
        let table = match qualifier {
            Some(q) => aliases.get(q)?,
            None => single?,
        };
        db.table(table)?.schema().fields().iter().find(|f| &f.name == name).map(|f| f.ty)
    }

    fn walk_expr(
        db: &Database,
        aliases: &BTreeMap<Ident, Ident>,
        single: Option<&Ident>,
        e: &SqlExpr,
        note: &mut dyn FnMut(&Ident, Option<FieldType>),
    ) {
        match e {
            SqlExpr::Param(p) => note(p, None),
            SqlExpr::Cmp(a, _, b) => match (&**a, &**b) {
                (SqlExpr::Param(p), SqlExpr::Column { qualifier, name })
                | (SqlExpr::Column { qualifier, name }, SqlExpr::Param(p)) => {
                    note(p, column_type(db, aliases, single, qualifier.as_ref(), name));
                }
                _ => {
                    walk_expr(db, aliases, single, a, note);
                    walk_expr(db, aliases, single, b, note);
                }
            },
            SqlExpr::And(ps) | SqlExpr::Or(ps) => {
                ps.iter().for_each(|p| walk_expr(db, aliases, single, p, note));
            }
            SqlExpr::Not(x) => walk_expr(db, aliases, single, x, note),
            SqlExpr::InSubquery(x, q) => {
                walk_expr(db, aliases, single, x, note);
                walk_select(db, q, note);
            }
            SqlExpr::RowInSubquery(xs, q) => {
                xs.iter().for_each(|x| walk_expr(db, aliases, single, x, note));
                walk_select(db, q, note);
            }
            SqlExpr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    walk_expr(db, aliases, single, a, note);
                }
            }
            SqlExpr::Column { .. } | SqlExpr::Lit(_) => {}
        }
    }

    fn walk_select(
        db: &Database,
        q: &SqlSelect,
        note: &mut dyn FnMut(&Ident, Option<FieldType>),
    ) {
        let mut aliases = BTreeMap::new();
        for f in &q.from {
            match f {
                FromItem::Table { name, alias } => {
                    aliases.insert(alias.clone(), name.clone());
                }
                FromItem::Subquery { query, .. } => walk_select(db, query, note),
            }
        }
        let single = match q.from.as_slice() {
            [FromItem::Table { name, .. }] => Some(name.clone()),
            _ => None,
        };
        for item in &q.columns {
            walk_expr(db, &aliases, single.as_ref(), &item.expr, note);
        }
        if let Some(w) = &q.where_clause {
            walk_expr(db, &aliases, single.as_ref(), w, note);
        }
        for k in &q.group_by {
            walk_expr(db, &aliases, single.as_ref(), k, note);
        }
        if let Some(h) = &q.having {
            walk_expr(db, &aliases, single.as_ref(), h, note);
        }
        for k in &q.order_by {
            walk_expr(db, &aliases, single.as_ref(), &k.expr, note);
        }
        if let Some(SqlExpr::Param(p)) = &q.limit {
            note(p, Some(FieldType::Int));
        }
        if let Some(SqlExpr::Param(p)) = &q.offset {
            note(p, Some(FieldType::Int));
        }
    }

    match query {
        SqlQuery::Select(s) => walk_select(db, s, &mut note),
        SqlQuery::Scalar(s) => {
            walk_select(db, &s.query, &mut note);
            if let Some((_, SqlExpr::Param(p))) = &s.compare {
                note(p, Some(FieldType::Int));
            }
        }
    }
    slots
}

/// Re-plans the statement's core against `db` (the connection calls this
/// when a generation snapshot went stale).
pub(crate) fn replan(
    stmt: &PreparedStatement,
    db: &Database,
    config: &PlanConfig,
) -> Arc<PhysicalPlan> {
    Arc::new(plan_with(&stmt.core, db, config))
}
