//! The acceptance property for the shared physical-plan IR: on randomly
//! generated queries, the decisions `explain()` reports (join algorithms,
//! index use, join order) are *exactly* what the executor's `ExecStats`
//! record — because both consume the same `PhysicalPlan` value — and
//! interpreting a pre-computed plan is identical to `execute_select`.

use proptest::prelude::*;
use qbs_common::{FieldType, Ident, Schema, Value};
use qbs_db::{plan, Database, JoinAlgorithm, Params, PlanConfig};
use qbs_sql::{FromItem, OrderKey, SelectItem, SqlExpr, SqlSelect};
use qbs_tor::CmpOp;

/// Tables: name, integer join column, second column.
const TABLES: [(&str, &str, &str); 3] = [("t", "a", "b"), ("u", "a", "c"), ("w", "k", "d")];

/// All orders the three tables can appear in.
const PERMS: [[usize; 3]; 6] =
    [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];

fn fixture() -> Database {
    let mut db = Database::new();
    for (k, (name, key, other)) in TABLES.iter().enumerate() {
        db.create_table(
            Schema::builder(*name)
                .field(*key, FieldType::Int)
                .field(*other, FieldType::Int)
                .finish(),
        )
        .unwrap();
        let rows = 8 + 5 * k as i64;
        for i in 0..rows {
            db.insert(name, vec![Value::from(i % 5), Value::from(i * 7 % 11)]).unwrap();
        }
    }
    // Indexes on two of the three join columns: plans mix indexed and
    // unindexed scans.
    db.create_index("t", "a").unwrap();
    db.create_index("w", "k").unwrap();
    db
}

/// A generated query shape, assembled into a `SqlSelect` against `TABLES`.
#[derive(Debug, Clone)]
struct Shape {
    tables: Vec<usize>,
    /// Per non-first table: is there an equi-join predicate to its left
    /// neighbour?
    equi_join: Vec<bool>,
    /// Per table: equality pushdown literal (None = no pushdown).
    eq_pred: Vec<Option<i64>>,
    /// IN-subquery predicate on the first table's key column.
    in_subquery: bool,
    /// ORDER BY every alias's rowid (a total order).
    order_by_rowids: bool,
    limit: Option<i64>,
    distinct: bool,
}

fn mk_shape(
    n: usize,
    perm: usize,
    equi: &[usize],
    eq_pred: &[Option<i64>],
    flags: &[usize],
    limit: Option<i64>,
) -> Shape {
    Shape {
        tables: PERMS[perm][..n].to_vec(),
        equi_join: equi.iter().map(|&b| b == 1).collect(),
        eq_pred: eq_pred.to_vec(),
        in_subquery: flags[0] == 1,
        order_by_rowids: flags[1] == 1,
        limit,
        distinct: flags[2] == 1,
    }
}

fn build_query(shape: &Shape) -> SqlSelect {
    let mut from = Vec::new();
    let mut conjuncts = Vec::new();
    for (k, &ti) in shape.tables.iter().enumerate() {
        let (name, key, other) = TABLES[ti];
        from.push(FromItem::Table { name: name.into(), alias: name.into() });
        if let Some(lit) = shape.eq_pred[k] {
            let col = if lit % 2 == 0 { key } else { other };
            conjuncts.push(SqlExpr::cmp(
                SqlExpr::qcol(name, col),
                CmpOp::Eq,
                SqlExpr::int(lit),
            ));
        }
        if k > 0 && shape.equi_join[k] {
            let (prev, prev_key, _) = TABLES[shape.tables[k - 1]];
            conjuncts.push(SqlExpr::cmp(
                SqlExpr::qcol(prev, prev_key),
                CmpOp::Eq,
                SqlExpr::qcol(name, key),
            ));
        }
    }
    if shape.in_subquery {
        let (name, key, _) = TABLES[shape.tables[0]];
        let sub = SqlSelect::new(
            vec![SelectItem { expr: SqlExpr::qcol("u", "a"), alias: None }],
            vec![FromItem::Table { name: "u".into(), alias: "u".into() }],
        );
        conjuncts.push(SqlExpr::InSubquery(Box::new(SqlExpr::qcol(name, key)), Box::new(sub)));
    }
    let columns = shape
        .tables
        .iter()
        .map(|&ti| SelectItem { expr: SqlExpr::qcol(TABLES[ti].0, TABLES[ti].1), alias: None })
        .collect();
    let order_by = if shape.order_by_rowids {
        shape
            .tables
            .iter()
            .map(|&ti| OrderKey { expr: SqlExpr::qcol(TABLES[ti].0, "rowid"), asc: true })
            .collect()
    } else {
        Vec::new()
    };
    let mut q = SqlSelect::new(columns, from);
    q.where_clause = (!conjuncts.is_empty()).then(|| SqlExpr::conjoin(conjuncts));
    q.order_by = order_by;
    q.limit = shape.limit.map(SqlExpr::int);
    q.distinct = shape.distinct;
    q
}

fn algo_name(j: &JoinAlgorithm) -> &'static str {
    match j {
        JoinAlgorithm::Hash => "hash",
        JoinAlgorithm::NestedLoop => "nested-loop",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Plan-reported joins and index decisions equal the executor's
    /// `ExecStats`, and a pre-computed plan executes identically.
    #[test]
    fn plan_summary_matches_exec_stats(
        n in 1usize..4,
        perm in 0usize..6,
        equi in prop::collection::vec(0usize..2, 3..4),
        eq_pred in prop::collection::vec(prop::option::of(0i64..5), 3..4),
        flags in prop::collection::vec(0usize..2, 3..4),
        limit in prop::option::of(0i64..10),
    ) {
        let shape = mk_shape(n, perm, &equi, &eq_pred, &flags, limit);
        let db = fixture();
        let q = build_query(&shape);
        let p = plan(&q, &db);
        let summary = p.summary();
        let out = db.execute_select(&q, &Params::new()).unwrap();

        // Join algorithms, step by step.
        let planned: Vec<&str> = summary.joins.iter().map(algo_name).collect();
        prop_assert_eq!(&planned, &out.stats.joins, "q: {}", q);
        // Index decisions.
        prop_assert_eq!(
            summary.index_scans > 0,
            out.stats.used_index,
            "q: {} summary: {:?} stats: {:?}", q, summary, out.stats
        );
        // Join order is the FROM order under the default config.
        let from_order: Vec<Ident> =
            q.from.iter().map(|f| f.alias().clone()).collect();
        prop_assert_eq!(&summary.join_order, &from_order);
        prop_assert_eq!(summary.join_order.len(), summary.estimated_rows.len());
        // Hoisting: each distinct predicate sub-query executes at most once.
        prop_assert!(out.stats.subqueries_executed <= summary.hoisted_subqueries);

        // Interpreting the same plan value is execute_select.
        let via_plan = db.execute_plan(&p, &Params::new()).unwrap();
        prop_assert_eq!(&via_plan, &out);
    }

    /// Greedy join reordering never changes the result multiset (and the
    /// exact sequence whenever the query pins a total order — or the
    /// planner refused to reorder).
    #[test]
    fn reordering_preserves_results(
        n in 1usize..4,
        perm in 0usize..6,
        equi in prop::collection::vec(0usize..2, 3..4),
        eq_pred in prop::collection::vec(prop::option::of(0i64..5), 3..4),
        flags in prop::collection::vec(0usize..2, 3..4),
        limit in prop::option::of(0i64..10),
    ) {
        let shape = mk_shape(n, perm, &equi, &eq_pred, &flags, limit);
        let db = fixture();
        let q = build_query(&shape);
        let base = db.execute_select(&q, &Params::new()).unwrap();
        let cfg = PlanConfig { reorder_joins: true, ..PlanConfig::default() };
        let reordered = db.execute_select_with(&q, &Params::new(), &cfg).unwrap();
        if shape.order_by_rowids || shape.limit.is_some() {
            // Total order pinned, or the planner refused to reorder under
            // a LIMIT: the sequences must be identical.
            prop_assert_eq!(&base.rows, &reordered.rows, "q: {}", q);
        } else {
            prop_assert!(
                qbs_db::rows_agree(
                    &base.rows,
                    &reordered.rows,
                    qbs_db::RowsEquivalence::Multiset
                ),
                "q: {}", q
            );
        }
    }
}

// ── Prepared-statement plan-cache invalidation ──────────────────────────
//
// The ISSUE's pinned property: inserting rows or building an index after
// `prepare` bumps the affected table's generation counter, the next
// execution replans (visible as `ExecStats::replans`), and the replanned
// result is identical to planning from scratch on the mutated data.

use qbs_db::Connection;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After a post-prepare insert, the statement replans exactly once
    /// and its rows match a fresh plan over the mutated database.
    #[test]
    fn prepared_statements_replan_after_inserts(
        n in 1usize..4,
        perm in 0usize..6,
        equi in prop::collection::vec(0usize..2, 3..4),
        eq_pred in prop::collection::vec(prop::option::of(0i64..5), 3..4),
        flags in prop::collection::vec(0usize..2, 3..4),
        limit in prop::option::of(0i64..10),
        extra in 1i64..4,
    ) {
        let shape = mk_shape(n, perm, &equi, &eq_pred, &flags, limit);
        let q = build_query(&shape);
        let conn = Connection::open(fixture());
        let stmt = conn.prepare_query(&qbs_sql::SqlQuery::Select(q.clone()));
        let params = qbs_db::Params::new();

        // Steady state: the prepared plan is reused.
        let before = conn.execute(&stmt, &params).unwrap();
        let qbs_db::QueryOutput::Rows(before) = before else { panic!("relational") };
        prop_assert_eq!(before.stats.plan_cache_hits, 1, "q: {}", q);
        prop_assert_eq!(before.stats.replans, 0);

        // Mutate the first table the query scans.
        let target = TABLES[shape.tables[0]].0;
        let old_gen = conn.database().table(&target.into()).unwrap().generation();
        for i in 0..extra {
            conn.insert(target, vec![Value::from(i % 5), Value::from(i * 3 % 11)]).unwrap();
        }
        let new_gen = conn.database().table(&target.into()).unwrap().generation();
        prop_assert_eq!(new_gen, old_gen + extra as u64, "one bump per insert");

        // The statement replans and sees the new rows.
        let after = conn.execute(&stmt, &params).unwrap();
        let qbs_db::QueryOutput::Rows(after) = after else { panic!("relational") };
        prop_assert_eq!(after.stats.replans, 1, "q: {}", q);
        prop_assert_eq!(after.stats.plan_cache_hits, 0);

        // Identical to a from-scratch plan over the mutated data.
        let fresh = conn.database().clone();
        let direct = fresh.execute_select(&q, &params).unwrap();
        prop_assert_eq!(&after.rows, &direct.rows, "q: {}", q);

        // And the replanned plan is cached again.
        let steady = conn.execute(&stmt, &params).unwrap();
        let qbs_db::QueryOutput::Rows(steady) = steady else { panic!("relational") };
        prop_assert_eq!(steady.stats.plan_cache_hits, 1);
    }
}

#[test]
fn index_built_after_prepare_replans_onto_the_index() {
    let db = fixture();
    let conn = Connection::open(db);
    // `u.a` has no index in the fixture; the plan starts as a full scan.
    let q = qbs_sql::parse_query("SELECT c FROM u WHERE a = 2").unwrap();
    let stmt = conn.prepare_query(&qbs_sql::SqlQuery::Select(q.clone()));
    let params = qbs_db::Params::new();

    let before = match conn.execute(&stmt, &params).unwrap() {
        qbs_db::QueryOutput::Rows(o) => o,
        other => panic!("unexpected {other:?}"),
    };
    assert!(!before.stats.used_index);
    assert_eq!(stmt.plan().summary().index_scans, 0);

    conn.create_index("u", "a").unwrap();

    let after = match conn.execute(&stmt, &params).unwrap() {
        qbs_db::QueryOutput::Rows(o) => o,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(after.stats.replans, 1, "{:?}", after.stats);
    assert!(after.stats.used_index, "replanned onto the new index");
    // The statement's plan value was swapped in place.
    assert_eq!(stmt.plan().summary().index_scans, 1);
    // Same rows either way (the index changes access path, not results).
    assert_eq!(after.rows, before.rows);
    assert_eq!(conn.plan_cache_stats().invalidations, 1);
}
