//! Property tests: the database engine agrees with the TOR axiomatic
//! evaluator — the two executable semantics of the workspace — on random
//! data, and the hash join is indistinguishable from the nested-loop join.

use proptest::prelude::*;
use qbs_common::{FieldType, Record, Relation, Schema, SchemaRef, Value};
use qbs_db::{explain, Database, JoinAlgorithm, Params};
use qbs_sql::{sql_of, SqlQuery};
use qbs_tor::{eval, trans, CmpOp, Env, JoinPred, Operand, Pred, QuerySpec, TorExpr, TypeEnv};

fn t_schema() -> SchemaRef {
    Schema::builder("t").field("a", FieldType::Int).field("b", FieldType::Int).finish()
}

fn u_schema() -> SchemaRef {
    Schema::builder("u").field("a", FieldType::Int).field("c", FieldType::Int).finish()
}

prop_compose! {
    fn arb_rows()(rows in prop::collection::vec((0i64..5, 0i64..5), 0..8)) -> Vec<(i64, i64)> {
        rows
    }
}

fn setup(trows: &[(i64, i64)], urows: &[(i64, i64)]) -> (Database, Env) {
    let mut db = Database::new();
    db.create_table(t_schema()).unwrap();
    db.create_table(u_schema()).unwrap();
    let mut env = Env::new();
    let mk_rel = |schema: &SchemaRef, rows: &[(i64, i64)]| {
        Relation::from_records(
            schema.clone(),
            rows.iter()
                .map(|&(x, y)| {
                    Record::new(schema.clone(), vec![Value::from(x), Value::from(y)])
                })
                .collect(),
        )
        .unwrap()
    };
    for &(x, y) in trows {
        db.insert("t", vec![Value::from(x), Value::from(y)]).unwrap();
    }
    for &(x, y) in urows {
        db.insert("u", vec![Value::from(x), Value::from(y)]).unwrap();
    }
    env.bind_table("t", mk_rel(&t_schema(), trows));
    env.bind_table("u", mk_rel(&u_schema(), urows));
    (db, env)
}

/// Translates a TOR expression to SQL, runs both semantics, compares rows.
fn check_agreement(e: &TorExpr, db: &Database, env: &Env) {
    let sql = sql_of(&trans(e, &TypeEnv::new()).unwrap()).unwrap();
    let tor_out = eval(e, env).unwrap();
    match (sql, tor_out) {
        (SqlQuery::Select(s), out) => {
            let rel = out.as_relation().expect("relation result");
            let rows = db.execute_select(&s, &Params::new()).unwrap().rows;
            assert_eq!(rel.len(), rows.len(), "row count for {e}");
            for (a, b) in rel.iter().zip(rows.iter()) {
                assert_eq!(a.values(), b.values(), "row values for {e}");
            }
        }
        (SqlQuery::Scalar(s), out) => {
            let v = out.as_scalar().expect("scalar result");
            match db.execute(&SqlQuery::Scalar(s), &Params::new()).unwrap() {
                qbs_db::QueryOutput::Scalar { value, .. } => assert_eq!(v, &value, "{e}"),
                other => panic!("expected scalar, got {other:?}"),
            }
        }
    }
}

fn tq() -> TorExpr {
    TorExpr::Query(QuerySpec::table_scan("t", t_schema()))
}

fn uq() -> TorExpr {
    TorExpr::Query(QuerySpec::table_scan("u", u_schema()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Selections agree between the engine and the TOR semantics.
    #[test]
    fn engine_matches_tor_on_selection(trows in arb_rows(), c in 0i64..5) {
        let (db, env) = setup(&trows, &[]);
        let p = Pred::truth().and_cmp("a".into(), CmpOp::Eq, Operand::Const(c.into()));
        check_agreement(&TorExpr::select(p, tq()), &db, &env);
    }

    /// Projections (and DISTINCT) agree.
    #[test]
    fn engine_matches_tor_on_distinct_projection(trows in arb_rows()) {
        let (db, env) = setup(&trows, &[]);
        let e = TorExpr::unique(TorExpr::proj(vec!["b".into()], tq()));
        check_agreement(&e, &db, &env);
    }

    /// Joins agree — including record order (the paper's precision claim).
    #[test]
    fn engine_matches_tor_on_join(trows in arb_rows(), urows in arb_rows()) {
        let (db, env) = setup(&trows, &urows);
        let e = TorExpr::proj(
            vec!["t.a".into(), "t.b".into(), "u.c".into()],
            TorExpr::join(JoinPred::eq("a", "a"), tq(), uq()),
        );
        check_agreement(&e, &db, &env);
    }

    /// The planner picks a hash join for the equi-join, and its output is
    /// identical to what the TOR axioms dictate.
    #[test]
    fn hash_join_is_chosen_and_order_preserving(trows in arb_rows(), urows in arb_rows()) {
        let (db, env) = setup(&trows, &urows);
        let e = TorExpr::join(JoinPred::eq("a", "a"), tq(), uq());
        let SqlQuery::Select(s) = sql_of(&trans(&e, &TypeEnv::new()).unwrap()).unwrap() else {
            panic!("join is relational")
        };
        prop_assert_eq!(explain(&s, &db).joins, vec![JoinAlgorithm::Hash]);
        let out = db.execute_select(&s, &Params::new()).unwrap();
        prop_assert_eq!(out.stats.joins, vec!["hash"]);
        let tor_rel = eval(&e, &env).unwrap();
        let tor_rel = tor_rel.as_relation().unwrap();
        prop_assert_eq!(tor_rel.len(), out.rows.len());
        // Project TOR output onto t.* + u.* (SQL * excludes rowid).
        for (a, b) in tor_rel.iter().zip(out.rows.iter()) {
            prop_assert_eq!(a.values(), b.values());
        }
    }

    /// Aggregates agree.
    #[test]
    fn engine_matches_tor_on_aggregates(trows in arb_rows(), c in 0i64..5) {
        let (db, env) = setup(&trows, &[]);
        let p = Pred::truth().and_cmp("a".into(), CmpOp::Gt, Operand::Const(c.into()));
        let e = TorExpr::agg(qbs_tor::AggKind::Count, TorExpr::select(p, tq()));
        check_agreement(&e, &db, &env);
        let sum = TorExpr::agg(qbs_tor::AggKind::Sum, TorExpr::proj(vec!["b".into()], tq()));
        check_agreement(&sum, &db, &env);
    }

    /// LIMIT over a sort agrees (top-k of sorted relations, Sec. 7.3).
    #[test]
    fn engine_matches_tor_on_top_of_sort(trows in arb_rows(), k in 0i64..6) {
        let (db, env) = setup(&trows, &[]);
        let e = TorExpr::top(TorExpr::sort(vec!["a".into()], tq()), TorExpr::int(k));
        check_agreement(&e, &db, &env);
    }
}
