//! The formula language of verification conditions.

use qbs_common::Ident;
use qbs_tor::{Operand, Pred, PredAtom, TorExpr};
use std::fmt;

/// Identifies an unknown predicate (a loop invariant or the postcondition).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct UnknownId(pub usize);

/// Metadata about an unknown predicate.
#[derive(Clone, Debug, PartialEq)]
pub struct UnknownInfo {
    /// Identifier.
    pub id: UnknownId,
    /// Display name (`outerLoopInvariant`, `postCondition`, …).
    pub name: String,
    /// Formal parameters — the program variables in scope at the loop head
    /// (or at fragment exit for the postcondition), in a fixed order.
    pub params: Vec<Ident>,
    /// True when this is the postcondition unknown.
    pub is_postcondition: bool,
    /// For loop invariants: the path of the `while` statement in the program
    /// body (indexes into nested statement blocks). `None` for the
    /// postcondition. Used by the synthesizer to pair invariants with loops.
    pub loop_path: Option<Vec<usize>>,
}

/// A verification-condition formula over TOR expressions and unknown
/// predicate applications.
#[derive(Clone, PartialEq, Debug)]
pub enum Formula {
    /// Constant truth.
    True,
    /// Constant falsity.
    False,
    /// A boolean-typed TOR expression (guards, scalar comparisons).
    Atom(TorExpr),
    /// Order-sensitive equality of two relation-typed TOR expressions.
    RelEq(TorExpr, TorExpr),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
    /// Implication `hypothesis → conclusion`.
    Implies(Box<Formula>, Box<Formula>),
    /// Application of an unknown predicate to argument expressions.
    Unknown(UnknownId, Vec<TorExpr>),
}

impl Formula {
    /// Conjunction that drops `True` conjuncts and flattens nested
    /// conjunctions.
    pub fn and(parts: Vec<Formula>) -> Formula {
        let mut flat = Vec::new();
        let mut work: Vec<Formula> = parts.into_iter().rev().collect();
        while let Some(p) = work.pop() {
            match p {
                Formula::True => {}
                Formula::And(inner) => work.extend(inner.into_iter().rev()),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::True,
            1 => flat.pop().expect("len checked"),
            _ => Formula::And(flat),
        }
    }

    /// Implication that simplifies a `True` hypothesis.
    pub fn implies(hyp: Formula, concl: Formula) -> Formula {
        match hyp {
            Formula::True => concl,
            h => Formula::Implies(Box::new(h), Box::new(concl)),
        }
    }

    /// Substitutes `expr` for every free occurrence of variable `var`.
    pub fn subst(&self, var: &Ident, expr: &TorExpr) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(e) => Formula::Atom(subst_expr(e, var, expr)),
            Formula::RelEq(a, b) => {
                Formula::RelEq(subst_expr(a, var, expr), subst_expr(b, var, expr))
            }
            Formula::And(parts) => {
                Formula::And(parts.iter().map(|p| p.subst(var, expr)).collect())
            }
            Formula::Or(parts) => {
                Formula::Or(parts.iter().map(|p| p.subst(var, expr)).collect())
            }
            Formula::Not(f) => Formula::Not(Box::new(f.subst(var, expr))),
            Formula::Implies(h, c) => {
                Formula::Implies(Box::new(h.subst(var, expr)), Box::new(c.subst(var, expr)))
            }
            Formula::Unknown(id, args) => {
                Formula::Unknown(*id, args.iter().map(|a| subst_expr(a, var, expr)).collect())
            }
        }
    }

    /// The unknown predicates applied anywhere in this formula.
    pub fn unknowns(&self) -> Vec<UnknownId> {
        let mut out = Vec::new();
        self.collect_unknowns(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_unknowns(&self, out: &mut Vec<UnknownId>) {
        match self {
            Formula::Unknown(id, _) => out.push(*id),
            Formula::And(ps) | Formula::Or(ps) => {
                for p in ps {
                    p.collect_unknowns(out);
                }
            }
            Formula::Not(f) => f.collect_unknowns(out),
            Formula::Implies(h, c) => {
                h.collect_unknowns(out);
                c.collect_unknowns(out);
            }
            _ => {}
        }
    }
}

/// Capture-free substitution of `expr` for variable `var` inside a TOR
/// expression (TOR has no binders; predicates carry `Param` references which
/// are substituted when the replacement is a constant or another variable).
pub fn subst_expr(e: &TorExpr, var: &Ident, expr: &TorExpr) -> TorExpr {
    use TorExpr::*;
    match e {
        Var(v) if v == var => expr.clone(),
        Const(_) | EmptyList | Var(_) | Query(_) => e.clone(),
        Field(x, f) => TorExpr::Field(Box::new(subst_expr(x, var, expr)), f.clone()),
        Binary(op, a, b) => TorExpr::Binary(
            *op,
            Box::new(subst_expr(a, var, expr)),
            Box::new(subst_expr(b, var, expr)),
        ),
        Not(x) => TorExpr::Not(Box::new(subst_expr(x, var, expr))),
        Size(x) => TorExpr::Size(Box::new(subst_expr(x, var, expr))),
        Get(a, b) => {
            TorExpr::Get(Box::new(subst_expr(a, var, expr)), Box::new(subst_expr(b, var, expr)))
        }
        Top(a, b) => {
            TorExpr::Top(Box::new(subst_expr(a, var, expr)), Box::new(subst_expr(b, var, expr)))
        }
        Proj(l, x) => TorExpr::Proj(l.clone(), Box::new(subst_expr(x, var, expr))),
        Select(p, x) => {
            TorExpr::Select(subst_pred(p, var, expr), Box::new(subst_expr(x, var, expr)))
        }
        Join(p, a, b) => TorExpr::Join(
            p.clone(),
            Box::new(subst_expr(a, var, expr)),
            Box::new(subst_expr(b, var, expr)),
        ),
        Agg(k, x) => TorExpr::Agg(*k, Box::new(subst_expr(x, var, expr))),
        Append(a, b) => TorExpr::Append(
            Box::new(subst_expr(a, var, expr)),
            Box::new(subst_expr(b, var, expr)),
        ),
        Concat(a, b) => TorExpr::Concat(
            Box::new(subst_expr(a, var, expr)),
            Box::new(subst_expr(b, var, expr)),
        ),
        Sort(l, x) => TorExpr::Sort(l.clone(), Box::new(subst_expr(x, var, expr))),
        Unique(x) => TorExpr::Unique(Box::new(subst_expr(x, var, expr))),
        Contains(a, b) => TorExpr::Contains(
            Box::new(subst_expr(a, var, expr)),
            Box::new(subst_expr(b, var, expr)),
        ),
        RecLit(fields) => TorExpr::RecLit(
            fields.iter().map(|(n, fe)| (n.clone(), subst_expr(fe, var, expr))).collect(),
        ),
        Group(spec, x) => TorExpr::Group(spec.clone(), Box::new(subst_expr(x, var, expr))),
        MapGet { map, keys, val_field, default } => TorExpr::MapGet {
            map: Box::new(subst_expr(map, var, expr)),
            keys: keys.iter().map(|(n, k)| (n.clone(), subst_expr(k, var, expr))).collect(),
            val_field: val_field.clone(),
            default: Box::new(subst_expr(default, var, expr)),
        },
        MapPut { map, keys, val_field, val } => TorExpr::MapPut {
            map: Box::new(subst_expr(map, var, expr)),
            keys: keys.iter().map(|(n, k)| (n.clone(), subst_expr(k, var, expr))).collect(),
            val_field: val_field.clone(),
            val: Box::new(subst_expr(val, var, expr)),
        },
    }
}

fn subst_pred(p: &Pred, var: &Ident, expr: &TorExpr) -> Pred {
    let atoms = p
        .atoms()
        .iter()
        .map(|a| match a {
            PredAtom::Cmp { lhs, op, rhs: Operand::Param(v) } if v == var => {
                let rhs = match expr {
                    TorExpr::Const(c) => Operand::Const(c.clone()),
                    TorExpr::Var(nv) => Operand::Param(nv.clone()),
                    // Parameters only ever stand for scalars that are never
                    // reassigned in fragments; substituting anything more
                    // complex would indicate a pipeline bug, so keep the atom.
                    _ => Operand::Param(v.clone()),
                };
                PredAtom::Cmp { lhs: lhs.clone(), op: *op, rhs }
            }
            PredAtom::Contains { probe, rel } => PredAtom::Contains {
                probe: probe.clone(),
                rel: Box::new(subst_expr(rel, var, expr)),
            },
            other => other.clone(),
        })
        .collect();
    Pred::new(atoms)
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(e) => write!(f, "{e}"),
            Formula::RelEq(a, b) => write!(f, "{a} = {b}"),
            Formula::And(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "({p})")?;
                }
                Ok(())
            }
            Formula::Or(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "({p})")?;
                }
                Ok(())
            }
            Formula::Not(x) => write!(f, "¬({x})"),
            Formula::Implies(h, c) => write!(f, "({h}) → ({c})"),
            Formula::Unknown(id, args) => {
                write!(f, "U{}(", id.0)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_tor::CmpOp;

    #[test]
    fn substitution_rewrites_unknown_args() {
        let f = Formula::Unknown(UnknownId(0), vec![TorExpr::var("i"), TorExpr::var("out")]);
        let g = f.subst(&"i".into(), &TorExpr::add(TorExpr::var("i"), TorExpr::int(1)));
        match g {
            Formula::Unknown(_, args) => {
                assert_eq!(args[0], TorExpr::add(TorExpr::var("i"), TorExpr::int(1)));
                assert_eq!(args[1], TorExpr::var("out"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn and_flattens() {
        let f = Formula::and(vec![
            Formula::True,
            Formula::And(vec![Formula::False, Formula::True]),
            Formula::Atom(TorExpr::bool(true)),
        ]);
        match f {
            Formula::And(ps) => assert_eq!(ps.len(), 2),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn subst_respects_shadow_free_semantics() {
        let e =
            TorExpr::cmp(CmpOp::Lt, TorExpr::var("i"), TorExpr::size(TorExpr::var("users")));
        let s = subst_expr(&e, &"i".into(), &TorExpr::int(0));
        assert_eq!(
            s,
            TorExpr::cmp(CmpOp::Lt, TorExpr::int(0), TorExpr::size(TorExpr::var("users")))
        );
    }

    #[test]
    fn unknowns_are_collected() {
        let f = Formula::implies(
            Formula::Unknown(UnknownId(1), vec![]),
            Formula::Or(vec![
                Formula::Unknown(UnknownId(0), vec![]),
                Formula::Unknown(UnknownId(1), vec![]),
            ]),
        );
        assert_eq!(f.unknowns(), vec![UnknownId(0), UnknownId(1)]);
    }
}
