//! Weakest-precondition computation with unknown predicates.

use crate::convert::{kexpr_to_tor, ConvertError};
use crate::formula::{Formula, UnknownId, UnknownInfo};
use qbs_common::Ident;
use qbs_kernel::{KStmt, KernelProgram};
use qbs_tor::TorExpr;
use std::collections::BTreeSet;
use std::fmt;

/// Errors from VC generation.
#[derive(Clone, Debug, PartialEq)]
pub enum VcError {
    /// A kernel expression had no TOR counterpart.
    Convert(ConvertError),
}

impl fmt::Display for VcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VcError::Convert(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VcError {}

impl From<ConvertError> for VcError {
    fn from(e: ConvertError) -> Self {
        VcError::Convert(e)
    }
}

/// The generated verification conditions for a kernel program.
#[derive(Clone, Debug, PartialEq)]
pub struct VcSet {
    /// Conditions, each of which must be valid for all input stores.
    pub conditions: Vec<Formula>,
    /// The unknown predicates (loop invariants + postcondition).
    pub unknowns: Vec<UnknownInfo>,
    /// Which unknown is the postcondition.
    pub post_id: UnknownId,
    /// The program's source relations — variables assigned directly from
    /// `Query(...)` retrievals (candidate bases for the synthesizer).
    pub sources: Vec<Ident>,
}

impl VcSet {
    /// Looks up unknown metadata.
    pub fn unknown(&self, id: UnknownId) -> &UnknownInfo {
        &self.unknowns[id.0]
    }

    /// The loop-invariant unknowns, outermost first.
    pub fn invariants(&self) -> impl Iterator<Item = &UnknownInfo> {
        self.unknowns.iter().filter(|u| !u.is_postcondition)
    }
}

struct Gen {
    unknowns: Vec<UnknownInfo>,
    conditions: Vec<Formula>,
}

impl Gen {
    fn fresh_unknown(
        &mut self,
        name: String,
        params: Vec<Ident>,
        is_post: bool,
        loop_path: Option<Vec<usize>>,
    ) -> UnknownId {
        let id = UnknownId(self.unknowns.len());
        self.unknowns.push(UnknownInfo {
            id,
            name,
            params,
            is_postcondition: is_post,
            loop_path,
        });
        id
    }

    /// Backwards weakest-precondition over a statement block.
    ///
    /// `defined` is the set of variables defined *before* the block runs —
    /// used to scope loop-invariant parameters the way the paper does
    /// ("parameterized by the current program variables that are in scope").
    fn wp_block(
        &mut self,
        stmts: &[KStmt],
        mut post: Formula,
        defined: &BTreeSet<Ident>,
        ambient: &[Ident],
        depth: usize,
        path: &[usize],
    ) -> Result<Formula, VcError> {
        // Compute the defined-set before each statement (forward pass).
        let mut defined_before: Vec<BTreeSet<Ident>> = Vec::with_capacity(stmts.len());
        let mut cur = defined.clone();
        for s in stmts {
            defined_before.push(cur.clone());
            s.assigned_vars().into_iter().for_each(|v| {
                cur.insert(v);
            });
        }
        for (idx, s) in stmts.iter().enumerate().rev() {
            let mut p = path.to_vec();
            p.push(idx);
            post = self.wp_stmt(s, post, &defined_before[idx], ambient, depth, &p)?;
        }
        Ok(post)
    }

    fn wp_stmt(
        &mut self,
        s: &KStmt,
        post: Formula,
        defined: &BTreeSet<Ident>,
        ambient: &[Ident],
        depth: usize,
        path: &[usize],
    ) -> Result<Formula, VcError> {
        match s {
            KStmt::Skip => Ok(post),
            KStmt::Assign(v, e) => Ok(post.subst(v, &kexpr_to_tor(e)?)),
            KStmt::Assert(e) => Ok(Formula::and(vec![Formula::Atom(kexpr_to_tor(e)?), post])),
            KStmt::If(c, t, f) => {
                let cond = kexpr_to_tor(c)?;
                // Disambiguate the two branches in statement paths.
                let mut tp = path.to_vec();
                tp.push(0);
                let mut fp = path.to_vec();
                fp.push(1);
                let wt = self.wp_block(t, post.clone(), defined, ambient, depth, &tp)?;
                let wf = self.wp_block(f, post, defined, ambient, depth, &fp)?;
                Ok(Formula::and(vec![
                    Formula::implies(Formula::Atom(cond.clone()), wt),
                    Formula::implies(Formula::Not(Box::new(Formula::Atom(cond))), wf),
                ]))
            }
            KStmt::While(c, body) => {
                let cond = kexpr_to_tor(c)?;
                // Invariant parameters: variables in scope at the loop head
                // plus variables the loop itself modifies, plus ambient
                // parameters (sources and fragment parameters).
                let mut params: BTreeSet<Ident> = defined.clone();
                params.extend(s.assigned_vars());
                params.extend(ambient.iter().cloned());
                let params: Vec<Ident> = params.into_iter().collect();
                let name = if depth == 0 {
                    "outerLoopInvariant".to_string()
                } else {
                    format!("loopInvariant#{depth}")
                };
                let id = self.fresh_unknown(name, params.clone(), false, Some(path.to_vec()));
                let inv = Formula::Unknown(
                    id,
                    params.iter().map(|p| TorExpr::Var(p.clone())).collect(),
                );
                // Preservation: I ∧ c → wp(body, I).
                let wp_body =
                    self.wp_block(body, inv.clone(), defined, ambient, depth + 1, path)?;
                self.conditions.push(Formula::implies(
                    Formula::and(vec![inv.clone(), Formula::Atom(cond.clone())]),
                    wp_body,
                ));
                // Exit: I ∧ ¬c → post.
                self.conditions.push(Formula::implies(
                    Formula::and(vec![
                        inv.clone(),
                        Formula::Not(Box::new(Formula::Atom(cond))),
                    ]),
                    post,
                ));
                // The loop's precondition is the invariant itself.
                Ok(inv)
            }
        }
    }
}

/// Finds variables assigned directly from `Query(...)` retrievals — the
/// candidate source relations of the synthesis templates.
fn find_sources(stmts: &[KStmt], out: &mut Vec<Ident>) {
    for s in stmts {
        match s {
            KStmt::Assign(v, qbs_kernel::KExpr::Query(_)) => out.push(v.clone()),
            KStmt::If(_, t, f) => {
                find_sources(t, out);
                find_sources(f, out);
            }
            KStmt::While(_, body) => find_sources(body, out),
            _ => {}
        }
    }
}

/// Computes the verification conditions of a kernel program with unknown
/// loop invariants and postcondition (paper Sec. 4.1, Fig. 11).
///
/// The postcondition unknown is parameterized by the result variable, the
/// source relations, and the fragment parameters; each loop invariant by the
/// variables in scope at its head.
///
/// # Errors
///
/// Returns [`VcError`] when a kernel expression cannot be expressed in TOR.
pub fn generate(prog: &KernelProgram) -> Result<VcSet, VcError> {
    let mut sources = Vec::new();
    find_sources(prog.body(), &mut sources);
    sources.sort();
    sources.dedup();

    let mut ambient: Vec<Ident> = sources.clone();
    ambient.extend(prog.params().iter().cloned());
    ambient.sort();
    ambient.dedup();

    let mut gen = Gen { unknowns: Vec::new(), conditions: Vec::new() };

    let mut post_params = vec![prog.result_var().clone()];
    post_params.extend(ambient.iter().cloned());
    post_params.dedup();
    let post_id =
        gen.fresh_unknown("postCondition".to_string(), post_params.clone(), true, None);
    let post = Formula::Unknown(
        post_id,
        post_params.iter().map(|p| TorExpr::Var(p.clone())).collect(),
    );

    let defined: BTreeSet<Ident> = prog.params().iter().cloned().collect();
    let entry = gen.wp_block(prog.body(), post, &defined, &ambient, 0, &[])?;
    // The entry condition must hold unconditionally.
    let mut conditions = vec![entry];
    conditions.extend(gen.conditions);
    Ok(VcSet { conditions, unknowns: gen.unknowns, post_id, sources })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_common::{FieldType, Schema};
    use qbs_kernel::KExpr;
    use qbs_tor::{CmpOp, QuerySpec};

    /// The paper's running example in kernel form (Fig. 2).
    fn running_example() -> KernelProgram {
        let users = Schema::builder("users")
            .field("id", FieldType::Int)
            .field("roleId", FieldType::Int)
            .finish();
        let roles = Schema::builder("roles")
            .field("roleId", FieldType::Int)
            .field("name", FieldType::Str)
            .finish();
        KernelProgram::builder("getRoleUser")
            .stmt(KStmt::assign("listUsers", KExpr::EmptyList))
            .stmt(KStmt::assign("users", KExpr::query(QuerySpec::table_scan("users", users))))
            .stmt(KStmt::assign("roles", KExpr::query(QuerySpec::table_scan("roles", roles))))
            .stmt(KStmt::assign("i", KExpr::int(0)))
            .stmt(KStmt::while_loop(
                KExpr::cmp(CmpOp::Lt, KExpr::var("i"), KExpr::size(KExpr::var("users"))),
                vec![
                    KStmt::assign("j", KExpr::int(0)),
                    KStmt::while_loop(
                        KExpr::cmp(
                            CmpOp::Lt,
                            KExpr::var("j"),
                            KExpr::size(KExpr::var("roles")),
                        ),
                        vec![
                            KStmt::if_then(
                                KExpr::cmp(
                                    CmpOp::Eq,
                                    KExpr::field(
                                        KExpr::get(KExpr::var("users"), KExpr::var("i")),
                                        "roleId",
                                    ),
                                    KExpr::field(
                                        KExpr::get(KExpr::var("roles"), KExpr::var("j")),
                                        "roleId",
                                    ),
                                ),
                                vec![KStmt::assign(
                                    "listUsers",
                                    KExpr::append(
                                        KExpr::var("listUsers"),
                                        KExpr::get(KExpr::var("users"), KExpr::var("i")),
                                    ),
                                )],
                            ),
                            KStmt::assign("j", KExpr::add(KExpr::var("j"), KExpr::int(1))),
                        ],
                    ),
                    KStmt::assign("i", KExpr::add(KExpr::var("i"), KExpr::int(1))),
                ],
            ))
            .result("listUsers")
            .finish()
    }

    #[test]
    fn running_example_matches_fig11_shape() {
        let vc = generate(&running_example()).unwrap();
        // Postcondition + two loop invariants.
        assert_eq!(vc.unknowns.len(), 3);
        assert_eq!(vc.sources, vec![Ident::new("roles"), Ident::new("users")]);
        // Entry + (preservation, exit) per loop = 5 conditions (Fig. 11).
        assert_eq!(vc.conditions.len(), 5);
        // The entry condition instantiates the outer invariant at i = 0 and
        // listUsers = [].
        match &vc.conditions[0] {
            Formula::Unknown(_, args) => {
                assert!(args.contains(&TorExpr::int(0)), "i ↦ 0 in {args:?}");
                assert!(args.contains(&TorExpr::EmptyList), "listUsers ↦ [] in {args:?}");
            }
            other => panic!("unexpected entry condition {other}"),
        }
    }

    #[test]
    fn inner_invariant_sees_outer_counter() {
        let vc = generate(&running_example()).unwrap();
        let inner = vc
            .unknowns
            .iter()
            .find(|u| u.name == "loopInvariant#1")
            .expect("inner invariant exists");
        assert!(inner.params.contains(&Ident::new("i")));
        assert!(inner.params.contains(&Ident::new("j")));
        assert!(inner.params.contains(&Ident::new("listUsers")));
    }

    #[test]
    fn preservation_substitutes_increment() {
        let vc = generate(&running_example()).unwrap();
        // Find a condition whose conclusion references j + 1 (inner
        // preservation after the j := j + 1 substitution).
        let found = vc.conditions.iter().any(|c| format!("{c}").contains("(j + 1)"));
        assert!(found, "expected an inner preservation condition mentioning j + 1");
    }

    #[test]
    fn straight_line_program_has_single_condition() {
        let prog = KernelProgram::builder("f")
            .stmt(KStmt::assign("x", KExpr::int(1)))
            .result("x")
            .finish();
        let vc = generate(&prog).unwrap();
        assert_eq!(vc.conditions.len(), 1);
        match &vc.conditions[0] {
            Formula::Unknown(id, args) => {
                assert_eq!(*id, vc.post_id);
                assert_eq!(args[0], TorExpr::int(1));
            }
            other => panic!("unexpected {other}"),
        }
    }
}
