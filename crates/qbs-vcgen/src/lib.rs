//! Verification-condition generation for kernel programs (paper Sec. 4.1).
//!
//! Following standard Hoare-style weakest-precondition computation, the
//! generator walks the kernel program backwards. The twist (paper): both the
//! postcondition and every loop invariant are **unknown predicates** over the
//! program variables in scope — represented here as [`Formula::Unknown`]
//! applications whose arguments are updated by assignment substitution.
//!
//! For the paper's running example (Fig. 1/2) the generator produces exactly
//! the conditions of Fig. 11: initiation, preservation, and exit conditions
//! for the two nested loops, plus the top-level entry condition.
//!
//! # Example
//!
//! ```
//! use qbs_kernel::{KernelProgram, KExpr, KStmt};
//! use qbs_vcgen::generate;
//!
//! let prog = KernelProgram::builder("f")
//!     .stmt(KStmt::assign("x", KExpr::int(0)))
//!     .stmt(KStmt::while_loop(
//!         KExpr::cmp(qbs_tor::CmpOp::Lt, KExpr::var("x"), KExpr::int(3)),
//!         vec![KStmt::assign("x", KExpr::add(KExpr::var("x"), KExpr::int(1)))],
//!     ))
//!     .result("x")
//!     .finish();
//! let vc = generate(&prog).unwrap();
//! // One loop → one invariant unknown + the postcondition unknown.
//! assert_eq!(vc.unknowns.len(), 2);
//! // Entry, preservation, exit.
//! assert_eq!(vc.conditions.len(), 3);
//! ```

mod convert;
mod formula;
mod gen;

pub use convert::{kexpr_to_tor, ConvertError};
pub use formula::{subst_expr, Formula, UnknownId, UnknownInfo};
pub use gen::{generate, VcError, VcSet};
