//! Conversion from kernel expressions to TOR expressions.
//!
//! Verification conditions speak TOR; the kernel program's guards and
//! assignment right-hand sides are converted node-for-node. The mapping is
//! total except for constructs that have no TOR counterpart.

use qbs_kernel::KExpr;
use qbs_tor::TorExpr;
use std::fmt;

/// Conversion failure.
#[derive(Clone, Debug, PartialEq)]
pub struct ConvertError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot convert to TOR: {}", self.message)
    }
}

impl std::error::Error for ConvertError {}

/// Converts a kernel expression into the equivalent TOR expression.
///
/// # Errors
///
/// Currently total — every kernel construct has a TOR counterpart — but the
/// `Result` is kept for forward compatibility with kernel extensions.
///
/// # Example
///
/// ```
/// use qbs_kernel::KExpr;
/// use qbs_vcgen::kexpr_to_tor;
/// use qbs_tor::TorExpr;
///
/// let k = KExpr::size(KExpr::var("users"));
/// assert_eq!(kexpr_to_tor(&k).unwrap(), TorExpr::size(TorExpr::var("users")));
/// ```
pub fn kexpr_to_tor(e: &KExpr) -> Result<TorExpr, ConvertError> {
    Ok(match e {
        KExpr::Const(v) => TorExpr::Const(v.clone()),
        KExpr::EmptyList => TorExpr::EmptyList,
        KExpr::Var(v) => TorExpr::Var(v.clone()),
        KExpr::Field(x, name) => {
            TorExpr::Field(Box::new(kexpr_to_tor(x)?), name.as_str().into())
        }
        KExpr::RecordLit(fields) => TorExpr::RecLit(
            fields
                .iter()
                .map(|(n, fe)| Ok((n.clone(), kexpr_to_tor(fe)?)))
                .collect::<Result<Vec<_>, ConvertError>>()?,
        ),
        KExpr::Binary(op, a, b) => {
            TorExpr::Binary(*op, Box::new(kexpr_to_tor(a)?), Box::new(kexpr_to_tor(b)?))
        }
        KExpr::Not(x) => TorExpr::Not(Box::new(kexpr_to_tor(x)?)),
        KExpr::Query(spec) => TorExpr::Query(spec.clone()),
        KExpr::Size(x) => TorExpr::Size(Box::new(kexpr_to_tor(x)?)),
        KExpr::Get(r, i) => {
            TorExpr::Get(Box::new(kexpr_to_tor(r)?), Box::new(kexpr_to_tor(i)?))
        }
        KExpr::Append(r, x) => {
            TorExpr::Append(Box::new(kexpr_to_tor(r)?), Box::new(kexpr_to_tor(x)?))
        }
        KExpr::Unique(x) => TorExpr::Unique(Box::new(kexpr_to_tor(x)?)),
        // Kernel `contains(rel, elem)` — TOR argument order is (elem, rel).
        KExpr::Contains(r, x) => {
            TorExpr::Contains(Box::new(kexpr_to_tor(x)?), Box::new(kexpr_to_tor(r)?))
        }
        KExpr::Sort(fields, r) => TorExpr::Sort(fields.clone(), Box::new(kexpr_to_tor(r)?)),
        KExpr::MapGet { map, keys, val_field, default } => TorExpr::MapGet {
            map: Box::new(kexpr_to_tor(map)?),
            keys: keys
                .iter()
                .map(|(n, ke)| Ok((n.clone(), kexpr_to_tor(ke)?)))
                .collect::<Result<Vec<_>, ConvertError>>()?,
            val_field: val_field.clone(),
            default: Box::new(kexpr_to_tor(default)?),
        },
        KExpr::MapPut { map, keys, val_field, val } => TorExpr::MapPut {
            map: Box::new(kexpr_to_tor(map)?),
            keys: keys
                .iter()
                .map(|(n, ke)| Ok((n.clone(), kexpr_to_tor(ke)?)))
                .collect::<Result<Vec<_>, ConvertError>>()?,
            val_field: val_field.clone(),
            val: Box::new(kexpr_to_tor(val)?),
        },
        // In-place removal has no TOR counterpart (category N fails).
        KExpr::Remove(..) => {
            return Err(ConvertError {
                message: "in-place removal is not expressible in TOR".to_string(),
            })
        }
        // An opaque comparator has no TOR counterpart: query inference on the
        // fragment fails, reproducing the paper's category-K failures.
        KExpr::SortCustom(_) => {
            return Err(ConvertError {
                message: "sort with a custom comparator is not expressible in TOR".to_string(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_tor::CmpOp;

    #[test]
    fn contains_swaps_argument_order() {
        let k = KExpr::contains(KExpr::var("xs"), KExpr::var("x"));
        assert_eq!(
            kexpr_to_tor(&k).unwrap(),
            TorExpr::contains(TorExpr::var("x"), TorExpr::var("xs"))
        );
    }

    #[test]
    fn map_reads_and_writes_convert_structurally() {
        let k = KExpr::mapput(
            KExpr::var("m"),
            vec![("k".into(), KExpr::var("x"))],
            "n",
            KExpr::add(
                KExpr::mapget(
                    KExpr::var("m"),
                    vec![("k".into(), KExpr::var("x"))],
                    "n",
                    KExpr::int(0),
                ),
                KExpr::int(1),
            ),
        );
        let t = kexpr_to_tor(&k).unwrap();
        assert_eq!(
            t,
            TorExpr::MapPut {
                map: Box::new(TorExpr::var("m")),
                keys: vec![("k".into(), TorExpr::var("x"))],
                val_field: "n".into(),
                val: Box::new(TorExpr::add(
                    TorExpr::MapGet {
                        map: Box::new(TorExpr::var("m")),
                        keys: vec![("k".into(), TorExpr::var("x"))],
                        val_field: "n".into(),
                        default: Box::new(TorExpr::int(0)),
                    },
                    TorExpr::int(1),
                )),
            }
        );
    }

    #[test]
    fn nested_structure_is_preserved() {
        let k = KExpr::cmp(
            CmpOp::Eq,
            KExpr::field(KExpr::get(KExpr::var("users"), KExpr::var("i")), "roleId"),
            KExpr::int(3),
        );
        let t = kexpr_to_tor(&k).unwrap();
        assert_eq!(
            t,
            TorExpr::cmp(
                CmpOp::Eq,
                TorExpr::field(
                    TorExpr::get(TorExpr::var("users"), TorExpr::var("i")),
                    "roleId"
                ),
                TorExpr::int(3),
            )
        );
    }
}
