//! Bounded model checking of verification conditions over small stores.
//!
//! This plays the role of SKETCH's bounded checking in the paper's CEGIS
//! loop (Sec. 4.2): candidates are screened against a **counterexample
//! cache**, then checked exhaustively over all small source relations (sizes
//! `0..=max_rel_size`, field values from a small domain) plus a layer of
//! randomly sampled larger stores. Intermediate lists and accumulators are
//! never enumerated — they are *derived* from the candidate's `lv = e`
//! conjuncts via directed hypothesis binding (see [`crate::evalf`]), so the
//! check walks exactly the reachable states.

use crate::candidate::Candidate;
use crate::evalf::{holds, refutes};
use qbs_common::{FieldType, Ident, Record, Relation, SchemaRef, Value};
use qbs_tor::{Env, TorExpr, TorType, TypeEnv};
use qbs_vcgen::{Formula, UnknownInfo, VcSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A source relation of the fragment: the program variable, the table it
/// scans, and the row schema.
#[derive(Clone, Debug, PartialEq)]
pub struct SourceSpec {
    /// Program variable holding the retrieval result.
    pub var: Ident,
    /// Table name (bound for `Query(...)` nodes too).
    pub table: Ident,
    /// Row schema.
    pub schema: SchemaRef,
}

/// Tuning knobs for the bounded checker.
#[derive(Clone, Debug)]
pub struct BoundedConfig {
    /// Maximum relation size enumerated exhaustively.
    pub max_rel_size: usize,
    /// Domain of integer fields in exhaustive stores.
    pub int_domain: Vec<i64>,
    /// Domain of string fields.
    pub str_domain: Vec<String>,
    /// Cap on the number of exhaustive store combinations (excess is
    /// sampled).
    pub max_stores: usize,
    /// Extra randomly sampled stores with larger relations/domains.
    pub fuzz_stores: usize,
    /// Maximum relation size in fuzz stores.
    pub fuzz_rel_size: usize,
    /// RNG seed (fixed for determinism).
    pub seed: u64,
}

impl Default for BoundedConfig {
    fn default() -> Self {
        BoundedConfig {
            max_rel_size: 2,
            int_domain: vec![0, 1],
            str_domain: vec!["a".to_string(), "b".to_string()],
            max_stores: 220,
            fuzz_stores: 60,
            fuzz_rel_size: 4,
            seed: 0x9b5,
        }
    }
}

impl BoundedConfig {
    /// The extended configuration used when a candidate passes the standard
    /// bound but the symbolic prover cannot certify it (paper Sec. 5: "repeat
    /// the synthesis process after increasing the maximum relation size").
    pub fn extended() -> Self {
        BoundedConfig {
            max_rel_size: 3,
            int_domain: vec![0, 1, 2],
            str_domain: vec!["a".to_string(), "b".to_string(), "c".to_string()],
            max_stores: 600,
            fuzz_stores: 300,
            fuzz_rel_size: 6,
            seed: 0x517,
        }
    }

    /// Unions the fragment's own literal constants into the store domains.
    ///
    /// Without this, a predicate comparing against a constant outside the
    /// small base domain (e.g. `roleId = 5` under domain `{0, 1}`) is
    /// never *exercised* by any store: candidates that drop or mangle such
    /// a conjunct are indistinguishable from correct ones at the bound.
    /// The differential oracle found exactly this on a fuzzed fragment
    /// with a contradictory conjunction.
    pub fn with_literals(mut self, literals: &[Value]) -> BoundedConfig {
        for v in literals {
            match v {
                Value::Int(i) => {
                    // The constant itself distinguishes `=`/`≠`/`≤`/`≥`
                    // at the boundary; its neighbors are needed for the
                    // strict orders — without a value above `c`, `x > c`
                    // is indistinguishable from FALSE on every store.
                    for n in [*i, i.saturating_sub(1), i.saturating_add(1)] {
                        if !self.int_domain.contains(&n) {
                            self.int_domain.push(n);
                        }
                    }
                }
                Value::Str(s) => {
                    if !self.str_domain.iter().any(|x| x.as_str() == &**s) {
                        self.str_domain.push(s.to_string());
                    }
                }
                // Both booleans are always in every bool domain.
                Value::Bool(_) => {}
            }
        }
        self.int_domain.sort_unstable();
        self.str_domain.sort();
        self
    }
}

/// Result of a bounded check.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckOutcome {
    /// Every condition held on every store.
    Pass,
    /// A condition failed; the environment is the counterexample.
    Fail {
        /// Index into the VC list.
        vc_index: usize,
        /// The falsifying store (with enumerated scalars bound).
        env: Env,
    },
}

/// Cache of stores that falsified earlier candidates — the CEGIS memory.
#[derive(Clone, Debug, Default)]
pub struct CexCache {
    envs: Vec<Env>,
}

impl CexCache {
    /// An empty cache.
    pub fn new() -> CexCache {
        CexCache::default()
    }

    /// Records a counterexample.
    pub fn push(&mut self, env: Env) {
        if self.envs.len() < 512 && !self.envs.contains(&env) {
            self.envs.push(env);
        }
    }

    /// Pre-seeds the cache with counterexamples mined elsewhere — the hook
    /// batch drivers use to share CEGIS state across fragments with the
    /// same template shape. Duplicates are dropped; returns how many
    /// environments were actually added.
    pub fn seed(&mut self, envs: impl IntoIterator<Item = Env>) -> usize {
        let before = self.envs.len();
        for env in envs {
            self.push(env);
        }
        self.envs.len() - before
    }

    /// The cached counterexample environments, oldest first.
    pub fn envs(&self) -> &[Env] {
        &self.envs
    }

    /// Number of cached counterexamples.
    pub fn len(&self) -> usize {
        self.envs.len()
    }

    /// True when no counterexamples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.envs.is_empty()
    }

    /// Screens a candidate against the cache; returns the first *provably
    /// falsified* VC, if any. Much cheaper than a full bounded check.
    ///
    /// Screening uses [`refutes`](crate::refutes), not `!holds`: an
    /// environment that merely fails to evaluate under this candidate
    /// (because it was mined under a candidate with different derived
    /// variables, possibly in another fragment) rejects nothing — the
    /// candidate proceeds to the authoritative bounded check instead.
    /// This is what makes pre-seeding the cache from other fragments a
    /// pure accelerator that cannot change which candidate is accepted.
    pub fn screen(
        &self,
        vcs: &[Formula],
        unknowns: &[UnknownInfo],
        candidate: &Candidate,
    ) -> Option<usize> {
        for env in &self.envs {
            for (i, vc) in vcs.iter().enumerate() {
                if refutes(vc, env, candidate, unknowns) {
                    return Some(i);
                }
            }
        }
        None
    }
}

/// Bounded checker for one fragment's verification conditions.
#[derive(Clone, Debug)]
pub struct BoundedChecker {
    stores: Vec<Env>,
    tenv: TypeEnv,
    max_counter: i64,
}

fn all_records(schema: &SchemaRef, ints: &[i64], strs: &[String]) -> Vec<Record> {
    let mut rows: Vec<Vec<Value>> = vec![vec![]];
    for f in schema.fields() {
        let domain: Vec<Value> = match f.ty {
            FieldType::Bool => vec![Value::from(false), Value::from(true)],
            FieldType::Int => ints.iter().map(|&i| Value::from(i)).collect(),
            FieldType::Str => strs.iter().map(|s| Value::from(s.as_str())).collect(),
        };
        let mut next = Vec::with_capacity(rows.len() * domain.len());
        for row in &rows {
            for v in &domain {
                let mut r = row.clone();
                r.push(v.clone());
                next.push(r);
            }
        }
        rows = next;
    }
    rows.into_iter().map(|vals| Record::new(schema.clone(), vals)).collect()
}

fn all_relations(
    schema: &SchemaRef,
    max_size: usize,
    ints: &[i64],
    strs: &[String],
    max_pool: usize,
) -> Vec<Relation> {
    let records = all_records(schema, ints, strs);
    let mut rels: Vec<Vec<Record>> = vec![vec![]];
    let mut out: Vec<Relation> = vec![Relation::empty(schema.clone())];
    // Wide schemas over literal-extended domains make the full pool
    // combinatorial (|records|^max_size); everything beyond `max_pool` is
    // only ever *sampled* from, so stop materializing there. The random
    // fuzz layer restores the diversity a truncated pool loses.
    'grow: for _ in 0..max_size {
        let mut next = Vec::new();
        for prefix in &rels {
            for r in &records {
                if out.len() >= max_pool {
                    break 'grow;
                }
                let mut v = prefix.clone();
                v.push(r.clone());
                out.push(
                    Relation::from_records(schema.clone(), v.clone()).expect("schema matches"),
                );
                next.push(v);
            }
        }
        rels = next;
    }
    out
}

fn random_relation(
    schema: &SchemaRef,
    max_size: usize,
    ints: &[i64],
    strs: &[String],
    rng: &mut StdRng,
) -> Relation {
    let size = rng.gen_range(0..=max_size);
    let recs = (0..size)
        .map(|_| {
            let vals = schema
                .fields()
                .iter()
                .map(|f| match f.ty {
                    FieldType::Bool => Value::from(rng.gen_bool(0.5)),
                    FieldType::Int => Value::from(ints[rng.gen_range(0..ints.len())]),
                    FieldType::Str => Value::from(strs[rng.gen_range(0..strs.len())].as_str()),
                })
                .collect();
            Record::new(schema.clone(), vals)
        })
        .collect();
    Relation::from_records(schema.clone(), recs).expect("schema matches")
}

impl BoundedChecker {
    /// Builds the store set for a fragment.
    ///
    /// `params` are the fragment's scalar parameters (enumerated over small
    /// domains); `tenv` supplies types for enumerated scalar variables.
    pub fn new(
        sources: &[SourceSpec],
        params: &[(Ident, TorType)],
        tenv: TypeEnv,
        config: &BoundedConfig,
    ) -> BoundedChecker {
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Per-source exhaustive relation pools.
        let pools: Vec<Vec<Relation>> = sources
            .iter()
            .map(|s| {
                all_relations(
                    &s.schema,
                    config.max_rel_size,
                    &config.int_domain,
                    &config.str_domain,
                    config.max_stores * 8,
                )
            })
            .collect();
        let total: usize = pools.iter().map(Vec::len).product::<usize>().max(1);

        let mut stores = Vec::new();
        let mut param_values: Vec<Vec<Value>> = Vec::new();
        for (_, ty) in params {
            param_values.push(match ty {
                TorType::Bool => vec![Value::from(false), Value::from(true)],
                TorType::Str => {
                    config.str_domain.iter().map(|s| Value::from(s.as_str())).collect()
                }
                _ => config.int_domain.iter().map(|&i| Value::from(i)).collect(),
            });
        }
        let param_combos = cartesian(&param_values);

        let push_store = |rels: Vec<Relation>, stores: &mut Vec<Env>| {
            for combo in &param_combos {
                let mut env = Env::new();
                for (s, rel) in sources.iter().zip(&rels) {
                    env.bind(s.var.clone(), rel.clone());
                    env.bind_table(s.table.clone(), rel.clone());
                }
                for ((p, _), v) in params.iter().zip(combo) {
                    env.bind(p.clone(), v.clone());
                }
                stores.push(env);
            }
        };

        if total <= config.max_stores {
            // Full cartesian product of source pools.
            let idxs = pools.iter().map(Vec::len).collect::<Vec<_>>();
            let mut cur = vec![0usize; pools.len()];
            loop {
                let rels: Vec<Relation> =
                    pools.iter().zip(&cur).map(|(p, &i)| p[i].clone()).collect();
                push_store(rels, &mut stores);
                // Advance the odometer.
                let mut k = 0;
                loop {
                    if k == cur.len() {
                        break;
                    }
                    cur[k] += 1;
                    if cur[k] < idxs[k] {
                        break;
                    }
                    cur[k] = 0;
                    k += 1;
                }
                if k == cur.len() {
                    break;
                }
                if cur.iter().all(|&c| c == 0) {
                    break;
                }
            }
        } else {
            // Deterministic inclusion of the all-empty store plus samples.
            push_store(
                sources.iter().map(|s| Relation::empty(s.schema.clone())).collect(),
                &mut stores,
            );
            for _ in 0..config.max_stores {
                let rels: Vec<Relation> =
                    pools.iter().map(|p| p[rng.gen_range(0..p.len())].clone()).collect();
                push_store(rels, &mut stores);
            }
        }

        // Fuzz layer: larger relations, wider domains (the configured
        // domains — which include the fragment's own literals — plus a
        // spread of extra values).
        let mut fuzz_ints: Vec<i64> = config.int_domain.clone();
        fuzz_ints.extend((0..4).filter(|i| !config.int_domain.contains(i)));
        let mut fuzz_strs: Vec<String> = config.str_domain.clone();
        for s in ["c", "d"] {
            if !fuzz_strs.iter().any(|x| x == s) {
                fuzz_strs.push(s.to_string());
            }
        }
        for _ in 0..config.fuzz_stores {
            let rels: Vec<Relation> = sources
                .iter()
                .map(|s| {
                    random_relation(
                        &s.schema,
                        config.fuzz_rel_size,
                        &fuzz_ints,
                        &fuzz_strs,
                        &mut rng,
                    )
                })
                .collect();
            push_store(rels, &mut stores);
        }

        let max_counter = (config.fuzz_rel_size.max(config.max_rel_size) + 1) as i64;
        BoundedChecker { stores, tenv, max_counter }
    }

    /// The number of base stores.
    pub fn store_count(&self) -> usize {
        self.stores.len()
    }

    /// Checks every VC of `vcs` against every store, enumerating any free
    /// scalar variables not derived by the candidate's equality conjuncts.
    ///
    /// On failure the falsifying environment should be fed to a [`CexCache`].
    pub fn check(&self, vcs: &VcSet, candidate: &Candidate) -> CheckOutcome {
        for (i, vc) in vcs.conditions.iter().enumerate() {
            // Scalar variables to enumerate: free in the VC, not bound by
            // the store, not derived by candidate equalities.
            let free = formula_vars(vc);
            for env in &self.stores {
                let derived = derived_vars(vc, candidate, &vcs.unknowns, env);
                let enumerated: Vec<Ident> = free
                    .iter()
                    .filter(|v| env.get(v).is_none() && !derived.contains(*v))
                    .cloned()
                    .collect();
                let max_size = self.stores.first().map(|_| self.max_counter).unwrap_or(3);
                let domains: Vec<Vec<Value>> = enumerated
                    .iter()
                    .map(|v| match self.tenv.get(v) {
                        Some(TorType::Bool) => vec![Value::from(false), Value::from(true)],
                        Some(TorType::Str) => vec![Value::from("a"), Value::from("b")],
                        // Counters and other ints range over list indexes.
                        _ => (0..=max_size).map(Value::from).collect(),
                    })
                    .collect();
                for combo in cartesian(&domains) {
                    let mut e = env.clone();
                    for (v, val) in enumerated.iter().zip(&combo) {
                        e.bind(v.clone(), val.clone());
                    }
                    if !holds(vc, &e, candidate, &vcs.unknowns) {
                        return CheckOutcome::Fail { vc_index: i, env: e };
                    }
                }
            }
        }
        CheckOutcome::Pass
    }
}

/// Cartesian product of value domains (empty product = one empty combo).
fn cartesian(domains: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = vec![vec![]];
    for d in domains {
        let mut next = Vec::with_capacity(out.len() * d.len());
        for prefix in &out {
            for v in d {
                let mut c = prefix.clone();
                c.push(v.clone());
                next.push(c);
            }
        }
        out = next;
    }
    out
}

/// All program variables appearing in a formula (through unknown arguments).
fn formula_vars(f: &Formula) -> Vec<Ident> {
    let mut out = Vec::new();
    collect_formula_vars(f, &mut out);
    out.sort();
    out.dedup();
    out
}

fn collect_formula_vars(f: &Formula, out: &mut Vec<Ident>) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Atom(e) => out.extend(e.free_vars()),
        Formula::RelEq(a, b) => {
            out.extend(a.free_vars());
            out.extend(b.free_vars());
        }
        Formula::And(ps) | Formula::Or(ps) => {
            for p in ps {
                collect_formula_vars(p, out);
            }
        }
        Formula::Not(x) => collect_formula_vars(x, out),
        Formula::Implies(h, c) => {
            collect_formula_vars(h, out);
            collect_formula_vars(c, out);
        }
        Formula::Unknown(_, args) => {
            for a in args {
                out.extend(a.free_vars());
            }
        }
    }
}

/// Variables that the candidate's hypothesis conjuncts would bind directedly
/// (`v = e` with `v` unbound in the store): these are *derived*, never
/// enumerated.
fn derived_vars(
    vc: &Formula,
    candidate: &Candidate,
    unknowns: &[UnknownInfo],
    store: &Env,
) -> BTreeSet<Ident> {
    let mut out = BTreeSet::new();
    if let Formula::Implies(h, _) = vc {
        collect_derived(h, candidate, unknowns, store, &mut out);
    }
    out
}

fn collect_derived(
    f: &Formula,
    candidate: &Candidate,
    unknowns: &[UnknownInfo],
    store: &Env,
    out: &mut BTreeSet<Ident>,
) {
    match f {
        Formula::And(ps) => {
            for p in ps {
                collect_derived(p, candidate, unknowns, store, out);
            }
        }
        Formula::Unknown(id, args) => {
            let info = &unknowns[id.0];
            if let Some(body) = candidate.instantiate(info, args) {
                collect_derived(&body, candidate, unknowns, store, out);
            }
        }
        Formula::RelEq(TorExpr::Var(v), _) if store.get(v).is_none() => {
            out.insert(v.clone());
        }
        Formula::Atom(TorExpr::Binary(qbs_tor::BinOp::Cmp(qbs_tor::CmpOp::Eq), a, _)) => {
            if let TorExpr::Var(v) = &**a {
                if store.get(v).is_none() {
                    out.insert(v.clone());
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_common::Schema;
    use qbs_kernel::{typecheck, KExpr, KStmt, KernelProgram};
    use qbs_tor::QuerySpec;
    use qbs_tor::{CmpOp, Operand, Pred};
    use qbs_vcgen::generate;

    fn users_schema() -> SchemaRef {
        Schema::builder("users")
            .field("id", FieldType::Int)
            .field("roleId", FieldType::Int)
            .finish()
    }

    /// Selection fragment: out := all users with roleId = 1.
    fn selection_program() -> KernelProgram {
        KernelProgram::builder("sel")
            .stmt(KStmt::assign("out", KExpr::EmptyList))
            .stmt(KStmt::assign(
                "users",
                KExpr::query(QuerySpec::table_scan("users", users_schema())),
            ))
            .stmt(KStmt::assign("i", KExpr::int(0)))
            .stmt(KStmt::while_loop(
                KExpr::cmp(CmpOp::Lt, KExpr::var("i"), KExpr::size(KExpr::var("users"))),
                vec![
                    KStmt::if_then(
                        KExpr::cmp(
                            CmpOp::Eq,
                            KExpr::field(
                                KExpr::get(KExpr::var("users"), KExpr::var("i")),
                                "roleId",
                            ),
                            KExpr::int(1),
                        ),
                        vec![KStmt::assign(
                            "out",
                            KExpr::append(
                                KExpr::var("out"),
                                KExpr::get(KExpr::var("users"), KExpr::var("i")),
                            ),
                        )],
                    ),
                    KStmt::assign("i", KExpr::add(KExpr::var("i"), KExpr::int(1))),
                ],
            ))
            .result("out")
            .finish()
    }

    fn roleid_pred() -> Pred {
        Pred::truth().and_cmp("roleId".into(), CmpOp::Eq, Operand::Const(1.into()))
    }

    fn checker(prog: &KernelProgram) -> (BoundedChecker, qbs_vcgen::VcSet) {
        let vcs = generate(prog).unwrap();
        let types = typecheck(prog, &TypeEnv::new()).unwrap();
        let sources = vec![SourceSpec {
            var: "users".into(),
            table: "users".into(),
            schema: users_schema(),
        }];
        let c =
            BoundedChecker::new(&sources, &[], types.to_type_env(), &BoundedConfig::default());
        (c, vcs)
    }

    /// The correct candidate for the selection fragment.
    fn correct_candidate(vcs: &qbs_vcgen::VcSet) -> Candidate {
        let inv = vcs.invariants().next().unwrap();
        let post_id = vcs.post_id;
        let mut cand = Candidate::new();
        // Invariant: i ≤ size(users) ∧ out = σ(top_i(users)).
        cand.set(
            inv.id,
            Formula::And(vec![
                Formula::Atom(TorExpr::cmp(
                    CmpOp::Le,
                    TorExpr::var("i"),
                    TorExpr::size(TorExpr::var("users")),
                )),
                Formula::RelEq(
                    TorExpr::var("out"),
                    TorExpr::select(
                        roleid_pred(),
                        TorExpr::top(TorExpr::var("users"), TorExpr::var("i")),
                    ),
                ),
            ]),
        );
        // Postcondition: out = σ(users).
        cand.set(
            post_id,
            Formula::RelEq(
                TorExpr::var("out"),
                TorExpr::select(roleid_pred(), TorExpr::var("users")),
            ),
        );
        cand
    }

    #[test]
    fn correct_selection_candidate_passes() {
        let prog = selection_program();
        let (checker, vcs) = checker(&prog);
        assert!(checker.store_count() > 0);
        let cand = correct_candidate(&vcs);
        assert_eq!(checker.check(&vcs, &cand), CheckOutcome::Pass);
    }

    #[test]
    fn wrong_postcondition_is_refuted() {
        let prog = selection_program();
        let (checker, vcs) = checker(&prog);
        let inv = vcs.invariants().next().unwrap().id;
        let mut cand = correct_candidate(&vcs);
        // Claim the loop copies everything (wrong: it filters).
        cand.set(vcs.post_id, Formula::RelEq(TorExpr::var("out"), TorExpr::var("users")));
        let _ = inv;
        match checker.check(&vcs, &cand) {
            CheckOutcome::Fail { .. } => {}
            CheckOutcome::Pass => panic!("wrong candidate must be refuted"),
        }
    }

    #[test]
    fn weak_invariant_fails_preservation_or_exit() {
        let prog = selection_program();
        let (checker, vcs) = checker(&prog);
        let inv = vcs.invariants().next().unwrap().id;
        let mut cand = correct_candidate(&vcs);
        // Invariant claims out stays empty (falsified once a row matches).
        cand.set(inv, Formula::RelEq(TorExpr::var("out"), TorExpr::EmptyList));
        match checker.check(&vcs, &cand) {
            CheckOutcome::Fail { .. } => {}
            CheckOutcome::Pass => panic!("weak invariant must be refuted"),
        }
    }

    #[test]
    fn cex_cache_screens_known_bad_candidates() {
        let prog = selection_program();
        let (checker, vcs) = checker(&prog);
        let mut cand = correct_candidate(&vcs);
        cand.set(vcs.post_id, Formula::RelEq(TorExpr::var("out"), TorExpr::var("users")));
        let mut cache = CexCache::new();
        match checker.check(&vcs, &cand) {
            CheckOutcome::Fail { env, .. } => cache.push(env),
            CheckOutcome::Pass => panic!("expected failure"),
        }
        assert_eq!(cache.len(), 1);
        // The same wrong candidate is now rejected by the cache alone.
        assert!(cache.screen(&vcs.conditions, &vcs.unknowns, &cand).is_some());
        // The correct candidate passes the cache screen.
        let good = correct_candidate(&vcs);
        assert!(cache.screen(&vcs.conditions, &vcs.unknowns, &good).is_none());
    }
}
