//! Validation of candidate invariants and postconditions (paper Sec. 4.2
//! and Sec. 5).
//!
//! The paper uses two engines: SKETCH's counterexample-guided bounded
//! checking during synthesis, and Z3 (armed with the TOR axioms) for final
//! validation. This crate supplies both roles with self-contained
//! implementations:
//!
//! * [`BoundedChecker`] — exhaustive/sampled checking of the verification
//!   conditions over small concrete stores, with **directed hypothesis
//!   binding**: variables constrained by a candidate invariant's `lv = e`
//!   conjuncts are *computed* rather than enumerated, so the check explores
//!   exactly the reachable part of the space. A counterexample cache turns
//!   candidate screening into the CEGIS loop of the paper.
//! * [`prove`] — a symbolic prover that discharges the same verification
//!   conditions for *unbounded* stores by structural-induction rewriting
//!   with the TOR axioms (Appendix C) and the Thm. 2 equivalences: `top`
//!   unfolding, `append`/`cat` homomorphisms through `π`/`σ`/`⋈`, and
//!   hypothesis-driven predicate reduction.
//!
//! A candidate is **accepted** when the bounded checker passes and the
//! prover certifies every condition; candidates the prover cannot certify
//! can still be accepted under an *extended* bound, and the result records
//! which guarantee was obtained (mirroring the paper's bounded-then-prove
//! pipeline).

mod bounded;
mod candidate;
mod evalf;
mod prover;
mod sterm;

pub use bounded::{BoundedChecker, BoundedConfig, CexCache, CheckOutcome, SourceSpec};
pub use candidate::Candidate;
pub use evalf::{eval_formula, holds, refutes};
pub use prover::{prove, ProofResult};
