//! Symbolic term language for the rewrite prover.
//!
//! The prover normalizes TOR expressions over *symbolic* relations and index
//! variables into a canonical "segment" form built from `Empty`, `Single`,
//! and right-nested `Cat`, with `π`/`σ`/`⋈` distributed over segments. The
//! key unfolding — `top_{i+1}(r) = cat(top_i(r), [get_i(r)])` under the
//! hypothesis `i < size(r)` — is what lets structural induction on loop
//! counters go through (the same role the TOR axioms play for Z3 in the
//! paper, Sec. 5).

use qbs_common::{FieldRef, Ident, Value};
use qbs_tor::{AggKind, BinOp, CmpOp, JoinPred, Pred, TorExpr};
use std::fmt;

/// A symbolic relation-valued term.
#[derive(Clone, PartialEq, Debug)]
pub enum RelT {
    /// The empty relation.
    Empty,
    /// A symbolic base relation (source variable or table).
    Base(Ident),
    /// A one-record relation.
    Single(RecT),
    /// Concatenation (right-nested in normal form).
    Cat(Box<RelT>, Box<RelT>),
    /// `top_idx(rel)`.
    Top(Box<RelT>, ScalT),
    /// `σ_pred(rel)`.
    Select(Pred, Box<RelT>),
    /// `π_fields(rel)`.
    Proj(Vec<FieldRef>, Box<RelT>),
    /// `⋈_pred(l, r)`.
    Join(JoinPred, Box<RelT>, Box<RelT>),
    /// `sort_fields(rel)` — uninterpreted wrapper.
    Sort(Vec<FieldRef>, Box<RelT>),
    /// `unique(rel)` — uninterpreted wrapper.
    Unique(Box<RelT>),
}

/// A symbolic record-valued term.
#[derive(Clone, PartialEq, Debug)]
pub enum RecT {
    /// `get_idx(rel)`.
    Get(Box<RelT>, ScalT),
    /// The pairing produced by a join.
    Pair(Box<RecT>, Box<RecT>),
    /// Record-level projection (the image of a `π` on one record).
    ProjRec(Vec<FieldRef>, Box<RecT>),
    /// A record literal with scalar term fields.
    Lit(Vec<(Ident, ScalT)>),
}

/// A symbolic scalar-valued term.
#[derive(Clone, PartialEq, Debug)]
pub enum ScalT {
    /// Constant.
    Const(Value),
    /// Scalar program variable.
    Var(Ident),
    /// Addition.
    Add(Box<ScalT>, Box<ScalT>),
    /// Subtraction.
    Sub(Box<ScalT>, Box<ScalT>),
    /// `size(rel)`.
    Size(Box<RelT>),
    /// Field of a record term.
    Field(Box<RecT>, FieldRef),
    /// Aggregate over a relation term.
    Agg(AggKind, Box<RelT>),
    /// A comparison as a boolean-valued scalar.
    Cmp(Box<ScalT>, CmpOp, Box<ScalT>),
    /// Membership as a boolean-valued scalar.
    ContainsT(Box<ScalOrRec>, Box<RelT>),
    /// Logical negation of a boolean term.
    NotT(Box<ScalT>),
}

/// Either a scalar or a record — the probe of a `contains`.
#[derive(Clone, PartialEq, Debug)]
pub enum ScalOrRec {
    /// Scalar probe.
    Scal(ScalT),
    /// Record probe.
    Rec(RecT),
}

impl ScalT {
    /// Integer constant helper.
    pub fn int(i: i64) -> ScalT {
        ScalT::Const(Value::from(i))
    }

    /// Is this the integer constant `i`?
    pub fn is_int(&self, i: i64) -> bool {
        matches!(self, ScalT::Const(Value::Int(x)) if *x == i)
    }
}

/// Conversion failure: the expression uses a construct the prover does not
/// model symbolically.
#[derive(Clone, Debug, PartialEq)]
pub struct UnsupportedTerm(pub String);

impl fmt::Display for UnsupportedTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prover cannot model `{}`", self.0)
    }
}

/// Converts a relation-typed TOR expression into a symbolic relation term.
pub fn rel_term(e: &TorExpr) -> Result<RelT, UnsupportedTerm> {
    Ok(match e {
        TorExpr::EmptyList => RelT::Empty,
        TorExpr::Var(v) => RelT::Base(v.clone()),
        TorExpr::Query(q) => RelT::Base(q.table.clone()),
        TorExpr::Top(r, i) => RelT::Top(Box::new(rel_term(r)?), scal_term(i)?),
        TorExpr::Select(p, r) => RelT::Select(p.clone(), Box::new(rel_term(r)?)),
        TorExpr::Proj(l, r) => RelT::Proj(l.clone(), Box::new(rel_term(r)?)),
        TorExpr::Join(p, a, b) => {
            // A record-typed left operand (⋈′) becomes a singleton.
            let left = match rec_term(a) {
                Ok(rec) => RelT::Single(rec),
                Err(_) => rel_term(a)?,
            };
            RelT::Join(p.clone(), Box::new(left), Box::new(rel_term(b)?))
        }
        TorExpr::Sort(l, r) => RelT::Sort(l.clone(), Box::new(rel_term(r)?)),
        TorExpr::Unique(r) => RelT::Unique(Box::new(rel_term(r)?)),
        TorExpr::Append(r, x) => {
            // Scalar appends model single-column lists (kernel semantics):
            // the element becomes a one-field literal record.
            let rec = match rec_term(x) {
                Ok(rec) => rec,
                Err(_) => RecT::Lit(vec![(Ident::new("val"), scal_term(x)?)]),
            };
            RelT::Cat(Box::new(rel_term(r)?), Box::new(RelT::Single(rec)))
        }
        TorExpr::Concat(a, b) => RelT::Cat(Box::new(rel_term(a)?), Box::new(rel_term(b)?)),
        other => return Err(UnsupportedTerm(format!("{other}"))),
    })
}

/// Converts a record-typed TOR expression into a symbolic record term.
pub fn rec_term(e: &TorExpr) -> Result<RecT, UnsupportedTerm> {
    Ok(match e {
        TorExpr::Get(r, i) => RecT::Get(Box::new(rel_term(r)?), scal_term(i)?),
        TorExpr::RecLit(fields) => RecT::Lit(
            fields
                .iter()
                .map(|(n, fe)| Ok((n.clone(), scal_term(fe)?)))
                .collect::<Result<Vec<_>, UnsupportedTerm>>()?,
        ),
        other => return Err(UnsupportedTerm(format!("{other}"))),
    })
}

/// Converts a scalar-typed TOR expression into a symbolic scalar term.
pub fn scal_term(e: &TorExpr) -> Result<ScalT, UnsupportedTerm> {
    Ok(match e {
        TorExpr::Const(v) => ScalT::Const(v.clone()),
        TorExpr::Var(v) => ScalT::Var(v.clone()),
        TorExpr::Binary(BinOp::Add, a, b) => {
            ScalT::Add(Box::new(scal_term(a)?), Box::new(scal_term(b)?))
        }
        TorExpr::Binary(BinOp::Sub, a, b) => {
            ScalT::Sub(Box::new(scal_term(a)?), Box::new(scal_term(b)?))
        }
        TorExpr::Binary(BinOp::Cmp(op), a, b) => {
            ScalT::Cmp(Box::new(scal_term(a)?), *op, Box::new(scal_term(b)?))
        }
        TorExpr::Binary(op, ..) => {
            return Err(UnsupportedTerm(format!("operator {op} in scalar position")))
        }
        TorExpr::Not(x) => ScalT::NotT(Box::new(scal_term(x)?)),
        TorExpr::Size(r) => ScalT::Size(Box::new(rel_term(r)?)),
        TorExpr::Field(rec, f) => ScalT::Field(Box::new(rec_term(rec)?), f.clone()),
        TorExpr::Agg(k, r) => ScalT::Agg(*k, Box::new(rel_term(r)?)),
        TorExpr::Contains(x, r) => {
            let probe = match scal_term(x) {
                Ok(s) => ScalOrRec::Scal(s),
                Err(_) => ScalOrRec::Rec(rec_term(x)?),
            };
            ScalT::ContainsT(Box::new(probe), Box::new(rel_term(r)?))
        }
        other => return Err(UnsupportedTerm(format!("{other}"))),
    })
}

impl fmt::Display for RelT {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelT::Empty => write!(f, "[]"),
            RelT::Base(v) => write!(f, "{v}"),
            RelT::Single(r) => write!(f, "[{r}]"),
            RelT::Cat(a, b) => write!(f, "cat({a}, {b})"),
            RelT::Top(r, i) => write!(f, "top[{i}]({r})"),
            RelT::Select(p, r) => write!(f, "σ[{p}]({r})"),
            RelT::Proj(l, r) => write!(f, "π[{}]({r})", fields(l)),
            RelT::Join(p, a, b) => write!(f, "⋈[{p}]({a}, {b})"),
            RelT::Sort(l, r) => write!(f, "sort[{}]({r})", fields(l)),
            RelT::Unique(r) => write!(f, "unique({r})"),
        }
    }
}

fn fields(l: &[FieldRef]) -> String {
    l.iter().map(|f| f.to_string()).collect::<Vec<_>>().join(",")
}

impl fmt::Display for RecT {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecT::Get(r, i) => write!(f, "get[{i}]({r})"),
            RecT::Pair(a, b) => write!(f, "({a}, {b})"),
            RecT::ProjRec(l, r) => write!(f, "π[{}]({r})", fields(l)),
            RecT::Lit(fs) => {
                write!(f, "{{")?;
                for (i, (n, e)) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n} = {e}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl fmt::Display for ScalT {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalT::Const(v) => write!(f, "{v:?}"),
            ScalT::Var(v) => write!(f, "{v}"),
            ScalT::Add(a, b) => write!(f, "({a} + {b})"),
            ScalT::Sub(a, b) => write!(f, "({a} - {b})"),
            ScalT::Size(r) => write!(f, "size({r})"),
            ScalT::Field(r, fr) => write!(f, "{r}.{fr}"),
            ScalT::Agg(k, r) => write!(f, "{k}({r})"),
            ScalT::Cmp(a, op, b) => write!(f, "({a} {op} {b})"),
            ScalT::ContainsT(p, r) => match &**p {
                ScalOrRec::Scal(s) => write!(f, "contains({s}, {r})"),
                ScalOrRec::Rec(rec) => write!(f, "contains({rec}, {r})"),
            },
            ScalT::NotT(x) => write!(f, "¬{x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converts_top_select_chain() {
        let e = TorExpr::select(
            Pred::truth(),
            TorExpr::top(TorExpr::var("users"), TorExpr::var("i")),
        );
        let t = rel_term(&e).unwrap();
        assert_eq!(
            t,
            RelT::Select(
                Pred::truth(),
                Box::new(RelT::Top(
                    Box::new(RelT::Base("users".into())),
                    ScalT::Var("i".into())
                ))
            )
        );
    }

    #[test]
    fn append_becomes_cat_single() {
        let e = TorExpr::append(
            TorExpr::var("out"),
            TorExpr::get(TorExpr::var("users"), TorExpr::var("i")),
        );
        match rel_term(&e).unwrap() {
            RelT::Cat(a, b) => {
                assert_eq!(*a, RelT::Base("out".into()));
                assert!(matches!(*b, RelT::Single(RecT::Get(..))));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn record_left_join_becomes_singleton() {
        let e = TorExpr::join(
            JoinPred::eq("a", "a"),
            TorExpr::get(TorExpr::var("u"), TorExpr::var("i")),
            TorExpr::var("r"),
        );
        match rel_term(&e).unwrap() {
            RelT::Join(_, l, _) => assert!(matches!(*l, RelT::Single(_))),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn unsupported_reports_cleanly() {
        let e = TorExpr::var("x");
        // A variable is fine as a relation but a `get` of it is not a
        // relation term.
        assert!(rel_term(&TorExpr::get(e, TorExpr::int(0))).is_err());
    }
}
