//! Symbolic prover for verification conditions over unbounded stores.
//!
//! The paper validates synthesized invariants with Z3 plus the TOR axioms
//! (Sec. 5). This module plays that role with a self-contained rewrite
//! engine: the VC (with the candidate substituted) is converted into the
//! symbolic term language of [`crate::sterm`], hypotheses become variable
//! *definitions* (`out = σ(top_i(users))`) and *facts* (`i < size(users)`,
//! branch conditions), and both sides of each equality are normalized into a
//! canonical segment form. The crucial rewrites are structural-induction
//! steps justified by the Appendix C axioms:
//!
//! * `top_{i+1}(r) → cat(top_i(r), [get_i(r)])` under the fact `i < size(r)`;
//! * `top_i(r) → r` under `i ≥ size(r)`;
//! * homomorphic distribution of `σ`/`π`/`⋈` over `cat` and singletons;
//! * hypothesis-driven reduction of predicates applied to single records;
//! * aggregate unfolding (`max(cat(a, [x]))` decided by comparing `x` with
//!   `max(a)` under the collected facts).
//!
//! A `Proved` result certifies the condition for **all** stores; `Unknown`
//! sends the pipeline back to extended bounded checking (mirroring the
//! paper's prover-timeout path).

use crate::candidate::Candidate;
use crate::sterm::{rel_term, scal_term, RecT, RelT, ScalOrRec, ScalT};
use qbs_common::{Ident, Value};
use qbs_tor::{
    AggKind, CmpOp, JoinPred, Operand, Pred, PredAtom, Probe, TorExpr, TorType, TypeEnv,
};
use qbs_vcgen::{subst_expr, Formula, UnknownInfo};

/// Outcome of a proof attempt.
#[derive(Clone, Debug, PartialEq)]
pub enum ProofResult {
    /// The condition is valid for all stores.
    Proved,
    /// The prover could not certify the condition (with a reason for
    /// diagnostics). Not a refutation.
    Unknown(String),
}

impl ProofResult {
    /// True for [`ProofResult::Proved`].
    pub fn is_proved(&self) -> bool {
        matches!(self, ProofResult::Proved)
    }
}

/// Collected hypotheses: definitions and comparison facts.
#[derive(Clone, Debug, Default)]
struct Hyps {
    /// Definitions `v := e` (applied as substitutions, in order).
    defs: Vec<(Ident, TorExpr)>,
    /// Comparison facts over *converted, def-substituted* terms.
    facts: Vec<(ScalT, CmpOp, ScalT)>,
    /// Boolean-term facts (`contains(...)` etc.) with their truth value.
    bool_facts: Vec<(ScalT, bool)>,
}

impl Hyps {
    fn apply_defs(&self, e: &TorExpr) -> TorExpr {
        let mut cur = e.clone();
        // Definitions are collected in dependency order (hypothesis order);
        // apply repeatedly so defs referencing earlier defs resolve.
        for _ in 0..2 {
            for (v, def) in &self.defs {
                cur = subst_expr(&cur, v, def);
            }
        }
        cur
    }

    fn add_def(&mut self, v: Ident, e: TorExpr) {
        let e = self.apply_defs(&e);
        self.defs.push((v, e));
    }

    fn add_fact(&mut self, a: ScalT, op: CmpOp, b: ScalT) {
        self.facts.push((a, op, b));
    }

    fn add_bool_fact(&mut self, t: ScalT, truth: bool) {
        self.bool_facts.push((t, truth));
    }
}

/// Does `have` (a true fact `x have y`) imply `want` (`x want y`)?
fn cmp_implies(have: CmpOp, want: CmpOp) -> bool {
    use CmpOp::*;
    match have {
        Eq => matches!(want, Eq | Le | Ge),
        Ne => matches!(want, Ne),
        Lt => matches!(want, Lt | Le | Ne),
        Le => matches!(want, Le),
        Gt => matches!(want, Gt | Ge | Ne),
        Ge => matches!(want, Ge),
    }
}

struct Prover<'a> {
    hyps: Hyps,
    tenv: &'a TypeEnv,
}

impl<'a> Prover<'a> {
    // ---------- scalar decision procedure ----------

    fn nonneg(&self, t: &ScalT) -> bool {
        match t {
            ScalT::Const(Value::Int(i)) => *i >= 0,
            ScalT::Size(_) => true,
            ScalT::Agg(AggKind::Count, _) => true,
            ScalT::Add(a, b) => self.nonneg(a) && self.nonneg(b),
            // Fact-table lookup only: `decide` consults `nonneg` for its
            // `≥ 0` rules, so re-entering the full procedure here would
            // recurse forever on undecidable terms (found by the
            // differential fuzzer on an unconditional count loop).
            _ => self.decide_facts_only(t, CmpOp::Ge, &ScalT::int(0)).unwrap_or(false),
        }
    }

    /// Tries to decide `a op b` from constants, syntax, and facts.
    fn decide(&self, a: &ScalT, op: CmpOp, b: &ScalT) -> Option<bool> {
        // Constant arithmetic.
        if let (ScalT::Const(x), ScalT::Const(y)) = (a, b) {
            return Some(op.test(x.total_cmp(y)));
        }
        // Syntactic equality.
        if a == b {
            return Some(matches!(op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge));
        }
        // Fact lookup (direct and flipped).
        for (x, fop, y) in &self.hyps.facts {
            if x == a && y == b && cmp_implies(*fop, op) {
                return Some(true);
            }
            if x == b && y == a && cmp_implies(fop.flip(), op) {
                return Some(true);
            }
            // Refutation: a fact implying the negation.
            if x == a && y == b && cmp_implies(*fop, op.negate()) {
                return Some(false);
            }
            if x == b && y == a && cmp_implies(fop.flip(), op.negate()) {
                return Some(false);
            }
        }
        // (x + 1 ≤ b) ⇐ (x < b);  (x + 1 > 0) ⇐ x ≥ 0.
        if let ScalT::Add(x, one) = a {
            if one.is_int(1) {
                if matches!(op, CmpOp::Le) && self.decide(x, CmpOp::Lt, b) == Some(true) {
                    return Some(true);
                }
                if matches!(op, CmpOp::Gt) && b.is_int(0) && self.nonneg(x) {
                    return Some(true);
                }
                if matches!(op, CmpOp::Ge) && b.is_int(0) && self.nonneg(x) {
                    return Some(true);
                }
            }
        }
        // size(r) ≥ 0 and friends.
        if matches!(op, CmpOp::Ge) && b.is_int(0) && self.nonneg(a) {
            return Some(true);
        }
        if matches!(op, CmpOp::Le) && a.is_int(0) && self.nonneg(b) {
            return Some(true);
        }
        // a = b from a ≤ b ∧ a ≥ b.
        if matches!(op, CmpOp::Eq)
            && self.decide(a, CmpOp::Le, b) == Some(true)
            && self.decide(a, CmpOp::Ge, b) == Some(true)
        {
            return Some(true);
        }
        // One-step transitivity through a fact: a ≤ t ∧ t ≤ b ⟹ a ≤ b.
        if matches!(op, CmpOp::Le | CmpOp::Ge) {
            let fwd = if op == CmpOp::Le { CmpOp::Le } else { CmpOp::Ge };
            for (x, fop, y) in &self.hyps.facts {
                let mid = if x == a && cmp_implies(*fop, fwd) {
                    Some(y)
                } else if y == a && cmp_implies(fop.flip(), fwd) {
                    Some(x)
                } else {
                    None
                };
                if let Some(mid) = mid {
                    if mid != a && self.decide_facts_only(mid, fwd, b) == Some(true) {
                        return Some(true);
                    }
                }
            }
        }
        // Boolean term equality: (x) = (y) where both decide.
        if matches!(op, CmpOp::Eq) {
            if let (Some(x), Some(y)) = (self.decide_bool(a), self.decide_bool(b)) {
                return Some(x == y);
            }
        }
        None
    }

    /// Fact-table-only decision (no derived rules) — used as the second hop
    /// of the transitivity check to keep recursion bounded.
    fn decide_facts_only(&self, a: &ScalT, op: CmpOp, b: &ScalT) -> Option<bool> {
        if let (ScalT::Const(x), ScalT::Const(y)) = (a, b) {
            return Some(op.test(x.total_cmp(y)));
        }
        if a == b {
            return Some(matches!(op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge));
        }
        for (x, fop, y) in &self.hyps.facts {
            if x == a && y == b && cmp_implies(*fop, op) {
                return Some(true);
            }
            if x == b && y == a && cmp_implies(fop.flip(), op) {
                return Some(true);
            }
        }
        None
    }

    /// The integer constant a term is pinned to by the facts, if any.
    fn const_of(&self, t: &ScalT) -> Option<i64> {
        if let ScalT::Const(Value::Int(i)) = t {
            return Some(*i);
        }
        for (x, fop, y) in &self.hyps.facts {
            if x == t && *fop == CmpOp::Eq {
                if let ScalT::Const(Value::Int(i)) = y {
                    return Some(*i);
                }
            }
            if y == t && *fop == CmpOp::Eq {
                if let ScalT::Const(Value::Int(i)) = x {
                    return Some(*i);
                }
            }
        }
        // a ≤ c ∧ a ≥ c pins a to c.
        for (x, fop, y) in &self.hyps.facts {
            let c = match (x == t, y == t) {
                (true, _) => {
                    if let ScalT::Const(Value::Int(i)) = y {
                        Some((*i, *fop))
                    } else {
                        None
                    }
                }
                (_, true) => {
                    if let ScalT::Const(Value::Int(i)) = x {
                        Some((*i, fop.flip()))
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some((c, o)) = c {
                if cmp_implies(o, CmpOp::Le)
                    && self.decide_facts_only(t, CmpOp::Ge, &ScalT::int(c)) == Some(true)
                {
                    return Some(c);
                }
                if cmp_implies(o, CmpOp::Ge)
                    && self.decide_facts_only(t, CmpOp::Le, &ScalT::int(c)) == Some(true)
                {
                    return Some(c);
                }
            }
        }
        None
    }

    /// Tries to decide a boolean-valued scalar term.
    fn decide_bool(&self, t: &ScalT) -> Option<bool> {
        match t {
            ScalT::Const(Value::Bool(b)) => Some(*b),
            ScalT::Cmp(a, op, b) => self.decide(a, *op, b),
            ScalT::NotT(x) => self.decide_bool(x).map(|b| !b),
            ScalT::ContainsT(_, rel) if matches!(**rel, RelT::Empty) => Some(false),
            other => {
                for (fact, truth) in &self.hyps.bool_facts {
                    if fact == other {
                        return Some(*truth);
                    }
                }
                None
            }
        }
    }

    // ---------- record helpers ----------

    /// The qualified field list of a record term, when its schema is known.
    fn rec_fields(&self, r: &RecT) -> Option<Vec<qbs_common::Field>> {
        match r {
            RecT::Get(rel, _) => self.rel_fields(rel),
            RecT::Pair(a, b) => {
                let mut f = self.rec_fields(a)?;
                f.extend(self.rec_fields(b)?);
                Some(f)
            }
            RecT::Lit(_) | RecT::ProjRec(..) => None,
        }
    }

    fn rel_fields(&self, r: &RelT) -> Option<Vec<qbs_common::Field>> {
        match r {
            RelT::Base(v) => match self.tenv.get(v) {
                Some(TorType::Rel(s)) => {
                    // Unqualified fields are attributed to the backing table
                    // (the schema name) when known, matching the qualifiers
                    // the synthesizer puts on join projections.
                    let q = s.name().cloned().unwrap_or_else(|| v.clone());
                    Some(
                        s.fields()
                            .iter()
                            .map(|f| {
                                let mut f = f.clone();
                                if f.qualifier.is_none() {
                                    f.qualifier = Some(q.clone());
                                }
                                f
                            })
                            .collect(),
                    )
                }
                _ => None,
            },
            RelT::Top(inner, _)
            | RelT::Select(_, inner)
            | RelT::Sort(_, inner)
            | RelT::Unique(inner) => self.rel_fields(inner),
            RelT::Cat(a, _) => self.rel_fields(a),
            RelT::Single(rec) => self.rec_fields(rec),
            RelT::Join(_, a, b) => {
                let mut f = self.rel_fields(a)?;
                f.extend(self.rel_fields(b)?);
                Some(f)
            }
            RelT::Proj(l, inner) => {
                let base = self.rel_fields(inner)?;
                let mut out = Vec::with_capacity(l.len());
                for fref in l {
                    let idx = resolve_field(&base, fref)?;
                    out.push(base[idx].clone());
                }
                Some(out)
            }
            RelT::Empty => None,
        }
    }

    /// Field access on a record term, resolved through pairs.
    fn field_of(&self, rec: &RecT, fref: &qbs_common::FieldRef) -> ScalT {
        match rec {
            RecT::Pair(a, b) => {
                if let Some(fa) = self.rec_fields(a) {
                    if resolve_field(&fa, fref).is_some() {
                        return self.field_of(a, fref);
                    }
                }
                if let Some(fb) = self.rec_fields(b) {
                    if resolve_field(&fb, fref).is_some() {
                        return self.field_of(b, fref);
                    }
                }
                ScalT::Field(Box::new(rec.clone()), fref.clone())
            }
            RecT::Lit(fields) => {
                for (n, v) in fields {
                    if *n == fref.name {
                        return v.clone();
                    }
                }
                ScalT::Field(Box::new(rec.clone()), fref.clone())
            }
            _ => ScalT::Field(Box::new(rec.clone()), fref.clone()),
        }
    }

    /// Canonical record form: `ProjRec` is expanded into a `Lit` of resolved
    /// field terms; a `Lit` that spells out *all* fields of an underlying
    /// record in order eta-contracts back to that record.
    fn normalize_rec(&self, rec: &RecT) -> RecT {
        match rec {
            RecT::Get(rel, i) => {
                RecT::Get(Box::new(self.normalize_rel(rel)), self.normalize_scal(i))
            }
            RecT::Pair(a, b) => {
                RecT::Pair(Box::new(self.normalize_rec(a)), Box::new(self.normalize_rec(b)))
            }
            RecT::ProjRec(l, inner) => {
                let inner = self.normalize_rec(inner);
                let lit = RecT::Lit(
                    l.iter()
                        .map(|fref| {
                            (
                                fref.name.clone(),
                                self.normalize_scal(&self.field_of(&inner, fref)),
                            )
                        })
                        .collect(),
                );
                self.canonical_lit(self.eta_contract(lit))
            }
            RecT::Lit(fields) => self.canonical_lit(self.eta_contract(RecT::Lit(
                fields.iter().map(|(n, v)| (n.clone(), self.normalize_scal(v))).collect(),
            ))),
        }
    }

    /// Record literals compare by field *values* in order (the runtime
    /// semantics ignores the names a literal happens to carry), so the
    /// canonical form renames literal fields positionally.
    fn canonical_lit(&self, rec: RecT) -> RecT {
        match rec {
            RecT::Lit(fields) => RecT::Lit(
                fields
                    .into_iter()
                    .enumerate()
                    .map(|(k, (_, v))| (qbs_common::Ident::new(format!("_{k}")), v))
                    .collect(),
            ),
            other => other,
        }
    }

    /// `{f1 = x.f1, …, fn = x.fn}` over all fields of `x` (in order) is `x`.
    fn eta_contract(&self, lit: RecT) -> RecT {
        let RecT::Lit(fields) = &lit else { return lit };
        // All values must be fields of one and the same record term.
        let mut base: Option<&RecT> = None;
        let mut refs = Vec::with_capacity(fields.len());
        for (_, v) in fields {
            match v {
                ScalT::Field(r, fref) => {
                    match base {
                        None => base = Some(r),
                        Some(b) if *b == **r => {}
                        _ => return lit.clone(),
                    }
                    refs.push(fref.clone());
                }
                _ => return lit.clone(),
            }
        }
        let Some(base) = base else { return lit };
        let Some(all) = self.rec_fields(base) else { return lit.clone() };
        if all.len() != refs.len() {
            return lit.clone();
        }
        for (k, fref) in refs.iter().enumerate() {
            match resolve_field(&all, fref) {
                Some(idx) if idx == k => {}
                _ => return lit.clone(),
            }
        }
        base.clone()
    }

    // ---------- predicate truth under hypotheses ----------

    fn pred_truth(&self, p: &Pred, rec: &RecT) -> Option<bool> {
        let mut all_true = true;
        for atom in p.atoms() {
            match atom {
                PredAtom::Cmp { lhs, op, rhs } => {
                    let l = self.normalize_scal(&self.field_of(rec, lhs));
                    let r = match rhs {
                        Operand::Const(v) => ScalT::Const(v.clone()),
                        Operand::Field(fr) => self.normalize_scal(&self.field_of(rec, fr)),
                        Operand::Param(v) => ScalT::Var(v.clone()),
                    };
                    match self.decide(&l, *op, &r) {
                        Some(true) => {}
                        Some(false) => return Some(false),
                        None => all_true = false,
                    }
                }
                PredAtom::Contains { probe, rel } => {
                    let rel_e = self.hyps.apply_defs(rel);
                    let Ok(rt) = rel_term(&rel_e) else { return None };
                    let rt = self.normalize_rel(&rt);
                    let probe_t = match probe {
                        Probe::Record => ScalOrRec::Rec(rec.clone()),
                        Probe::Field(fr) => {
                            ScalOrRec::Scal(self.normalize_scal(&self.field_of(rec, fr)))
                        }
                    };
                    let t = ScalT::ContainsT(Box::new(probe_t), Box::new(rt));
                    match self.decide_bool(&t) {
                        Some(true) => {}
                        Some(false) => return Some(false),
                        None => all_true = false,
                    }
                }
            }
        }
        if all_true {
            Some(true)
        } else {
            None
        }
    }

    fn join_truth(&self, p: &JoinPred, x: &RecT, y: &RecT) -> Option<bool> {
        let mut all_true = true;
        for atom in p.atoms() {
            let l = self.normalize_scal(&self.field_of(x, &atom.left));
            let r = self.normalize_scal(&self.field_of(y, &atom.right));
            match self.decide(&l, atom.op, &r) {
                Some(true) => {}
                Some(false) => return Some(false),
                None => all_true = false,
            }
        }
        if all_true {
            Some(true)
        } else {
            None
        }
    }

    // ---------- relation normalization ----------

    fn normalize_rel(&self, t: &RelT) -> RelT {
        let mut cur = t.clone();
        for _ in 0..64 {
            let next = self.step_rel(&cur);
            if next == cur {
                break;
            }
            cur = next;
        }
        cur
    }

    fn step_rel(&self, t: &RelT) -> RelT {
        use RelT::*;
        match t {
            Empty | Base(_) => t.clone(),
            Single(r) => Single(self.normalize_rec(r)),
            Cat(a, b) => {
                let a = self.step_rel(a);
                let b = self.step_rel(b);
                match (a, b) {
                    (Empty, x) | (x, Empty) => x,
                    // Right-nest.
                    (Cat(x, y), z) => Cat(x, Box::new(Cat(y, Box::new(z)))),
                    (x, y) => Cat(Box::new(x), Box::new(y)),
                }
            }
            Top(r, i) => {
                let r = self.step_rel(r);
                let i = self.normalize_scal(i);
                if i.is_int(0) {
                    return Empty;
                }
                // Decide size comparisons against both the raw and the
                // normalized size term (e.g. size(sort(x)) = size(x)).
                let raw_sz = ScalT::Size(Box::new(r.clone()));
                let norm_sz = self.normalize_scal(&raw_sz);
                let ge_size = self.decide(&i, CmpOp::Ge, &raw_sz) == Some(true)
                    || self.decide(&i, CmpOp::Ge, &norm_sz) == Some(true);
                // top_i(r) = r when i ≥ size(r).
                if ge_size {
                    return r;
                }
                // top_{j+1}(r) = cat(top_j(r), [get_j(r)]) when j < size(r).
                if let ScalT::Add(j, one) = &i {
                    if one.is_int(1)
                        && (self.decide(j, CmpOp::Lt, &raw_sz) == Some(true)
                            || self.decide(j, CmpOp::Lt, &norm_sz) == Some(true))
                    {
                        return Cat(
                            Box::new(Top(Box::new(r.clone()), (**j).clone())),
                            Box::new(Single(RecT::Get(Box::new(r), (**j).clone()))),
                        );
                    }
                }
                Top(Box::new(r), i)
            }
            Select(p, r) => {
                let r = self.step_rel(r);
                match r {
                    Empty => Empty,
                    Cat(a, b) => {
                        Cat(Box::new(Select(p.clone(), a)), Box::new(Select(p.clone(), b)))
                    }
                    Single(rec) => match self.pred_truth(p, &rec) {
                        Some(true) => Single(rec),
                        Some(false) => Empty,
                        None => Select(p.clone(), Box::new(Single(rec))),
                    },
                    other => Select(p.clone(), Box::new(other)),
                }
            }
            Proj(l, r) => {
                let r = self.step_rel(r);
                match r {
                    Empty => Empty,
                    Cat(a, b) => {
                        Cat(Box::new(Proj(l.clone(), a)), Box::new(Proj(l.clone(), b)))
                    }
                    Single(rec) => {
                        Single(self.normalize_rec(&RecT::ProjRec(l.clone(), Box::new(rec))))
                    }
                    other => Proj(l.clone(), Box::new(other)),
                }
            }
            Join(p, a, b) => {
                let a = self.step_rel(a);
                let b = self.step_rel(b);
                match (a, b) {
                    (Empty, _) | (_, Empty) => Empty,
                    (Cat(x, y), r) => Cat(
                        Box::new(Join(p.clone(), x, Box::new(r.clone()))),
                        Box::new(Join(p.clone(), y, Box::new(r))),
                    ),
                    (Single(x), Cat(u, v)) => Cat(
                        Box::new(Join(p.clone(), Box::new(Single(x.clone())), u)),
                        Box::new(Join(p.clone(), Box::new(Single(x)), v)),
                    ),
                    (Single(x), Single(y)) => match self.join_truth(p, &x, &y) {
                        Some(true) => Single(RecT::Pair(Box::new(x), Box::new(y))),
                        Some(false) => Empty,
                        None => Join(p.clone(), Box::new(Single(x)), Box::new(Single(y))),
                    },
                    (x, y) => Join(p.clone(), Box::new(x), Box::new(y)),
                }
            }
            Sort(l, r) => {
                let r = self.step_rel(r);
                if r == Empty {
                    Empty
                } else {
                    Sort(l.clone(), Box::new(r))
                }
            }
            Unique(r) => {
                let r = self.step_rel(r);
                if r == Empty {
                    Empty
                } else {
                    Unique(Box::new(r))
                }
            }
        }
    }

    // ---------- scalar normalization ----------

    fn normalize_scal(&self, t: &ScalT) -> ScalT {
        let mut cur = t.clone();
        for _ in 0..64 {
            let next = self.step_scal(&cur);
            if next == cur {
                break;
            }
            cur = next;
        }
        cur
    }

    /// The single-column value carried by a record term (used by aggregate
    /// unfolding over single-column relations).
    fn single_value(&self, rec: &RecT) -> Option<ScalT> {
        match rec {
            RecT::Lit(fields) if fields.len() == 1 => Some(fields[0].1.clone()),
            RecT::ProjRec(l, inner) if l.len() == 1 => Some(self.field_of(inner, &l[0])),
            _ => None,
        }
    }

    fn step_scal(&self, t: &ScalT) -> ScalT {
        use ScalT::*;
        match t {
            Const(_) => t.clone(),
            Var(_) => match self.const_of(t) {
                Some(c) => ScalT::int(c),
                None => t.clone(),
            },
            Add(a, b) => {
                let a = self.step_scal(a);
                let b = self.step_scal(b);
                match (&a, &b) {
                    (Const(Value::Int(x)), Const(Value::Int(y))) => ScalT::int(x + y),
                    (x, c) if c.is_int(0) => x.clone(),
                    (c, x) if c.is_int(0) => x.clone(),
                    _ => Add(Box::new(a), Box::new(b)),
                }
            }
            Sub(a, b) => {
                let a = self.step_scal(a);
                let b = self.step_scal(b);
                match (&a, &b) {
                    (Const(Value::Int(x)), Const(Value::Int(y))) => ScalT::int(x - y),
                    (x, c) if c.is_int(0) => x.clone(),
                    _ => Sub(Box::new(a), Box::new(b)),
                }
            }
            Size(r) => {
                let r = self.normalize_rel(r);
                match r {
                    RelT::Empty => ScalT::int(0),
                    RelT::Single(_) => ScalT::int(1),
                    RelT::Cat(a, b) => {
                        self.step_scal(&Add(Box::new(Size(a)), Box::new(Size(b))))
                    }
                    RelT::Top(inner, i) => {
                        // size(top_i(r)) = i when 0 ≤ i ≤ size(r).
                        let sz = Size(inner.clone());
                        if self.nonneg(&i) && self.decide(&i, CmpOp::Le, &sz) == Some(true) {
                            i
                        } else {
                            Size(Box::new(RelT::Top(inner, i)))
                        }
                    }
                    RelT::Sort(_, inner) => Size(inner),
                    other => Size(Box::new(other)),
                }
            }
            Field(rec, fref) => {
                let rec = self.normalize_rec(rec);
                self.field_of(&rec, fref)
            }
            Agg(kind, r) => {
                let r = self.normalize_rel(r);
                if *kind == AggKind::Count {
                    return self.step_scal(&Size(Box::new(r)));
                }
                match &r {
                    RelT::Empty => match kind {
                        AggKind::Sum => ScalT::int(0),
                        AggKind::Max => ScalT::int(i64::MIN),
                        AggKind::Min => ScalT::int(i64::MAX),
                        AggKind::Count => unreachable!("handled above"),
                    },
                    RelT::Single(rec) => match self.single_value(rec) {
                        Some(v) => v,
                        None => Agg(*kind, Box::new(r.clone())),
                    },
                    RelT::Cat(a, b) => {
                        // Right-nested: b is a single or further cat; handle
                        // cat(a, [x]).
                        if let RelT::Single(rec) = &**b {
                            if let Some(v) = self.single_value(rec) {
                                let rest = Agg(*kind, a.clone());
                                let rest_n = self.normalize_scal(&rest);
                                return match kind {
                                    AggKind::Sum => {
                                        self.step_scal(&Add(Box::new(rest_n), Box::new(v)))
                                    }
                                    AggKind::Max => match self.decide(&v, CmpOp::Gt, &rest_n) {
                                        Some(true) => v,
                                        Some(false) => rest_n,
                                        None => Agg(*kind, Box::new(r.clone())),
                                    },
                                    AggKind::Min => match self.decide(&v, CmpOp::Lt, &rest_n) {
                                        Some(true) => v,
                                        Some(false) => rest_n,
                                        None => Agg(*kind, Box::new(r.clone())),
                                    },
                                    AggKind::Count => unreachable!("handled above"),
                                };
                            }
                        }
                        Agg(*kind, Box::new(r.clone()))
                    }
                    _ => Agg(*kind, Box::new(r.clone())),
                }
            }
            Cmp(a, op, b) => {
                let a = self.step_scal(a);
                let b = self.step_scal(b);
                match self.decide(&a, *op, &b) {
                    Some(v) => Const(Value::from(v)),
                    None => Cmp(Box::new(a), *op, Box::new(b)),
                }
            }
            ContainsT(p, r) => {
                let r = self.normalize_rel(r);
                let p = match &**p {
                    ScalOrRec::Scal(s) => ScalOrRec::Scal(self.normalize_scal(s)),
                    ScalOrRec::Rec(rec) => ScalOrRec::Rec(self.normalize_rec(rec)),
                };
                if r == RelT::Empty {
                    return Const(Value::from(false));
                }
                ContainsT(Box::new(p), Box::new(r))
            }
            NotT(x) => {
                let x = self.step_scal(x);
                match x {
                    Const(Value::Bool(b)) => Const(Value::from(!b)),
                    other => NotT(Box::new(other)),
                }
            }
        }
    }

    // ---------- formula proof ----------

    fn collect_hyp(&mut self, f: &Formula) {
        match f {
            Formula::And(ps) => {
                for p in ps {
                    self.collect_hyp(p);
                }
            }
            Formula::RelEq(TorExpr::Var(v), e) => {
                self.hyps.add_def(v.clone(), e.clone());
            }
            Formula::RelEq(e, TorExpr::Var(v)) => {
                self.hyps.add_def(v.clone(), e.clone());
            }
            Formula::Atom(e) => self.collect_atom(e, true),
            Formula::Not(inner) => {
                if let Formula::Atom(e) = &**inner {
                    self.collect_atom(e, false);
                }
            }
            _ => {}
        }
    }

    fn collect_atom(&mut self, e: &TorExpr, truth: bool) {
        let e = self.hyps.apply_defs(e);
        match &e {
            TorExpr::Binary(qbs_tor::BinOp::Cmp(CmpOp::Eq), a, b) if truth => {
                // Record the equality as a fact either way — predicate
                // parameters (`Operand::Param`) query it with the variable
                // still in place.
                if let (Ok(x), Ok(y)) = (scal_term(a), scal_term(b)) {
                    let x = self.normalize_scal(&x);
                    let y = self.normalize_scal(&y);
                    self.hyps.add_fact(x, CmpOp::Eq, y);
                }
                // And as a scalar definition when one side is a variable.
                if let TorExpr::Var(v) = &**a {
                    self.hyps.add_def(v.clone(), (**b).clone());
                } else if let TorExpr::Var(v) = &**b {
                    self.hyps.add_def(v.clone(), (**a).clone());
                }
            }
            TorExpr::Binary(qbs_tor::BinOp::Cmp(op), a, b) => {
                if let (Ok(x), Ok(y)) = (scal_term(a), scal_term(b)) {
                    let x = self.normalize_scal(&x);
                    let y = self.normalize_scal(&y);
                    let op = if truth { *op } else { op.negate() };
                    self.hyps.add_fact(x, op, y);
                }
            }
            TorExpr::Binary(qbs_tor::BinOp::And, a, b) if truth => {
                self.collect_atom(a, true);
                self.collect_atom(b, true);
            }
            TorExpr::Not(x) => self.collect_atom(x, !truth),
            TorExpr::Contains(..) => {
                if let Ok(t) = scal_term(&e) {
                    let t = self.normalize_scal(&t);
                    self.hyps.add_bool_fact(t, truth);
                }
            }
            _ => {
                if let Ok(t) = scal_term(&e) {
                    let t = self.normalize_scal(&t);
                    self.hyps.add_bool_fact(t, truth);
                }
            }
        }
    }

    fn prove_formula(&mut self, f: &Formula) -> ProofResult {
        match f {
            Formula::True => ProofResult::Proved,
            Formula::False => ProofResult::Unknown("conclusion is false".into()),
            Formula::And(ps) => {
                for p in ps {
                    let r = self.prove_formula(p);
                    if !r.is_proved() {
                        return r;
                    }
                }
                ProofResult::Proved
            }
            Formula::Or(ps) => {
                let mut last = ProofResult::Unknown("empty disjunction".into());
                for p in ps {
                    let mut sub = Prover { hyps: self.hyps.clone(), tenv: self.tenv };
                    last = sub.prove_formula(p);
                    if last.is_proved() {
                        return last;
                    }
                }
                last
            }
            Formula::Implies(h, c) => {
                // Case split: each ¬(a ∧ b) hypothesis (a negated compound
                // loop guard) becomes the cases ¬a and ¬b; the conclusion
                // must hold in every case.
                for variant in split_cases(h, 2) {
                    let mut sub = Prover { hyps: self.hyps.clone(), tenv: self.tenv };
                    sub.collect_hyp(&variant);
                    // A contradictory hypothesis set proves this case.
                    if sub.hyp_contradiction() {
                        continue;
                    }
                    let r = sub.prove_formula(c);
                    if !r.is_proved() {
                        return r;
                    }
                }
                ProofResult::Proved
            }
            Formula::Not(inner) => match &**inner {
                Formula::Atom(e) => {
                    let e = self.hyps.apply_defs(e);
                    match scal_term(&e) {
                        Ok(t) => {
                            let t = self.normalize_scal(&t);
                            match self.decide_bool(&t) {
                                Some(false) => ProofResult::Proved,
                                Some(true) => {
                                    ProofResult::Unknown(format!("`{t}` is true, not false"))
                                }
                                None => ProofResult::Unknown(format!("cannot decide ¬({t})")),
                            }
                        }
                        Err(e) => ProofResult::Unknown(e.to_string()),
                    }
                }
                _ => ProofResult::Unknown("negation of a non-atom".into()),
            },
            Formula::Atom(e) => {
                let e = self.hyps.apply_defs(e);
                match scal_term(&e) {
                    Ok(t) => {
                        let t = self.normalize_scal(&t);
                        match self.decide_bool(&t) {
                            Some(true) => ProofResult::Proved,
                            Some(false) => ProofResult::Unknown(format!("atom `{t}` is false")),
                            None => ProofResult::Unknown(format!("cannot decide `{t}`")),
                        }
                    }
                    Err(e) => ProofResult::Unknown(e.to_string()),
                }
            }
            Formula::RelEq(a, b) => {
                let a = self.hyps.apply_defs(a);
                let b = self.hyps.apply_defs(b);
                match (rel_term(&a), rel_term(&b)) {
                    (Ok(x), Ok(y)) => {
                        let x = self.normalize_rel(&x);
                        let y = self.normalize_rel(&y);
                        if segments(&x) == segments(&y) {
                            ProofResult::Proved
                        } else {
                            ProofResult::Unknown(format!("normal forms differ: `{x}` vs `{y}`"))
                        }
                    }
                    (Err(e), _) | (_, Err(e)) => ProofResult::Unknown(e.to_string()),
                }
            }
            Formula::Unknown(..) => {
                ProofResult::Unknown("unfilled unknown predicate in conclusion".into())
            }
        }
    }

    /// Detects directly contradictory hypotheses (e.g. `i < size` and
    /// `i ≥ size` in an unreachable branch).
    fn hyp_contradiction(&self) -> bool {
        for (a, op, b) in &self.hyps.facts {
            // Use only the *other* facts to decide, to avoid the fact
            // trivially validating itself.
            let others: Vec<_> = self
                .hyps
                .facts
                .iter()
                .filter(|f| (&f.0, &f.1, &f.2) != (a, op, b))
                .cloned()
                .collect();
            let sub = Prover {
                hyps: Hyps {
                    defs: Vec::new(),
                    facts: others,
                    bool_facts: self.hyps.bool_facts.clone(),
                },
                tenv: self.tenv,
            };
            if sub.decide(a, *op, b) == Some(false) {
                return true;
            }
        }
        false
    }
}

/// Resolves a field reference against a qualified field list.
fn resolve_field(fields: &[qbs_common::Field], fref: &qbs_common::FieldRef) -> Option<usize> {
    let mut found = None;
    for (i, f) in fields.iter().enumerate() {
        if f.matches(fref) {
            if found.is_some() {
                return None;
            }
            found = Some(i);
        }
    }
    found
}

/// Flattens a normalized relation term into its segment list for comparison.
fn segments(t: &RelT) -> Vec<RelT> {
    let mut out = Vec::new();
    fn walk(t: &RelT, out: &mut Vec<RelT>) {
        match t {
            RelT::Cat(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            RelT::Empty => {}
            other => out.push(other.clone()),
        }
    }
    walk(t, &mut out);
    out
}

/// Expands `¬(a ∧ b)` hypotheses into the case list `[¬a, ¬b]`, returning
/// every variant of the hypothesis (cartesian over at most `depth` splits).
fn split_cases(h: &Formula, depth: usize) -> Vec<Formula> {
    if depth == 0 {
        return vec![h.clone()];
    }
    // Find one splittable conjunct.
    fn split_one(f: &Formula) -> Option<Vec<Formula>> {
        match f {
            Formula::Not(inner) => {
                if let Formula::Atom(TorExpr::Binary(qbs_tor::BinOp::And, a, b)) = &**inner {
                    return Some(vec![
                        Formula::Not(Box::new(Formula::Atom((**a).clone()))),
                        Formula::Not(Box::new(Formula::Atom((**b).clone()))),
                    ]);
                }
                None
            }
            Formula::And(parts) => {
                for (k, p) in parts.iter().enumerate() {
                    if let Some(variants) = split_one(p) {
                        return Some(
                            variants
                                .into_iter()
                                .map(|v| {
                                    let mut ps = parts.clone();
                                    ps[k] = v;
                                    Formula::And(ps)
                                })
                                .collect(),
                        );
                    }
                }
                None
            }
            _ => None,
        }
    }
    match split_one(h) {
        None => vec![h.clone()],
        Some(variants) => {
            variants.into_iter().flat_map(|v| split_cases(&v, depth - 1)).collect()
        }
    }
}

/// Substitutes the candidate bodies for every unknown application.
fn instantiate(f: &Formula, candidate: &Candidate, unknowns: &[UnknownInfo]) -> Formula {
    match f {
        Formula::Unknown(id, args) => candidate
            .instantiate(&unknowns[id.0], args)
            .map(|body| instantiate(&body, candidate, unknowns))
            .unwrap_or(Formula::True),
        Formula::And(ps) => {
            Formula::And(ps.iter().map(|p| instantiate(p, candidate, unknowns)).collect())
        }
        Formula::Or(ps) => {
            Formula::Or(ps.iter().map(|p| instantiate(p, candidate, unknowns)).collect())
        }
        Formula::Not(x) => Formula::Not(Box::new(instantiate(x, candidate, unknowns))),
        Formula::Implies(h, c) => Formula::Implies(
            Box::new(instantiate(h, candidate, unknowns)),
            Box::new(instantiate(c, candidate, unknowns)),
        ),
        other => other.clone(),
    }
}

/// Attempts a symbolic proof of one verification condition under a candidate
/// assignment.
///
/// `tenv` supplies the schemas of source relations (needed to eta-contract
/// full projections and resolve fields through join pairs).
///
/// A [`ProofResult::Proved`] certifies validity for all stores; `Unknown`
/// is *not* a refutation — the pipeline falls back to extended bounded
/// checking, as the paper falls back on prover timeout (Sec. 5).
pub fn prove(
    vc: &Formula,
    candidate: &Candidate,
    unknowns: &[UnknownInfo],
    tenv: &TypeEnv,
) -> ProofResult {
    let concrete = instantiate(vc, candidate, unknowns);
    let mut prover = Prover { hyps: Hyps::default(), tenv };
    prover.prove_formula(&concrete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_common::{FieldType, Schema};
    use qbs_tor::Operand;

    fn tenv() -> TypeEnv {
        let users = Schema::builder("users")
            .field("id", FieldType::Int)
            .field("roleId", FieldType::Int)
            .finish();
        let roles = Schema::builder("roles")
            .field("roleId", FieldType::Int)
            .field("label", FieldType::Str)
            .finish();
        let mut t = TypeEnv::new();
        t.bind_rel("users", users.clone());
        t.bind_rel("roles", roles);
        t.bind_int("i");
        t.bind_int("j");
        t
    }

    fn sel_pred() -> Pred {
        Pred::truth().and_cmp("roleId".into(), CmpOp::Eq, Operand::Const(1.into()))
    }

    /// σφ(top_0(users)) = [] — the entry condition of a selection loop.
    #[test]
    fn proves_entry_condition() {
        let vc = Formula::RelEq(
            TorExpr::EmptyList,
            TorExpr::select(sel_pred(), TorExpr::top(TorExpr::var("users"), TorExpr::int(0))),
        );
        let r = prove(&vc, &Candidate::new(), &[], &tenv());
        assert!(r.is_proved(), "{r:?}");
    }

    /// Preservation, matching branch: given out = σφ(top_i(users)),
    /// i < size(users), and φ(users[i]), show
    /// append(out, users[i]) = σφ(top_{i+1}(users)).
    #[test]
    fn proves_selection_preservation_true_branch() {
        let hyp = Formula::And(vec![
            Formula::RelEq(
                TorExpr::var("out"),
                TorExpr::select(
                    sel_pred(),
                    TorExpr::top(TorExpr::var("users"), TorExpr::var("i")),
                ),
            ),
            Formula::Atom(TorExpr::cmp(
                CmpOp::Lt,
                TorExpr::var("i"),
                TorExpr::size(TorExpr::var("users")),
            )),
            Formula::Atom(TorExpr::cmp(
                CmpOp::Eq,
                TorExpr::field(
                    TorExpr::get(TorExpr::var("users"), TorExpr::var("i")),
                    "roleId",
                ),
                TorExpr::int(1),
            )),
        ]);
        let concl = Formula::RelEq(
            TorExpr::append(
                TorExpr::var("out"),
                TorExpr::get(TorExpr::var("users"), TorExpr::var("i")),
            ),
            TorExpr::select(
                sel_pred(),
                TorExpr::top(
                    TorExpr::var("users"),
                    TorExpr::add(TorExpr::var("i"), TorExpr::int(1)),
                ),
            ),
        );
        let vc = Formula::Implies(Box::new(hyp), Box::new(concl));
        let r = prove(&vc, &Candidate::new(), &[], &tenv());
        assert!(r.is_proved(), "{r:?}");
    }

    /// Preservation, non-matching branch: out unchanged.
    #[test]
    fn proves_selection_preservation_false_branch() {
        let hyp = Formula::And(vec![
            Formula::RelEq(
                TorExpr::var("out"),
                TorExpr::select(
                    sel_pred(),
                    TorExpr::top(TorExpr::var("users"), TorExpr::var("i")),
                ),
            ),
            Formula::Atom(TorExpr::cmp(
                CmpOp::Lt,
                TorExpr::var("i"),
                TorExpr::size(TorExpr::var("users")),
            )),
            Formula::Not(Box::new(Formula::Atom(TorExpr::cmp(
                CmpOp::Eq,
                TorExpr::field(
                    TorExpr::get(TorExpr::var("users"), TorExpr::var("i")),
                    "roleId",
                ),
                TorExpr::int(1),
            )))),
        ]);
        let concl = Formula::RelEq(
            TorExpr::var("out"),
            TorExpr::select(
                sel_pred(),
                TorExpr::top(
                    TorExpr::var("users"),
                    TorExpr::add(TorExpr::var("i"), TorExpr::int(1)),
                ),
            ),
        );
        let vc = Formula::Implies(Box::new(hyp), Box::new(concl));
        let r = prove(&vc, &Candidate::new(), &[], &tenv());
        assert!(r.is_proved(), "{r:?}");
    }

    /// Exit: i ≤ size ∧ ¬(i < size) ⟹ σφ(top_i(users)) = σφ(users).
    #[test]
    fn proves_selection_exit() {
        let hyp = Formula::And(vec![
            Formula::RelEq(
                TorExpr::var("out"),
                TorExpr::select(
                    sel_pred(),
                    TorExpr::top(TorExpr::var("users"), TorExpr::var("i")),
                ),
            ),
            Formula::Atom(TorExpr::cmp(
                CmpOp::Le,
                TorExpr::var("i"),
                TorExpr::size(TorExpr::var("users")),
            )),
            Formula::Not(Box::new(Formula::Atom(TorExpr::cmp(
                CmpOp::Lt,
                TorExpr::var("i"),
                TorExpr::size(TorExpr::var("users")),
            )))),
        ]);
        let concl = Formula::RelEq(
            TorExpr::var("out"),
            TorExpr::select(sel_pred(), TorExpr::var("users")),
        );
        let vc = Formula::Implies(Box::new(hyp), Box::new(concl));
        let r = prove(&vc, &Candidate::new(), &[], &tenv());
        assert!(r.is_proved(), "{r:?}");
    }

    /// A wrong equality is not proved.
    #[test]
    fn does_not_prove_wrong_equality() {
        let vc = Formula::RelEq(TorExpr::var("users"), TorExpr::var("roles"));
        let r = prove(&vc, &Candidate::new(), &[], &tenv());
        assert!(!r.is_proved());
    }

    /// Projection eta-contraction: π over all user fields of the join pair
    /// collapses to the user record.
    #[test]
    fn proves_join_projection_eta() {
        use qbs_tor::JoinPred;
        // append(out, users[i]) = out ++ [π_ℓ(pair)] where ℓ = all user
        // fields — i.e. π_ℓ(⋈′(users[i], roles)) appends projected pairs that
        // eta-contract to the user record when the join predicate holds.
        let hyp = Formula::And(vec![
            Formula::Atom(TorExpr::cmp(
                CmpOp::Lt,
                TorExpr::var("j"),
                TorExpr::size(TorExpr::var("roles")),
            )),
            Formula::Atom(TorExpr::cmp(
                CmpOp::Eq,
                TorExpr::field(
                    TorExpr::get(TorExpr::var("users"), TorExpr::var("i")),
                    "roleId",
                ),
                TorExpr::field(
                    TorExpr::get(TorExpr::var("roles"), TorExpr::var("j")),
                    "roleId",
                ),
            )),
        ]);
        let proj_fields = vec!["users.id".into(), "users.roleId".into()];
        let lhs = TorExpr::append(
            TorExpr::proj(
                proj_fields.clone(),
                TorExpr::join(
                    JoinPred::eq("roleId", "roleId"),
                    TorExpr::get(TorExpr::var("users"), TorExpr::var("i")),
                    TorExpr::top(TorExpr::var("roles"), TorExpr::var("j")),
                ),
            ),
            TorExpr::get(TorExpr::var("users"), TorExpr::var("i")),
        );
        let rhs = TorExpr::proj(
            proj_fields,
            TorExpr::join(
                JoinPred::eq("roleId", "roleId"),
                TorExpr::get(TorExpr::var("users"), TorExpr::var("i")),
                TorExpr::top(
                    TorExpr::var("roles"),
                    TorExpr::add(TorExpr::var("j"), TorExpr::int(1)),
                ),
            ),
        );
        let vc = Formula::Implies(Box::new(hyp), Box::new(Formula::RelEq(lhs, rhs)));
        let r = prove(&vc, &Candidate::new(), &[], &tenv());
        assert!(r.is_proved(), "{r:?}");
    }

    /// Aggregate preservation: c = size(σφ(top_i)) and a matching row imply
    /// c + 1 = size(σφ(top_{i+1})).
    #[test]
    fn proves_count_preservation() {
        let hyp = Formula::And(vec![
            Formula::Atom(TorExpr::cmp(
                CmpOp::Eq,
                TorExpr::var("c"),
                TorExpr::agg(
                    AggKind::Count,
                    TorExpr::select(
                        sel_pred(),
                        TorExpr::top(TorExpr::var("users"), TorExpr::var("i")),
                    ),
                ),
            )),
            Formula::Atom(TorExpr::cmp(
                CmpOp::Lt,
                TorExpr::var("i"),
                TorExpr::size(TorExpr::var("users")),
            )),
            Formula::Atom(TorExpr::cmp(
                CmpOp::Eq,
                TorExpr::field(
                    TorExpr::get(TorExpr::var("users"), TorExpr::var("i")),
                    "roleId",
                ),
                TorExpr::int(1),
            )),
        ]);
        let concl = Formula::Atom(TorExpr::cmp(
            CmpOp::Eq,
            TorExpr::add(TorExpr::var("c"), TorExpr::int(1)),
            TorExpr::agg(
                AggKind::Count,
                TorExpr::select(
                    sel_pred(),
                    TorExpr::top(
                        TorExpr::var("users"),
                        TorExpr::add(TorExpr::var("i"), TorExpr::int(1)),
                    ),
                ),
            ),
        ));
        let vc = Formula::Implies(Box::new(hyp), Box::new(concl));
        let r = prove(&vc, &Candidate::new(), &[], &tenv());
        assert!(r.is_proved(), "{r:?}");
    }
}
