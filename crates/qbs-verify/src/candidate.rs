//! Candidate assignments for the unknown predicates.

use qbs_common::Ident;
use qbs_tor::TorExpr;
use qbs_vcgen::{Formula, UnknownId, UnknownInfo};
use std::collections::BTreeMap;
use std::fmt;

/// A candidate assignment: one concrete [`Formula`] body per unknown
/// predicate, written over the unknown's formal parameters.
///
/// The synthesizer proposes candidates; the bounded checker and the prover
/// validate them by instantiating each unknown application with the body.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Candidate {
    bodies: BTreeMap<UnknownId, Formula>,
}

impl Candidate {
    /// An empty candidate (no unknowns filled).
    pub fn new() -> Candidate {
        Candidate::default()
    }

    /// Sets the body for an unknown.
    pub fn set(&mut self, id: UnknownId, body: Formula) {
        self.bodies.insert(id, body);
    }

    /// Builder-style [`Candidate::set`].
    pub fn with(mut self, id: UnknownId, body: Formula) -> Candidate {
        self.set(id, body);
        self
    }

    /// The body assigned to `id`, if any.
    pub fn body(&self, id: UnknownId) -> Option<&Formula> {
        self.bodies.get(&id)
    }

    /// Instantiates the body of unknown `id` by substituting the actual
    /// `args` for the unknown's formal parameters.
    ///
    /// # Panics
    ///
    /// Panics if the argument count differs from the parameter count — the
    /// VC generator and synthesizer always agree on arity.
    pub fn instantiate(&self, info: &UnknownInfo, args: &[TorExpr]) -> Option<Formula> {
        let body = self.bodies.get(&info.id)?;
        assert_eq!(info.params.len(), args.len(), "unknown {} arity mismatch", info.name);
        // Two-phase substitution through fresh names prevents capture when an
        // argument expression mentions a formal parameter name.
        let fresh: Vec<Ident> = info
            .params
            .iter()
            .enumerate()
            .map(|(k, p)| Ident::new(format!("$arg{k}${p}")))
            .collect();
        let mut f = body.clone();
        for (p, tmp) in info.params.iter().zip(&fresh) {
            f = f.subst(p, &TorExpr::Var(tmp.clone()));
        }
        for (tmp, a) in fresh.iter().zip(args) {
            f = f.subst(tmp, a);
        }
        Some(f)
    }
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, body) in &self.bodies {
            writeln!(f, "U{} := {body}", id.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(id: usize, params: &[&str]) -> UnknownInfo {
        UnknownInfo {
            id: UnknownId(id),
            name: format!("U{id}"),
            params: params.iter().map(Ident::new).collect(),
            is_postcondition: false,
            loop_path: None,
        }
    }

    #[test]
    fn instantiate_substitutes_all_params() {
        let cand = Candidate::new().with(
            UnknownId(0),
            Formula::RelEq(
                TorExpr::var("out"),
                TorExpr::top(TorExpr::var("users"), TorExpr::var("i")),
            ),
        );
        let inst = cand
            .instantiate(
                &info(0, &["i", "out", "users"]),
                &[
                    TorExpr::add(TorExpr::var("i"), TorExpr::int(1)),
                    TorExpr::var("out"),
                    TorExpr::var("users"),
                ],
            )
            .unwrap();
        match inst {
            Formula::RelEq(lhs, rhs) => {
                assert_eq!(lhs, TorExpr::var("out"));
                assert_eq!(
                    rhs,
                    TorExpr::top(
                        TorExpr::var("users"),
                        TorExpr::add(TorExpr::var("i"), TorExpr::int(1))
                    )
                );
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn instantiate_is_capture_free_under_swap() {
        // Body: x = y; instantiate with args (y, x): must become y = x, not
        // x = x or y = y.
        let cand = Candidate::new()
            .with(UnknownId(0), Formula::RelEq(TorExpr::var("x"), TorExpr::var("y")));
        let inst = cand
            .instantiate(&info(0, &["x", "y"]), &[TorExpr::var("y"), TorExpr::var("x")])
            .unwrap();
        assert_eq!(inst, Formula::RelEq(TorExpr::var("y"), TorExpr::var("x")));
    }

    #[test]
    fn missing_body_yields_none() {
        let cand = Candidate::new();
        assert!(cand.instantiate(&info(0, &[]), &[]).is_none());
    }
}
