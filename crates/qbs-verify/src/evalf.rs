//! Concrete evaluation of VC formulas with candidate instantiation and
//! directed hypothesis binding.

use crate::candidate::Candidate;
use qbs_tor::{eval, DynValue, Env, EvalError, TorExpr};
use qbs_vcgen::{Formula, UnknownInfo};

/// Value-based equality of runtime values: relations compare row-by-row on
/// field *values* (projected copies may differ in schema qualifiers), and an
/// empty relation equals the schemaless empty list.
fn dyn_eq(a: &DynValue, b: &DynValue) -> bool {
    match (a, b) {
        (DynValue::Scalar(x), DynValue::Scalar(y)) => x == y,
        (DynValue::Rec(x), DynValue::Rec(y)) => x.values() == y.values(),
        (DynValue::Rel(x), DynValue::Rel(y)) => {
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(r, s)| r.values() == s.values())
        }
        _ => false,
    }
}

/// Evaluates a formula to a boolean in `env`, instantiating unknown
/// applications from `candidate`.
///
/// # Errors
///
/// Propagates [`EvalError`] from TOR evaluation; callers decide whether an
/// erroring sub-formula means "hypothesis unreachable" (vacuously true) or
/// "candidate wrong" (false).
pub fn eval_formula(
    f: &Formula,
    env: &Env,
    candidate: &Candidate,
    unknowns: &[UnknownInfo],
) -> Result<bool, EvalError> {
    match f {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        Formula::Atom(e) => match eval(e, env)? {
            DynValue::Scalar(qbs_common::Value::Bool(b)) => Ok(b),
            other => Err(EvalError::Kind {
                context: "formula atom",
                expected: "bool",
                found: other.kind(),
            }),
        },
        Formula::RelEq(a, b) => {
            let x = eval(a, env)?;
            let y = eval(b, env)?;
            Ok(dyn_eq(&x, &y))
        }
        Formula::And(parts) => {
            for p in parts {
                if !eval_formula(p, env, candidate, unknowns)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(parts) => {
            // A disjunct that errors cannot be the witness; keep trying the
            // others (this matters for preservation VCs whose branches touch
            // get_i with i possibly out of range).
            let mut saw_error = None;
            for p in parts {
                match eval_formula(p, env, candidate, unknowns) {
                    Ok(true) => return Ok(true),
                    Ok(false) => {}
                    Err(e) => saw_error = Some(e),
                }
            }
            match saw_error {
                Some(e) => Err(e),
                None => Ok(false),
            }
        }
        Formula::Not(x) => Ok(!eval_formula(x, env, candidate, unknowns)?),
        Formula::Implies(h, c) => {
            // An erroring hypothesis marks an unreachable state: vacuous.
            match eval_formula(h, env, candidate, unknowns) {
                Ok(true) => eval_formula(c, env, candidate, unknowns),
                Ok(false) | Err(_) => Ok(true),
            }
        }
        Formula::Unknown(id, args) => {
            let info = &unknowns[id.0];
            match candidate.instantiate(info, args) {
                Some(body) => eval_formula(&body, env, candidate, unknowns),
                // An unfilled unknown is treated as `true` (no constraint).
                None => Ok(true),
            }
        }
    }
}

/// Evaluates a *hypothesis* formula with **directed binding**: conjuncts of
/// the shape `v = e` (relation or scalar) where `v` is currently unbound are
/// turned into bindings `v := eval(e)` instead of tests. This lets the
/// bounded checker construct exactly the stores reachable under a candidate
/// invariant rather than enumerating all possible intermediate lists.
///
/// Returns `Ok(true)` and extends `env` when the hypothesis is satisfiable
/// under the bindings; `Ok(false)` when some conjunct refutes it; an error
/// marks an unreachable state.
pub fn bind_hypothesis(
    f: &Formula,
    env: &mut Env,
    candidate: &Candidate,
    unknowns: &[UnknownInfo],
) -> Result<bool, EvalError> {
    match f {
        Formula::And(parts) => {
            for p in parts {
                if !bind_hypothesis(p, env, candidate, unknowns)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Unknown(id, args) => {
            let info = &unknowns[id.0];
            match candidate.instantiate(info, args) {
                Some(body) => bind_hypothesis(&body, env, candidate, unknowns),
                None => Ok(true),
            }
        }
        Formula::RelEq(a, b) => {
            if let TorExpr::Var(v) = a {
                if env.get(v).is_none() {
                    let val = eval(b, env)?;
                    env.bind(v.clone(), val);
                    return Ok(true);
                }
            }
            eval_formula(f, env, candidate, unknowns)
        }
        Formula::Atom(TorExpr::Binary(qbs_tor::BinOp::Cmp(qbs_tor::CmpOp::Eq), a, b)) => {
            if let TorExpr::Var(v) = &**a {
                if env.get(v).is_none() {
                    let val = eval(b, env)?;
                    env.bind(v.clone(), val);
                    return Ok(true);
                }
            }
            eval_formula(f, env, candidate, unknowns)
        }
        other => eval_formula(other, env, candidate, unknowns),
    }
}

/// Checks a full verification condition on one store: hypotheses are bound
/// directedly, then the conclusion is evaluated.
///
/// Returns `true` when the condition holds on this store (including
/// vacuously).
pub fn holds(
    vc: &Formula,
    base_env: &Env,
    candidate: &Candidate,
    unknowns: &[UnknownInfo],
) -> bool {
    match vc {
        Formula::Implies(h, c) => {
            let mut env = base_env.clone();
            match bind_hypothesis(h, &mut env, candidate, unknowns) {
                Ok(true) => eval_formula(c, &env, candidate, unknowns).unwrap_or(false),
                // Unsatisfiable or unreachable hypothesis: vacuous.
                Ok(false) | Err(_) => true,
            }
        }
        other => eval_formula(other, base_env, candidate, unknowns).unwrap_or(false),
    }
}

/// Checks whether a store *provably falsifies* a verification condition:
/// hypotheses bind and hold, and the conclusion evaluates cleanly to
/// `false`.
///
/// This is strictly stronger than `!holds(..)`: an evaluation error (e.g.
/// a variable the store does not bind and the candidate does not derive)
/// refutes nothing. Counterexample screening uses this form so that an
/// environment mined under one candidate — or seeded from another
/// fragment by a batch driver — can only reject candidates it genuinely
/// falsifies, never ones it merely fails to evaluate.
pub fn refutes(
    vc: &Formula,
    base_env: &Env,
    candidate: &Candidate,
    unknowns: &[UnknownInfo],
) -> bool {
    match vc {
        Formula::Implies(h, c) => {
            let mut env = base_env.clone();
            match bind_hypothesis(h, &mut env, candidate, unknowns) {
                Ok(true) => matches!(eval_formula(c, &env, candidate, unknowns), Ok(false)),
                // Unsatisfiable, unreachable, or unevaluable hypothesis:
                // nothing is falsified.
                Ok(false) | Err(_) => false,
            }
        }
        other => matches!(eval_formula(other, base_env, candidate, unknowns), Ok(false)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_common::{FieldType, Record, Relation, Schema, SchemaRef};
    use qbs_tor::CmpOp;
    use qbs_vcgen::UnknownId;

    fn users_schema() -> SchemaRef {
        Schema::builder("users")
            .field("id", FieldType::Int)
            .field("roleId", FieldType::Int)
            .finish()
    }

    fn users_rel(n: i64) -> Relation {
        let s = users_schema();
        let recs =
            (0..n).map(|i| Record::new(s.clone(), vec![i.into(), (i % 2).into()])).collect();
        Relation::from_records(s, recs).unwrap()
    }

    fn unknown_infos() -> Vec<UnknownInfo> {
        vec![UnknownInfo {
            id: UnknownId(0),
            name: "inv".into(),
            params: vec!["i".into(), "out".into(), "users".into()],
            is_postcondition: false,
            loop_path: None,
        }]
    }

    #[test]
    fn releq_compares_by_values() {
        let mut env = Env::new();
        env.bind("users", users_rel(2));
        let f = Formula::RelEq(
            TorExpr::proj(vec!["id".into()], TorExpr::var("users")),
            TorExpr::proj(vec!["id".into()], TorExpr::var("users")),
        );
        assert!(eval_formula(&f, &env, &Candidate::new(), &[]).unwrap());
    }

    #[test]
    fn empty_list_equals_empty_relation() {
        let mut env = Env::new();
        env.bind("users", users_rel(0));
        let f = Formula::RelEq(TorExpr::EmptyList, TorExpr::var("users"));
        assert!(eval_formula(&f, &env, &Candidate::new(), &[]).unwrap());
    }

    #[test]
    fn directed_binding_constructs_intermediate_lists() {
        // Hypothesis: inv(i, out, users) where inv says out = top_i(users).
        // `out` is unbound: binding must construct it, then the conclusion
        // size(out) = i must hold.
        let cand = Candidate::new().with(
            UnknownId(0),
            Formula::RelEq(
                TorExpr::var("out"),
                TorExpr::top(TorExpr::var("users"), TorExpr::var("i")),
            ),
        );
        let vc = Formula::Implies(
            Box::new(Formula::Unknown(
                UnknownId(0),
                vec![TorExpr::var("i"), TorExpr::var("out"), TorExpr::var("users")],
            )),
            Box::new(Formula::Atom(TorExpr::cmp(
                CmpOp::Eq,
                TorExpr::size(TorExpr::var("out")),
                TorExpr::var("i"),
            ))),
        );
        let mut env = Env::new();
        env.bind("users", users_rel(3));
        env.bind("i", qbs_common::Value::from(2));
        assert!(holds(&vc, &env, &cand, &unknown_infos()));
    }

    #[test]
    fn failing_conclusion_is_detected() {
        let cand = Candidate::new().with(
            UnknownId(0),
            Formula::RelEq(
                TorExpr::var("out"),
                TorExpr::top(TorExpr::var("users"), TorExpr::var("i")),
            ),
        );
        let vc = Formula::Implies(
            Box::new(Formula::Unknown(
                UnknownId(0),
                vec![TorExpr::var("i"), TorExpr::var("out"), TorExpr::var("users")],
            )),
            Box::new(Formula::Atom(TorExpr::cmp(
                CmpOp::Eq,
                TorExpr::size(TorExpr::var("out")),
                TorExpr::int(99),
            ))),
        );
        let mut env = Env::new();
        env.bind("users", users_rel(3));
        env.bind("i", qbs_common::Value::from(2));
        assert!(!holds(&vc, &env, &cand, &unknown_infos()));
    }

    #[test]
    fn erroring_hypothesis_is_vacuous() {
        // i out of range makes the hypothesis unreachable: VC holds.
        let cand = Candidate::new().with(
            UnknownId(0),
            Formula::RelEq(
                TorExpr::var("out"),
                TorExpr::Append(
                    Box::new(TorExpr::EmptyList),
                    Box::new(TorExpr::get(TorExpr::var("users"), TorExpr::var("i"))),
                ),
            ),
        );
        let vc = Formula::Implies(
            Box::new(Formula::Unknown(
                UnknownId(0),
                vec![TorExpr::var("i"), TorExpr::var("out"), TorExpr::var("users")],
            )),
            Box::new(Formula::False),
        );
        let mut env = Env::new();
        env.bind("users", users_rel(1));
        env.bind("i", qbs_common::Value::from(7));
        assert!(holds(&vc, &env, &cand, &unknown_infos()));
    }
}
