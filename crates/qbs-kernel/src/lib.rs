//! The QBS kernel language (paper Fig. 4).
//!
//! Identified code fragments are compiled into this small imperative language
//! before query inference. It operates on three kinds of values — scalars,
//! immutable records, and immutable lists — with `Query(...)` retrievals,
//! random access (`get`), `append`, and `unique`. Heap updates and `null`
//! are not modeled (paper Sec. 2).
//!
//! The crate provides the AST ([`KExpr`], [`KStmt`], [`KernelProgram`]), a
//! type checker ([`typecheck`]) that also produces the TOR type environment
//! used by the synthesizer, a concrete interpreter ([`run`]) used for
//! differential testing of transformations, and a pretty printer.
//!
//! # Example: the paper's running example (Fig. 2)
//!
//! ```
//! use qbs_common::{Schema, FieldType};
//! use qbs_kernel::{KernelProgram, KExpr, KStmt};
//! use qbs_tor::{CmpOp, QuerySpec};
//!
//! let users = Schema::builder("users")
//!     .field("id", FieldType::Int)
//!     .field("roleId", FieldType::Int)
//!     .finish();
//! let roles = Schema::builder("roles")
//!     .field("roleId", FieldType::Int)
//!     .field("name", FieldType::Str)
//!     .finish();
//!
//! let prog = KernelProgram::builder("getRoleUser")
//!     .stmt(KStmt::assign("listUsers", KExpr::EmptyList))
//!     .stmt(KStmt::assign("users", KExpr::query(QuerySpec::table_scan("users", users))))
//!     .stmt(KStmt::assign("roles", KExpr::query(QuerySpec::table_scan("roles", roles))))
//!     .stmt(KStmt::assign("i", KExpr::int(0)))
//!     .stmt(KStmt::while_loop(
//!         KExpr::cmp(CmpOp::Lt, KExpr::var("i"), KExpr::size(KExpr::var("users"))),
//!         vec![
//!             KStmt::assign("j", KExpr::int(0)),
//!             KStmt::while_loop(
//!                 KExpr::cmp(CmpOp::Lt, KExpr::var("j"), KExpr::size(KExpr::var("roles"))),
//!                 vec![
//!                     KStmt::if_then(
//!                         KExpr::cmp(
//!                             CmpOp::Eq,
//!                             KExpr::field(KExpr::get(KExpr::var("users"), KExpr::var("i")), "roleId"),
//!                             KExpr::field(KExpr::get(KExpr::var("roles"), KExpr::var("j")), "roleId"),
//!                         ),
//!                         vec![KStmt::assign(
//!                             "listUsers",
//!                             KExpr::append(
//!                                 KExpr::var("listUsers"),
//!                                 KExpr::get(KExpr::var("users"), KExpr::var("i")),
//!                             ),
//!                         )],
//!                     ),
//!                     KStmt::assign("j", KExpr::add(KExpr::var("j"), KExpr::int(1))),
//!                 ],
//!             ),
//!             KStmt::assign("i", KExpr::add(KExpr::var("i"), KExpr::int(1))),
//!         ],
//!     ))
//!     .result("listUsers")
//!     .finish();
//! assert_eq!(prog.name(), "getRoleUser");
//! ```

mod ast;
mod interp;
mod pretty;
mod typeck;
mod vm;

pub use ast::{KExpr, KStmt, KernelProgram, KernelProgramBuilder};
pub use interp::{eval_expr, run, InterpError, RunResult};
pub use pretty::pretty;
pub use typeck::{typecheck, TypecheckError, VarTypes};
pub use vm::{compile, vm_metrics, CompiledProgram};
