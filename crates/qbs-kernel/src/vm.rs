//! A stack bytecode VM for kernel programs.
//!
//! [`compile`] lowers a [`KernelProgram`] into straight-line bytecode —
//! control flow becomes jumps, short-circuit `∧`/`∨` become branch
//! opcodes, and every AST re-walk the interpreter performs per loop
//! iteration disappears. [`CompiledProgram::run`] executes the program
//! in one dispatch loop over a value stack and a real [`Env`], so the
//! final variable store (and therefore [`RunResult`]) is identical to
//! the tree-walking interpreter's by construction.
//!
//! The VM is the replay engine for the differential oracle: fragments
//! are compiled once per check and re-run across many randomized
//! stores. [`qbs_kernel::run`](crate::run) remains the executable
//! semantics and the differential baseline — the equivalence suite
//! asserts compiled and interpreted runs agree on both `Ok` and `Err`
//! outcomes.
//!
//! Per-opcode dispatch counts and compile times land in this crate's
//! [`vm_metrics`] registry (`vm.dispatch.<op>`, `vm.compile_ns`,
//! `vm.compile.kernels`).

use crate::ast::{KExpr, KStmt, KernelProgram};
use crate::interp::{
    field_type_of, scalar_record, values_equal, want_bool, want_int, want_rel, InterpError,
    RunResult, DEFAULT_FUEL,
};
use qbs_common::{DispatchTally, FieldRef, Ident, OpCode, Program, Relation, Schema, Value};
use qbs_obs::{Counter, Histogram, Metrics};
use qbs_tor::{BinOp, CmpOp, DynValue, Env};
use std::sync::OnceLock;
use std::time::Instant;

/// One kernel bytecode instruction. Operands are resolved at compile
/// time (field names, jump targets, precomputed assertion messages);
/// the dispatch loop only touches the stack and the environment.
#[derive(Clone, Debug)]
pub(crate) enum KOp {
    /// Push a scalar constant.
    Push(Value),
    /// Push the untyped empty list.
    PushEmpty,
    /// Push a variable's value.
    Load(Ident),
    /// Pop into a variable binding.
    Store(Ident),
    /// Pop a record, push the named field's value.
    Field(Ident),
    /// Assert the top of stack is a scalar (record-literal field check,
    /// performed per field so error order matches the interpreter).
    RecordField,
    /// Pop N scalars, push the record `{names…}`.
    MakeRecord(Vec<Ident>),
    /// Pop, check bool in the given context, push back.
    CastBool(&'static str),
    /// Pop, check int in the given context, push back.
    CastInt(&'static str),
    /// Peek: the top of stack must be a list (checked *before* the
    /// second operand is evaluated, matching interpreter order).
    ChkRel(&'static str),
    /// Pop two ints, push the wrapping sum.
    Add,
    /// Pop two ints, push the wrapping difference.
    Sub,
    /// Pop two scalars, push the comparison result.
    Cmp(CmpOp),
    /// Pop a bool, push its negation.
    Not,
    /// Push the named table from the environment.
    Query(Ident),
    /// Pop a list, push its length.
    Size,
    /// Pop index and list, push the element (bounds-checked).
    Get,
    /// Pop element and list, push the extended list.
    Append,
    /// Pop a list, push it deduplicated.
    Unique,
    /// Pop a list, push it sorted by the given fields.
    Sort(Vec<FieldRef>),
    /// Pop a list, push it sorted by all fields (opaque comparator).
    SortCustom,
    /// Pop target and list, push the list minus the first match.
    Remove,
    /// Pop needle and list, push the membership bool.
    Contains,
    /// Unconditional jump.
    Jump(usize),
    /// Pop a bool (with kind-check context); jump when false.
    BrFalse(usize, &'static str),
    /// `∧` short circuit: pop the left bool; when false, push `false`
    /// and jump past the right operand.
    BrAndFalse(usize),
    /// `∨` short circuit: pop the left bool; when true, push `true`
    /// and jump past the right operand.
    BrOrTrue(usize),
    /// Charge one unit of loop fuel (placed at the top of each loop
    /// body, after the condition — interpreter order).
    Fuel,
    /// Pop a bool; fail with the precomputed message when false.
    Assert(String),
    /// Peek: the top of stack must be a scalar (map key probes and
    /// `mapput` values are checked as they are evaluated, matching
    /// interpreter order).
    ChkScalar(&'static str),
    /// Peek the map and its N key probes (already kind-checked), resolve
    /// the key columns, and push the matching entry index as an int
    /// (`-1` for a miss). The untyped empty map matches nothing.
    MapProbe(Vec<Ident>),
    /// `mapget` resolution: pop the probe index, probes, and map. On a
    /// hit, push the entry's `val_field` value and jump past the default
    /// code; on a miss fall through into it.
    MapGetHit {
        /// Number of key probes to pop.
        arity: usize,
        /// The field read from the matching entry.
        val_field: Ident,
        /// Jump target on a hit (past the lowered default expression).
        target: usize,
    },
    /// `mapput` resolution: pop the value, probe index, probes, and map;
    /// push the updated map (entry replaced in place, or a fresh
    /// `{keys…, val}` record appended).
    MapPut {
        /// Key field names, matching the popped probe values.
        keys: Vec<Ident>,
        /// The field written on the matching (or fresh) entry.
        val_field: Ident,
    },
}

impl OpCode for KOp {
    const NAMES: &'static [&'static str] = &[
        "push",
        "push_empty",
        "load",
        "store",
        "field",
        "record_field",
        "make_record",
        "cast_bool",
        "cast_int",
        "chk_rel",
        "add",
        "sub",
        "cmp",
        "not",
        "query",
        "size",
        "get",
        "append",
        "unique",
        "sort",
        "sort_custom",
        "remove",
        "contains",
        "jump",
        "br_false",
        "br_and_false",
        "br_or_true",
        "fuel",
        "assert",
        "chk_scalar",
        "map_probe",
        "map_get",
        "map_put",
    ];

    fn index(&self) -> usize {
        match self {
            KOp::Push(_) => 0,
            KOp::PushEmpty => 1,
            KOp::Load(_) => 2,
            KOp::Store(_) => 3,
            KOp::Field(_) => 4,
            KOp::RecordField => 5,
            KOp::MakeRecord(_) => 6,
            KOp::CastBool(_) => 7,
            KOp::CastInt(_) => 8,
            KOp::ChkRel(_) => 9,
            KOp::Add => 10,
            KOp::Sub => 11,
            KOp::Cmp(_) => 12,
            KOp::Not => 13,
            KOp::Query(_) => 14,
            KOp::Size => 15,
            KOp::Get => 16,
            KOp::Append => 17,
            KOp::Unique => 18,
            KOp::Sort(_) => 19,
            KOp::SortCustom => 20,
            KOp::Remove => 21,
            KOp::Contains => 22,
            KOp::Jump(_) => 23,
            KOp::BrFalse(_, _) => 24,
            KOp::BrAndFalse(_) => 25,
            KOp::BrOrTrue(_) => 26,
            KOp::Fuel => 27,
            KOp::Assert(_) => 28,
            KOp::ChkScalar(_) => 29,
            KOp::MapProbe(_) => 30,
            KOp::MapGetHit { .. } => 31,
            KOp::MapPut { .. } => 32,
        }
    }
}

/// A kernel program lowered to bytecode, ready for repeated replay.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    code: Program<KOp>,
    result_var: Ident,
    /// Precomputed `[]` value so `PushEmpty` is a clone, not a schema
    /// build.
    empty: Relation,
}

/// Compiles a kernel program into bytecode. Infallible: every kernel
/// construct lowers (the VM covers the whole Fig. 4 grammar, including
/// the interpreter-only `sort_custom`/`remove` categories). Observes
/// `vm.compile_ns` and `vm.compile.kernels`.
pub fn compile(prog: &KernelProgram) -> CompiledProgram {
    let started = Instant::now();
    let mut code = Vec::new();
    lower_block(prog.body(), &mut code);
    let compiled = CompiledProgram {
        code: Program { ops: code, regs: 0 },
        result_var: prog.result_var().clone(),
        empty: Relation::empty(Schema::anonymous().finish()),
    };
    let ins = instruments();
    ins.compile_ns.observe(started.elapsed().as_nanos() as u64);
    ins.compiled_kernels.inc();
    compiled
}

fn lower_block(stmts: &[KStmt], code: &mut Vec<KOp>) {
    for s in stmts {
        lower_stmt(s, code);
    }
}

fn lower_stmt(s: &KStmt, code: &mut Vec<KOp>) {
    match s {
        KStmt::Skip => {}
        KStmt::Assign(v, e) => {
            lower_expr(e, code);
            code.push(KOp::Store(v.clone()));
        }
        KStmt::If(c, t, f) => {
            lower_expr(c, code);
            let br = code.len();
            code.push(KOp::BrFalse(0, "if condition"));
            lower_block(t, code);
            let jump = code.len();
            code.push(KOp::Jump(0));
            let else_start = code.len();
            patch(code, br, else_start);
            lower_block(f, code);
            let end = code.len();
            patch(code, jump, end);
        }
        KStmt::While(c, body) => {
            let top = code.len();
            lower_expr(c, code);
            let br = code.len();
            code.push(KOp::BrFalse(0, "while condition"));
            code.push(KOp::Fuel);
            lower_block(body, code);
            code.push(KOp::Jump(top));
            let end = code.len();
            patch(code, br, end);
        }
        KStmt::Assert(e) => {
            lower_expr(e, code);
            // The interpreter reports the asserted *expression*; bake
            // that message in at compile time.
            code.push(KOp::Assert(format!("{e:?}")));
        }
    }
}

fn patch(code: &mut [KOp], at: usize, target: usize) {
    match &mut code[at] {
        KOp::Jump(t)
        | KOp::BrFalse(t, _)
        | KOp::BrAndFalse(t)
        | KOp::BrOrTrue(t)
        | KOp::MapGetHit { target: t, .. } => *t = target,
        other => unreachable!("patched a non-branch opcode {other:?}"),
    }
}

fn lower_expr(e: &KExpr, code: &mut Vec<KOp>) {
    match e {
        KExpr::Const(v) => code.push(KOp::Push(v.clone())),
        KExpr::EmptyList => code.push(KOp::PushEmpty),
        KExpr::Var(v) => code.push(KOp::Load(v.clone())),
        KExpr::Field(rec, name) => {
            lower_expr(rec, code);
            code.push(KOp::Field(name.clone()));
        }
        KExpr::RecordLit(fields) => {
            for (_, fe) in fields {
                lower_expr(fe, code);
                code.push(KOp::RecordField);
            }
            code.push(KOp::MakeRecord(fields.iter().map(|(n, _)| n.clone()).collect()));
        }
        KExpr::Binary(op, a, b) => match op {
            BinOp::And => {
                lower_expr(a, code);
                let br = code.len();
                code.push(KOp::BrAndFalse(0));
                lower_expr(b, code);
                code.push(KOp::CastBool("∧"));
                let end = code.len();
                patch(code, br, end);
            }
            BinOp::Or => {
                lower_expr(a, code);
                let br = code.len();
                code.push(KOp::BrOrTrue(0));
                lower_expr(b, code);
                code.push(KOp::CastBool("∨"));
                let end = code.len();
                patch(code, br, end);
            }
            BinOp::Add => {
                // The int check on the left operand runs before the
                // right operand is evaluated — interpreter order.
                lower_expr(a, code);
                code.push(KOp::CastInt("+"));
                lower_expr(b, code);
                code.push(KOp::CastInt("+"));
                code.push(KOp::Add);
            }
            BinOp::Sub => {
                lower_expr(a, code);
                code.push(KOp::CastInt("-"));
                lower_expr(b, code);
                code.push(KOp::CastInt("-"));
                code.push(KOp::Sub);
            }
            BinOp::Cmp(c) => {
                lower_expr(a, code);
                lower_expr(b, code);
                code.push(KOp::Cmp(*c));
            }
        },
        KExpr::Not(x) => {
            lower_expr(x, code);
            code.push(KOp::Not);
        }
        KExpr::Query(spec) => code.push(KOp::Query(spec.table.clone())),
        KExpr::Size(r) => {
            lower_expr(r, code);
            code.push(KOp::Size);
        }
        KExpr::Get(r, i) => {
            lower_expr(r, code);
            code.push(KOp::ChkRel("get"));
            lower_expr(i, code);
            code.push(KOp::Get);
        }
        KExpr::Append(r, x) => {
            lower_expr(r, code);
            code.push(KOp::ChkRel("append"));
            lower_expr(x, code);
            code.push(KOp::Append);
        }
        KExpr::Unique(r) => {
            lower_expr(r, code);
            code.push(KOp::Unique);
        }
        KExpr::Sort(fields, r) => {
            lower_expr(r, code);
            code.push(KOp::Sort(fields.clone()));
        }
        KExpr::SortCustom(r) => {
            lower_expr(r, code);
            code.push(KOp::SortCustom);
        }
        KExpr::Remove(r, x) => {
            lower_expr(r, code);
            code.push(KOp::ChkRel("remove"));
            lower_expr(x, code);
            code.push(KOp::Remove);
        }
        KExpr::Contains(r, x) => {
            lower_expr(r, code);
            code.push(KOp::ChkRel("contains"));
            lower_expr(x, code);
            code.push(KOp::Contains);
        }
        KExpr::MapGet { map, keys, val_field, default } => {
            // Interpreter order: the map's list check, then each probe's
            // scalar check as it is evaluated, then key-column resolution;
            // the default only runs on a miss.
            lower_expr(map, code);
            code.push(KOp::ChkRel("mapget"));
            for (_, e) in keys {
                lower_expr(e, code);
                code.push(KOp::ChkScalar("mapget"));
            }
            code.push(KOp::MapProbe(keys.iter().map(|(n, _)| n.clone()).collect()));
            let hit = code.len();
            code.push(KOp::MapGetHit {
                arity: keys.len(),
                val_field: val_field.clone(),
                target: 0,
            });
            lower_expr(default, code);
            code.push(KOp::ChkScalar("mapget default"));
            let end = code.len();
            patch(code, hit, end);
        }
        KExpr::MapPut { map, keys, val_field, val } => {
            // The probe resolves fully (including key-column lookups)
            // before the written value is evaluated — interpreter order.
            lower_expr(map, code);
            code.push(KOp::ChkRel("mapput"));
            for (_, e) in keys {
                lower_expr(e, code);
                code.push(KOp::ChkScalar("mapput"));
            }
            code.push(KOp::MapProbe(keys.iter().map(|(n, _)| n.clone()).collect()));
            lower_expr(val, code);
            code.push(KOp::ChkScalar("mapput value"));
            code.push(KOp::MapPut {
                keys: keys.iter().map(|(n, _)| n.clone()).collect(),
                val_field: val_field.clone(),
            });
        }
    }
}

impl CompiledProgram {
    /// Number of bytecode instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program lowered to zero instructions (a body of
    /// `skip`s).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Runs the compiled program against an initial environment —
    /// the bytecode counterpart of [`crate::run`], with identical
    /// results and errors.
    ///
    /// # Errors
    ///
    /// Propagates any [`InterpError`], exactly as the interpreter
    /// raises it (same variant, same context strings).
    pub fn run(&self, mut env: Env) -> Result<RunResult, InterpError> {
        let mut tally = DispatchTally::new(KOp::NAMES.len());
        let out = self.dispatch(&mut env, &mut tally);
        let ins = instruments();
        for (i, n) in tally.drain() {
            ins.dispatch[i].add(n);
        }
        out?;
        let result = env
            .get(&self.result_var)
            .cloned()
            .ok_or_else(|| InterpError::UnknownVar(self.result_var.clone()))?;
        Ok(RunResult { env, result })
    }

    fn dispatch(&self, env: &mut Env, tally: &mut DispatchTally) -> Result<(), InterpError> {
        let code = &self.code.ops;
        let mut stack: Vec<DynValue> = Vec::with_capacity(8);
        let mut fuel = DEFAULT_FUEL;
        let mut pc = 0;
        while pc < code.len() {
            let op = &code[pc];
            tally.record(op.index());
            pc += 1;
            match op {
                KOp::Push(v) => stack.push(DynValue::Scalar(v.clone())),
                KOp::PushEmpty => stack.push(DynValue::Rel(self.empty.clone())),
                KOp::Load(v) => stack.push(
                    env.get(v).cloned().ok_or_else(|| InterpError::UnknownVar(v.clone()))?,
                ),
                KOp::Store(v) => {
                    let val = pop(&mut stack);
                    env.bind(v.clone(), val);
                }
                KOp::Field(name) => match pop(&mut stack) {
                    DynValue::Rec(r) => {
                        stack.push(DynValue::Scalar(r.get(&name.as_str().into())?.clone()))
                    }
                    other => {
                        return Err(InterpError::Kind {
                            context: "field access",
                            expected: "record",
                            found: other.kind(),
                        })
                    }
                },
                KOp::RecordField => match stack.last().expect("record field on stack") {
                    DynValue::Scalar(_) => {}
                    other => {
                        return Err(InterpError::Kind {
                            context: "record literal",
                            expected: "scalar",
                            found: other.kind(),
                        })
                    }
                },
                KOp::MakeRecord(names) => {
                    let mut values = Vec::with_capacity(names.len());
                    for _ in names {
                        match pop(&mut stack) {
                            DynValue::Scalar(v) => values.push(v),
                            _ => unreachable!("RecordField checked every field"),
                        }
                    }
                    values.reverse();
                    let mut b = Schema::anonymous();
                    for (name, v) in names.iter().zip(&values) {
                        let ty = match v {
                            Value::Bool(_) => qbs_common::FieldType::Bool,
                            Value::Int(_) => qbs_common::FieldType::Int,
                            Value::Str(_) => qbs_common::FieldType::Str,
                        };
                        b = b.field(name.as_str(), ty);
                    }
                    stack.push(DynValue::Rec(qbs_common::Record::new(b.finish(), values)));
                }
                KOp::CastBool(ctx) => {
                    let b = want_bool(pop(&mut stack), ctx)?;
                    stack.push(DynValue::Scalar(Value::from(b)));
                }
                KOp::CastInt(ctx) => {
                    let i = want_int(pop(&mut stack), ctx)?;
                    stack.push(DynValue::Scalar(Value::from(i)));
                }
                KOp::ChkRel(ctx) => {
                    let top = stack.last().expect("list operand on stack");
                    if !matches!(top, DynValue::Rel(_)) {
                        return Err(InterpError::Kind {
                            context: ctx,
                            expected: "list",
                            found: top.kind(),
                        });
                    }
                }
                KOp::Add => {
                    let (x, y) = pop_ints(&mut stack);
                    stack.push(DynValue::Scalar(Value::from(x.wrapping_add(y))));
                }
                KOp::Sub => {
                    let (x, y) = pop_ints(&mut stack);
                    stack.push(DynValue::Scalar(Value::from(x.wrapping_sub(y))));
                }
                KOp::Cmp(c) => {
                    let y = pop(&mut stack);
                    let x = pop(&mut stack);
                    match (x, y) {
                        (DynValue::Scalar(x), DynValue::Scalar(y)) => {
                            stack.push(DynValue::Scalar(Value::from(c.test(x.total_cmp(&y)))))
                        }
                        (x, y) => {
                            return Err(InterpError::Kind {
                                context: "comparison",
                                expected: "scalar",
                                found: if x.as_scalar().is_some() {
                                    y.kind()
                                } else {
                                    x.kind()
                                },
                            })
                        }
                    }
                }
                KOp::Not => {
                    let b = want_bool(pop(&mut stack), "¬")?;
                    stack.push(DynValue::Scalar(Value::from(!b)));
                }
                KOp::Query(table) => stack.push(
                    env.table(table)
                        .cloned()
                        .map(DynValue::Rel)
                        .ok_or_else(|| InterpError::UnknownTable(table.clone()))?,
                ),
                KOp::Size => {
                    let rel = want_rel(pop(&mut stack), "size")?;
                    stack.push(DynValue::Scalar(Value::from(rel.len() as i64)));
                }
                KOp::Get => {
                    let idx = want_int(pop(&mut stack), "get index")?;
                    let rel = pop_rel(&mut stack);
                    if idx < 0 || idx as usize >= rel.len() {
                        return Err(InterpError::OutOfBounds { index: idx, len: rel.len() });
                    }
                    stack.push(DynValue::Rec(
                        rel.get(idx as usize).expect("bounds checked").clone(),
                    ));
                }
                KOp::Append => {
                    let rec = match pop(&mut stack) {
                        DynValue::Rec(rec) => rec,
                        // Scalar appends build single-column lists.
                        DynValue::Scalar(v) => scalar_record(v),
                        other => {
                            return Err(InterpError::Kind {
                                context: "append",
                                expected: "record or scalar",
                                found: other.kind(),
                            })
                        }
                    };
                    let rel = pop_rel(&mut stack);
                    // Appending to the untyped empty list adopts the
                    // record's schema.
                    if rel.is_empty() && rel.schema().arity() == 0 {
                        stack.push(DynValue::Rel(Relation::from_records(
                            rec.schema().clone(),
                            vec![rec],
                        )?));
                    } else {
                        stack.push(DynValue::Rel(rel.append(rec)?));
                    }
                }
                KOp::Unique => {
                    let rel = want_rel(pop(&mut stack), "unique")?;
                    stack.push(DynValue::Rel(rel.unique()));
                }
                KOp::Sort(fields) => {
                    let rel = want_rel(pop(&mut stack), "sort")?;
                    stack.push(DynValue::Rel(rel.sorted_by(fields)?));
                }
                KOp::SortCustom => {
                    // Opaque comparator: deterministic order by all
                    // fields, matching the interpreter.
                    let rel = want_rel(pop(&mut stack), "sort")?;
                    let all: Vec<FieldRef> = rel
                        .schema()
                        .fields()
                        .iter()
                        .map(|f| FieldRef {
                            qualifier: f.qualifier.clone(),
                            name: f.name.clone(),
                        })
                        .collect();
                    stack.push(DynValue::Rel(rel.sorted_by(&all)?));
                }
                KOp::Remove => {
                    let target = pop(&mut stack);
                    let rel = pop_rel(&mut stack);
                    let mut removed = false;
                    let mut rows = Vec::new();
                    for rec in rel.iter() {
                        let matches = match &target {
                            DynValue::Rec(t) => values_equal(t, rec),
                            DynValue::Scalar(v) => {
                                rel.schema().arity() == 1 && rec.value_at(0) == v
                            }
                            DynValue::Rel(_) => false,
                        };
                        if matches && !removed {
                            removed = true;
                            continue;
                        }
                        rows.push(rec.clone());
                    }
                    stack.push(DynValue::Rel(
                        Relation::from_records(rel.schema().clone(), rows)
                            .expect("schema unchanged"),
                    ));
                }
                KOp::Contains => {
                    let needle = pop(&mut stack);
                    let rel = pop_rel(&mut stack);
                    let found = match needle {
                        DynValue::Rec(rec) => rel.iter().any(|o| values_equal(&rec, o)),
                        DynValue::Scalar(v) => {
                            rel.schema().arity() == 1 && rel.iter().any(|o| o.value_at(0) == &v)
                        }
                        other => {
                            return Err(InterpError::Kind {
                                context: "contains",
                                expected: "record or scalar",
                                found: other.kind(),
                            })
                        }
                    };
                    stack.push(DynValue::Scalar(Value::from(found)));
                }
                KOp::Jump(t) => pc = *t,
                KOp::BrFalse(t, ctx) => {
                    if !want_bool(pop(&mut stack), ctx)? {
                        pc = *t;
                    }
                }
                KOp::BrAndFalse(t) => {
                    if !want_bool(pop(&mut stack), "∧")? {
                        stack.push(DynValue::Scalar(Value::from(false)));
                        pc = *t;
                    }
                }
                KOp::BrOrTrue(t) => {
                    if want_bool(pop(&mut stack), "∨")? {
                        stack.push(DynValue::Scalar(Value::from(true)));
                        pc = *t;
                    }
                }
                KOp::Fuel => {
                    if fuel == 0 {
                        return Err(InterpError::OutOfFuel);
                    }
                    fuel -= 1;
                }
                KOp::Assert(msg) => {
                    if !want_bool(pop(&mut stack), "assert")? {
                        return Err(InterpError::AssertionFailed(msg.clone()));
                    }
                }
                KOp::ChkScalar(ctx) => {
                    let top = stack.last().expect("scalar operand on stack");
                    if !matches!(top, DynValue::Scalar(_)) {
                        return Err(InterpError::Kind {
                            context: ctx,
                            expected: "scalar",
                            found: top.kind(),
                        });
                    }
                }
                KOp::MapProbe(keys) => {
                    // Stack: [map, probe1 … probeN]; peek everything and
                    // push the matching entry index (or -1).
                    let n = keys.len();
                    let map_at = stack.len() - n - 1;
                    let rel = match &stack[map_at] {
                        DynValue::Rel(r) => r,
                        _ => unreachable!("ChkRel checked the map operand"),
                    };
                    // The untyped empty map matches nothing.
                    let found = if rel.schema().arity() == 0 {
                        None
                    } else {
                        let mut key_idx = Vec::with_capacity(n);
                        for name in keys {
                            key_idx
                                .push(rel.schema().index_of(&FieldRef::from(name.as_str()))?);
                        }
                        let probes: Vec<&Value> = stack[map_at + 1..]
                            .iter()
                            .map(|p| match p {
                                DynValue::Scalar(v) => v,
                                _ => unreachable!("ChkScalar checked every probe"),
                            })
                            .collect();
                        rel.iter().position(|rec| {
                            key_idx.iter().zip(&probes).all(|(&i, p)| rec.value_at(i) == *p)
                        })
                    };
                    stack.push(DynValue::Scalar(Value::from(found.map_or(-1, |i| i as i64))));
                }
                KOp::MapGetHit { arity, val_field, target } => {
                    let found = match pop(&mut stack) {
                        DynValue::Scalar(Value::Int(i)) => i,
                        _ => unreachable!("MapProbe pushed the index"),
                    };
                    let probes_at = stack.len() - arity;
                    stack.truncate(probes_at);
                    let rel = pop_rel(&mut stack);
                    if found >= 0 {
                        let rec = rel.get(found as usize).expect("probe index in range");
                        stack.push(DynValue::Scalar(
                            rec.get(&FieldRef::from(val_field.as_str()))?.clone(),
                        ));
                        pc = *target;
                    }
                    // On a miss fall through into the lowered default.
                }
                KOp::MapPut { keys, val_field } => {
                    let v = match pop(&mut stack) {
                        DynValue::Scalar(v) => v,
                        _ => unreachable!("ChkScalar checked the value"),
                    };
                    let found = match pop(&mut stack) {
                        DynValue::Scalar(Value::Int(i)) => i,
                        _ => unreachable!("MapProbe pushed the index"),
                    };
                    let probes_at = stack.len() - keys.len();
                    let probes: Vec<Value> = stack
                        .drain(probes_at..)
                        .map(|p| match p {
                            DynValue::Scalar(v) => v,
                            _ => unreachable!("ChkScalar checked every probe"),
                        })
                        .collect();
                    let rel = pop_rel(&mut stack);
                    if found >= 0 {
                        let hit = found as usize;
                        let schema = rel.schema().clone();
                        let vi = schema.index_of(&FieldRef::from(val_field.as_str()))?;
                        let rows = rel
                            .iter()
                            .enumerate()
                            .map(|(i, rec)| {
                                if i == hit {
                                    let mut values = rec.values().to_vec();
                                    values[vi] = v.clone();
                                    qbs_common::Record::new(schema.clone(), values)
                                } else {
                                    rec.clone()
                                }
                            })
                            .collect();
                        stack.push(DynValue::Rel(Relation::from_records(schema, rows)?));
                    } else {
                        // Fresh entry: adopt (or build) the entry schema.
                        let schema = if rel.schema().arity() == 0 {
                            let mut b = Schema::anonymous();
                            for (name, pv) in keys.iter().zip(&probes) {
                                b = b.field(name.as_str(), field_type_of(pv));
                            }
                            b.field(val_field.as_str(), field_type_of(&v)).finish()
                        } else {
                            rel.schema().clone()
                        };
                        let mut values = probes;
                        values.push(v);
                        let rec = qbs_common::Record::new(schema.clone(), values);
                        if rel.schema().arity() == 0 {
                            stack.push(DynValue::Rel(Relation::from_records(
                                schema,
                                vec![rec],
                            )?));
                        } else {
                            stack.push(DynValue::Rel(rel.append(rec)?));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

fn pop(stack: &mut Vec<DynValue>) -> DynValue {
    stack.pop().expect("lowering keeps the stack balanced")
}

fn pop_ints(stack: &mut Vec<DynValue>) -> (i64, i64) {
    let y = pop(stack);
    let x = pop(stack);
    match (x, y) {
        (DynValue::Scalar(Value::Int(x)), DynValue::Scalar(Value::Int(y))) => (x, y),
        _ => unreachable!("CastInt checked both operands"),
    }
}

fn pop_rel(stack: &mut Vec<DynValue>) -> Relation {
    match pop(stack) {
        DynValue::Rel(r) => r,
        _ => unreachable!("ChkRel checked the list operand"),
    }
}

/// The VM's metrics: one pre-registered handle per counter so the
/// dispatch-loop flush is pure atomic adds.
struct VmInstruments {
    metrics: Metrics,
    dispatch: Vec<Counter>,
    compile_ns: Histogram,
    compiled_kernels: Counter,
}

fn instruments() -> &'static VmInstruments {
    static VM: OnceLock<VmInstruments> = OnceLock::new();
    VM.get_or_init(|| {
        let metrics = Metrics::new();
        let dispatch =
            KOp::NAMES.iter().map(|n| metrics.counter(&format!("vm.dispatch.{n}"))).collect();
        VmInstruments {
            dispatch,
            compile_ns: metrics.histogram("vm.compile_ns", &qbs_obs::time_bounds_ns()),
            compiled_kernels: metrics.counter("vm.compile.kernels"),
            metrics,
        }
    })
}

/// The process-wide kernel-VM metrics registry: per-opcode dispatch
/// counters (`vm.dispatch.<op>`), the `vm.compile_ns` histogram, and
/// the `vm.compile.kernels` total.
pub fn vm_metrics() -> Metrics {
    instruments().metrics.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;
    use qbs_common::{FieldType, Record};
    use qbs_tor::QuerySpec;

    fn users_table() -> (qbs_common::SchemaRef, Relation) {
        let s = Schema::builder("users")
            .field("id", FieldType::Int)
            .field("roleId", FieldType::Int)
            .finish();
        let rel = Relation::from_records(
            s.clone(),
            vec![
                Record::new(s.clone(), vec![1.into(), 10.into()]),
                Record::new(s.clone(), vec![2.into(), 20.into()]),
                Record::new(s.clone(), vec![3.into(), 10.into()]),
            ],
        )
        .unwrap();
        (s, rel)
    }

    fn selection_program() -> (KernelProgram, Env) {
        let (s, rel) = users_table();
        let prog = KernelProgram::builder("sel")
            .stmt(KStmt::assign("out", KExpr::EmptyList))
            .stmt(KStmt::assign("users", KExpr::query(QuerySpec::table_scan("users", s))))
            .stmt(KStmt::assign("i", KExpr::int(0)))
            .stmt(KStmt::while_loop(
                KExpr::cmp(CmpOp::Lt, KExpr::var("i"), KExpr::size(KExpr::var("users"))),
                vec![
                    KStmt::if_then(
                        KExpr::cmp(
                            CmpOp::Eq,
                            KExpr::field(
                                KExpr::get(KExpr::var("users"), KExpr::var("i")),
                                "roleId",
                            ),
                            KExpr::int(10),
                        ),
                        vec![KStmt::assign(
                            "out",
                            KExpr::append(
                                KExpr::var("out"),
                                KExpr::get(KExpr::var("users"), KExpr::var("i")),
                            ),
                        )],
                    ),
                    KStmt::assign("i", KExpr::add(KExpr::var("i"), KExpr::int(1))),
                ],
            ))
            .result("out")
            .finish();
        let mut env = Env::new();
        env.bind_table("users", rel);
        (prog, env)
    }

    #[test]
    fn compiled_selection_matches_interpreter_env_and_result() {
        let (prog, env) = selection_program();
        let compiled = compile(&prog);
        let vm = compiled.run(env.clone()).unwrap();
        let interp = run(&prog, env).unwrap();
        assert_eq!(vm, interp);
        assert_eq!(vm.result.as_relation().unwrap().len(), 2);
    }

    #[test]
    fn short_circuit_and_skips_the_right_operand() {
        // `false ∧ (1 = [])` errors in neither engine: the right
        // operand is never evaluated.
        let prog = KernelProgram::builder("f")
            .stmt(KStmt::assign(
                "out",
                KExpr::and(
                    KExpr::bool(false),
                    KExpr::cmp(CmpOp::Eq, KExpr::int(1), KExpr::EmptyList),
                ),
            ))
            .result("out")
            .finish();
        let vm = compile(&prog).run(Env::new()).unwrap();
        let interp = run(&prog, Env::new()).unwrap();
        assert_eq!(vm, interp);
        assert_eq!(vm.result.as_bool(), Some(false));
    }

    #[test]
    fn errors_match_the_interpreter_exactly() {
        // Out-of-bounds get, kind error, assertion failure, fuel — the
        // compiled run must produce the identical error value.
        let cases = vec![
            KernelProgram::builder("oob")
                .stmt(KStmt::assign("xs", KExpr::EmptyList))
                .stmt(KStmt::assign("xs", KExpr::append(KExpr::var("xs"), KExpr::int(1))))
                .stmt(KStmt::assign("out", KExpr::get(KExpr::var("xs"), KExpr::int(5))))
                .result("out")
                .finish(),
            KernelProgram::builder("kind")
                .stmt(KStmt::assign("out", KExpr::add(KExpr::int(1), KExpr::bool(true))))
                .result("out")
                .finish(),
            KernelProgram::builder("assert")
                .stmt(KStmt::Assert(KExpr::bool(false)))
                .stmt(KStmt::assign("out", KExpr::int(0)))
                .result("out")
                .finish(),
            KernelProgram::builder("fuel")
                .stmt(KStmt::assign("out", KExpr::int(0)))
                .stmt(KStmt::while_loop(KExpr::bool(true), vec![KStmt::Skip]))
                .result("out")
                .finish(),
            KernelProgram::builder("unbound")
                .stmt(KStmt::assign("out", KExpr::var("nope")))
                .result("out")
                .finish(),
        ];
        for prog in cases {
            let vm = compile(&prog).run(Env::new());
            let interp = run(&prog, Env::new());
            assert_eq!(vm, interp, "divergence in `{}`", prog.name());
            assert!(vm.is_err());
        }
    }

    #[test]
    fn record_sort_remove_contains_round_trip() {
        let (s, rel) = users_table();
        let prog = KernelProgram::builder("mix")
            .stmt(KStmt::assign("users", KExpr::query(QuerySpec::table_scan("users", s))))
            .stmt(KStmt::assign("sorted", KExpr::SortCustom(Box::new(KExpr::var("users")))))
            .stmt(KStmt::assign(
                "trimmed",
                KExpr::Remove(
                    Box::new(KExpr::var("sorted")),
                    Box::new(KExpr::get(KExpr::var("sorted"), KExpr::int(0))),
                ),
            ))
            .stmt(KStmt::assign(
                "r",
                KExpr::RecordLit(vec![
                    ("n".into(), KExpr::size(KExpr::var("trimmed"))),
                    (
                        "has".into(),
                        KExpr::contains(
                            KExpr::var("trimmed"),
                            KExpr::get(KExpr::var("users"), KExpr::int(1)),
                        ),
                    ),
                ]),
            ))
            .stmt(KStmt::assign("out", KExpr::field(KExpr::var("r"), "n")))
            .result("out")
            .finish();
        let mut env = Env::new();
        env.bind_table("users", rel);
        let vm = compile(&prog).run(env.clone()).unwrap();
        let interp = run(&prog, env).unwrap();
        assert_eq!(vm, interp);
        assert_eq!(vm.result.as_int(), Some(2));
    }

    /// The per-key accumulator idiom (`m[k] += v` via mapget/mapput) —
    /// the loop shape the synthesizer turns into GROUP BY.
    fn sum_by_role_program() -> (KernelProgram, Env) {
        let (s, rel) = users_table();
        let probe = || {
            vec![(
                Ident::new("roleId"),
                KExpr::field(KExpr::get(KExpr::var("users"), KExpr::var("i")), "roleId"),
            )]
        };
        let prog = KernelProgram::builder("sumByRole")
            .stmt(KStmt::assign("m", KExpr::EmptyList))
            .stmt(KStmt::assign("users", KExpr::query(QuerySpec::table_scan("users", s))))
            .stmt(KStmt::assign("i", KExpr::int(0)))
            .stmt(KStmt::while_loop(
                KExpr::cmp(CmpOp::Lt, KExpr::var("i"), KExpr::size(KExpr::var("users"))),
                vec![
                    KStmt::assign(
                        "m",
                        KExpr::mapput(
                            KExpr::var("m"),
                            probe(),
                            "total",
                            KExpr::add(
                                KExpr::mapget(KExpr::var("m"), probe(), "total", KExpr::int(0)),
                                KExpr::field(
                                    KExpr::get(KExpr::var("users"), KExpr::var("i")),
                                    "id",
                                ),
                            ),
                        ),
                    ),
                    KStmt::assign("i", KExpr::add(KExpr::var("i"), KExpr::int(1))),
                ],
            ))
            .result("m")
            .finish();
        let mut env = Env::new();
        env.bind_table("users", rel);
        (prog, env)
    }

    #[test]
    fn compiled_map_accumulator_matches_interpreter() {
        let (prog, env) = sum_by_role_program();
        let vm = compile(&prog).run(env.clone()).unwrap();
        let interp = run(&prog, env).unwrap();
        assert_eq!(vm, interp);
        let m = vm.result.as_relation().unwrap();
        // First-occurrence key order: roleId 10 (ids 1+3), then 20 (id 2).
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(0).unwrap().values(), &[Value::from(10), Value::from(4)]);
        assert_eq!(m.get(1).unwrap().values(), &[Value::from(20), Value::from(2)]);
    }

    #[test]
    fn map_errors_match_the_interpreter_exactly() {
        let probe = |k: i64| vec![(Ident::new("k"), KExpr::int(k))];
        let cases = vec![
            // mapget over a non-list.
            KernelProgram::builder("notamap")
                .stmt(KStmt::assign(
                    "out",
                    KExpr::mapget(KExpr::int(3), probe(1), "v", KExpr::int(0)),
                ))
                .result("out")
                .finish(),
            // Non-scalar probe expression.
            KernelProgram::builder("relprobe")
                .stmt(KStmt::assign(
                    "out",
                    KExpr::mapget(
                        KExpr::EmptyList,
                        vec![(Ident::new("k"), KExpr::EmptyList)],
                        "v",
                        KExpr::int(0),
                    ),
                ))
                .result("out")
                .finish(),
            // Non-scalar default, reached only on a miss.
            KernelProgram::builder("reldefault")
                .stmt(KStmt::assign(
                    "out",
                    KExpr::mapget(KExpr::EmptyList, probe(1), "v", KExpr::EmptyList),
                ))
                .result("out")
                .finish(),
            // mapput probing a key field the entry schema lacks.
            KernelProgram::builder("badkey")
                .stmt(KStmt::assign("m", KExpr::EmptyList))
                .stmt(KStmt::assign(
                    "m",
                    KExpr::mapput(KExpr::var("m"), probe(1), "v", KExpr::int(1)),
                ))
                .stmt(KStmt::assign(
                    "out",
                    KExpr::mapput(
                        KExpr::var("m"),
                        vec![(Ident::new("nope"), KExpr::int(1))],
                        "v",
                        KExpr::int(2),
                    ),
                ))
                .result("out")
                .finish(),
            // Non-scalar written value.
            KernelProgram::builder("relvalue")
                .stmt(KStmt::assign(
                    "out",
                    KExpr::mapput(KExpr::EmptyList, probe(1), "v", KExpr::EmptyList),
                ))
                .result("out")
                .finish(),
        ];
        for prog in cases {
            let vm = compile(&prog).run(Env::new());
            let interp = run(&prog, Env::new());
            assert_eq!(vm, interp, "divergence in `{}`", prog.name());
            assert!(vm.is_err(), "`{}` should error", prog.name());
        }
    }

    #[test]
    fn dispatch_counters_accumulate() {
        let (prog, env) = selection_program();
        let compiled = compile(&prog);
        let read = || {
            vm_metrics()
                .snapshot()
                .counters
                .iter()
                .find(|(n, _)| n.as_str() == "vm.dispatch.append")
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let before = read();
        compiled.run(env).unwrap();
        assert_eq!(read() - before, 2, "two appends in the selection loop");
    }
}
