//! Type checking of kernel programs.
//!
//! Besides rejecting ill-typed fragments, the checker produces the TOR
//! [`TypeEnv`] that parameterizes the synthesizer's template space: every
//! invariant predicate ranges over "the program variables that are in scope"
//! (paper Sec. 4.3), and the enumerator needs their schemas.

use crate::ast::{KExpr, KStmt, KernelProgram};
use qbs_common::{FieldType, Ident, Schema, SchemaRef, Value};
use qbs_tor::{BinOp, TorType, TypeEnv};
use std::collections::BTreeMap;
use std::fmt;

/// A type checking failure.
#[derive(Clone, Debug, PartialEq)]
pub struct TypecheckError {
    /// Human-readable description.
    pub message: String,
}

impl TypecheckError {
    fn new(msg: impl Into<String>) -> Self {
        TypecheckError { message: msg.into() }
    }
}

impl fmt::Display for TypecheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.message)
    }
}

impl std::error::Error for TypecheckError {}

type Result<T> = std::result::Result<T, TypecheckError>;

/// Inferred types of all program variables.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VarTypes {
    vars: BTreeMap<Ident, TorType>,
}

impl VarTypes {
    /// Looks up a variable's type.
    pub fn get(&self, v: &Ident) -> Option<&TorType> {
        self.vars.get(v)
    }

    /// Converts into a TOR type environment for the synthesizer.
    pub fn to_type_env(&self) -> TypeEnv {
        let mut t = TypeEnv::new();
        for (v, ty) in &self.vars {
            t.bind(v.clone(), ty.clone());
        }
        t
    }

    /// Iterates over `(variable, type)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Ident, &TorType)> {
        self.vars.iter()
    }
}

/// Internal inference type: `Pending` marks an empty-list variable whose
/// element schema is fixed by a later `append`.
#[derive(Clone, Debug, PartialEq)]
enum ITy {
    Known(TorType),
    PendingList,
}

struct Checker {
    vars: BTreeMap<Ident, ITy>,
}

const SCALAR_COL: &str = "val";

fn scalar_list_schema(ft: FieldType) -> SchemaRef {
    Schema::anonymous().field(SCALAR_COL, ft).finish()
}

fn scalar_field_type(t: &TorType) -> Result<FieldType> {
    match t {
        TorType::Bool => Ok(FieldType::Bool),
        TorType::Int => Ok(FieldType::Int),
        TorType::Str => Ok(FieldType::Str),
        other => Err(TypecheckError::new(format!("expected scalar type, got {other}"))),
    }
}

impl Checker {
    fn infer(&mut self, e: &KExpr) -> Result<ITy> {
        use KExpr::*;
        Ok(match e {
            Const(v) => ITy::Known(match v {
                Value::Bool(_) => TorType::Bool,
                Value::Int(_) => TorType::Int,
                Value::Str(_) => TorType::Str,
            }),
            EmptyList => ITy::PendingList,
            Var(v) => self
                .vars
                .get(v)
                .cloned()
                .ok_or_else(|| TypecheckError::new(format!("unknown variable `{v}`")))?,
            Field(rec, name) => match self.infer(rec)? {
                ITy::Known(TorType::Record(s)) => {
                    let f = s
                        .field(&name.as_str().into())
                        .map_err(|e| TypecheckError::new(e.to_string()))?;
                    ITy::Known(TorType::from_field(f.ty))
                }
                other => {
                    return Err(TypecheckError::new(format!(
                        "field access on non-record ({other:?})"
                    )))
                }
            },
            RecordLit(fields) => {
                let mut b = Schema::anonymous();
                for (name, fe) in fields {
                    let ft = match self.infer(fe)? {
                        ITy::Known(TorType::Bool) => FieldType::Bool,
                        ITy::Known(TorType::Int) => FieldType::Int,
                        ITy::Known(TorType::Str) => FieldType::Str,
                        other => {
                            return Err(TypecheckError::new(format!(
                                "record field `{name}` must be scalar, got {other:?}"
                            )))
                        }
                    };
                    b = b.field(name.as_str(), ft);
                }
                ITy::Known(TorType::Record(b.finish()))
            }
            Binary(op, a, b) => {
                let ta = self.infer(a)?;
                let tb = self.infer(b)?;
                let want = |t: &ITy, e: TorType, ctx: &str| -> Result<()> {
                    match t {
                        ITy::Known(k) if *k == e => Ok(()),
                        other => Err(TypecheckError::new(format!(
                            "{ctx} expects {e}, got {other:?}"
                        ))),
                    }
                };
                match op {
                    BinOp::And | BinOp::Or => {
                        want(&ta, TorType::Bool, "logical operator")?;
                        want(&tb, TorType::Bool, "logical operator")?;
                        ITy::Known(TorType::Bool)
                    }
                    BinOp::Add | BinOp::Sub => {
                        want(&ta, TorType::Int, "arithmetic")?;
                        want(&tb, TorType::Int, "arithmetic")?;
                        ITy::Known(TorType::Int)
                    }
                    BinOp::Cmp(_) => match (&ta, &tb) {
                        (ITy::Known(x), ITy::Known(y)) if x == y && x.is_scalar() => {
                            ITy::Known(TorType::Bool)
                        }
                        _ => {
                            return Err(TypecheckError::new(format!(
                                "comparison of incompatible operands ({ta:?} vs {tb:?})"
                            )))
                        }
                    },
                }
            }
            Not(x) => match self.infer(x)? {
                ITy::Known(TorType::Bool) => ITy::Known(TorType::Bool),
                other => {
                    return Err(TypecheckError::new(format!(
                        "negation of non-bool ({other:?})"
                    )))
                }
            },
            Query(spec) => ITy::Known(TorType::Rel(spec.schema.clone())),
            Size(r) => match self.infer(r)? {
                ITy::Known(TorType::Rel(_)) | ITy::PendingList => ITy::Known(TorType::Int),
                other => {
                    return Err(TypecheckError::new(format!("size of non-list ({other:?})")))
                }
            },
            Get(r, i) => {
                match self.infer(i)? {
                    ITy::Known(TorType::Int) => {}
                    other => {
                        return Err(TypecheckError::new(format!(
                            "get index must be int, got {other:?}"
                        )))
                    }
                }
                match self.infer(r)? {
                    ITy::Known(TorType::Rel(s)) => ITy::Known(TorType::Record(s)),
                    other => {
                        return Err(TypecheckError::new(format!("get on non-list ({other:?})")))
                    }
                }
            }
            Append(r, x) => {
                let elem = match self.infer(x)? {
                    ITy::Known(TorType::Record(s)) => s,
                    ITy::Known(TorType::Bool) => scalar_list_schema(FieldType::Bool),
                    ITy::Known(TorType::Int) => scalar_list_schema(FieldType::Int),
                    ITy::Known(TorType::Str) => scalar_list_schema(FieldType::Str),
                    other => {
                        return Err(TypecheckError::new(format!(
                            "append of non-record/scalar ({other:?})"
                        )))
                    }
                };
                match self.infer(r)? {
                    ITy::PendingList => {
                        // The append fixes the element schema; the caller
                        // (statement walker) records it for the variable.
                        ITy::Known(TorType::Rel(elem))
                    }
                    ITy::Known(TorType::Rel(s)) => {
                        if s != elem {
                            return Err(TypecheckError::new(format!(
                                "append schema mismatch: list {} vs element {}",
                                s.describe(),
                                elem.describe()
                            )));
                        }
                        ITy::Known(TorType::Rel(s))
                    }
                    other => {
                        return Err(TypecheckError::new(format!(
                            "append to non-list ({other:?})"
                        )))
                    }
                }
            }
            Unique(r) => match self.infer(r)? {
                t @ (ITy::Known(TorType::Rel(_)) | ITy::PendingList) => t,
                other => {
                    return Err(TypecheckError::new(format!("unique of non-list ({other:?})")))
                }
            },
            Sort(fields, r) => match self.infer(r)? {
                ITy::Known(TorType::Rel(s)) => {
                    for f in fields {
                        s.field(f).map_err(|e| TypecheckError::new(e.to_string()))?;
                    }
                    ITy::Known(TorType::Rel(s))
                }
                other => {
                    return Err(TypecheckError::new(format!("sort of non-list ({other:?})")))
                }
            },
            Remove(r, _) => match self.infer(r)? {
                t @ (ITy::Known(TorType::Rel(_)) | ITy::PendingList) => t,
                other => {
                    return Err(TypecheckError::new(format!(
                        "remove from non-list ({other:?})"
                    )))
                }
            },
            SortCustom(r) => match self.infer(r)? {
                t @ (ITy::Known(TorType::Rel(_)) | ITy::PendingList) => t,
                other => {
                    return Err(TypecheckError::new(format!("sort of non-list ({other:?})")))
                }
            },
            Contains(r, x) => {
                match self.infer(r)? {
                    ITy::Known(TorType::Rel(_)) | ITy::PendingList => {}
                    other => {
                        return Err(TypecheckError::new(format!(
                            "contains on non-list ({other:?})"
                        )))
                    }
                }
                self.infer(x)?;
                ITy::Known(TorType::Bool)
            }
            MapGet { map, keys, val_field, default } => {
                let entry = self.map_entry_schema(map, keys, "mapget")?;
                let dty = self.scalar_of(default, "mapget default")?;
                match entry {
                    Some(s) => {
                        let f = s
                            .field(&val_field.as_str().into())
                            .map_err(|e| TypecheckError::new(e.to_string()))?;
                        let vty = TorType::from_field(f.ty);
                        if vty != dty {
                            return Err(TypecheckError::new(format!(
                                "mapget default expects {vty}, got {dty}"
                            )));
                        }
                        ITy::Known(vty)
                    }
                    // Reading the untyped empty map always falls through.
                    None => ITy::Known(dty),
                }
            }
            MapPut { map, keys, val_field, val } => {
                let entry = self.map_entry_schema(map, keys, "mapput")?;
                let vty = self.scalar_of(val, "mapput value")?;
                match entry {
                    Some(s) => {
                        let f = s
                            .field(&val_field.as_str().into())
                            .map_err(|e| TypecheckError::new(e.to_string()))?;
                        let fty = TorType::from_field(f.ty);
                        if fty != vty {
                            return Err(TypecheckError::new(format!(
                                "mapput value expects {fty}, got {vty}"
                            )));
                        }
                        ITy::Known(TorType::Rel(s))
                    }
                    None => {
                        // Writing to the untyped empty map determines the
                        // entry schema: key fields then the value field.
                        let mut b = Schema::anonymous();
                        for (name, ke) in keys {
                            let kt = self.scalar_of(ke, "mapput key")?;
                            b = b.field(name.as_str(), scalar_field_type(&kt)?);
                        }
                        b = b.field(val_field.as_str(), scalar_field_type(&vty)?);
                        ITy::Known(TorType::Rel(b.finish()))
                    }
                }
            }
        })
    }

    /// Infers a scalar-typed subexpression, rejecting lists and records.
    fn scalar_of(&mut self, e: &KExpr, context: &str) -> Result<TorType> {
        match self.infer(e)? {
            ITy::Known(t) if t.is_scalar() => Ok(t),
            other => {
                Err(TypecheckError::new(format!("{context} must be scalar, got {other:?}")))
            }
        }
    }

    /// The entry schema of a `mapget`/`mapput` map operand: `None` while
    /// the map is still the untyped empty list, `Some(schema)` once known
    /// (with every key probe checked against it).
    fn map_entry_schema(
        &mut self,
        map: &KExpr,
        keys: &[(Ident, KExpr)],
        context: &str,
    ) -> Result<Option<SchemaRef>> {
        let entry = match self.infer(map)? {
            ITy::PendingList => None,
            ITy::Known(TorType::Rel(s)) if s.arity() == 0 => None,
            ITy::Known(TorType::Rel(s)) => Some(s),
            other => {
                return Err(TypecheckError::new(format!("{context} on non-map ({other:?})")))
            }
        };
        for (name, ke) in keys {
            let kty = self.scalar_of(ke, &format!("{context} key `{name}`"))?;
            if let Some(s) = &entry {
                let f = s
                    .field(&name.as_str().into())
                    .map_err(|e| TypecheckError::new(e.to_string()))?;
                let fty = TorType::from_field(f.ty);
                if fty != kty {
                    return Err(TypecheckError::new(format!(
                        "{context} key `{name}` expects {fty}, got {kty}"
                    )));
                }
            }
        }
        Ok(entry)
    }

    fn check_stmt(&mut self, s: &KStmt) -> Result<bool> {
        let mut changed = false;
        match s {
            KStmt::Skip => {}
            KStmt::Assign(v, e) => {
                let t = self.infer(e)?;
                match self.vars.get(v) {
                    None => {
                        self.vars.insert(v.clone(), t);
                        changed = true;
                    }
                    Some(old) if *old == t => {}
                    Some(ITy::PendingList) => {
                        // Refinement of an empty-list variable.
                        self.vars.insert(v.clone(), t);
                        changed = true;
                    }
                    Some(old) => {
                        // Re-assigning a pending list keeps the known type.
                        if t == ITy::PendingList {
                            let _ = old;
                        } else {
                            return Err(TypecheckError::new(format!(
                                "variable `{v}` changes type"
                            )));
                        }
                    }
                }
            }
            KStmt::If(c, t, f) => {
                match self.infer(c)? {
                    ITy::Known(TorType::Bool) => {}
                    other => {
                        return Err(TypecheckError::new(format!(
                            "if condition must be bool, got {other:?}"
                        )))
                    }
                }
                for s in t.iter().chain(f) {
                    changed |= self.check_stmt(s)?;
                }
            }
            KStmt::While(c, body) => {
                match self.infer(c)? {
                    ITy::Known(TorType::Bool) => {}
                    other => {
                        return Err(TypecheckError::new(format!(
                            "while condition must be bool, got {other:?}"
                        )))
                    }
                }
                for s in body {
                    changed |= self.check_stmt(s)?;
                }
            }
            KStmt::Assert(e) => match self.infer(e)? {
                ITy::Known(TorType::Bool) => {}
                other => {
                    return Err(TypecheckError::new(format!(
                        "assert must be bool, got {other:?}"
                    )))
                }
            },
        }
        Ok(changed)
    }
}

/// Type-checks a kernel program. `params` supplies the types of fragment
/// parameters (scalars passed into the method).
///
/// # Errors
///
/// Returns a [`TypecheckError`] describing the first inconsistency found.
///
/// # Example
///
/// ```
/// use qbs_kernel::{typecheck, KernelProgram, KExpr, KStmt};
/// use qbs_tor::{TorType, TypeEnv};
///
/// let prog = KernelProgram::builder("f")
///     .stmt(KStmt::assign("x", KExpr::int(1)))
///     .result("x")
///     .finish();
/// let types = typecheck(&prog, &TypeEnv::new()).unwrap();
/// assert_eq!(types.get(&"x".into()), Some(&TorType::Int));
/// ```
pub fn typecheck(prog: &KernelProgram, params: &TypeEnv) -> Result<VarTypes> {
    let mut checker = Checker { vars: BTreeMap::new() };
    for (v, t) in params.iter() {
        checker.vars.insert(v.clone(), ITy::Known(t.clone()));
    }
    // Iterate to a fixpoint so `append`s inside loops refine empty-list
    // variables initialized before the loop.
    for _ in 0..8 {
        let mut changed = false;
        for s in prog.body() {
            changed |= checker.check_stmt(s)?;
        }
        // Refine variables whose appends fixed a schema this round.
        for s in prog.body() {
            refine_appends(s, &mut checker, &mut changed)?;
        }
        if !changed {
            break;
        }
    }
    let mut vars = BTreeMap::new();
    for (v, t) in checker.vars {
        let ty = match t {
            ITy::Known(k) => k,
            // A list that never receives an element stays the empty relation.
            ITy::PendingList => TorType::Rel(Schema::anonymous().finish()),
        };
        vars.insert(v, ty);
    }
    Ok(VarTypes { vars })
}

/// Walks statements looking for `v := append(v, x)` patterns that pin down
/// the schema of a pending-list variable.
fn refine_appends(s: &KStmt, checker: &mut Checker, changed: &mut bool) -> Result<()> {
    match s {
        KStmt::Assign(v, e) => {
            if checker.vars.get(v) == Some(&ITy::PendingList) {
                if let Ok(ITy::Known(t @ TorType::Rel(_))) = checker.infer(e) {
                    checker.vars.insert(v.clone(), ITy::Known(t));
                    *changed = true;
                }
            }
            Ok(())
        }
        KStmt::If(_, t, f) => {
            for s in t.iter().chain(f) {
                refine_appends(s, checker, changed)?;
            }
            Ok(())
        }
        KStmt::While(_, body) => {
            for s in body {
                refine_appends(s, checker, changed)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_tor::{CmpOp, QuerySpec};

    fn users() -> SchemaRef {
        Schema::builder("users")
            .field("id", FieldType::Int)
            .field("roleId", FieldType::Int)
            .finish()
    }

    #[test]
    fn empty_list_refined_by_append_in_loop() {
        let prog = KernelProgram::builder("f")
            .stmt(KStmt::assign("out", KExpr::EmptyList))
            .stmt(KStmt::assign("users", KExpr::query(QuerySpec::table_scan("users", users()))))
            .stmt(KStmt::assign("i", KExpr::int(0)))
            .stmt(KStmt::while_loop(
                KExpr::cmp(CmpOp::Lt, KExpr::var("i"), KExpr::size(KExpr::var("users"))),
                vec![
                    KStmt::assign(
                        "out",
                        KExpr::append(
                            KExpr::var("out"),
                            KExpr::get(KExpr::var("users"), KExpr::var("i")),
                        ),
                    ),
                    KStmt::assign("i", KExpr::add(KExpr::var("i"), KExpr::int(1))),
                ],
            ))
            .result("out")
            .finish();
        let types = typecheck(&prog, &TypeEnv::new()).unwrap();
        match types.get(&"out".into()).unwrap() {
            TorType::Rel(s) => assert_eq!(s.arity(), 2),
            other => panic!("expected relation, got {other}"),
        }
    }

    #[test]
    fn scalar_append_gives_single_column_list() {
        let prog = KernelProgram::builder("f")
            .stmt(KStmt::assign("out", KExpr::EmptyList))
            .stmt(KStmt::assign("out", KExpr::append(KExpr::var("out"), KExpr::int(1))))
            .result("out")
            .finish();
        let types = typecheck(&prog, &TypeEnv::new()).unwrap();
        match types.get(&"out".into()).unwrap() {
            TorType::Rel(s) => {
                assert_eq!(s.arity(), 1);
                assert_eq!(s.fields()[0].ty, FieldType::Int);
            }
            other => panic!("expected relation, got {other}"),
        }
    }

    #[test]
    fn type_change_is_rejected() {
        let prog = KernelProgram::builder("f")
            .stmt(KStmt::assign("x", KExpr::int(1)))
            .stmt(KStmt::assign("x", KExpr::bool(true)))
            .result("x")
            .finish();
        assert!(typecheck(&prog, &TypeEnv::new()).is_err());
    }

    #[test]
    fn params_are_visible() {
        let mut params = TypeEnv::new();
        params.bind_int("limit");
        let prog = KernelProgram::builder("f")
            .stmt(KStmt::assign("x", KExpr::add(KExpr::var("limit"), KExpr::int(1))))
            .result("x")
            .finish();
        assert!(typecheck(&prog, &params).is_ok());
    }

    #[test]
    fn bad_field_access_is_rejected() {
        let prog = KernelProgram::builder("f")
            .stmt(KStmt::assign("users", KExpr::query(QuerySpec::table_scan("users", users()))))
            .stmt(KStmt::assign(
                "x",
                KExpr::field(KExpr::get(KExpr::var("users"), KExpr::int(0)), "missing"),
            ))
            .result("x")
            .finish();
        assert!(typecheck(&prog, &TypeEnv::new()).is_err());
    }

    #[test]
    fn map_accumulator_loop_infers_the_entry_schema() {
        // m := []; while … { m := mapput(m, [roleId = u.roleId], n,
        // mapget(m, …, n, 0) + 1) } — the pending empty list is refined
        // to the entry relation {roleId: Int, n: Int} by the fixpoint.
        let probe = || {
            vec![(
                Ident::new("roleId"),
                KExpr::field(KExpr::get(KExpr::var("users"), KExpr::var("i")), "roleId"),
            )]
        };
        let prog = KernelProgram::builder("f")
            .stmt(KStmt::assign("m", KExpr::EmptyList))
            .stmt(KStmt::assign("users", KExpr::query(QuerySpec::table_scan("users", users()))))
            .stmt(KStmt::assign("i", KExpr::int(0)))
            .stmt(KStmt::while_loop(
                KExpr::cmp(CmpOp::Lt, KExpr::var("i"), KExpr::size(KExpr::var("users"))),
                vec![
                    KStmt::assign(
                        "m",
                        KExpr::mapput(
                            KExpr::var("m"),
                            probe(),
                            "n",
                            KExpr::add(
                                KExpr::mapget(KExpr::var("m"), probe(), "n", KExpr::int(0)),
                                KExpr::int(1),
                            ),
                        ),
                    ),
                    KStmt::assign("i", KExpr::add(KExpr::var("i"), KExpr::int(1))),
                ],
            ))
            .result("m")
            .finish();
        let types = typecheck(&prog, &TypeEnv::new()).unwrap();
        match types.get(&"m".into()).unwrap() {
            TorType::Rel(s) => {
                assert_eq!(s.arity(), 2);
                assert_eq!(s.fields()[0].name.as_str(), "roleId");
                assert_eq!(s.fields()[0].ty, FieldType::Int);
                assert_eq!(s.fields()[1].name.as_str(), "n");
                assert_eq!(s.fields()[1].ty, FieldType::Int);
            }
            other => panic!("expected relation, got {other}"),
        }
    }

    #[test]
    fn mapput_value_type_mismatch_is_rejected() {
        // Writing a bool into an int-typed value field must fail.
        let probe = |k: i64| vec![(Ident::new("k"), KExpr::int(k))];
        let prog = KernelProgram::builder("f")
            .stmt(KStmt::assign("m", KExpr::EmptyList))
            .stmt(KStmt::assign(
                "m",
                KExpr::mapput(KExpr::var("m"), probe(1), "v", KExpr::int(1)),
            ))
            .stmt(KStmt::assign(
                "m",
                KExpr::mapput(KExpr::var("m"), probe(2), "v", KExpr::bool(true)),
            ))
            .result("m")
            .finish();
        assert!(typecheck(&prog, &TypeEnv::new()).is_err());
    }

    #[test]
    fn mapget_probe_type_mismatch_is_rejected() {
        // Probing an int key field with a string is a key type error.
        let prog = KernelProgram::builder("f")
            .stmt(KStmt::assign("m", KExpr::EmptyList))
            .stmt(KStmt::assign(
                "m",
                KExpr::mapput(
                    KExpr::var("m"),
                    vec![(Ident::new("k"), KExpr::int(1))],
                    "v",
                    KExpr::int(1),
                ),
            ))
            .stmt(KStmt::assign(
                "x",
                KExpr::mapget(
                    KExpr::var("m"),
                    vec![(Ident::new("k"), KExpr::str("a"))],
                    "v",
                    KExpr::int(0),
                ),
            ))
            .result("x")
            .finish();
        assert!(typecheck(&prog, &TypeEnv::new()).is_err());
    }
}
