//! Kernel language AST (paper Fig. 4).

use qbs_common::{Ident, Value};
use qbs_tor::{BinOp, CmpOp, QuerySpec};
use std::fmt;

/// A kernel-language expression.
///
/// The grammar follows paper Fig. 4, with two pragmatic extensions used by
/// the fragment compiler: a record literal (`{fi = ei}` appears in the paper
/// grammar) and a boolean `contains` (the lowering of `List.contains(x)`
/// calls, which the synthesizer later re-expresses as TOR `contains`
/// predicates).
#[derive(Clone, PartialEq, Debug)]
pub enum KExpr {
    /// Scalar constant.
    Const(Value),
    /// The empty list `[ ]`.
    EmptyList,
    /// Variable reference.
    Var(Ident),
    /// Field access `e.f`.
    Field(Box<KExpr>, Ident),
    /// Record construction `{fi = ei}`.
    RecordLit(Vec<(Ident, KExpr)>),
    /// Binary operation.
    Binary(BinOp, Box<KExpr>, Box<KExpr>),
    /// Negation `¬e`.
    Not(Box<KExpr>),
    /// Database retrieval `Query(...)`.
    Query(QuerySpec),
    /// `size(e)`.
    Size(Box<KExpr>),
    /// `get_es(er)`.
    Get(Box<KExpr>, Box<KExpr>),
    /// `append(er, es)`.
    Append(Box<KExpr>, Box<KExpr>),
    /// `unique(e)`.
    Unique(Box<KExpr>),
    /// `contains(er, es)` — true when `es` occurs in `er`.
    Contains(Box<KExpr>, Box<KExpr>),
    /// `sort_[f…](e)` — the lowering of `Collections.sort` with a field
    /// comparator (paper Sec. 7.3 "iterating over sorted relations").
    Sort(Vec<qbs_common::FieldRef>, Box<KExpr>),
    /// A sort with an opaque custom comparator (category K in Appendix A).
    /// Runs under the interpreter but has no TOR counterpart, so query
    /// inference fails on fragments using it — as in the paper.
    SortCustom(Box<KExpr>),
    /// In-place element removal, rebuilt functionally (category N).
    /// Runs under the interpreter but has no TOR counterpart.
    Remove(Box<KExpr>, Box<KExpr>),
    /// `mapget` — per-key map read. Maps are represented as entry
    /// relations (one record per key, insertion-ordered); the read returns
    /// `val_field` of the first record whose key fields equal the probe
    /// expressions, or `default` when none matches. This is the lowering
    /// of `map.get(k)` / `map.getOrDefault(k, d)` in per-key accumulator
    /// loops (the `GROUP BY` idiom).
    MapGet {
        /// The map, an entry relation.
        map: Box<KExpr>,
        /// `(key field, probe expression)` pairs; all must match.
        keys: Vec<(Ident, KExpr)>,
        /// The field read from the matching entry.
        val_field: Ident,
        /// Returned when no entry matches.
        default: Box<KExpr>,
    },
    /// `mapput` — per-key map write: replace `val_field` of the matching
    /// entry, or append a fresh `{keys…, val}` record (insertion order is
    /// entry order). The lowering of `map.put(k, v)`.
    MapPut {
        /// The map, an entry relation.
        map: Box<KExpr>,
        /// `(key field, probe expression)` pairs identifying the entry.
        keys: Vec<(Ident, KExpr)>,
        /// The field written on the matching (or fresh) entry.
        val_field: Ident,
        /// The written value.
        val: Box<KExpr>,
    },
}

impl KExpr {
    /// Variable reference.
    pub fn var(name: impl Into<Ident>) -> KExpr {
        KExpr::Var(name.into())
    }

    /// Integer literal.
    pub fn int(i: i64) -> KExpr {
        KExpr::Const(Value::from(i))
    }

    /// Boolean literal.
    pub fn bool(b: bool) -> KExpr {
        KExpr::Const(Value::from(b))
    }

    /// String literal.
    pub fn str(s: &str) -> KExpr {
        KExpr::Const(Value::from(s))
    }

    /// `Query(...)` retrieval.
    pub fn query(spec: QuerySpec) -> KExpr {
        KExpr::Query(spec)
    }

    /// Field access.
    pub fn field(e: KExpr, name: impl Into<Ident>) -> KExpr {
        KExpr::Field(Box::new(e), name.into())
    }

    /// `size(e)`.
    pub fn size(e: KExpr) -> KExpr {
        KExpr::Size(Box::new(e))
    }

    /// `get_idx(rel)`.
    pub fn get(rel: KExpr, idx: KExpr) -> KExpr {
        KExpr::Get(Box::new(rel), Box::new(idx))
    }

    /// `append(rel, elem)`.
    pub fn append(rel: KExpr, elem: KExpr) -> KExpr {
        KExpr::Append(Box::new(rel), Box::new(elem))
    }

    /// `unique(e)`.
    pub fn unique(e: KExpr) -> KExpr {
        KExpr::Unique(Box::new(e))
    }

    /// `contains(rel, elem)`.
    pub fn contains(rel: KExpr, elem: KExpr) -> KExpr {
        KExpr::Contains(Box::new(rel), Box::new(elem))
    }

    /// Binary operation.
    pub fn binary(op: BinOp, a: KExpr, b: KExpr) -> KExpr {
        KExpr::Binary(op, Box::new(a), Box::new(b))
    }

    /// `mapget(map, [(k, probe)…], val_field, default)`.
    pub fn mapget(
        map: KExpr,
        keys: Vec<(Ident, KExpr)>,
        val_field: impl Into<Ident>,
        default: KExpr,
    ) -> KExpr {
        KExpr::MapGet {
            map: Box::new(map),
            keys,
            val_field: val_field.into(),
            default: Box::new(default),
        }
    }

    /// `mapput(map, [(k, probe)…], val_field, val)`.
    pub fn mapput(
        map: KExpr,
        keys: Vec<(Ident, KExpr)>,
        val_field: impl Into<Ident>,
        val: KExpr,
    ) -> KExpr {
        KExpr::MapPut {
            map: Box::new(map),
            keys,
            val_field: val_field.into(),
            val: Box::new(val),
        }
    }

    /// Comparison.
    pub fn cmp(op: CmpOp, a: KExpr, b: KExpr) -> KExpr {
        KExpr::binary(BinOp::Cmp(op), a, b)
    }

    /// Addition.
    #[allow(clippy::should_implement_trait)] // constructor, not arithmetic on KExpr
    pub fn add(a: KExpr, b: KExpr) -> KExpr {
        KExpr::binary(BinOp::Add, a, b)
    }

    /// Conjunction.
    pub fn and(a: KExpr, b: KExpr) -> KExpr {
        KExpr::binary(BinOp::And, a, b)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)] // constructor, not an operator on KExpr
    pub fn not(e: KExpr) -> KExpr {
        KExpr::Not(Box::new(e))
    }

    /// Immediate subexpressions.
    pub fn children(&self) -> Vec<&KExpr> {
        use KExpr::*;
        match self {
            Const(_) | EmptyList | Var(_) | Query(_) => vec![],
            Field(e, _) | Not(e) | Size(e) | Unique(e) | Sort(_, e) | SortCustom(e) => vec![e],
            RecordLit(fs) => fs.iter().map(|(_, e)| e).collect(),
            Binary(_, a, b) | Get(a, b) | Append(a, b) | Contains(a, b) | Remove(a, b) => {
                vec![a, b]
            }
            MapGet { map, keys, default, .. } => {
                let mut out = vec![&**map];
                out.extend(keys.iter().map(|(_, e)| e));
                out.push(default);
                out
            }
            MapPut { map, keys, val, .. } => {
                let mut out = vec![&**map];
                out.extend(keys.iter().map(|(_, e)| e));
                out.push(val);
                out
            }
        }
    }

    /// All variables read by this expression.
    pub fn free_vars(&self) -> Vec<Ident> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_vars(&self, out: &mut Vec<Ident>) {
        if let KExpr::Var(v) = self {
            out.push(v.clone());
        }
        for c in self.children() {
            c.collect_vars(out);
        }
    }
}

/// A kernel-language statement.
#[derive(Clone, PartialEq, Debug)]
pub enum KStmt {
    /// `skip`.
    Skip,
    /// `var := e`.
    Assign(Ident, KExpr),
    /// `if (e) then c1 else c2`.
    If(KExpr, Vec<KStmt>, Vec<KStmt>),
    /// `while (e) do c`.
    While(KExpr, Vec<KStmt>),
    /// `assert e`.
    Assert(KExpr),
}

impl KStmt {
    /// Assignment.
    pub fn assign(var: impl Into<Ident>, e: KExpr) -> KStmt {
        KStmt::Assign(var.into(), e)
    }

    /// `if` with empty else branch.
    pub fn if_then(cond: KExpr, then_branch: Vec<KStmt>) -> KStmt {
        KStmt::If(cond, then_branch, Vec::new())
    }

    /// `if`/`else`.
    pub fn if_else(cond: KExpr, then_branch: Vec<KStmt>, else_branch: Vec<KStmt>) -> KStmt {
        KStmt::If(cond, then_branch, else_branch)
    }

    /// `while` loop.
    pub fn while_loop(cond: KExpr, body: Vec<KStmt>) -> KStmt {
        KStmt::While(cond, body)
    }

    /// Variables assigned anywhere within this statement (including nested
    /// loops/branches) — the "modified variables" the invariant templates
    /// must constrain (paper Sec. 4.3).
    pub fn assigned_vars(&self) -> Vec<Ident> {
        let mut out = Vec::new();
        self.collect_assigned(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_assigned(&self, out: &mut Vec<Ident>) {
        match self {
            KStmt::Skip | KStmt::Assert(_) => {}
            KStmt::Assign(v, _) => out.push(v.clone()),
            KStmt::If(_, t, e) => {
                for s in t.iter().chain(e) {
                    s.collect_assigned(out);
                }
            }
            KStmt::While(_, body) => {
                for s in body {
                    s.collect_assigned(out);
                }
            }
        }
    }
}

/// A complete kernel program: the compiled code fragment plus the result
/// variable QBS infers a query for.
#[derive(Clone, PartialEq, Debug)]
pub struct KernelProgram {
    name: Ident,
    params: Vec<Ident>,
    body: Vec<KStmt>,
    result_var: Ident,
}

impl KernelProgram {
    /// Starts building a program.
    pub fn builder(name: impl Into<Ident>) -> KernelProgramBuilder {
        KernelProgramBuilder {
            name: name.into(),
            params: Vec::new(),
            body: Vec::new(),
            result_var: None,
        }
    }

    /// Fragment name (usually the originating method).
    pub fn name(&self) -> &Ident {
        &self.name
    }

    /// Scalar parameters passed into the fragment (bind parameters of the
    /// eventual SQL).
    pub fn params(&self) -> &[Ident] {
        &self.params
    }

    /// The statements.
    pub fn body(&self) -> &[KStmt] {
        &self.body
    }

    /// The result variable.
    pub fn result_var(&self) -> &Ident {
        &self.result_var
    }

    /// All variables assigned in the program.
    pub fn assigned_vars(&self) -> Vec<Ident> {
        let mut out = Vec::new();
        for s in &self.body {
            s.collect_assigned(&mut out);
        }
        out.sort();
        out.dedup();
        out
    }

    /// Every literal constant appearing in the program (sorted, deduped).
    ///
    /// Bounded verification must include these values in its store
    /// domains: a predicate over a constant the test stores never take is
    /// untestable at the bound, so a candidate dropping that conjunct
    /// would pass unchecked.
    pub fn literals(&self) -> Vec<Value> {
        fn walk_expr(e: &KExpr, out: &mut Vec<Value>) {
            if let KExpr::Const(v) = e {
                out.push(v.clone());
            }
            for c in e.children() {
                walk_expr(c, out);
            }
        }
        fn walk_stmt(s: &KStmt, out: &mut Vec<Value>) {
            match s {
                KStmt::Skip => {}
                KStmt::Assign(_, e) | KStmt::Assert(e) => walk_expr(e, out),
                KStmt::If(c, t, f) => {
                    walk_expr(c, out);
                    for s in t.iter().chain(f) {
                        walk_stmt(s, out);
                    }
                }
                KStmt::While(c, b) => {
                    walk_expr(c, out);
                    for s in b {
                        walk_stmt(s, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        for s in &self.body {
            walk_stmt(s, &mut out);
        }
        out.sort_by(|a, b| a.total_cmp(b));
        out.dedup();
        out
    }
}

/// Builder for [`KernelProgram`].
#[derive(Clone, Debug)]
pub struct KernelProgramBuilder {
    name: Ident,
    params: Vec<Ident>,
    body: Vec<KStmt>,
    result_var: Option<Ident>,
}

impl KernelProgramBuilder {
    /// Declares a scalar parameter.
    pub fn param(mut self, name: impl Into<Ident>) -> Self {
        self.params.push(name.into());
        self
    }

    /// Appends a statement.
    pub fn stmt(mut self, s: KStmt) -> Self {
        self.body.push(s);
        self
    }

    /// Sets the result variable.
    pub fn result(mut self, var: impl Into<Ident>) -> Self {
        self.result_var = Some(var.into());
        self
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if no result variable was set — every QBS fragment has one by
    /// construction (paper Sec. 2.1).
    pub fn finish(self) -> KernelProgram {
        KernelProgram {
            name: self.name,
            params: self.params,
            body: self.body,
            result_var: self.result_var.expect("kernel program requires a result variable"),
        }
    }
}

impl fmt::Display for KernelProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::pretty(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigned_vars_sees_through_nesting() {
        let s = KStmt::while_loop(
            KExpr::bool(true),
            vec![
                KStmt::assign("a", KExpr::int(1)),
                KStmt::if_then(KExpr::bool(true), vec![KStmt::assign("b", KExpr::int(2))]),
            ],
        );
        assert_eq!(s.assigned_vars(), vec![Ident::new("a"), Ident::new("b")]);
    }

    #[test]
    fn free_vars_of_expressions() {
        let e = KExpr::cmp(CmpOp::Lt, KExpr::var("i"), KExpr::size(KExpr::var("users")));
        assert_eq!(e.free_vars(), vec![Ident::new("i"), Ident::new("users")]);
    }

    #[test]
    #[should_panic(expected = "result variable")]
    fn builder_requires_result() {
        let _ = KernelProgram::builder("f").finish();
    }
}
