//! Concrete interpreter for kernel programs.
//!
//! The interpreter provides the executable semantics of identified code
//! fragments. It is used for **differential testing**: the output of the
//! original fragment must equal the evaluation of the inferred TOR
//! postcondition and the rows returned by the generated SQL.

use crate::ast::{KExpr, KStmt, KernelProgram};
use qbs_common::{Ident, Record, Relation, Schema, Value};
use qbs_tor::{BinOp, DynValue, Env};
use std::fmt;

/// Errors raised by the interpreter.
#[derive(Clone, Debug, PartialEq)]
pub enum InterpError {
    /// Unbound variable.
    UnknownVar(Ident),
    /// `Query(...)` against an unbound table.
    UnknownTable(Ident),
    /// Wrong runtime kind for an operation.
    Kind {
        /// Operation context.
        context: &'static str,
        /// Expected kind.
        expected: &'static str,
        /// Found kind.
        found: &'static str,
    },
    /// `get` index out of bounds.
    OutOfBounds {
        /// Requested index.
        index: i64,
        /// List length.
        len: usize,
    },
    /// Field resolution failure.
    Common(qbs_common::CommonError),
    /// A failed `assert`.
    AssertionFailed(String),
    /// The loop fuel budget was exhausted (runaway loop).
    OutOfFuel,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::UnknownVar(v) => write!(f, "unknown variable `{v}`"),
            InterpError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            InterpError::Kind { context, expected, found } => {
                write!(f, "kind error in {context}: expected {expected}, found {found}")
            }
            InterpError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for list of length {len}")
            }
            InterpError::Common(e) => write!(f, "{e}"),
            InterpError::AssertionFailed(s) => write!(f, "assertion failed: {s}"),
            InterpError::OutOfFuel => write!(f, "loop fuel exhausted"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<qbs_common::CommonError> for InterpError {
    fn from(e: qbs_common::CommonError) -> Self {
        InterpError::Common(e)
    }
}

type Result<T> = std::result::Result<T, InterpError>;

/// The outcome of running a kernel program.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Final variable store.
    pub env: Env,
    /// Value of the program's result variable.
    pub result: DynValue,
}

/// Default iteration budget across all loops.
pub(crate) const DEFAULT_FUEL: u64 = 50_000_000;

/// The field name used when scalars are appended to lists: a scalar list is
/// represented as a single-column relation.
pub(crate) const SCALAR_COL: &str = "val";

pub(crate) fn want_rel(v: DynValue, context: &'static str) -> Result<Relation> {
    match v {
        DynValue::Rel(r) => Ok(r),
        other => Err(InterpError::Kind { context, expected: "list", found: other.kind() }),
    }
}

pub(crate) fn want_int(v: DynValue, context: &'static str) -> Result<i64> {
    match v {
        DynValue::Scalar(Value::Int(i)) => Ok(i),
        other => Err(InterpError::Kind { context, expected: "int", found: other.kind() }),
    }
}

pub(crate) fn want_bool(v: DynValue, context: &'static str) -> Result<bool> {
    match v {
        DynValue::Scalar(Value::Bool(b)) => Ok(b),
        other => Err(InterpError::Kind { context, expected: "bool", found: other.kind() }),
    }
}

pub(crate) fn scalar_record(v: Value) -> Record {
    let ty = match &v {
        Value::Bool(_) => qbs_common::FieldType::Bool,
        Value::Int(_) => qbs_common::FieldType::Int,
        Value::Str(_) => qbs_common::FieldType::Str,
    };
    let schema = Schema::anonymous().field(SCALAR_COL, ty).finish();
    Record::new(schema, vec![v])
}

pub(crate) fn values_equal(a: &Record, b: &Record) -> bool {
    a.values() == b.values()
}

pub(crate) fn field_type_of(v: &Value) -> qbs_common::FieldType {
    match v {
        Value::Bool(_) => qbs_common::FieldType::Bool,
        Value::Int(_) => qbs_common::FieldType::Int,
        Value::Str(_) => qbs_common::FieldType::Str,
    }
}

/// Evaluates the key probes of a `mapget`/`mapput` and finds the first
/// matching entry, returning `(map, key values, matching index)` — the
/// same semantics as TOR's `map_probe`, so the kernel interpreter and the
/// TOR postcondition agree by construction.
fn map_probe(
    map: &KExpr,
    keys: &[(Ident, KExpr)],
    env: &Env,
    context: &'static str,
) -> Result<(Relation, Vec<Value>, Option<usize>)> {
    let rel = want_rel(eval_expr(map, env)?, context)?;
    let mut probes = Vec::with_capacity(keys.len());
    for (_, e) in keys {
        match eval_expr(e, env)? {
            DynValue::Scalar(v) => probes.push(v),
            other => {
                return Err(InterpError::Kind {
                    context,
                    expected: "scalar",
                    found: other.kind(),
                })
            }
        }
    }
    // The untyped empty map matches nothing.
    if rel.schema().arity() == 0 {
        return Ok((rel, probes, None));
    }
    let mut key_idx = Vec::with_capacity(keys.len());
    for (name, _) in keys {
        key_idx.push(rel.schema().index_of(&qbs_common::FieldRef::from(name.as_str()))?);
    }
    let found = rel
        .iter()
        .position(|rec| key_idx.iter().zip(&probes).all(|(&i, p)| rec.value_at(i) == p));
    Ok((rel, probes, found))
}

/// Evaluates a kernel expression in an environment.
///
/// This is the reusable evaluation entry point for differential oracles:
/// bind a database's tables into the [`Env`] (e.g. via `qbs_db`'s
/// `Database::env`) and evaluate any fragment expression against the same
/// data the SQL executor sees.
///
/// # Errors
///
/// Propagates any [`InterpError`] (unbound names, kind errors, bounds).
pub fn eval_expr(e: &KExpr, env: &Env) -> Result<DynValue> {
    use KExpr::*;
    match e {
        Const(v) => Ok(DynValue::Scalar(v.clone())),
        EmptyList => Ok(DynValue::Rel(Relation::empty(Schema::anonymous().finish()))),
        Var(v) => env.get(v).cloned().ok_or_else(|| InterpError::UnknownVar(v.clone())),
        Field(rec, name) => match eval_expr(rec, env)? {
            DynValue::Rec(r) => Ok(DynValue::Scalar(r.get(&name.as_str().into())?.clone())),
            other => Err(InterpError::Kind {
                context: "field access",
                expected: "record",
                found: other.kind(),
            }),
        },
        RecordLit(fields) => {
            let mut b = Schema::anonymous();
            let mut values = Vec::with_capacity(fields.len());
            for (name, fe) in fields {
                let v = match eval_expr(fe, env)? {
                    DynValue::Scalar(v) => v,
                    other => {
                        return Err(InterpError::Kind {
                            context: "record literal",
                            expected: "scalar",
                            found: other.kind(),
                        })
                    }
                };
                let ty = match &v {
                    Value::Bool(_) => qbs_common::FieldType::Bool,
                    Value::Int(_) => qbs_common::FieldType::Int,
                    Value::Str(_) => qbs_common::FieldType::Str,
                };
                b = b.field(name.as_str(), ty);
                values.push(v);
            }
            Ok(DynValue::Rec(Record::new(b.finish(), values)))
        }
        Binary(op, a, b) => match op {
            BinOp::And => {
                if !want_bool(eval_expr(a, env)?, "∧")? {
                    return Ok(DynValue::Scalar(Value::from(false)));
                }
                Ok(DynValue::Scalar(Value::from(want_bool(eval_expr(b, env)?, "∧")?)))
            }
            BinOp::Or => {
                if want_bool(eval_expr(a, env)?, "∨")? {
                    return Ok(DynValue::Scalar(Value::from(true)));
                }
                Ok(DynValue::Scalar(Value::from(want_bool(eval_expr(b, env)?, "∨")?)))
            }
            BinOp::Add => Ok(DynValue::Scalar(Value::from(
                want_int(eval_expr(a, env)?, "+")?
                    .wrapping_add(want_int(eval_expr(b, env)?, "+")?),
            ))),
            BinOp::Sub => Ok(DynValue::Scalar(Value::from(
                want_int(eval_expr(a, env)?, "-")?
                    .wrapping_sub(want_int(eval_expr(b, env)?, "-")?),
            ))),
            BinOp::Cmp(c) => {
                let x = eval_expr(a, env)?;
                let y = eval_expr(b, env)?;
                match (x, y) {
                    (DynValue::Scalar(x), DynValue::Scalar(y)) => {
                        Ok(DynValue::Scalar(Value::from(c.test(x.total_cmp(&y)))))
                    }
                    (x, y) => Err(InterpError::Kind {
                        context: "comparison",
                        expected: "scalar",
                        found: if x.as_scalar().is_some() { y.kind() } else { x.kind() },
                    }),
                }
            }
        },
        Not(x) => Ok(DynValue::Scalar(Value::from(!want_bool(eval_expr(x, env)?, "¬")?))),
        Query(spec) => env
            .table(&spec.table)
            .cloned()
            .map(DynValue::Rel)
            .ok_or_else(|| InterpError::UnknownTable(spec.table.clone())),
        Size(r) => Ok(DynValue::Scalar(Value::from(
            want_rel(eval_expr(r, env)?, "size")?.len() as i64,
        ))),
        Get(r, i) => {
            let rel = want_rel(eval_expr(r, env)?, "get")?;
            let idx = want_int(eval_expr(i, env)?, "get index")?;
            if idx < 0 || idx as usize >= rel.len() {
                return Err(InterpError::OutOfBounds { index: idx, len: rel.len() });
            }
            Ok(DynValue::Rec(rel.get(idx as usize).expect("bounds checked").clone()))
        }
        Append(r, x) => {
            let rel = want_rel(eval_expr(r, env)?, "append")?;
            let rec = match eval_expr(x, env)? {
                DynValue::Rec(rec) => rec,
                // Scalar appends build single-column lists.
                DynValue::Scalar(v) => scalar_record(v),
                other => {
                    return Err(InterpError::Kind {
                        context: "append",
                        expected: "record or scalar",
                        found: other.kind(),
                    })
                }
            };
            // Appending to the untyped empty list adopts the record's schema.
            if rel.is_empty() && rel.schema().arity() == 0 {
                return Ok(DynValue::Rel(Relation::from_records(
                    rec.schema().clone(),
                    vec![rec],
                )?));
            }
            Ok(DynValue::Rel(rel.append(rec)?))
        }
        Unique(r) => Ok(DynValue::Rel(want_rel(eval_expr(r, env)?, "unique")?.unique())),
        Sort(fields, r) => {
            let rel = want_rel(eval_expr(r, env)?, "sort")?;
            Ok(DynValue::Rel(rel.sorted_by(fields)?))
        }
        Remove(r, x) => {
            let rel = want_rel(eval_expr(r, env)?, "remove")?;
            let target = eval_expr(x, env)?;
            let mut removed = false;
            let mut rows = Vec::new();
            for rec in rel.iter() {
                let matches = match &target {
                    DynValue::Rec(t) => values_equal(t, rec),
                    DynValue::Scalar(v) => rel.schema().arity() == 1 && rec.value_at(0) == v,
                    DynValue::Rel(_) => false,
                };
                if matches && !removed {
                    removed = true;
                    continue;
                }
                rows.push(rec.clone());
            }
            Ok(DynValue::Rel(
                Relation::from_records(rel.schema().clone(), rows).expect("schema unchanged"),
            ))
        }
        SortCustom(r) => {
            // Opaque comparator: deterministic order by all fields so the
            // interpreter stays usable for differential testing.
            let rel = want_rel(eval_expr(r, env)?, "sort")?;
            let all: Vec<qbs_common::FieldRef> = rel
                .schema()
                .fields()
                .iter()
                .map(|f| qbs_common::FieldRef {
                    qualifier: f.qualifier.clone(),
                    name: f.name.clone(),
                })
                .collect();
            Ok(DynValue::Rel(rel.sorted_by(&all)?))
        }
        MapGet { map, keys, val_field, default } => {
            let (rel, _, found) = map_probe(map, keys, env, "mapget")?;
            match found {
                Some(i) => {
                    let rec = rel.get(i).expect("probe index in range");
                    Ok(DynValue::Scalar(
                        rec.get(&qbs_common::FieldRef::from(val_field.as_str()))?.clone(),
                    ))
                }
                None => match eval_expr(default, env)? {
                    DynValue::Scalar(v) => Ok(DynValue::Scalar(v)),
                    other => Err(InterpError::Kind {
                        context: "mapget default",
                        expected: "scalar",
                        found: other.kind(),
                    }),
                },
            }
        }
        MapPut { map, keys, val_field, val } => {
            let (rel, probes, found) = map_probe(map, keys, env, "mapput")?;
            let v = match eval_expr(val, env)? {
                DynValue::Scalar(v) => v,
                other => {
                    return Err(InterpError::Kind {
                        context: "mapput value",
                        expected: "scalar",
                        found: other.kind(),
                    })
                }
            };
            match found {
                Some(hit) => {
                    let schema = rel.schema().clone();
                    let vi =
                        schema.index_of(&qbs_common::FieldRef::from(val_field.as_str()))?;
                    let rows = rel
                        .iter()
                        .enumerate()
                        .map(|(i, rec)| {
                            if i == hit {
                                let mut values = rec.values().to_vec();
                                values[vi] = v.clone();
                                Record::new(schema.clone(), values)
                            } else {
                                rec.clone()
                            }
                        })
                        .collect();
                    Ok(DynValue::Rel(Relation::from_records(schema, rows)?))
                }
                None => {
                    // Fresh entry: adopt (or build) the entry schema.
                    let schema = if rel.schema().arity() == 0 {
                        let mut b = Schema::anonymous();
                        for ((name, _), pv) in keys.iter().zip(&probes) {
                            b = b.field(name.as_str(), field_type_of(pv));
                        }
                        b.field(val_field.as_str(), field_type_of(&v)).finish()
                    } else {
                        rel.schema().clone()
                    };
                    let mut values = probes;
                    values.push(v);
                    let rec = Record::new(schema.clone(), values);
                    if rel.schema().arity() == 0 {
                        Ok(DynValue::Rel(Relation::from_records(schema, vec![rec])?))
                    } else {
                        Ok(DynValue::Rel(rel.append(rec)?))
                    }
                }
            }
        }
        Contains(r, x) => {
            let rel = want_rel(eval_expr(r, env)?, "contains")?;
            let found = match eval_expr(x, env)? {
                DynValue::Rec(rec) => rel.iter().any(|o| values_equal(&rec, o)),
                DynValue::Scalar(v) => {
                    rel.schema().arity() == 1 && rel.iter().any(|o| o.value_at(0) == &v)
                }
                other => {
                    return Err(InterpError::Kind {
                        context: "contains",
                        expected: "record or scalar",
                        found: other.kind(),
                    })
                }
            };
            Ok(DynValue::Scalar(Value::from(found)))
        }
    }
}

fn exec_block(stmts: &[KStmt], env: &mut Env, fuel: &mut u64) -> Result<()> {
    for s in stmts {
        exec_stmt(s, env, fuel)?;
    }
    Ok(())
}

fn exec_stmt(s: &KStmt, env: &mut Env, fuel: &mut u64) -> Result<()> {
    match s {
        KStmt::Skip => Ok(()),
        KStmt::Assign(v, e) => {
            let val = eval_expr(e, env)?;
            env.bind(v.clone(), val);
            Ok(())
        }
        KStmt::If(c, t, f) => {
            if want_bool(eval_expr(c, env)?, "if condition")? {
                exec_block(t, env, fuel)
            } else {
                exec_block(f, env, fuel)
            }
        }
        KStmt::While(c, body) => {
            while want_bool(eval_expr(c, env)?, "while condition")? {
                if *fuel == 0 {
                    return Err(InterpError::OutOfFuel);
                }
                *fuel -= 1;
                exec_block(body, env, fuel)?;
            }
            Ok(())
        }
        KStmt::Assert(e) => {
            if want_bool(eval_expr(e, env)?, "assert")? {
                Ok(())
            } else {
                Err(InterpError::AssertionFailed(format!("{e:?}")))
            }
        }
    }
}

/// Runs a kernel program against an initial environment (which supplies
/// parameter values via [`Env::bind`] and tables via [`Env::bind_table`]).
///
/// # Errors
///
/// Propagates any [`InterpError`]; `OutOfFuel` guards against diverging
/// loops when fuzzing candidate programs.
///
/// # Example
///
/// ```
/// use qbs_kernel::{run, KernelProgram, KExpr, KStmt};
/// use qbs_tor::Env;
///
/// let prog = KernelProgram::builder("f")
///     .stmt(KStmt::assign("x", KExpr::int(41)))
///     .stmt(KStmt::assign("x", KExpr::add(KExpr::var("x"), KExpr::int(1))))
///     .result("x")
///     .finish();
/// let out = run(&prog, Env::new()).unwrap();
/// assert_eq!(out.result.as_int(), Some(42));
/// ```
pub fn run(prog: &KernelProgram, mut env: Env) -> Result<RunResult> {
    let mut fuel = DEFAULT_FUEL;
    exec_block(prog.body(), &mut env, &mut fuel)?;
    let result = env
        .get(prog.result_var())
        .cloned()
        .ok_or_else(|| InterpError::UnknownVar(prog.result_var().clone()))?;
    Ok(RunResult { env, result })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_common::FieldType;
    use qbs_tor::{CmpOp, QuerySpec};

    fn users_table() -> (qbs_common::SchemaRef, Relation) {
        let s = Schema::builder("users")
            .field("id", FieldType::Int)
            .field("roleId", FieldType::Int)
            .finish();
        let rel = Relation::from_records(
            s.clone(),
            vec![
                Record::new(s.clone(), vec![1.into(), 10.into()]),
                Record::new(s.clone(), vec![2.into(), 20.into()]),
                Record::new(s.clone(), vec![3.into(), 10.into()]),
            ],
        )
        .unwrap();
        (s, rel)
    }

    #[test]
    fn selection_loop_filters() {
        let (s, rel) = users_table();
        let prog = KernelProgram::builder("sel")
            .stmt(KStmt::assign("out", KExpr::EmptyList))
            .stmt(KStmt::assign("users", KExpr::query(QuerySpec::table_scan("users", s))))
            .stmt(KStmt::assign("i", KExpr::int(0)))
            .stmt(KStmt::while_loop(
                KExpr::cmp(CmpOp::Lt, KExpr::var("i"), KExpr::size(KExpr::var("users"))),
                vec![
                    KStmt::if_then(
                        KExpr::cmp(
                            CmpOp::Eq,
                            KExpr::field(
                                KExpr::get(KExpr::var("users"), KExpr::var("i")),
                                "roleId",
                            ),
                            KExpr::int(10),
                        ),
                        vec![KStmt::assign(
                            "out",
                            KExpr::append(
                                KExpr::var("out"),
                                KExpr::get(KExpr::var("users"), KExpr::var("i")),
                            ),
                        )],
                    ),
                    KStmt::assign("i", KExpr::add(KExpr::var("i"), KExpr::int(1))),
                ],
            ))
            .result("out")
            .finish();
        let mut env = Env::new();
        env.bind_table("users", rel);
        let out = run(&prog, env).unwrap();
        let result = out.result.as_relation().unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(result.get(0).unwrap().value_at(0), &Value::from(1));
        assert_eq!(result.get(1).unwrap().value_at(0), &Value::from(3));
    }

    #[test]
    fn scalar_append_builds_single_column_list() {
        let prog = KernelProgram::builder("f")
            .stmt(KStmt::assign("out", KExpr::EmptyList))
            .stmt(KStmt::assign("out", KExpr::append(KExpr::var("out"), KExpr::int(7))))
            .stmt(KStmt::assign("out", KExpr::append(KExpr::var("out"), KExpr::int(8))))
            .result("out")
            .finish();
        let out = run(&prog, Env::new()).unwrap();
        let rel = out.result.as_relation().unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.get(0).unwrap().value_at(0), &Value::from(7));
    }

    #[test]
    fn record_literal_and_field_access() {
        let prog = KernelProgram::builder("f")
            .stmt(KStmt::assign(
                "r",
                KExpr::RecordLit(vec![
                    ("a".into(), KExpr::int(1)),
                    ("b".into(), KExpr::str("x")),
                ]),
            ))
            .stmt(KStmt::assign("out", KExpr::field(KExpr::var("r"), "b")))
            .result("out")
            .finish();
        let out = run(&prog, Env::new()).unwrap();
        assert_eq!(out.result.as_scalar().unwrap().as_str(), Some("x"));
    }

    #[test]
    fn contains_on_scalar_list() {
        let prog = KernelProgram::builder("f")
            .stmt(KStmt::assign("xs", KExpr::EmptyList))
            .stmt(KStmt::assign("xs", KExpr::append(KExpr::var("xs"), KExpr::int(5))))
            .stmt(KStmt::assign("out", KExpr::contains(KExpr::var("xs"), KExpr::int(5))))
            .result("out")
            .finish();
        let out = run(&prog, Env::new()).unwrap();
        assert_eq!(out.result.as_bool(), Some(true));
    }

    /// The `GROUP BY` source idiom: a per-key count accumulator loop,
    /// `m[k.roleId] += 1` spelled with `mapget`/`mapput`.
    fn count_by_role_program() -> (KernelProgram, Env) {
        let (s, rel) = users_table();
        let probe = || {
            vec![(
                Ident::new("roleId"),
                KExpr::field(KExpr::get(KExpr::var("users"), KExpr::var("i")), "roleId"),
            )]
        };
        let prog = KernelProgram::builder("countByRole")
            .stmt(KStmt::assign("m", KExpr::EmptyList))
            .stmt(KStmt::assign("users", KExpr::query(QuerySpec::table_scan("users", s))))
            .stmt(KStmt::assign("i", KExpr::int(0)))
            .stmt(KStmt::while_loop(
                KExpr::cmp(CmpOp::Lt, KExpr::var("i"), KExpr::size(KExpr::var("users"))),
                vec![
                    KStmt::assign(
                        "m",
                        KExpr::mapput(
                            KExpr::var("m"),
                            probe(),
                            "n",
                            KExpr::add(
                                KExpr::mapget(KExpr::var("m"), probe(), "n", KExpr::int(0)),
                                KExpr::int(1),
                            ),
                        ),
                    ),
                    KStmt::assign("i", KExpr::add(KExpr::var("i"), KExpr::int(1))),
                ],
            ))
            .result("m")
            .finish();
        let mut env = Env::new();
        env.bind_table("users", rel);
        (prog, env)
    }

    #[test]
    fn per_key_count_loop_groups_in_first_occurrence_order() {
        let (prog, env) = count_by_role_program();
        let out = run(&prog, env).unwrap();
        let m = out.result.as_relation().unwrap();
        // roleId 10 is seen first, so its entry precedes roleId 20.
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(0).unwrap().values(), &[Value::from(10), Value::from(2)]);
        assert_eq!(m.get(1).unwrap().values(), &[Value::from(20), Value::from(1)]);
        let names: Vec<_> =
            m.schema().fields().iter().map(|f| f.name.as_str().to_string()).collect();
        assert_eq!(names, ["roleId", "n"]);
    }

    #[test]
    fn mapget_miss_returns_the_default_and_mapput_hit_replaces_in_place() {
        let put = |m, k: i64, v: i64| {
            KExpr::mapput(m, vec![(Ident::new("k"), KExpr::int(k))], "v", KExpr::int(v))
        };
        let prog = KernelProgram::builder("f")
            .stmt(KStmt::assign("m", KExpr::EmptyList))
            .stmt(KStmt::assign("m", put(KExpr::var("m"), 1, 10)))
            .stmt(KStmt::assign("m", put(KExpr::var("m"), 2, 20)))
            // Overwrite key 1: the entry order must not change.
            .stmt(KStmt::assign("m", put(KExpr::var("m"), 1, 11)))
            .stmt(KStmt::assign(
                "hit",
                KExpr::mapget(
                    KExpr::var("m"),
                    vec![(Ident::new("k"), KExpr::int(1))],
                    "v",
                    KExpr::int(-1),
                ),
            ))
            .stmt(KStmt::assign(
                "miss",
                KExpr::mapget(
                    KExpr::var("m"),
                    vec![(Ident::new("k"), KExpr::int(9))],
                    "v",
                    KExpr::int(-1),
                ),
            ))
            .stmt(KStmt::assign("out", KExpr::add(KExpr::var("hit"), KExpr::var("miss"))))
            .result("out")
            .finish();
        let out = run(&prog, Env::new()).unwrap();
        assert_eq!(out.result.as_int(), Some(10)); // 11 + (-1)
        let m = out.env.get(&"m".into()).unwrap().as_relation().unwrap();
        assert_eq!(m.get(0).unwrap().values(), &[Value::from(1), Value::from(11)]);
        assert_eq!(m.get(1).unwrap().values(), &[Value::from(2), Value::from(20)]);
    }

    #[test]
    fn map_operations_report_kind_errors() {
        // mapget over a scalar is a list kind error.
        let prog = KernelProgram::builder("f")
            .stmt(KStmt::assign(
                "out",
                KExpr::mapget(
                    KExpr::int(3),
                    vec![(Ident::new("k"), KExpr::int(1))],
                    "v",
                    KExpr::int(0),
                ),
            ))
            .result("out")
            .finish();
        assert_eq!(
            run(&prog, Env::new()),
            Err(InterpError::Kind { context: "mapget", expected: "list", found: "scalar" })
        );
    }

    #[test]
    fn assertion_failure_is_reported() {
        let prog = KernelProgram::builder("f")
            .stmt(KStmt::Assert(KExpr::bool(false)))
            .stmt(KStmt::assign("out", KExpr::int(0)))
            .result("out")
            .finish();
        assert!(matches!(run(&prog, Env::new()), Err(InterpError::AssertionFailed(_))));
    }

    #[test]
    fn runaway_loop_runs_out_of_fuel() {
        let prog = KernelProgram::builder("f")
            .stmt(KStmt::assign("out", KExpr::int(0)))
            .stmt(KStmt::while_loop(KExpr::bool(true), vec![KStmt::Skip]))
            .result("out")
            .finish();
        assert!(matches!(run(&prog, Env::new()), Err(InterpError::OutOfFuel)));
    }
}
