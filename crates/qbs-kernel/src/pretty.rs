//! Pretty printer for kernel programs (used in reports and error messages).

use crate::ast::{KExpr, KStmt, KernelProgram};
use qbs_tor::BinOp;
use std::fmt::Write;

fn expr(e: &KExpr, out: &mut String) {
    use KExpr::*;
    match e {
        Const(v) => {
            let _ = write!(out, "{v:?}");
        }
        EmptyList => out.push_str("[]"),
        Var(v) => out.push_str(v.as_str()),
        Field(r, f) => {
            expr(r, out);
            let _ = write!(out, ".{f}");
        }
        RecordLit(fields) => {
            out.push('{');
            for (i, (n, e)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{n} = ");
                expr(e, out);
            }
            out.push('}');
        }
        Binary(op, a, b) => {
            out.push('(');
            expr(a, out);
            let sym = match op {
                BinOp::And => "&&",
                BinOp::Or => "||",
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Cmp(c) => c.sql(),
            };
            let _ = write!(out, " {sym} ");
            expr(b, out);
            out.push(')');
        }
        Not(x) => {
            out.push('!');
            expr(x, out);
        }
        Query(q) => {
            let _ = write!(out, "Query(SELECT * FROM {})", q.table);
        }
        Size(r) => {
            out.push_str("size(");
            expr(r, out);
            out.push(')');
        }
        Get(r, i) => {
            expr(r, out);
            out.push('[');
            expr(i, out);
            out.push(']');
        }
        Append(r, x) => {
            out.push_str("append(");
            expr(r, out);
            out.push_str(", ");
            expr(x, out);
            out.push(')');
        }
        Unique(r) => {
            out.push_str("unique(");
            expr(r, out);
            out.push(')');
        }
        Contains(r, x) => {
            out.push_str("contains(");
            expr(r, out);
            out.push_str(", ");
            expr(x, out);
            out.push(')');
        }
        Sort(fields, r) => {
            out.push_str("sort[");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{f}");
            }
            out.push_str("](");
            expr(r, out);
            out.push(')');
        }
        Remove(r, x) => {
            out.push_str("remove(");
            expr(r, out);
            out.push_str(", ");
            expr(x, out);
            out.push(')');
        }
        SortCustom(r) => {
            out.push_str("sortWithComparator(");
            expr(r, out);
            out.push(')');
        }
        MapGet { map, keys, val_field, default } => {
            out.push_str("mapget(");
            expr(map, out);
            map_keys(keys, out);
            let _ = write!(out, ", {val_field}, ");
            expr(default, out);
            out.push(')');
        }
        MapPut { map, keys, val_field, val } => {
            out.push_str("mapput(");
            expr(map, out);
            map_keys(keys, out);
            let _ = write!(out, ", {val_field}, ");
            expr(val, out);
            out.push(')');
        }
    }
}

fn map_keys(keys: &[(qbs_common::Ident, KExpr)], out: &mut String) {
    out.push_str(", [");
    for (i, (n, e)) in keys.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{n} = ");
        expr(e, out);
    }
    out.push(']');
}

fn stmt(s: &KStmt, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match s {
        KStmt::Skip => {
            let _ = writeln!(out, "{pad}skip;");
        }
        KStmt::Assign(v, e) => {
            let _ = write!(out, "{pad}{v} := ");
            expr(e, out);
            out.push_str(";\n");
        }
        KStmt::If(c, t, f) => {
            let _ = write!(out, "{pad}if (");
            expr(c, out);
            out.push_str(") {\n");
            for s in t {
                stmt(s, indent + 1, out);
            }
            if f.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in f {
                    stmt(s, indent + 1, out);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        KStmt::While(c, body) => {
            let _ = write!(out, "{pad}while (");
            expr(c, out);
            out.push_str(") {\n");
            for s in body {
                stmt(s, indent + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        KStmt::Assert(e) => {
            let _ = write!(out, "{pad}assert ");
            expr(e, out);
            out.push_str(";\n");
        }
    }
}

/// Renders a kernel program in the paper's concrete syntax (Fig. 2 style).
///
/// # Example
///
/// ```
/// use qbs_kernel::{pretty, KernelProgram, KExpr, KStmt};
/// let p = KernelProgram::builder("f")
///     .stmt(KStmt::assign("x", KExpr::int(1)))
///     .result("x")
///     .finish();
/// assert!(pretty(&p).contains("x := 1;"));
/// ```
pub fn pretty(prog: &KernelProgram) -> String {
    let mut out = String::new();
    let _ = write!(out, "fragment {}(", prog.name());
    for (i, p) in prog.params().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(p.as_str());
    }
    out.push_str(") {\n");
    for s in prog.body() {
        stmt(s, 1, &mut out);
    }
    let _ = writeln!(out, "  return {};", prog.result_var());
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_tor::CmpOp;

    #[test]
    fn renders_nested_control_flow() {
        let p = KernelProgram::builder("f")
            .param("limit")
            .stmt(KStmt::assign("i", KExpr::int(0)))
            .stmt(KStmt::while_loop(
                KExpr::cmp(CmpOp::Lt, KExpr::var("i"), KExpr::var("limit")),
                vec![KStmt::if_else(
                    KExpr::bool(true),
                    vec![KStmt::Skip],
                    vec![KStmt::assign("i", KExpr::add(KExpr::var("i"), KExpr::int(1)))],
                )],
            ))
            .result("i")
            .finish();
        let s = pretty(&p);
        assert!(s.contains("fragment f(limit)"));
        assert!(s.contains("while ((i < limit))"));
        assert!(s.contains("} else {"));
        assert!(s.contains("return i;"));
    }
}
