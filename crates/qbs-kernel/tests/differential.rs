//! Property tests: kernel-language loop idioms agree with their TOR
//! denotations under the two evaluators — the semantic bridge the QBS
//! verification conditions rely on.

use proptest::prelude::*;
use qbs_common::{FieldType, Record, Relation, Schema, SchemaRef, Value};
use qbs_kernel::{run, KExpr, KStmt, KernelProgram};
use qbs_tor::{eval, AggKind, CmpOp, Env, Operand, Pred, QuerySpec, TorExpr};

fn schema() -> SchemaRef {
    Schema::builder("t").field("a", FieldType::Int).field("b", FieldType::Int).finish()
}

prop_compose! {
    fn arb_rel()(rows in prop::collection::vec((0i64..4, 0i64..4), 0..8)) -> Relation {
        let s = schema();
        Relation::from_records(
            s.clone(),
            rows.into_iter()
                .map(|(a, b)| Record::new(s.clone(), vec![Value::from(a), Value::from(b)]))
                .collect(),
        )
        .expect("schema matches")
    }
}

fn counter_loop(body: Vec<KStmt>) -> KStmt {
    let mut body = body;
    body.push(KStmt::assign("i", KExpr::add(KExpr::var("i"), KExpr::int(1))));
    KStmt::while_loop(
        KExpr::cmp(CmpOp::Lt, KExpr::var("i"), KExpr::size(KExpr::var("xs"))),
        body,
    )
}

fn env_with(rel: &Relation) -> Env {
    let mut env = Env::new();
    env.bind_table("t", rel.clone());
    env.bind("xs", rel.clone());
    env
}

proptest! {
    /// A filtering loop denotes σ.
    #[test]
    fn selection_loop_denotes_sigma(rel in arb_rel(), c in 0i64..4) {
        let prog = KernelProgram::builder("sel")
            .stmt(KStmt::assign("xs", KExpr::query(QuerySpec::table_scan("t", schema()))))
            .stmt(KStmt::assign("out", KExpr::EmptyList))
            .stmt(KStmt::assign("i", KExpr::int(0)))
            .stmt(counter_loop(vec![KStmt::if_then(
                KExpr::cmp(
                    CmpOp::Eq,
                    KExpr::field(KExpr::get(KExpr::var("xs"), KExpr::var("i")), "a"),
                    KExpr::int(c),
                ),
                vec![KStmt::assign(
                    "out",
                    KExpr::append(KExpr::var("out"), KExpr::get(KExpr::var("xs"), KExpr::var("i"))),
                )],
            )]))
            .result("out")
            .finish();
        let out = run(&prog, env_with(&rel)).unwrap();
        let denot = TorExpr::select(
            Pred::truth().and_cmp("a".into(), CmpOp::Eq, Operand::Const(c.into())),
            TorExpr::var("xs"),
        );
        let expect = eval(&denot, &env_with(&rel)).unwrap();
        let (got, want) = (out.result.as_relation().unwrap().clone(), expect.as_relation().unwrap().clone());
        prop_assert_eq!(got.len(), want.len());
        for (x, y) in got.iter().zip(want.iter()) {
            prop_assert_eq!(x.values(), y.values());
        }
    }

    /// A counting loop denotes COUNT(σ).
    #[test]
    fn count_loop_denotes_count(rel in arb_rel(), c in 0i64..4) {
        let prog = KernelProgram::builder("cnt")
            .stmt(KStmt::assign("xs", KExpr::query(QuerySpec::table_scan("t", schema()))))
            .stmt(KStmt::assign("n", KExpr::int(0)))
            .stmt(KStmt::assign("i", KExpr::int(0)))
            .stmt(counter_loop(vec![KStmt::if_then(
                KExpr::cmp(
                    CmpOp::Gt,
                    KExpr::field(KExpr::get(KExpr::var("xs"), KExpr::var("i")), "b"),
                    KExpr::int(c),
                ),
                vec![KStmt::assign("n", KExpr::add(KExpr::var("n"), KExpr::int(1)))],
            )]))
            .result("n")
            .finish();
        let out = run(&prog, env_with(&rel)).unwrap();
        let denot = TorExpr::agg(
            AggKind::Count,
            TorExpr::select(
                Pred::truth().and_cmp("b".into(), CmpOp::Gt, Operand::Const(c.into())),
                TorExpr::var("xs"),
            ),
        );
        let expect = eval(&denot, &env_with(&rel)).unwrap();
        prop_assert_eq!(out.result.as_int(), expect.as_int());
    }

    /// A running-max loop denotes MAX(π).
    #[test]
    fn max_loop_denotes_max(rel in arb_rel()) {
        let prog = KernelProgram::builder("mx")
            .stmt(KStmt::assign("xs", KExpr::query(QuerySpec::table_scan("t", schema()))))
            .stmt(KStmt::assign("best", KExpr::int(i64::MIN)))
            .stmt(KStmt::assign("i", KExpr::int(0)))
            .stmt(counter_loop(vec![KStmt::if_then(
                KExpr::cmp(
                    CmpOp::Gt,
                    KExpr::field(KExpr::get(KExpr::var("xs"), KExpr::var("i")), "a"),
                    KExpr::var("best"),
                ),
                vec![KStmt::assign(
                    "best",
                    KExpr::field(KExpr::get(KExpr::var("xs"), KExpr::var("i")), "a"),
                )],
            )]))
            .result("best")
            .finish();
        let out = run(&prog, env_with(&rel)).unwrap();
        let denot = TorExpr::agg(AggKind::Max, TorExpr::proj(vec!["a".into()], TorExpr::var("xs")));
        let expect = eval(&denot, &env_with(&rel)).unwrap();
        prop_assert_eq!(out.result.as_int(), expect.as_int());
    }

    /// A projection loop (scalar appends) denotes π.
    #[test]
    fn projection_loop_denotes_pi(rel in arb_rel()) {
        let prog = KernelProgram::builder("proj")
            .stmt(KStmt::assign("xs", KExpr::query(QuerySpec::table_scan("t", schema()))))
            .stmt(KStmt::assign("out", KExpr::EmptyList))
            .stmt(KStmt::assign("i", KExpr::int(0)))
            .stmt(counter_loop(vec![KStmt::assign(
                "out",
                KExpr::append(
                    KExpr::var("out"),
                    KExpr::field(KExpr::get(KExpr::var("xs"), KExpr::var("i")), "b"),
                ),
            )]))
            .result("out")
            .finish();
        let out = run(&prog, env_with(&rel)).unwrap();
        let denot = TorExpr::proj(vec!["b".into()], TorExpr::var("xs"));
        let expect = eval(&denot, &env_with(&rel)).unwrap();
        let (got, want) = (out.result.as_relation().unwrap().clone(), expect.as_relation().unwrap().clone());
        prop_assert_eq!(got.len(), want.len());
        for (x, y) in got.iter().zip(want.iter()) {
            prop_assert_eq!(x.values(), y.values());
        }
    }
}
