//! Property-based tests: the Thm. 2 equivalences and Appendix C axioms hold
//! under the axiomatic evaluator for arbitrary small relations.

use proptest::prelude::*;
use qbs_common::{FieldType, Record, Relation, Schema, SchemaRef, Value};
use qbs_tor::{
    eval, normalize, AggKind, CmpOp, DynValue, Env, JoinPred, Operand, Pred, TorExpr, TypeEnv,
};

fn t_schema() -> SchemaRef {
    Schema::builder("t").field("a", FieldType::Int).field("b", FieldType::Int).finish()
}

fn u_schema() -> SchemaRef {
    Schema::builder("u").field("a", FieldType::Int).field("c", FieldType::Int).finish()
}

prop_compose! {
    fn arb_rel(schema: SchemaRef)(rows in prop::collection::vec((0i64..4, 0i64..4), 0..6))
        -> Relation
    {
        let records = rows
            .into_iter()
            .map(|(a, b)| Record::new(schema.clone(), vec![Value::from(a), Value::from(b)]))
            .collect();
        Relation::from_records(schema.clone(), records).expect("schema matches")
    }
}

fn env_with(r: Relation, s: Option<Relation>) -> Env {
    let mut env = Env::new();
    env.bind("r", r);
    if let Some(s) = s {
        env.bind("s", s);
    }
    env
}

fn tenv() -> TypeEnv {
    let mut t = TypeEnv::new();
    t.bind_rel("r", t_schema());
    t.bind_rel("s", u_schema());
    t
}

fn pred_gt(field: &str, c: i64) -> Pred {
    Pred::truth().and_cmp(field.into(), CmpOp::Gt, Operand::Const(c.into()))
}

fn assert_equiv(e1: &TorExpr, e2: &TorExpr, env: &Env) {
    let v1 = eval(e1, env).expect("lhs evaluates");
    let v2 = eval(e2, env).expect("rhs evaluates");
    match (&v1, &v2) {
        (DynValue::Rel(a), DynValue::Rel(b)) => {
            let ra: Vec<_> = a.iter().map(|r| r.values().to_vec()).collect();
            let rb: Vec<_> = b.iter().map(|r| r.values().to_vec()).collect();
            assert_eq!(ra, rb, "{e1} vs {e2}");
        }
        _ => assert_eq!(v1, v2, "{e1} vs {e2}"),
    }
}

proptest! {
    /// σφ2(σφ1(r)) = σφ1∧φ2(r)
    #[test]
    fn select_select_fuses(rel in arb_rel(t_schema())) {
        let env = env_with(rel, None);
        let nested = TorExpr::select(pred_gt("a", 1), TorExpr::select(pred_gt("b", 2), TorExpr::var("r")));
        let fused = TorExpr::select(pred_gt("b", 2).and_pred(&pred_gt("a", 1)), TorExpr::var("r"));
        assert_equiv(&nested, &fused, &env);
    }

    /// σφ(πℓ(r)) = πℓ(σφ′(r))
    #[test]
    fn select_projection_commute(rel in arb_rel(t_schema())) {
        let env = env_with(rel, None);
        let lhs = TorExpr::select(pred_gt("a", 1), TorExpr::proj(vec!["a".into()], TorExpr::var("r")));
        let rhs = TorExpr::proj(vec!["a".into()], TorExpr::select(pred_gt("a", 1), TorExpr::var("r")));
        assert_equiv(&lhs, &rhs, &env);
    }

    /// tope(πℓ(r)) = πℓ(tope(r))
    #[test]
    fn top_projection_commute(rel in arb_rel(t_schema()), n in 0i64..8) {
        let env = env_with(rel, None);
        let lhs = TorExpr::top(TorExpr::proj(vec!["b".into()], TorExpr::var("r")), TorExpr::int(n));
        let rhs = TorExpr::proj(vec!["b".into()], TorExpr::top(TorExpr::var("r"), TorExpr::int(n)));
        assert_equiv(&lhs, &rhs, &env);
    }

    /// tope2(tope1(r)) = topmin(e1,e2)(r)
    #[test]
    fn top_top_fuses(rel in arb_rel(t_schema()), n in 0i64..8, m in 0i64..8) {
        let env = env_with(rel, None);
        let lhs = TorExpr::top(TorExpr::top(TorExpr::var("r"), TorExpr::int(n)), TorExpr::int(m));
        let rhs = TorExpr::top(TorExpr::var("r"), TorExpr::int(n.min(m)));
        assert_equiv(&lhs, &rhs, &env);
    }

    /// ⋈ϕ(r1, r2) = σϕ′(⋈True(r1, r2))
    #[test]
    fn join_is_filtered_cross(r in arb_rel(t_schema()), s in arb_rel(u_schema())) {
        let env = env_with(r, Some(s));
        let lhs = TorExpr::join(JoinPred::eq("a", "a"), TorExpr::var("r"), TorExpr::var("s"));
        let cross = TorExpr::join(JoinPred::truth(), TorExpr::var("r"), TorExpr::var("s"));
        let rhs = TorExpr::select(
            Pred::truth().and_cmp("t.a".into(), CmpOp::Eq, Operand::Field("u.a".into())),
            cross,
        );
        assert_equiv(&lhs, &rhs, &env);
    }

    /// ⋈ϕ(πℓ1(r1), πℓ2(r2)) = πℓ′(⋈ϕ(r1, r2))
    #[test]
    fn join_projection_commute(r in arb_rel(t_schema()), s in arb_rel(u_schema())) {
        let env = env_with(r, Some(s));
        let lhs = TorExpr::join(
            JoinPred::eq("a", "a"),
            TorExpr::proj(vec!["a".into()], TorExpr::var("r")),
            TorExpr::proj(vec!["a".into()], TorExpr::var("s")),
        );
        let rhs = TorExpr::proj(
            vec!["t.a".into(), "u.a".into()],
            TorExpr::join(JoinPred::eq("a", "a"), TorExpr::var("r"), TorExpr::var("s")),
        );
        assert_equiv(&lhs, &rhs, &env);
    }

    /// size axiom: size(top_n(r)) = min(n, size(r)); get/top consistency.
    #[test]
    fn top_get_size_axioms(rel in arb_rel(t_schema()), n in 0i64..8) {
        let env = env_with(rel.clone(), None);
        let top_n = eval(&TorExpr::top(TorExpr::var("r"), TorExpr::int(n)), &env).unwrap();
        let got = top_n.as_relation().unwrap();
        prop_assert_eq!(got.len() as i64, n.min(rel.len() as i64));
        for i in 0..got.len() {
            let g = eval(&TorExpr::get(TorExpr::var("r"), TorExpr::int(i as i64)), &env).unwrap();
            prop_assert_eq!(g.as_record().unwrap().values(), got.get(i).unwrap().values());
        }
    }

    /// append is concatenation with a singleton: axioms of Appendix C.
    #[test]
    fn append_extends_by_one(rel in arb_rel(t_schema())) {
        let env = env_with(rel.clone(), None);
        if rel.is_empty() { return Ok(()); }
        let appended = eval(
            &TorExpr::append(TorExpr::var("r"), TorExpr::get(TorExpr::var("r"), TorExpr::int(0))),
            &env,
        ).unwrap();
        let out = appended.as_relation().unwrap();
        prop_assert_eq!(out.len(), rel.len() + 1);
        prop_assert_eq!(out.get(rel.len()).unwrap().values(), rel.get(0).unwrap().values());
    }

    /// unique keeps first occurrences; distinct cardinality ≤ input.
    #[test]
    fn unique_is_idempotent(rel in arb_rel(t_schema())) {
        let env = env_with(rel, None);
        let once = eval(&TorExpr::unique(TorExpr::var("r")), &env).unwrap();
        let twice = eval(&TorExpr::unique(TorExpr::unique(TorExpr::var("r"))), &env).unwrap();
        prop_assert_eq!(once, twice);
    }

    /// sum/max/min over a projection agree with a direct fold.
    #[test]
    fn aggregates_agree_with_fold(rel in arb_rel(t_schema())) {
        let env = env_with(rel.clone(), None);
        let col = TorExpr::proj(vec!["a".into()], TorExpr::var("r"));
        let vals: Vec<i64> = rel.iter().map(|r| r.value_at(0).as_int().unwrap()).collect();
        let sum = eval(&TorExpr::agg(AggKind::Sum, col.clone()), &env).unwrap().as_int().unwrap();
        prop_assert_eq!(sum, vals.iter().sum::<i64>());
        let max = eval(&TorExpr::agg(AggKind::Max, col.clone()), &env).unwrap().as_int().unwrap();
        prop_assert_eq!(max, vals.iter().copied().fold(i64::MIN, i64::max));
        let min = eval(&TorExpr::agg(AggKind::Min, col), &env).unwrap().as_int().unwrap();
        prop_assert_eq!(min, vals.iter().copied().fold(i64::MAX, i64::min));
    }

    /// normalize() preserves semantics on a family of nested shapes.
    #[test]
    fn normalize_preserves_semantics(rel in arb_rel(t_schema()), c1 in 0i64..4, c2 in 0i64..4, n in 0i64..8) {
        let env = env_with(rel, None);
        let shapes = vec![
            TorExpr::select(pred_gt("a", c1), TorExpr::select(pred_gt("b", c2), TorExpr::var("r"))),
            TorExpr::select(pred_gt("a", c1), TorExpr::proj(vec!["a".into(), "b".into()], TorExpr::var("r"))),
            TorExpr::top(TorExpr::top(TorExpr::var("r"), TorExpr::int(n)), TorExpr::int(2)),
            TorExpr::proj(vec!["a".into()], TorExpr::proj(vec!["b".into(), "a".into()], TorExpr::var("r"))),
            TorExpr::select(pred_gt("b", c2), TorExpr::sort(vec!["a".into()], TorExpr::var("r"))),
        ];
        for e in shapes {
            let norm = normalize(&e, &tenv());
            assert_equiv(&e, &norm, &env);
        }
    }

    /// sorting is stable: equal keys preserve input order.
    #[test]
    fn sort_stability(rel in arb_rel(t_schema())) {
        let env = env_with(rel.clone(), None);
        let sorted = eval(&TorExpr::sort(vec!["a".into()], TorExpr::var("r")), &env).unwrap();
        let out = sorted.as_relation().unwrap();
        // Per key, the subsequence of `b` values must match input order.
        for key in 0..4i64 {
            let input_bs: Vec<_> = rel.iter()
                .filter(|r| r.value_at(0).as_int() == Some(key))
                .map(|r| r.value_at(1).clone())
                .collect();
            let output_bs: Vec<_> = out.iter()
                .filter(|r| r.value_at(0).as_int() == Some(key))
                .map(|r| r.value_at(1).clone())
                .collect();
            prop_assert_eq!(input_bs, output_bs);
        }
    }
}
