//! Runtime values and evaluation environments.

use qbs_common::{Ident, Record, Relation, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A runtime value of the TOR / kernel language: scalar, record, or ordered
/// relation.
#[derive(Clone, PartialEq)]
pub enum DynValue {
    /// A scalar.
    Scalar(Value),
    /// An immutable record.
    Rec(Record),
    /// An ordered relation.
    Rel(Relation),
}

impl DynValue {
    /// A short name of the runtime kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            DynValue::Scalar(_) => "scalar",
            DynValue::Rec(_) => "record",
            DynValue::Rel(_) => "relation",
        }
    }

    /// The scalar payload, if any.
    pub fn as_scalar(&self) -> Option<&Value> {
        match self {
            DynValue::Scalar(v) => Some(v),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer scalar.
    pub fn as_int(&self) -> Option<i64> {
        self.as_scalar().and_then(Value::as_int)
    }

    /// The boolean payload, if this is a boolean scalar.
    pub fn as_bool(&self) -> Option<bool> {
        self.as_scalar().and_then(Value::as_bool)
    }

    /// The record payload, if any.
    pub fn as_record(&self) -> Option<&Record> {
        match self {
            DynValue::Rec(r) => Some(r),
            _ => None,
        }
    }

    /// The relation payload, if any.
    pub fn as_relation(&self) -> Option<&Relation> {
        match self {
            DynValue::Rel(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Debug for DynValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynValue::Scalar(v) => write!(f, "{v:?}"),
            DynValue::Rec(r) => write!(f, "{r:?}"),
            DynValue::Rel(r) => write!(f, "{r:?}"),
        }
    }
}

impl From<Value> for DynValue {
    fn from(v: Value) -> Self {
        DynValue::Scalar(v)
    }
}

impl From<Record> for DynValue {
    fn from(r: Record) -> Self {
        DynValue::Rec(r)
    }
}

impl From<Relation> for DynValue {
    fn from(r: Relation) -> Self {
        DynValue::Rel(r)
    }
}

/// A variable store mapping program variables to runtime values.
///
/// # Example
///
/// ```
/// use qbs_tor::{Env, DynValue};
/// use qbs_common::Value;
/// let mut env = Env::new();
/// env.bind("i", Value::from(3));
/// assert_eq!(env.get(&"i".into()).and_then(DynValue::as_int), Some(3));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Env {
    vars: BTreeMap<Ident, DynValue>,
    tables: BTreeMap<Ident, Relation>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Binds a database table, the target of `Query(...)` retrievals.
    pub fn bind_table(&mut self, name: impl Into<Ident>, rel: Relation) {
        self.tables.insert(name.into(), rel);
    }

    /// Looks up a table bound with [`Env::bind_table`].
    pub fn table(&self, name: &Ident) -> Option<&Relation> {
        self.tables.get(name)
    }

    /// Binds (or rebinds) a variable.
    pub fn bind(&mut self, name: impl Into<Ident>, value: impl Into<DynValue>) {
        self.vars.insert(name.into(), value.into());
    }

    /// Looks up a variable.
    pub fn get(&self, name: &Ident) -> Option<&DynValue> {
        self.vars.get(name)
    }

    /// Iterates over bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Ident, &DynValue)> {
        self.vars.iter()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_get() {
        let mut e = Env::new();
        e.bind("x", Value::from(true));
        assert_eq!(e.get(&"x".into()).and_then(DynValue::as_bool), Some(true));
        assert!(e.get(&"y".into()).is_none());
    }

    #[test]
    fn rebinding_overwrites() {
        let mut e = Env::new();
        e.bind("x", Value::from(1));
        e.bind("x", Value::from(2));
        assert_eq!(e.get(&"x".into()).and_then(DynValue::as_int), Some(2));
        assert_eq!(e.len(), 1);
    }
}
