//! Axiomatic evaluator for TOR expressions (paper Appendix C).
//!
//! The evaluator implements the recursive list axioms directly, so it serves
//! as the executable semantics of the theory. It is shared by:
//!
//! * the **bounded verifier** (`qbs-verify`), which checks candidate
//!   invariants/postconditions on exhaustively enumerated small relations;
//! * the **differential tests**, which compare original kernel-program output
//!   against the inferred TOR postcondition and the generated SQL.

use crate::env::{DynValue, Env};
use crate::expr::{AggKind, BinOp, GroupSpec, QuerySpec, TorExpr};
use crate::pred::{JoinPred, Operand, Pred, PredAtom, Probe};
use qbs_common::{Record, Relation, Schema, Value};
use std::collections::HashMap;
use std::fmt;

/// Errors raised during evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// A variable was not bound in the environment.
    UnknownVar(qbs_common::Ident),
    /// A `Query(...)` referenced a table not bound in the environment.
    UnknownTable(qbs_common::Ident),
    /// An operand had the wrong runtime kind (scalar/record/relation).
    Kind {
        /// Operation context.
        context: &'static str,
        /// What was expected.
        expected: &'static str,
        /// What was found.
        found: &'static str,
    },
    /// `get` index outside the relation.
    OutOfBounds {
        /// Requested index.
        index: i64,
        /// Relation length.
        len: usize,
    },
    /// Field resolution failure.
    Common(qbs_common::CommonError),
    /// Aggregate over a relation that is not a single int column.
    BadAggregate(&'static str),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownVar(v) => write!(f, "unknown variable `{v}`"),
            EvalError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            EvalError::Kind { context, expected, found } => {
                write!(f, "kind error in {context}: expected {expected}, found {found}")
            }
            EvalError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for relation of length {len}")
            }
            EvalError::Common(e) => write!(f, "{e}"),
            EvalError::BadAggregate(k) => {
                write!(f, "{k} requires a relation with exactly one int column")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<qbs_common::CommonError> for EvalError {
    fn from(e: qbs_common::CommonError) -> Self {
        EvalError::Common(e)
    }
}

type Result<T> = std::result::Result<T, EvalError>;

fn want_rel(v: DynValue, context: &'static str) -> Result<Relation> {
    match v {
        DynValue::Rel(r) => Ok(r),
        other => Err(EvalError::Kind { context, expected: "relation", found: other.kind() }),
    }
}

fn want_int(v: DynValue, context: &'static str) -> Result<i64> {
    match v {
        DynValue::Scalar(Value::Int(i)) => Ok(i),
        other => Err(EvalError::Kind { context, expected: "int", found: other.kind() }),
    }
}

fn want_bool(v: DynValue, context: &'static str) -> Result<bool> {
    match v {
        DynValue::Scalar(Value::Bool(b)) => Ok(b),
        other => Err(EvalError::Kind { context, expected: "bool", found: other.kind() }),
    }
}

/// Evaluates a selection predicate on one record.
fn eval_pred(p: &Pred, rec: &Record, env: &Env) -> Result<bool> {
    for atom in p.atoms() {
        match atom {
            PredAtom::Cmp { lhs, op, rhs } => {
                let l = rec.get(lhs)?.clone();
                let r = match rhs {
                    Operand::Const(v) => v.clone(),
                    Operand::Field(fr) => rec.get(fr)?.clone(),
                    Operand::Param(p) => match env.get(p) {
                        Some(DynValue::Scalar(v)) => v.clone(),
                        Some(other) => {
                            return Err(EvalError::Kind {
                                context: "predicate parameter",
                                expected: "scalar",
                                found: other.kind(),
                            })
                        }
                        None => return Err(EvalError::UnknownVar(p.clone())),
                    },
                };
                if !op.test(l.total_cmp(&r)) {
                    return Ok(false);
                }
            }
            PredAtom::Contains { probe, rel } => {
                let relation = want_rel(eval(rel, env)?, "contains")?;
                let found = match probe {
                    Probe::Record => relation.iter().any(|other| records_equal(rec, other)),
                    Probe::Field(fr) => {
                        let v = rec.get(fr)?;
                        relation.iter().any(|other| other.value_at(0) == v)
                    }
                };
                if !found {
                    return Ok(false);
                }
            }
        }
    }
    Ok(true)
}

/// Record equality by field values (schemas may differ in qualifiers, e.g. a
/// projected copy versus the original).
fn records_equal(a: &Record, b: &Record) -> bool {
    a.values() == b.values()
}

fn eval_join_pred(p: &JoinPred, l: &Record, r: &Record) -> Result<bool> {
    for atom in p.atoms() {
        let lv = l.get(&atom.left)?;
        let rv = r.get(&atom.right)?;
        if !atom.op.test(lv.total_cmp(rv)) {
            return Ok(false);
        }
    }
    Ok(true)
}

fn eval_join(p: &JoinPred, left: &Relation, right: &Relation) -> Result<Relation> {
    let joined = Schema::join(left.schema(), right.schema()).into_ref();
    let mut rows = Vec::new();
    // Axiom order: for each record of r1 (in order), pair with each matching
    // record of r2 (in order) — cat(⋈′(h, r2), ⋈(t, r2)).
    for l in left {
        for r in right {
            if eval_join_pred(p, l, r)? {
                rows.push(l.join(r, &joined));
            }
        }
    }
    Relation::from_records(joined, rows).map_err(EvalError::from)
}

fn eval_agg(kind: AggKind, rel: &Relation) -> Result<Value> {
    if kind == AggKind::Count {
        return Ok(Value::from(rel.len() as i64));
    }
    if rel.schema().arity() != 1 || rel.schema().fields()[0].ty != qbs_common::FieldType::Int {
        return Err(EvalError::BadAggregate(kind.sql()));
    }
    let nums = rel.iter().map(|r| r.value_at(0).as_int().expect("typed int column"));
    Ok(Value::from(match kind {
        AggKind::Sum => nums.sum::<i64>(),
        // The paper defines max([]) = -∞ and min([]) = +∞; we represent the
        // infinities by the extreme i64 values.
        AggKind::Max => nums.fold(i64::MIN, i64::max),
        AggKind::Min => nums.fold(i64::MAX, i64::min),
        AggKind::Count => unreachable!("handled above"),
    }))
}

/// Accumulator for one group of [`TorExpr::Group`].
struct GroupAcc {
    key: Vec<Value>,
    acc: i64,
}

fn eval_group(spec: &GroupSpec, rel: &Relation, env: &Env) -> Result<Relation> {
    let _ = env;
    let schema = rel.schema();
    let key_idx: Vec<usize> = spec
        .keys
        .iter()
        .map(|(_, src)| schema.index_of(src))
        .collect::<std::result::Result<_, _>>()?;
    let agg_idx = match (&spec.agg_field, spec.agg) {
        (_, AggKind::Count) => None,
        (Some(fr), _) => {
            let i = schema.index_of(fr)?;
            if schema.fields()[i].ty != qbs_common::FieldType::Int {
                return Err(EvalError::BadAggregate(spec.agg.sql()));
            }
            Some(i)
        }
        (None, _) => return Err(EvalError::BadAggregate(spec.agg.sql())),
    };
    let mut out = Schema::anonymous();
    for ((name, _), &i) in spec.keys.iter().zip(&key_idx) {
        out = out.field(name.as_str(), schema.fields()[i].ty);
    }
    out = out.field(spec.val_name.as_str(), qbs_common::FieldType::Int);
    let out = out.finish();

    // First-occurrence key order: the axiom-level semantics match the
    // engine's HashAggregate operator.
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut groups: Vec<GroupAcc> = Vec::new();
    for rec in rel {
        let key: Vec<Value> = key_idx.iter().map(|&i| rec.value_at(i).clone()).collect();
        let v = match agg_idx {
            None => 0,
            Some(i) => match rec.value_at(i) {
                Value::Int(n) => *n,
                _ => return Err(EvalError::BadAggregate(spec.agg.sql())),
            },
        };
        match index.get(&key) {
            Some(&g) => {
                let acc = &mut groups[g].acc;
                *acc = match spec.agg {
                    AggKind::Count => acc.wrapping_add(1),
                    AggKind::Sum => acc.wrapping_add(v),
                    AggKind::Max => (*acc).max(v),
                    AggKind::Min => (*acc).min(v),
                };
            }
            None => {
                index.insert(key.clone(), groups.len());
                let acc = if spec.agg == AggKind::Count { 1 } else { v };
                groups.push(GroupAcc { key, acc });
            }
        }
    }
    let rows = groups
        .into_iter()
        .map(|g| {
            let mut values = g.key;
            values.push(Value::from(g.acc));
            Record::new(out.clone(), values)
        })
        .collect();
    Relation::from_records(out, rows).map_err(EvalError::from)
}

/// Evaluates the key probes of a `MapGet`/`MapPut` and finds the first
/// matching entry, returning `(map, key values, matching index)`.
fn map_probe(
    map: &TorExpr,
    keys: &[(qbs_common::Ident, TorExpr)],
    env: &Env,
    context: &'static str,
) -> Result<(Relation, Vec<Value>, Option<usize>)> {
    let rel = want_rel(eval(map, env)?, context)?;
    let mut probes = Vec::with_capacity(keys.len());
    for (_, e) in keys {
        match eval(e, env)? {
            DynValue::Scalar(v) => probes.push(v),
            other => {
                return Err(EvalError::Kind {
                    context,
                    expected: "scalar",
                    found: other.kind(),
                })
            }
        }
    }
    // The untyped empty map matches nothing.
    if rel.schema().arity() == 0 {
        return Ok((rel, probes, None));
    }
    let mut key_idx = Vec::with_capacity(keys.len());
    for (name, _) in keys {
        key_idx.push(rel.schema().index_of(&qbs_common::FieldRef::from(name.as_str()))?);
    }
    let found = rel
        .iter()
        .position(|rec| key_idx.iter().zip(&probes).all(|(&i, p)| rec.value_at(i) == p));
    Ok((rel, probes, found))
}

/// Evaluates a TOR expression in `env`.
///
/// `Query(...)` nodes read tables bound with [`Env::bind_table`].
///
/// # Errors
///
/// Returns an [`EvalError`] for unbound variables/tables, kind mismatches,
/// `get` out of bounds, unresolvable fields, or malformed aggregates. The
/// bounded verifier treats an erroring formula as *falsified* — a candidate
/// invariant that dereferences out of range is simply wrong.
///
/// # Example
///
/// ```
/// use qbs_common::{Schema, FieldType, Record, Relation, Value};
/// use qbs_tor::{eval, Env, TorExpr, DynValue};
///
/// let s = Schema::builder("t").field("a", FieldType::Int).finish();
/// let rel = Relation::from_records(
///     s.clone(),
///     vec![Record::new(s.clone(), vec![Value::from(5)])],
/// ).unwrap();
/// let mut env = Env::new();
/// env.bind("r", rel);
/// let v = eval(&TorExpr::size(TorExpr::var("r")), &env).unwrap();
/// assert_eq!(v.as_int(), Some(1));
/// ```
pub fn eval(e: &TorExpr, env: &Env) -> Result<DynValue> {
    use TorExpr::*;
    match e {
        Const(v) => Ok(DynValue::Scalar(v.clone())),
        EmptyList => {
            // The bare empty list has no schema; producers should prefer
            // `Relation::empty`. We give it the empty anonymous schema, and
            // relation equality against it is value-based (see `Formula`
            // handling in qbs-verify, which compares via records).
            Ok(DynValue::Rel(Relation::empty(Schema::anonymous().finish())))
        }
        Var(v) => env.get(v).cloned().ok_or_else(|| EvalError::UnknownVar(v.clone())),
        Field(rec, fr) => match eval(rec, env)? {
            DynValue::Rec(r) => Ok(DynValue::Scalar(r.get(fr)?.clone())),
            other => Err(EvalError::Kind {
                context: "field access",
                expected: "record",
                found: other.kind(),
            }),
        },
        Binary(op, a, b) => match op {
            BinOp::And => {
                if !want_bool(eval(a, env)?, "∧")? {
                    return Ok(DynValue::Scalar(Value::from(false)));
                }
                Ok(DynValue::Scalar(Value::from(want_bool(eval(b, env)?, "∧")?)))
            }
            BinOp::Or => {
                if want_bool(eval(a, env)?, "∨")? {
                    return Ok(DynValue::Scalar(Value::from(true)));
                }
                Ok(DynValue::Scalar(Value::from(want_bool(eval(b, env)?, "∨")?)))
            }
            BinOp::Add => {
                let x = want_int(eval(a, env)?, "+")?;
                let y = want_int(eval(b, env)?, "+")?;
                Ok(DynValue::Scalar(Value::from(x.wrapping_add(y))))
            }
            BinOp::Sub => {
                let x = want_int(eval(a, env)?, "-")?;
                let y = want_int(eval(b, env)?, "-")?;
                Ok(DynValue::Scalar(Value::from(x.wrapping_sub(y))))
            }
            BinOp::Cmp(c) => {
                let x = eval(a, env)?;
                let y = eval(b, env)?;
                match (x, y) {
                    (DynValue::Scalar(x), DynValue::Scalar(y)) => {
                        Ok(DynValue::Scalar(Value::from(c.test(x.total_cmp(&y)))))
                    }
                    (x, y) => Err(EvalError::Kind {
                        context: "comparison",
                        expected: "scalar",
                        found: if x.as_scalar().is_some() { y.kind() } else { x.kind() },
                    }),
                }
            }
        },
        Not(x) => Ok(DynValue::Scalar(Value::from(!want_bool(eval(x, env)?, "¬")?))),
        Query(QuerySpec { table, .. }) => env
            .table(table)
            .cloned()
            .map(DynValue::Rel)
            .ok_or_else(|| EvalError::UnknownTable(table.clone())),
        Size(r) => {
            let rel = want_rel(eval(r, env)?, "size")?;
            Ok(DynValue::Scalar(Value::from(rel.len() as i64)))
        }
        Get(r, i) => {
            let rel = want_rel(eval(r, env)?, "get")?;
            let idx = want_int(eval(i, env)?, "get index")?;
            if idx < 0 || idx as usize >= rel.len() {
                return Err(EvalError::OutOfBounds { index: idx, len: rel.len() });
            }
            Ok(DynValue::Rec(rel.get(idx as usize).expect("bounds checked").clone()))
        }
        Top(r, i) => {
            let rel = want_rel(eval(r, env)?, "top")?;
            let idx = want_int(eval(i, env)?, "top count")?;
            Ok(DynValue::Rel(rel.top(idx.max(0) as usize)))
        }
        Proj(fields, r) => {
            let rel = want_rel(eval(r, env)?, "projection")?;
            let out = rel.schema().project(fields)?.into_ref();
            let mut rows = Vec::with_capacity(rel.len());
            for rec in &rel {
                rows.push(rec.project(fields, &out)?);
            }
            Ok(DynValue::Rel(Relation::from_records(out, rows)?))
        }
        Select(p, r) => {
            let rel = want_rel(eval(r, env)?, "selection")?;
            let mut rows = Vec::new();
            for rec in &rel {
                if eval_pred(p, rec, env)? {
                    rows.push(rec.clone());
                }
            }
            Ok(DynValue::Rel(Relation::from_records(rel.schema().clone(), rows)?))
        }
        Join(p, a, b) => {
            let left = match eval(a, env)? {
                DynValue::Rel(r) => r,
                // ⋈′(e, r2): a single record joins as a singleton relation.
                DynValue::Rec(rec) => Relation::from_records(rec.schema().clone(), vec![rec])?,
                other => {
                    return Err(EvalError::Kind {
                        context: "join",
                        expected: "relation or record",
                        found: other.kind(),
                    })
                }
            };
            let right = want_rel(eval(b, env)?, "join")?;
            Ok(DynValue::Rel(eval_join(p, &left, &right)?))
        }
        Agg(kind, r) => {
            let rel = want_rel(eval(r, env)?, "aggregate")?;
            Ok(DynValue::Scalar(eval_agg(*kind, &rel)?))
        }
        Append(r, x) => {
            let rel = want_rel(eval(r, env)?, "append")?;
            let rec = match eval(x, env)? {
                DynValue::Rec(rec) => rec,
                // Scalar appends build single-column lists (mirrors the
                // kernel interpreter, which models Java lists of scalars as
                // single-column relations).
                DynValue::Scalar(v) => {
                    let ty = match &v {
                        Value::Bool(_) => qbs_common::FieldType::Bool,
                        Value::Int(_) => qbs_common::FieldType::Int,
                        Value::Str(_) => qbs_common::FieldType::Str,
                    };
                    let schema = Schema::anonymous().field("val", ty).finish();
                    Record::new(schema, vec![v])
                }
                other => {
                    return Err(EvalError::Kind {
                        context: "append",
                        expected: "record or scalar",
                        found: other.kind(),
                    })
                }
            };
            // Appending to the untyped empty list adopts the record's schema.
            if rel.is_empty() && rel.schema().arity() == 0 {
                return Ok(DynValue::Rel(Relation::from_records(
                    rec.schema().clone(),
                    vec![rec],
                )?));
            }
            // Appends across qualifier-differing schemas of equal shape are
            // value-compatible; rebuild the record under the list's schema.
            if rel.schema() != rec.schema() && rel.schema().arity() == rec.schema().arity() {
                let rec = Record::new(rel.schema().clone(), rec.values().to_vec());
                return Ok(DynValue::Rel(rel.append(rec)?));
            }
            Ok(DynValue::Rel(rel.append(rec)?))
        }
        Concat(a, b) => {
            let x = want_rel(eval(a, env)?, "concat")?;
            let y = want_rel(eval(b, env)?, "concat")?;
            // Concatenating with the schemaless empty list is identity.
            if x.is_empty() && x.schema().arity() == 0 {
                return Ok(DynValue::Rel(y));
            }
            if y.is_empty() && y.schema().arity() == 0 {
                return Ok(DynValue::Rel(x));
            }
            Ok(DynValue::Rel(x.concat(&y)?))
        }
        Sort(fields, r) => {
            let rel = want_rel(eval(r, env)?, "sort")?;
            Ok(DynValue::Rel(rel.sorted_by(fields)?))
        }
        Unique(r) => {
            let rel = want_rel(eval(r, env)?, "unique")?;
            Ok(DynValue::Rel(rel.unique()))
        }
        Contains(x, r) => {
            let rel = want_rel(eval(r, env)?, "contains")?;
            let found = match eval(x, env)? {
                DynValue::Rec(rec) => rel.iter().any(|other| records_equal(&rec, other)),
                DynValue::Scalar(v) => {
                    if rel.schema().arity() != 1 {
                        return Err(EvalError::Kind {
                            context: "contains",
                            expected: "single-column relation",
                            found: "wider relation",
                        });
                    }
                    rel.iter().any(|other| other.value_at(0) == &v)
                }
                other => {
                    return Err(EvalError::Kind {
                        context: "contains",
                        expected: "record or scalar",
                        found: other.kind(),
                    })
                }
            };
            Ok(DynValue::Scalar(Value::from(found)))
        }
        RecLit(fields) => {
            let mut b = Schema::anonymous();
            let mut values = Vec::with_capacity(fields.len());
            for (name, fe) in fields {
                let v = match eval(fe, env)? {
                    DynValue::Scalar(v) => v,
                    other => {
                        return Err(EvalError::Kind {
                            context: "record literal",
                            expected: "scalar",
                            found: other.kind(),
                        })
                    }
                };
                let ty = match &v {
                    Value::Bool(_) => qbs_common::FieldType::Bool,
                    Value::Int(_) => qbs_common::FieldType::Int,
                    Value::Str(_) => qbs_common::FieldType::Str,
                };
                b = b.field(name.as_str(), ty);
                values.push(v);
            }
            Ok(DynValue::Rec(Record::new(b.finish(), values)))
        }
        Group(spec, r) => {
            let rel = want_rel(eval(r, env)?, "group")?;
            Ok(DynValue::Rel(eval_group(spec, &rel, env)?))
        }
        MapGet { map, keys, val_field, default } => {
            let (rel, _, found) = map_probe(map, keys, env, "mapget")?;
            match found {
                Some(i) => {
                    let rec = rel.get(i).expect("probe index in range");
                    Ok(DynValue::Scalar(
                        rec.get(&qbs_common::FieldRef::from(val_field.as_str()))?.clone(),
                    ))
                }
                None => match eval(default, env)? {
                    DynValue::Scalar(v) => Ok(DynValue::Scalar(v)),
                    other => Err(EvalError::Kind {
                        context: "mapget default",
                        expected: "scalar",
                        found: other.kind(),
                    }),
                },
            }
        }
        MapPut { map, keys, val_field, val } => {
            let (rel, probes, found) = map_probe(map, keys, env, "mapput")?;
            let v = match eval(val, env)? {
                DynValue::Scalar(v) => v,
                other => {
                    return Err(EvalError::Kind {
                        context: "mapput value",
                        expected: "scalar",
                        found: other.kind(),
                    })
                }
            };
            match found {
                Some(hit) => {
                    let schema = rel.schema().clone();
                    let vi =
                        schema.index_of(&qbs_common::FieldRef::from(val_field.as_str()))?;
                    let rows = rel
                        .iter()
                        .enumerate()
                        .map(|(i, rec)| {
                            if i == hit {
                                let mut values = rec.values().to_vec();
                                values[vi] = v.clone();
                                Record::new(schema.clone(), values)
                            } else {
                                rec.clone()
                            }
                        })
                        .collect();
                    Ok(DynValue::Rel(Relation::from_records(schema, rows)?))
                }
                None => {
                    // Fresh entry: adopt (or build) the entry schema.
                    let schema = if rel.schema().arity() == 0 {
                        let mut b = Schema::anonymous();
                        for ((name, _), pv) in keys.iter().zip(&probes) {
                            b = b.field(name.as_str(), field_type_of(pv));
                        }
                        b.field(val_field.as_str(), field_type_of(&v)).finish()
                    } else {
                        rel.schema().clone()
                    };
                    let mut values = probes;
                    values.push(v);
                    let rec = Record::new(schema.clone(), values);
                    if rel.schema().arity() == 0 {
                        Ok(DynValue::Rel(Relation::from_records(schema, vec![rec])?))
                    } else {
                        Ok(DynValue::Rel(rel.append(rec)?))
                    }
                }
            }
        }
    }
}

fn field_type_of(v: &Value) -> qbs_common::FieldType {
    match v {
        Value::Bool(_) => qbs_common::FieldType::Bool,
        Value::Int(_) => qbs_common::FieldType::Int,
        Value::Str(_) => qbs_common::FieldType::Str,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use qbs_common::{FieldType, SchemaRef};

    fn users_schema() -> SchemaRef {
        Schema::builder("users")
            .field("id", FieldType::Int)
            .field("roleId", FieldType::Int)
            .finish()
    }

    fn roles_schema() -> SchemaRef {
        Schema::builder("roles")
            .field("roleId", FieldType::Int)
            .field("label", FieldType::Str)
            .finish()
    }

    fn env() -> Env {
        let us = users_schema();
        let rs = roles_schema();
        let users = Relation::from_records(
            us.clone(),
            vec![
                Record::new(us.clone(), vec![1.into(), 10.into()]),
                Record::new(us.clone(), vec![2.into(), 20.into()]),
                Record::new(us.clone(), vec![3.into(), 10.into()]),
            ],
        )
        .unwrap();
        let roles = Relation::from_records(
            rs.clone(),
            vec![
                Record::new(rs.clone(), vec![10.into(), "admin".into()]),
                Record::new(rs.clone(), vec![30.into(), "guest".into()]),
            ],
        )
        .unwrap();
        let mut e = Env::new();
        e.bind("users", users.clone());
        e.bind("roles", roles);
        e.bind_table("users", users);
        e
    }

    #[test]
    fn join_order_follows_axioms() {
        // ⋈ iterates left in order, pairing with matching right records:
        // users 1 and 3 match role 10; output order must be [1, 3].
        let e = TorExpr::join(
            JoinPred::eq("roleId", "roleId"),
            TorExpr::var("users"),
            TorExpr::var("roles"),
        );
        let out = eval(&e, &env()).unwrap();
        let rel = out.as_relation().unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.get(0).unwrap().get(&"users.id".into()).unwrap(), &Value::from(1));
        assert_eq!(rel.get(1).unwrap().get(&"users.id".into()).unwrap(), &Value::from(3));
    }

    #[test]
    fn join_with_record_left_is_singleton() {
        let rec = TorExpr::get(TorExpr::var("users"), TorExpr::int(0));
        let e = TorExpr::join(JoinPred::eq("roleId", "roleId"), rec, TorExpr::var("roles"));
        let out = eval(&e, &env()).unwrap();
        assert_eq!(out.as_relation().unwrap().len(), 1);
    }

    #[test]
    fn select_filters_in_order() {
        let p = Pred::truth().and_cmp("roleId".into(), CmpOp::Eq, Operand::Const(10.into()));
        let e = TorExpr::select(p, TorExpr::var("users"));
        let out = eval(&e, &env()).unwrap();
        let rel = out.as_relation().unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.get(0).unwrap().value_at(0), &Value::from(1));
    }

    #[test]
    fn top_and_get_axioms() {
        let top1 = eval(&TorExpr::top(TorExpr::var("users"), TorExpr::int(1)), &env()).unwrap();
        assert_eq!(top1.as_relation().unwrap().len(), 1);
        let g = eval(&TorExpr::get(TorExpr::var("users"), TorExpr::int(2)), &env()).unwrap();
        assert_eq!(g.as_record().unwrap().value_at(0), &Value::from(3));
        let oob = eval(&TorExpr::get(TorExpr::var("users"), TorExpr::int(5)), &env());
        assert!(matches!(oob, Err(EvalError::OutOfBounds { .. })));
    }

    #[test]
    fn aggregates_on_projection() {
        let ids = TorExpr::proj(vec!["id".into()], TorExpr::var("users"));
        let e = env();
        assert_eq!(
            eval(&TorExpr::agg(AggKind::Sum, ids.clone()), &e).unwrap().as_int(),
            Some(6)
        );
        assert_eq!(
            eval(&TorExpr::agg(AggKind::Max, ids.clone()), &e).unwrap().as_int(),
            Some(3)
        );
        assert_eq!(
            eval(&TorExpr::agg(AggKind::Min, ids.clone()), &e).unwrap().as_int(),
            Some(1)
        );
        assert_eq!(
            eval(&TorExpr::agg(AggKind::Count, TorExpr::var("users")), &e).unwrap().as_int(),
            Some(3)
        );
    }

    #[test]
    fn empty_aggregates_use_extremes() {
        let p = Pred::truth().and_cmp("id".into(), CmpOp::Gt, Operand::Const(100.into()));
        let none = TorExpr::proj(vec!["id".into()], TorExpr::select(p, TorExpr::var("users")));
        let e = env();
        assert_eq!(
            eval(&TorExpr::agg(AggKind::Sum, none.clone()), &e).unwrap().as_int(),
            Some(0)
        );
        assert_eq!(
            eval(&TorExpr::agg(AggKind::Max, none.clone()), &e).unwrap().as_int(),
            Some(i64::MIN)
        );
        assert_eq!(
            eval(&TorExpr::agg(AggKind::Min, none), &e).unwrap().as_int(),
            Some(i64::MAX)
        );
    }

    #[test]
    fn query_reads_bound_table() {
        let q = TorExpr::Query(QuerySpec::table_scan("users", users_schema()));
        let out = eval(&q, &env()).unwrap();
        assert_eq!(out.as_relation().unwrap().len(), 3);
    }

    #[test]
    fn contains_scalar_and_record() {
        let e = env();
        let ids = TorExpr::proj(vec!["id".into()], TorExpr::var("users"));
        let yes = TorExpr::contains(TorExpr::int(2), ids.clone());
        assert_eq!(eval(&yes, &e).unwrap().as_bool(), Some(true));
        let no = TorExpr::contains(TorExpr::int(9), ids);
        assert_eq!(eval(&no, &e).unwrap().as_bool(), Some(false));
        let rec = TorExpr::get(TorExpr::var("users"), TorExpr::int(0));
        let yes = TorExpr::contains(rec, TorExpr::var("users"));
        assert_eq!(eval(&yes, &e).unwrap().as_bool(), Some(true));
    }

    #[test]
    fn unique_after_projection() {
        let e = env();
        let p = TorExpr::unique(TorExpr::proj(vec!["roleId".into()], TorExpr::var("users")));
        let out = eval(&p, &e).unwrap();
        let rel = out.as_relation().unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.get(0).unwrap().value_at(0), &Value::from(10));
    }

    #[test]
    fn and_short_circuits_errors() {
        // i < size(users) ∧ get_i(...) with i out of range: the guard makes
        // the whole conjunction false instead of erroring.
        let e = env();
        let guard =
            TorExpr::cmp(CmpOp::Lt, TorExpr::int(5), TorExpr::size(TorExpr::var("users")));
        let body = TorExpr::cmp(
            CmpOp::Eq,
            TorExpr::field(TorExpr::get(TorExpr::var("users"), TorExpr::int(5)), "id"),
            TorExpr::int(0),
        );
        let both = TorExpr::binary(BinOp::And, guard, body);
        assert_eq!(eval(&both, &e).unwrap().as_bool(), Some(false));
    }
}
