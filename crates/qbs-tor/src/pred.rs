//! Selection and join predicates (the `ϕσ` and `ϕ⋈` functions of Fig. 6).

use crate::expr::{CmpOp, TorExpr};
use qbs_common::{FieldRef, Ident, Value};
use std::fmt;

/// The right-hand side of a field comparison in a selection predicate.
#[derive(Clone, PartialEq, Debug)]
pub enum Operand {
    /// A literal constant (`e.fi op c`).
    Const(Value),
    /// Another field of the same record (`e.fi op e.fj`).
    Field(FieldRef),
    /// A program variable treated as a runtime constant — the paper's
    /// selections "that involve program variables that are passed into the
    /// method". Becomes a bind parameter in the generated SQL.
    Param(Ident),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Const(v) => write!(f, "{v:?}"),
            Operand::Field(fr) => write!(f, "e.{fr}"),
            Operand::Param(p) => write!(f, "${p}"),
        }
    }
}

/// What is probed for membership by a `contains` atom.
#[derive(Clone, PartialEq, Debug)]
pub enum Probe {
    /// The whole current record (`contains(e, er)`).
    Record,
    /// A single field of the current record (the paper's "e or one of e's
    /// fields is contained in the second \[relation\]").
    Field(FieldRef),
}

impl fmt::Display for Probe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Probe::Record => write!(f, "e"),
            Probe::Field(fr) => write!(f, "e.{fr}"),
        }
    }
}

/// One conjunct of a selection predicate.
#[derive(Clone, PartialEq, Debug)]
pub enum PredAtom {
    /// `e.fi op rhs`.
    Cmp {
        /// Field of the record under test.
        lhs: FieldRef,
        /// Comparison operator.
        op: CmpOp,
        /// Constant, sibling field, or program parameter.
        rhs: Operand,
    },
    /// `contains(probe, rel)` — membership in another relation.
    Contains {
        /// The record or record field probed.
        probe: Probe,
        /// The relation searched (an arbitrary TOR expression).
        rel: Box<TorExpr>,
    },
}

impl fmt::Display for PredAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredAtom::Cmp { lhs, op, rhs } => write!(f, "e.{lhs} {op} {rhs}"),
            PredAtom::Contains { probe, rel } => write!(f, "contains({probe}, {rel})"),
        }
    }
}

/// A selection function `ϕσ`: a conjunction of [`PredAtom`]s.
///
/// The empty conjunction is `True` (selects everything).
///
/// # Example
///
/// ```
/// use qbs_tor::{Pred, CmpOp, Operand};
/// let p = Pred::truth().and_cmp("status".into(), CmpOp::Eq, Operand::Const(0.into()));
/// assert_eq!(p.atoms().len(), 1);
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Pred {
    atoms: Vec<PredAtom>,
}

impl Pred {
    /// The always-true predicate (empty conjunction).
    pub fn truth() -> Pred {
        Pred { atoms: Vec::new() }
    }

    /// A predicate from conjuncts.
    pub fn new(atoms: Vec<PredAtom>) -> Pred {
        Pred { atoms }
    }

    /// The conjuncts.
    pub fn atoms(&self) -> &[PredAtom] {
        &self.atoms
    }

    /// True when this is the empty conjunction.
    pub fn is_truth(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Conjoins another atom.
    pub fn and(mut self, atom: PredAtom) -> Pred {
        self.atoms.push(atom);
        self
    }

    /// Convenience: conjoin a field comparison.
    pub fn and_cmp(self, lhs: FieldRef, op: CmpOp, rhs: Operand) -> Pred {
        self.and(PredAtom::Cmp { lhs, op, rhs })
    }

    /// Conjunction of two predicates (`σϕ2(σϕ1(r)) = σϕ1∧ϕ2(r)`).
    pub fn and_pred(mut self, other: &Pred) -> Pred {
        self.atoms.extend(other.atoms.iter().cloned());
        self
    }

    /// Collects free program variables (parameters and variables inside
    /// `contains` relations).
    pub fn collect_free_vars(&self, out: &mut Vec<Ident>) {
        for a in &self.atoms {
            match a {
                PredAtom::Cmp { rhs: Operand::Param(p), .. } => out.push(p.clone()),
                PredAtom::Cmp { .. } => {}
                PredAtom::Contains { rel, .. } => {
                    out.extend(rel.free_vars());
                }
            }
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "True");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// One conjunct of a join predicate: `e1.fi op e2.fj`.
#[derive(Clone, PartialEq, Debug)]
pub struct JoinAtom {
    /// Field of the left record.
    pub left: FieldRef,
    /// Comparison operator.
    pub op: CmpOp,
    /// Field of the right record.
    pub right: FieldRef,
}

impl fmt::Display for JoinAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l.{} {} r.{}", self.left, self.op, self.right)
    }
}

/// A join function `ϕ⋈`: a conjunction of [`JoinAtom`]s; empty = cross
/// product (`⋈_True`).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct JoinPred {
    atoms: Vec<JoinAtom>,
}

impl JoinPred {
    /// The always-true join predicate (cross product).
    pub fn truth() -> JoinPred {
        JoinPred { atoms: Vec::new() }
    }

    /// A join predicate from conjuncts.
    pub fn new(atoms: Vec<JoinAtom>) -> JoinPred {
        JoinPred { atoms }
    }

    /// Convenience: a single-equality join predicate.
    pub fn eq(left: impl Into<FieldRef>, right: impl Into<FieldRef>) -> JoinPred {
        JoinPred {
            atoms: vec![JoinAtom { left: left.into(), op: CmpOp::Eq, right: right.into() }],
        }
    }

    /// The conjuncts.
    pub fn atoms(&self) -> &[JoinAtom] {
        &self.atoms
    }

    /// True when this is a cross product.
    pub fn is_truth(&self) -> bool {
        self.atoms.is_empty()
    }

    /// True when every conjunct is an equality — the planner's condition for
    /// choosing a hash join.
    pub fn is_equi(&self) -> bool {
        !self.atoms.is_empty() && self.atoms.iter().all(|a| a.op == CmpOp::Eq)
    }
}

impl fmt::Display for JoinPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "True");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_is_empty_conjunction() {
        assert!(Pred::truth().is_truth());
        assert!(JoinPred::truth().is_truth());
        assert_eq!(Pred::truth().to_string(), "True");
    }

    #[test]
    fn and_pred_concatenates() {
        let a = Pred::truth().and_cmp("x".into(), CmpOp::Eq, Operand::Const(1.into()));
        let b = Pred::truth().and_cmp("y".into(), CmpOp::Gt, Operand::Const(2.into()));
        let c = a.and_pred(&b);
        assert_eq!(c.atoms().len(), 2);
    }

    #[test]
    fn equi_join_detection() {
        let j = JoinPred::eq("roleId", "roleId");
        assert!(j.is_equi());
        let c = JoinPred::new(vec![JoinAtom {
            left: "a".into(),
            op: CmpOp::Lt,
            right: "b".into(),
        }]);
        assert!(!c.is_equi());
        assert!(!JoinPred::truth().is_equi());
    }

    #[test]
    fn pred_free_vars_include_params() {
        let p = Pred::truth().and_cmp("x".into(), CmpOp::Eq, Operand::Param("uid".into()));
        let mut vs = Vec::new();
        p.collect_free_vars(&mut vs);
        assert_eq!(vs, vec![Ident::new("uid")]);
    }
}
