//! The Theory of Ordered Relations (TOR) from the QBS paper (Sec. 3).
//!
//! The TOR is "essentially relational algebra defined in terms of lists
//! instead of sets": its operators (`get`, `top`, `π`, `σ`, `⋈`, `sort`,
//! `unique`, aggregates, `append`/concatenation, `contains`) define both the
//! *contents* and the *order* of their outputs. QBS uses TOR expressions for
//! loop invariants and postconditions; postconditions in *translatable form*
//! convert directly to SQL (paper Fig. 8).
//!
//! This crate provides:
//!
//! * the expression AST ([`TorExpr`], [`Pred`], [`JoinPred`]) — paper Fig. 6;
//! * an axiomatic evaluator ([`eval`]) implementing the Appendix C axioms,
//!   shared by the bounded verifier and the differential tests;
//! * type inference ([`infer_type`]) used by the synthesizer's enumerator;
//! * algebraic equivalences (Thm. 2) and the [`trans`] normalization into
//!   translatable expressions (Appendix B);
//! * the [`order_fields`] function (paper Fig. 9) that computes the `ORDER BY`
//!   list preserving nested record order.
//!
//! # Example
//!
//! ```
//! use qbs_common::{Schema, FieldType};
//! use qbs_tor::{TorExpr, TypeEnv, infer_type, TorType};
//!
//! let users = Schema::builder("users")
//!     .field("id", FieldType::Int)
//!     .field("roleId", FieldType::Int)
//!     .finish();
//! let mut tenv = TypeEnv::new();
//! tenv.bind_rel("users", users.clone());
//! let e = TorExpr::size(TorExpr::var("users"));
//! assert_eq!(infer_type(&e, &tenv).unwrap(), TorType::Int);
//! ```

mod env;
mod equiv;
mod eval;
mod expr;
mod pred;
mod trans;
mod ty;

pub use env::{DynValue, Env};
pub use equiv::normalize;
pub use eval::{eval, EvalError};
pub use expr::{AggKind, BinOp, CmpOp, GroupSpec, QuerySpec, TorExpr};
pub use pred::{JoinAtom, JoinPred, Operand, Pred, PredAtom, Probe};
pub use trans::{
    order_fields, trans, trans_rel, BaseExpr, GroupedExpr, PosAtom, PosOperand, PosProbe,
    ScalarQuery, ScalarRhs, SortedExpr, TransError, TransExpr, TransResult, ROWID,
};
pub use ty::{infer_type, TorType, TypeEnv, TypeError};
