//! Static types of TOR expressions and schema-aware type inference.
//!
//! The synthesizer's enumerator is type-directed: it only builds candidate
//! expressions that type-check against the schemas of the relations in scope,
//! which prunes the template space dramatically (paper Sec. 4.3 restricts
//! candidate expressions to "the same static type as lv").

use crate::expr::{AggKind, BinOp, CmpOp, GroupSpec, QuerySpec, TorExpr};
use crate::pred::{Operand, Pred, PredAtom, Probe};
use qbs_common::{FieldType, Ident, Schema, SchemaRef};
use std::collections::BTreeMap;
use std::fmt;

/// The type of a TOR expression.
#[derive(Clone, PartialEq, Debug)]
pub enum TorType {
    /// Boolean scalar.
    Bool,
    /// Integer scalar.
    Int,
    /// String scalar.
    Str,
    /// A record with the given schema.
    Record(SchemaRef),
    /// An ordered relation with the given schema.
    Rel(SchemaRef),
}

impl TorType {
    /// The scalar type corresponding to a field type.
    pub fn from_field(ft: FieldType) -> TorType {
        match ft {
            FieldType::Bool => TorType::Bool,
            FieldType::Int => TorType::Int,
            FieldType::Str => TorType::Str,
        }
    }

    /// True for `Bool`/`Int`/`Str`.
    pub fn is_scalar(&self) -> bool {
        matches!(self, TorType::Bool | TorType::Int | TorType::Str)
    }

    /// The relation schema, if this is a relation type.
    pub fn rel_schema(&self) -> Option<&SchemaRef> {
        match self {
            TorType::Rel(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for TorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TorType::Bool => write!(f, "bool"),
            TorType::Int => write!(f, "int"),
            TorType::Str => write!(f, "str"),
            TorType::Record(s) => write!(f, "record{}", s.describe()),
            TorType::Rel(s) => write!(f, "rel{}", s.describe()),
        }
    }
}

/// Errors produced by [`infer_type`].
#[derive(Clone, Debug, PartialEq)]
pub enum TypeError {
    /// Variable not bound in the type environment.
    UnknownVar(Ident),
    /// An operand had an unexpected type.
    Mismatch {
        /// Where the mismatch occurred.
        context: String,
        /// Expected description.
        expected: String,
        /// Found type.
        found: String,
    },
    /// A field reference failed to resolve.
    Field(qbs_common::CommonError),
    /// The expression's type cannot be determined (e.g. the empty list).
    CannotInfer(String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnknownVar(v) => write!(f, "unknown variable `{v}`"),
            TypeError::Mismatch { context, expected, found } => {
                write!(f, "type error in {context}: expected {expected}, found {found}")
            }
            TypeError::Field(e) => write!(f, "{e}"),
            TypeError::CannotInfer(what) => write!(f, "cannot infer type of {what}"),
        }
    }
}

impl std::error::Error for TypeError {}

impl From<qbs_common::CommonError> for TypeError {
    fn from(e: qbs_common::CommonError) -> Self {
        TypeError::Field(e)
    }
}

/// Maps program variables to TOR types.
#[derive(Clone, Debug, Default)]
pub struct TypeEnv {
    vars: BTreeMap<Ident, TorType>,
}

impl TypeEnv {
    /// An empty environment.
    pub fn new() -> TypeEnv {
        TypeEnv::default()
    }

    /// Binds a variable to an arbitrary type.
    pub fn bind(&mut self, name: impl Into<Ident>, ty: TorType) {
        self.vars.insert(name.into(), ty);
    }

    /// Binds a relation-typed variable.
    pub fn bind_rel(&mut self, name: impl Into<Ident>, schema: SchemaRef) {
        self.bind(name, TorType::Rel(schema));
    }

    /// Binds an integer variable.
    pub fn bind_int(&mut self, name: impl Into<Ident>) {
        self.bind(name, TorType::Int);
    }

    /// Looks up a variable.
    pub fn get(&self, name: &Ident) -> Option<&TorType> {
        self.vars.get(name)
    }

    /// Iterates over all bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Ident, &TorType)> {
        self.vars.iter()
    }
}

fn mismatch(context: &str, expected: &str, found: &TorType) -> TypeError {
    TypeError::Mismatch {
        context: context.to_string(),
        expected: expected.to_string(),
        found: found.to_string(),
    }
}

fn rel_of(e: &TorExpr, tenv: &TypeEnv, context: &str) -> Result<SchemaRef, TypeError> {
    match infer_type(e, tenv)? {
        TorType::Rel(s) => Ok(s),
        other => Err(mismatch(context, "relation", &other)),
    }
}

fn int_of(e: &TorExpr, tenv: &TypeEnv, context: &str) -> Result<(), TypeError> {
    match infer_type(e, tenv)? {
        TorType::Int => Ok(()),
        other => Err(mismatch(context, "int", &other)),
    }
}

/// Checks a selection predicate against the element schema; returns `Ok` when
/// every atom resolves and compares compatible types.
fn check_pred(p: &Pred, elem: &SchemaRef, tenv: &TypeEnv) -> Result<(), TypeError> {
    for atom in p.atoms() {
        match atom {
            PredAtom::Cmp { lhs, op, rhs } => {
                let lty = TorType::from_field(elem.field(lhs)?.ty);
                let rty = match rhs {
                    Operand::Const(v) => match v {
                        qbs_common::Value::Bool(_) => TorType::Bool,
                        qbs_common::Value::Int(_) => TorType::Int,
                        qbs_common::Value::Str(_) => TorType::Str,
                    },
                    Operand::Field(fr) => TorType::from_field(elem.field(fr)?.ty),
                    Operand::Param(v) => {
                        tenv.get(v).cloned().ok_or_else(|| TypeError::UnknownVar(v.clone()))?
                    }
                };
                if lty != rty {
                    return Err(mismatch(
                        &format!("predicate `{atom}`"),
                        &lty.to_string(),
                        &rty,
                    ));
                }
                if matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge)
                    && lty == TorType::Bool
                {
                    return Err(mismatch(&format!("predicate `{atom}`"), "ordered type", &lty));
                }
            }
            PredAtom::Contains { probe, rel } => {
                let rs = rel_of(rel, tenv, "contains")?;
                match probe {
                    Probe::Record => {
                        // Record membership requires compatible arity; exact
                        // schema equality is checked dynamically.
                        if rs.arity() != elem.arity() {
                            return Err(TypeError::Mismatch {
                                context: format!("predicate `{atom}`"),
                                expected: format!("relation of arity {}", elem.arity()),
                                found: format!("relation of arity {}", rs.arity()),
                            });
                        }
                    }
                    Probe::Field(fr) => {
                        let fty = elem.field(fr)?.ty;
                        if rs.arity() != 1 {
                            return Err(TypeError::Mismatch {
                                context: format!("predicate `{atom}`"),
                                expected: "single-column relation".to_string(),
                                found: format!("relation of arity {}", rs.arity()),
                            });
                        }
                        if rs.fields()[0].ty != fty {
                            return Err(TypeError::Mismatch {
                                context: format!("predicate `{atom}`"),
                                expected: fty.to_string(),
                                found: rs.fields()[0].ty.to_string(),
                            });
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Infers the type of a TOR expression under `tenv`.
///
/// # Errors
///
/// Returns a [`TypeError`] when the expression is ill-typed, references
/// unknown variables/fields, or (for the bare empty list) has no principal
/// type.
pub fn infer_type(e: &TorExpr, tenv: &TypeEnv) -> Result<TorType, TypeError> {
    use TorExpr::*;
    match e {
        Const(v) => Ok(match v {
            qbs_common::Value::Bool(_) => TorType::Bool,
            qbs_common::Value::Int(_) => TorType::Int,
            qbs_common::Value::Str(_) => TorType::Str,
        }),
        EmptyList => Err(TypeError::CannotInfer("the empty list".to_string())),
        Var(v) => tenv.get(v).cloned().ok_or_else(|| TypeError::UnknownVar(v.clone())),
        Field(rec, fr) => match infer_type(rec, tenv)? {
            TorType::Record(s) => Ok(TorType::from_field(s.field(fr)?.ty)),
            other => Err(mismatch("field access", "record", &other)),
        },
        Binary(op, a, b) => {
            let ta = infer_type(a, tenv)?;
            let tb = infer_type(b, tenv)?;
            match op {
                BinOp::And | BinOp::Or => {
                    if ta == TorType::Bool && tb == TorType::Bool {
                        Ok(TorType::Bool)
                    } else {
                        Err(mismatch(
                            "logical operator",
                            "bool",
                            if ta == TorType::Bool { &tb } else { &ta },
                        ))
                    }
                }
                BinOp::Add | BinOp::Sub => {
                    if ta == TorType::Int && tb == TorType::Int {
                        Ok(TorType::Int)
                    } else {
                        Err(mismatch(
                            "arithmetic",
                            "int",
                            if ta == TorType::Int { &tb } else { &ta },
                        ))
                    }
                }
                BinOp::Cmp(_) => {
                    if ta == tb && ta.is_scalar() {
                        Ok(TorType::Bool)
                    } else {
                        Err(mismatch("comparison", &ta.to_string(), &tb))
                    }
                }
            }
        }
        Not(x) => match infer_type(x, tenv)? {
            TorType::Bool => Ok(TorType::Bool),
            other => Err(mismatch("negation", "bool", &other)),
        },
        Query(QuerySpec { schema, .. }) => Ok(TorType::Rel(schema.clone())),
        Size(r) => {
            rel_of(r, tenv, "size")?;
            Ok(TorType::Int)
        }
        Get(r, i) => {
            let s = rel_of(r, tenv, "get")?;
            int_of(i, tenv, "get index")?;
            Ok(TorType::Record(s))
        }
        Top(r, i) => {
            let s = rel_of(r, tenv, "top")?;
            int_of(i, tenv, "top count")?;
            Ok(TorType::Rel(s))
        }
        Proj(fields, r) => {
            let s = rel_of(r, tenv, "projection")?;
            Ok(TorType::Rel(s.project(fields)?.into_ref()))
        }
        Select(p, r) => {
            let s = rel_of(r, tenv, "selection")?;
            check_pred(p, &s, tenv)?;
            Ok(TorType::Rel(s))
        }
        Join(p, a, b) => {
            // A record-typed left operand is the paper's ⋈′ (singleton) form.
            let ls = match infer_type(a, tenv)? {
                TorType::Rel(s) | TorType::Record(s) => s,
                other => return Err(mismatch("join", "relation or record", &other)),
            };
            let rs = rel_of(b, tenv, "join")?;
            for atom in p.atoms() {
                let lf = ls.field(&atom.left)?;
                let rf = rs.field(&atom.right)?;
                if lf.ty != rf.ty {
                    return Err(TypeError::Mismatch {
                        context: format!("join predicate `{atom}`"),
                        expected: lf.ty.to_string(),
                        found: rf.ty.to_string(),
                    });
                }
            }
            Ok(TorType::Rel(Schema::join(&ls, &rs).into_ref()))
        }
        Agg(kind, r) => {
            let s = rel_of(r, tenv, "aggregate")?;
            match kind {
                AggKind::Count => Ok(TorType::Int),
                AggKind::Sum | AggKind::Max | AggKind::Min => {
                    if s.arity() == 1 && s.fields()[0].ty == FieldType::Int {
                        Ok(TorType::Int)
                    } else {
                        Err(TypeError::Mismatch {
                            context: format!("{kind}"),
                            expected: "single int-column relation".to_string(),
                            found: s.describe(),
                        })
                    }
                }
            }
        }
        Append(r, x) => {
            let s = rel_of(r, tenv, "append")?;
            match infer_type(x, tenv)? {
                TorType::Record(rs) if rs == s => Ok(TorType::Rel(s)),
                other => Err(mismatch("append", "record of same schema", &other)),
            }
        }
        Concat(a, b) => {
            let sa = rel_of(a, tenv, "concat")?;
            let sb = rel_of(b, tenv, "concat")?;
            if sa == sb {
                Ok(TorType::Rel(sa))
            } else {
                Err(TypeError::Mismatch {
                    context: "concat".to_string(),
                    expected: sa.describe(),
                    found: sb.describe(),
                })
            }
        }
        Sort(fields, r) => {
            let s = rel_of(r, tenv, "sort")?;
            for f in fields {
                s.field(f)?;
            }
            Ok(TorType::Rel(s))
        }
        Unique(r) => Ok(TorType::Rel(rel_of(r, tenv, "unique")?)),
        Contains(x, r) => {
            let s = rel_of(r, tenv, "contains")?;
            match infer_type(x, tenv)? {
                TorType::Record(_) => Ok(TorType::Bool),
                t if t.is_scalar() && s.arity() == 1 => Ok(TorType::Bool),
                other => Err(mismatch("contains", "record or scalar", &other)),
            }
        }
        RecLit(fields) => {
            let mut b = Schema::anonymous();
            for (name, fe) in fields {
                let ft = match infer_type(fe, tenv)? {
                    TorType::Bool => FieldType::Bool,
                    TorType::Int => FieldType::Int,
                    TorType::Str => FieldType::Str,
                    other => {
                        return Err(mismatch(
                            &format!("record literal field `{name}`"),
                            "scalar",
                            &other,
                        ))
                    }
                };
                b = b.field(name.as_str(), ft);
            }
            Ok(TorType::Record(b.finish()))
        }
        Group(spec, r) => Ok(TorType::Rel(group_schema(spec, &rel_of(r, tenv, "group")?)?)),
        MapGet { map, keys, val_field, default } => {
            let s = rel_of(map, tenv, "mapget")?;
            check_map_keys(keys, &s, tenv, "mapget")?;
            let dty = infer_type(default, tenv)?;
            if !dty.is_scalar() {
                return Err(mismatch("mapget default", "scalar", &dty));
            }
            if s.arity() > 0 {
                let vty = TorType::from_field(s.field(&val_field.as_str().into())?.ty);
                if vty != dty {
                    return Err(mismatch("mapget default", &vty.to_string(), &dty));
                }
                return Ok(vty);
            }
            Ok(dty)
        }
        MapPut { map, keys, val_field, val } => {
            let s = rel_of(map, tenv, "mapput")?;
            check_map_keys(keys, &s, tenv, "mapput")?;
            let vty = infer_type(val, tenv)?;
            if !vty.is_scalar() {
                return Err(mismatch("mapput value", "scalar", &vty));
            }
            if s.arity() > 0 {
                let fty = TorType::from_field(s.field(&val_field.as_str().into())?.ty);
                if fty != vty {
                    return Err(mismatch("mapput value", &fty.to_string(), &vty));
                }
                return Ok(TorType::Rel(s));
            }
            // Writing to the untyped empty map determines the entry schema.
            let mut b = Schema::anonymous();
            for (name, ke) in keys {
                let kt = match infer_type(ke, tenv)? {
                    TorType::Bool => FieldType::Bool,
                    TorType::Int => FieldType::Int,
                    TorType::Str => FieldType::Str,
                    other => return Err(mismatch("mapput key", "scalar", &other)),
                };
                b = b.field(name.as_str(), kt);
            }
            let vt = match vty {
                TorType::Bool => FieldType::Bool,
                TorType::Int => FieldType::Int,
                TorType::Str => FieldType::Str,
                _ => unreachable!("scalar checked above"),
            };
            Ok(TorType::Rel(b.field(val_field.as_str(), vt).finish()))
        }
    }
}

/// The output schema of a [`TorExpr::Group`] over input schema `input`.
pub(crate) fn group_schema(
    spec: &GroupSpec,
    input: &SchemaRef,
) -> Result<SchemaRef, TypeError> {
    let mut b = Schema::anonymous();
    for (name, src) in &spec.keys {
        b = b.field(name.as_str(), input.field(src)?.ty);
    }
    match (spec.agg, &spec.agg_field) {
        (AggKind::Count, _) => {}
        (_, Some(fr)) => {
            if input.field(fr)?.ty != FieldType::Int {
                return Err(TypeError::Mismatch {
                    context: format!("group {}", spec.agg),
                    expected: "int field".to_string(),
                    found: input.field(fr)?.ty.to_string(),
                });
            }
        }
        (_, None) => {
            return Err(TypeError::Mismatch {
                context: format!("group {}", spec.agg),
                expected: "an aggregated field".to_string(),
                found: "none".to_string(),
            })
        }
    }
    Ok(b.field(spec.val_name.as_str(), FieldType::Int).finish())
}

/// Checks `MapGet`/`MapPut` key probes: each key field must exist in the
/// entry schema (when known) and its probe expression must be a matching
/// scalar.
fn check_map_keys(
    keys: &[(Ident, TorExpr)],
    entry: &SchemaRef,
    tenv: &TypeEnv,
    context: &str,
) -> Result<(), TypeError> {
    for (name, ke) in keys {
        let kty = infer_type(ke, tenv)?;
        if !kty.is_scalar() {
            return Err(mismatch(&format!("{context} key `{name}`"), "scalar", &kty));
        }
        if entry.arity() > 0 {
            let fty = TorType::from_field(entry.field(&name.as_str().into())?.ty);
            if fty != kty {
                return Err(mismatch(
                    &format!("{context} key `{name}`"),
                    &fty.to_string(),
                    &kty,
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::JoinPred;
    use qbs_common::Schema;

    fn tenv() -> (TypeEnv, SchemaRef, SchemaRef) {
        let users = Schema::builder("users")
            .field("id", FieldType::Int)
            .field("roleId", FieldType::Int)
            .finish();
        let roles = Schema::builder("roles")
            .field("roleId", FieldType::Int)
            .field("label", FieldType::Str)
            .finish();
        let mut t = TypeEnv::new();
        t.bind_rel("users", users.clone());
        t.bind_rel("roles", roles.clone());
        t.bind_int("i");
        (t, users, roles)
    }

    #[test]
    fn size_and_get_and_top() {
        let (t, users, _) = tenv();
        assert_eq!(
            infer_type(&TorExpr::size(TorExpr::var("users")), &t).unwrap(),
            TorType::Int
        );
        assert_eq!(
            infer_type(&TorExpr::get(TorExpr::var("users"), TorExpr::var("i")), &t).unwrap(),
            TorType::Record(users.clone())
        );
        assert_eq!(
            infer_type(&TorExpr::top(TorExpr::var("users"), TorExpr::var("i")), &t).unwrap(),
            TorType::Rel(users)
        );
    }

    #[test]
    fn join_concatenates_schemas() {
        let (t, ..) = tenv();
        let j = TorExpr::join(
            JoinPred::eq("roleId", "roleId"),
            TorExpr::var("users"),
            TorExpr::var("roles"),
        );
        match infer_type(&j, &t).unwrap() {
            TorType::Rel(s) => {
                assert_eq!(s.arity(), 4);
                assert!(s.index_of(&"users.roleId".into()).is_ok());
            }
            other => panic!("expected relation, got {other}"),
        }
    }

    #[test]
    fn projection_narrows_schema() {
        let (t, ..) = tenv();
        let p = TorExpr::proj(vec!["id".into()], TorExpr::var("users"));
        match infer_type(&p, &t).unwrap() {
            TorType::Rel(s) => assert_eq!(s.arity(), 1),
            other => panic!("expected relation, got {other}"),
        }
    }

    #[test]
    fn agg_requires_single_int_column() {
        let (t, ..) = tenv();
        let bad = TorExpr::agg(AggKind::Max, TorExpr::var("users"));
        assert!(infer_type(&bad, &t).is_err());
        let good =
            TorExpr::agg(AggKind::Max, TorExpr::proj(vec!["id".into()], TorExpr::var("users")));
        assert_eq!(infer_type(&good, &t).unwrap(), TorType::Int);
        assert_eq!(
            infer_type(&TorExpr::agg(AggKind::Count, TorExpr::var("users")), &t).unwrap(),
            TorType::Int
        );
    }

    #[test]
    fn join_type_error_on_mismatched_fields() {
        let (t, ..) = tenv();
        let j = TorExpr::join(
            JoinPred::eq("roleId", "label"),
            TorExpr::var("users"),
            TorExpr::var("roles"),
        );
        assert!(infer_type(&j, &t).is_err());
    }

    #[test]
    fn unknown_var_is_reported() {
        let t = TypeEnv::new();
        assert!(matches!(infer_type(&TorExpr::var("nope"), &t), Err(TypeError::UnknownVar(_))));
    }
}
