//! TOR expression AST (paper Fig. 6).

use crate::pred::{JoinPred, Pred};
use qbs_common::{FieldRef, Ident, SchemaRef, Value};
use std::fmt;

/// Comparison operators usable in predicates and scalar expressions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// Applies the comparison to an [`std::cmp::Ordering`].
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The comparison with swapped operands (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation (`!(a op b)` ⇔ `a op.negate() b`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "≠",
            CmpOp::Lt => "<",
            CmpOp::Le => "≤",
            CmpOp::Gt => ">",
            CmpOp::Ge => "≥",
        };
        f.write_str(s)
    }
}

/// Binary operators on scalar TOR expressions.
///
/// The paper's grammar lists `∧ ∨ > =`; we additionally carry the remaining
/// comparisons and `+`/`-`, which the verification conditions need for index
/// arithmetic (`iInv(i, j + 1, …)`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// A comparison.
    Cmp(CmpOp),
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinOp::And => write!(f, "∧"),
            BinOp::Or => write!(f, "∨"),
            BinOp::Add => write!(f, "+"),
            BinOp::Sub => write!(f, "-"),
            BinOp::Cmp(c) => write!(f, "{c}"),
        }
    }
}

/// Aggregate operators (`sum`, `max`, `min`, plus `size`/`COUNT` which the
/// translation rules treat as an aggregate).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AggKind {
    /// `sum` — input relation must have a single numeric field.
    Sum,
    /// `max` — `max([]) = -∞` (represented as `i64::MIN`).
    Max,
    /// `min` — `min([]) = +∞` (represented as `i64::MAX`).
    Min,
    /// `size` / SQL `COUNT`.
    Count,
}

impl AggKind {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            AggKind::Sum => "SUM",
            AggKind::Max => "MAX",
            AggKind::Min => "MIN",
            AggKind::Count => "COUNT",
        }
    }
}

impl fmt::Display for AggKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggKind::Sum => "sum",
            AggKind::Max => "max",
            AggKind::Min => "min",
            AggKind::Count => "size",
        };
        f.write_str(s)
    }
}

/// A base database retrieval: `Query(...)` in the paper.
///
/// The retrieval names a table and carries its schema so that TOR expressions
/// are self-describing. `sql` optionally records the original embedded query
/// string from the source program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QuerySpec {
    /// Table being scanned.
    pub table: Ident,
    /// Schema of the produced records.
    pub schema: SchemaRef,
    /// Original SQL text, when the source used an embedded query.
    pub sql: Option<String>,
}

impl QuerySpec {
    /// A full-table retrieval.
    pub fn table_scan(table: impl Into<Ident>, schema: SchemaRef) -> Self {
        QuerySpec { table: table.into(), schema, sql: None }
    }
}

/// Specification of a grouped aggregation: the key fields of the input
/// relation, the aggregate applied per group, and the output column names.
///
/// `Group` extends the paper's TOR with the per-key map idiom that ORM hot
/// loops build (`counts[r.author] += 1`): the output relation has one record
/// per distinct key combination, in first-occurrence order of the input,
/// with the key columns renamed to `keys[i].0` and the aggregate in
/// `val_name`.
#[derive(Clone, PartialEq, Debug)]
pub struct GroupSpec {
    /// `(output name, source field)` pairs forming the group key.
    pub keys: Vec<(Ident, FieldRef)>,
    /// The aggregate applied to each group.
    pub agg: AggKind,
    /// The aggregated source field (`None` for `Count`).
    pub agg_field: Option<FieldRef>,
    /// Output column name of the aggregate.
    pub val_name: Ident,
}

impl GroupSpec {
    /// A `Count` grouping over a single key.
    pub fn count(
        key_out: impl Into<Ident>,
        key_src: impl Into<FieldRef>,
        val: impl Into<Ident>,
    ) -> GroupSpec {
        GroupSpec {
            keys: vec![(key_out.into(), key_src.into())],
            agg: AggKind::Count,
            agg_field: None,
            val_name: val.into(),
        }
    }

    /// A `Sum`/`Min`/`Max` grouping over a single key.
    pub fn fold(
        agg: AggKind,
        key_out: impl Into<Ident>,
        key_src: impl Into<FieldRef>,
        agg_field: impl Into<FieldRef>,
        val: impl Into<Ident>,
    ) -> GroupSpec {
        GroupSpec {
            keys: vec![(key_out.into(), key_src.into())],
            agg,
            agg_field: Some(agg_field.into()),
            val_name: val.into(),
        }
    }
}

/// A TOR expression (paper Fig. 6).
///
/// Expressions denote scalars, records, or ordered relations; [`crate::infer_type`]
/// recovers which. Constructors are provided for ergonomic building; see the
/// crate-level example.
#[derive(Clone, PartialEq, Debug)]
pub enum TorExpr {
    /// A scalar constant.
    Const(Value),
    /// The empty list `[ ]`.
    EmptyList,
    /// A program variable (scalar-, record-, or relation-typed).
    Var(Ident),
    /// Field access on a record-typed expression: `e.f`.
    Field(Box<TorExpr>, FieldRef),
    /// Binary scalar operation.
    Binary(BinOp, Box<TorExpr>, Box<TorExpr>),
    /// Logical negation.
    Not(Box<TorExpr>),
    /// Database retrieval `Query(...)`.
    Query(QuerySpec),
    /// `size(e)` — length of a relation.
    Size(Box<TorExpr>),
    /// `get_es(er)` — the record of `er` at index `es`.
    Get(Box<TorExpr>, Box<TorExpr>),
    /// `top_es(er)` — the first `es` records of `er`.
    Top(Box<TorExpr>, Box<TorExpr>),
    /// `π_[f…](e)` — ordered projection.
    Proj(Vec<FieldRef>, Box<TorExpr>),
    /// `σ_φ(e)` — ordered selection.
    Select(Pred, Box<TorExpr>),
    /// `⋈_φ(e1, e2)` — ordered join. A record-typed left operand is treated
    /// as a singleton relation (the paper's `⋈′` form used in invariants).
    Join(JoinPred, Box<TorExpr>, Box<TorExpr>),
    /// Aggregate over a relation. For `Sum`/`Max`/`Min` the input must have
    /// exactly one numeric field (paper's convention); `Count` is `size`.
    Agg(AggKind, Box<TorExpr>),
    /// `append(er, es)` — append record `es` to relation `er`.
    Append(Box<TorExpr>, Box<TorExpr>),
    /// Concatenation of two relations (the paper overloads `append` for this
    /// in invariants, e.g. the inner-loop invariant of Fig. 12).
    Concat(Box<TorExpr>, Box<TorExpr>),
    /// `sort_[f…](e)` — stable sort by fields.
    Sort(Vec<FieldRef>, Box<TorExpr>),
    /// `unique(e)` — duplicate elimination preserving first occurrences.
    Unique(Box<TorExpr>),
    /// `contains(e, er)` — membership of a record (or scalar, for
    /// single-field relations) in a relation.
    Contains(Box<TorExpr>, Box<TorExpr>),
    /// Record construction `{fi = ei}` (paper Fig. 6 expression grammar).
    /// Appears in invariants when loops append freshly built records.
    RecLit(Vec<(Ident, TorExpr)>),
    /// `group[spec](e)` — grouped aggregation in first-occurrence key order.
    Group(GroupSpec, Box<TorExpr>),
    /// `mapget` — the value field of the first record of `map` whose key
    /// fields equal the probe expressions, or `default` when no record
    /// matches. Mirrors the kernel's per-key map read.
    MapGet {
        /// The map, represented as an entry relation.
        map: Box<TorExpr>,
        /// `(key field, probe expression)` pairs; all must match.
        keys: Vec<(Ident, TorExpr)>,
        /// The field read from the matching record.
        val_field: Ident,
        /// Returned when no record matches.
        default: Box<TorExpr>,
    },
    /// `mapput` — replace the value field of the record of `map` matching
    /// the key probes, or append a fresh `{keys…, val}` record. Mirrors the
    /// kernel's per-key map write; entry order is insertion order.
    MapPut {
        /// The map, represented as an entry relation.
        map: Box<TorExpr>,
        /// `(key field, probe expression)` pairs identifying the entry.
        keys: Vec<(Ident, TorExpr)>,
        /// The field written on the matching (or fresh) record.
        val_field: Ident,
        /// The written value.
        val: Box<TorExpr>,
    },
}

impl TorExpr {
    /// A variable reference.
    pub fn var(name: impl Into<Ident>) -> TorExpr {
        TorExpr::Var(name.into())
    }

    /// An integer constant.
    pub fn int(i: i64) -> TorExpr {
        TorExpr::Const(Value::from(i))
    }

    /// A boolean constant.
    pub fn bool(b: bool) -> TorExpr {
        TorExpr::Const(Value::from(b))
    }

    /// `size(e)`.
    pub fn size(e: TorExpr) -> TorExpr {
        TorExpr::Size(Box::new(e))
    }

    /// `get_idx(rel)`.
    pub fn get(rel: TorExpr, idx: TorExpr) -> TorExpr {
        TorExpr::Get(Box::new(rel), Box::new(idx))
    }

    /// `top_idx(rel)`.
    pub fn top(rel: TorExpr, idx: TorExpr) -> TorExpr {
        TorExpr::Top(Box::new(rel), Box::new(idx))
    }

    /// `π_fields(e)`.
    pub fn proj(fields: Vec<FieldRef>, e: TorExpr) -> TorExpr {
        TorExpr::Proj(fields, Box::new(e))
    }

    /// `σ_pred(e)`.
    pub fn select(pred: Pred, e: TorExpr) -> TorExpr {
        TorExpr::Select(pred, Box::new(e))
    }

    /// `⋈_pred(l, r)`.
    pub fn join(pred: JoinPred, l: TorExpr, r: TorExpr) -> TorExpr {
        TorExpr::Join(pred, Box::new(l), Box::new(r))
    }

    /// `agg(e)`.
    pub fn agg(kind: AggKind, e: TorExpr) -> TorExpr {
        TorExpr::Agg(kind, Box::new(e))
    }

    /// `sort_fields(e)`.
    pub fn sort(fields: Vec<FieldRef>, e: TorExpr) -> TorExpr {
        TorExpr::Sort(fields, Box::new(e))
    }

    /// `unique(e)`.
    pub fn unique(e: TorExpr) -> TorExpr {
        TorExpr::Unique(Box::new(e))
    }

    /// `append(rel, rec)`.
    pub fn append(rel: TorExpr, rec: TorExpr) -> TorExpr {
        TorExpr::Append(Box::new(rel), Box::new(rec))
    }

    /// Relation concatenation.
    pub fn concat(a: TorExpr, b: TorExpr) -> TorExpr {
        TorExpr::Concat(Box::new(a), Box::new(b))
    }

    /// `contains(elem, rel)`.
    pub fn contains(elem: TorExpr, rel: TorExpr) -> TorExpr {
        TorExpr::Contains(Box::new(elem), Box::new(rel))
    }

    /// `e.field`.
    pub fn field(e: TorExpr, fref: impl Into<FieldRef>) -> TorExpr {
        TorExpr::Field(Box::new(e), fref.into())
    }

    /// Binary operation.
    pub fn binary(op: BinOp, a: TorExpr, b: TorExpr) -> TorExpr {
        TorExpr::Binary(op, Box::new(a), Box::new(b))
    }

    /// `a cmp b`.
    pub fn cmp(op: CmpOp, a: TorExpr, b: TorExpr) -> TorExpr {
        TorExpr::binary(BinOp::Cmp(op), a, b)
    }

    /// `a + b`.
    #[allow(clippy::should_implement_trait)] // constructor, not arithmetic on TorExpr
    pub fn add(a: TorExpr, b: TorExpr) -> TorExpr {
        TorExpr::binary(BinOp::Add, a, b)
    }

    /// `group[spec](e)`.
    pub fn group(spec: GroupSpec, e: TorExpr) -> TorExpr {
        TorExpr::Group(spec, Box::new(e))
    }

    /// The number of relational operators in the expression — the paper's
    /// measure of template complexity (Sec. 4.5 grows this incrementally).
    pub fn relational_ops(&self) -> usize {
        use TorExpr::*;
        let inner: usize = self.children().iter().map(|c| c.relational_ops()).sum();
        let own = match self {
            Proj(..)
            | Select(..)
            | Join(..)
            | Agg(..)
            | Sort(..)
            | Unique(..)
            | Top(..)
            | Get(..)
            | Contains(..)
            | Group(..)
            | MapGet { .. }
            | MapPut { .. } => 1,
            _ => 0,
        };
        own + inner
    }

    /// Immediate subexpressions (predicate-internal expressions excluded).
    pub fn children(&self) -> Vec<&TorExpr> {
        use TorExpr::*;
        match self {
            Const(_) | EmptyList | Var(_) | Query(_) => vec![],
            Field(e, _)
            | Not(e)
            | Size(e)
            | Proj(_, e)
            | Select(_, e)
            | Agg(_, e)
            | Sort(_, e)
            | Unique(e) => vec![e],
            Binary(_, a, b)
            | Get(a, b)
            | Top(a, b)
            | Join(_, a, b)
            | Append(a, b)
            | Concat(a, b)
            | Contains(a, b) => {
                vec![a, b]
            }
            RecLit(fields) => fields.iter().map(|(_, e)| e).collect(),
            Group(_, e) => vec![e],
            MapGet { map, keys, default, .. } => {
                let mut v: Vec<&TorExpr> = vec![map];
                v.extend(keys.iter().map(|(_, e)| e));
                v.push(default);
                v
            }
            MapPut { map, keys, val, .. } => {
                let mut v: Vec<&TorExpr> = vec![map];
                v.extend(keys.iter().map(|(_, e)| e));
                v.push(val);
                v
            }
        }
    }

    /// All free program variables referenced by the expression (including
    /// inside predicates).
    pub fn free_vars(&self) -> Vec<Ident> {
        let mut out = Vec::new();
        self.collect_free_vars(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_free_vars(&self, out: &mut Vec<Ident>) {
        if let TorExpr::Var(v) = self {
            out.push(v.clone());
        }
        if let TorExpr::Select(p, _) = self {
            p.collect_free_vars(out);
        }
        for c in self.children() {
            c.collect_free_vars(out);
        }
    }
}

impl fmt::Display for TorExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TorExpr::*;
        match self {
            Const(v) => write!(f, "{v:?}"),
            EmptyList => write!(f, "[]"),
            Var(v) => write!(f, "{v}"),
            Field(e, fr) => write!(f, "{e}.{fr}"),
            Binary(op, a, b) => write!(f, "({a} {op} {b})"),
            Not(e) => write!(f, "¬{e}"),
            Query(q) => write!(f, "Query({})", q.table),
            Size(e) => write!(f, "size({e})"),
            Get(r, i) => write!(f, "get[{i}]({r})"),
            Top(r, i) => write!(f, "top[{i}]({r})"),
            Proj(fs, e) => {
                write!(f, "π[")?;
                for (i, fr) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{fr}")?;
                }
                write!(f, "]({e})")
            }
            Select(p, e) => write!(f, "σ[{p}]({e})"),
            Join(p, a, b) => write!(f, "⋈[{p}]({a}, {b})"),
            Agg(k, e) => write!(f, "{k}({e})"),
            Append(r, x) => write!(f, "append({r}, {x})"),
            Concat(a, b) => write!(f, "cat({a}, {b})"),
            Sort(fs, e) => {
                write!(f, "sort[")?;
                for (i, fr) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{fr}")?;
                }
                write!(f, "]({e})")
            }
            Unique(e) => write!(f, "unique({e})"),
            Contains(x, r) => write!(f, "contains({x}, {r})"),
            RecLit(fields) => {
                write!(f, "{{")?;
                for (i, (n, e)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n} = {e}")?;
                }
                write!(f, "}}")
            }
            Group(spec, e) => {
                write!(f, "group[")?;
                for (i, (n, src)) in spec.keys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{n}={src}")?;
                }
                write!(f, "; {}", spec.agg)?;
                if let Some(fr) = &spec.agg_field {
                    write!(f, "({fr})")?;
                }
                write!(f, "→{}]({e})", spec.val_name)
            }
            MapGet { map, keys, val_field, default } => {
                write!(f, "mapget[")?;
                for (i, (n, e)) in keys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{n}={e}")?;
                }
                write!(f, "; {val_field} else {default}]({map})")
            }
            MapPut { map, keys, val_field, val } => {
                write!(f, "mapput[")?;
                for (i, (n, e)) in keys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{n}={e}")?;
                }
                write!(f, "; {val_field} := {val}]({map})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_test_and_negate() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Le.test(Equal));
        assert!(CmpOp::Le.test(Less));
        assert!(!CmpOp::Le.test(Greater));
        assert!(CmpOp::Le.negate().test(Greater));
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
    }

    #[test]
    fn relational_op_count() {
        let e =
            TorExpr::proj(vec!["a".into()], TorExpr::select(Pred::truth(), TorExpr::var("r")));
        assert_eq!(e.relational_ops(), 2);
        assert_eq!(TorExpr::var("r").relational_ops(), 0);
    }

    #[test]
    fn free_vars_dedup_and_sort() {
        let e = TorExpr::concat(
            TorExpr::var("b"),
            TorExpr::top(TorExpr::var("a"), TorExpr::var("b")),
        );
        let fv = e.free_vars();
        assert_eq!(fv, vec![Ident::new("a"), Ident::new("b")]);
    }

    #[test]
    fn display_round_trips_shape() {
        let e = TorExpr::size(TorExpr::var("users"));
        assert_eq!(e.to_string(), "size(users)");
    }
}
