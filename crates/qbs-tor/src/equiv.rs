//! Algebraic equivalences over TOR expressions (paper Thm. 2).
//!
//! [`normalize`] applies the *sound* subset of the Thm. 2 equivalences as
//! directed rewrites until fixpoint:
//!
//! * `σ_φ2(σ_φ1(r)) = σ_φ1∧φ2(r)` — the symmetry the paper's synthesizer
//!   breaks (Sec. 4.5): nested selections are never worth enumerating;
//! * `π_ℓ2(π_ℓ1(r)) = π_ℓ1∘ℓ2(r)`;
//! * `σ_φ(π_ℓ(r)) = π_ℓ(σ_φ′(r))` — selections pushed inside projections;
//! * `σ_φ(sort_ℓ(r)) = sort_ℓ(σ_φ(r))` — selections pushed inside sorts
//!   (sound because both sides preserve the relative order of survivors);
//! * `top_e2(top_e1(r)) = top_min(e1,e2)(r)` for constant counts.
//!
//! The equivalence `top_e(σ_φ(r)) = σ_φ(top_e(r))` printed in the paper's
//! Thm. 2 is **not** sound for ordered lists and is deliberately omitted; see
//! `crate::trans` for how selections over limits are kept nested instead.

use crate::expr::TorExpr;
use crate::pred::{Operand, Pred, PredAtom, Probe};
use crate::ty::{infer_type, TorType, TypeEnv};
use qbs_common::{FieldRef, Value};

/// Remaps the field references of `pred` (resolved against the output of
/// `π_fields`) into references against the projection input.
fn remap_pred(pred: &Pred, fields: &[FieldRef], out: &qbs_common::SchemaRef) -> Option<Pred> {
    let mut atoms = Vec::with_capacity(pred.atoms().len());
    for a in pred.atoms() {
        let remap = |fr: &FieldRef| -> Option<FieldRef> {
            out.index_of(fr).ok().map(|i| fields[i].clone())
        };
        match a {
            PredAtom::Cmp { lhs, op, rhs } => {
                let lhs = remap(lhs)?;
                let rhs = match rhs {
                    Operand::Field(fr) => Operand::Field(remap(fr)?),
                    other => other.clone(),
                };
                atoms.push(PredAtom::Cmp { lhs, op: *op, rhs });
            }
            PredAtom::Contains { probe, rel } => {
                let probe = match probe {
                    Probe::Field(fr) => Probe::Field(remap(fr)?),
                    Probe::Record => return None, // record probe is tied to the projected shape
                };
                atoms.push(PredAtom::Contains { probe, rel: rel.clone() });
            }
        }
    }
    Some(Pred::new(atoms))
}

/// Remaps a predicate over a `Group` output into one over the group input,
/// when every atom references only *key* columns. `σ_φ(group[spec](r)) =
/// group[spec](σ_φ′(r))` is sound exactly then: filtering groups by key
/// equals filtering input rows by key — surviving groups keep their contents
/// and their first-occurrence order.
fn remap_group_pred(pred: &Pred, spec: &crate::expr::GroupSpec) -> Option<Pred> {
    let key_src = |fr: &FieldRef| -> Option<FieldRef> {
        spec.keys.iter().find(|(n, _)| n.as_str() == fr.name.as_str()).map(|(_, s)| s.clone())
    };
    let mut atoms = Vec::with_capacity(pred.atoms().len());
    for a in pred.atoms() {
        match a {
            PredAtom::Cmp { lhs, op, rhs } => {
                let lhs = key_src(lhs)?;
                let rhs = match rhs {
                    Operand::Field(fr) => Operand::Field(key_src(fr)?),
                    other => other.clone(),
                };
                atoms.push(PredAtom::Cmp { lhs, op: *op, rhs });
            }
            // A record probe spans the aggregate column; a field probe could
            // be remapped, but `contains` against the grouped output is rare
            // enough not to bother.
            PredAtom::Contains { .. } => return None,
        }
    }
    Some(Pred::new(atoms))
}

fn rewrite_once(e: &TorExpr, tenv: &TypeEnv) -> Option<TorExpr> {
    match e {
        // σ_φ2(σ_φ1(r)) → σ_φ1∧φ2(r)
        TorExpr::Select(p2, inner) => match &**inner {
            TorExpr::Select(p1, r) => {
                Some(TorExpr::select(p1.clone().and_pred(p2), (**r).clone()))
            }
            // σ_φ(group[spec](r)) → group[spec](σ_φ′(r)) for key-only φ
            TorExpr::Group(spec, r) => {
                let p = remap_group_pred(p2, spec)?;
                Some(TorExpr::group(spec.clone(), TorExpr::select(p, (**r).clone())))
            }
            // σ_φ(π_ℓ(r)) → π_ℓ(σ_φ′(r))
            TorExpr::Proj(fields, r) => {
                let elem = match infer_type(r, tenv).ok()? {
                    TorType::Rel(s) => s,
                    _ => return None,
                };
                let out = elem.project(fields).ok()?.into_ref();
                let p = remap_pred(p2, fields, &out)?;
                Some(TorExpr::proj(fields.clone(), TorExpr::select(p, (**r).clone())))
            }
            // σ_φ(sort_ℓ(r)) → sort_ℓ(σ_φ(r))
            TorExpr::Sort(fields, r) => {
                Some(TorExpr::sort(fields.clone(), TorExpr::select(p2.clone(), (**r).clone())))
            }
            _ => None,
        },
        // π_ℓ2(π_ℓ1(r)) → π_ℓ1∘ℓ2(r)
        TorExpr::Proj(l2, inner) => match &**inner {
            TorExpr::Proj(l1, r) => {
                let elem = match infer_type(r, tenv).ok()? {
                    TorType::Rel(s) => s,
                    _ => return None,
                };
                let mid = elem.project(l1).ok()?.into_ref();
                let mut composed = Vec::with_capacity(l2.len());
                for f in l2 {
                    composed.push(l1[mid.index_of(f).ok()?].clone());
                }
                Some(TorExpr::proj(composed, (**r).clone()))
            }
            _ => None,
        },
        // top_e2(top_e1(r)) → top_min(e1,e2)(r) for constants
        TorExpr::Top(inner, e2) => match &**inner {
            TorExpr::Top(r, e1) => match (&**e1, &**e2) {
                (TorExpr::Const(Value::Int(a)), TorExpr::Const(Value::Int(b))) => {
                    Some(TorExpr::top((**r).clone(), TorExpr::int((*a).min(*b))))
                }
                _ => None,
            },
            _ => None,
        },
        _ => None,
    }
}

/// Rebuilds `e` with `f` applied to each immediate child, returning `None`
/// when no child changed.
fn map_children(e: &TorExpr, tenv: &TypeEnv) -> Option<TorExpr> {
    use TorExpr::*;
    let rec = |x: &TorExpr| normalize_inner(x, tenv);
    match e {
        Const(_) | EmptyList | Var(_) | Query(_) => None,
        Field(x, f) => rec(x).map(|x| TorExpr::Field(Box::new(x), f.clone())),
        Not(x) => rec(x).map(|x| Not(Box::new(x))),
        Size(x) => rec(x).map(|x| Size(Box::new(x))),
        Proj(l, x) => rec(x).map(|x| Proj(l.clone(), Box::new(x))),
        Select(p, x) => rec(x).map(|x| Select(p.clone(), Box::new(x))),
        Agg(k, x) => rec(x).map(|x| Agg(*k, Box::new(x))),
        Sort(l, x) => rec(x).map(|x| Sort(l.clone(), Box::new(x))),
        Unique(x) => rec(x).map(|x| Unique(Box::new(x))),
        Binary(op, a, b) => {
            let (na, nb) = (rec(a), rec(b));
            if na.is_none() && nb.is_none() {
                return None;
            }
            Some(Binary(
                *op,
                Box::new(na.unwrap_or_else(|| (**a).clone())),
                Box::new(nb.unwrap_or_else(|| (**b).clone())),
            ))
        }
        Get(a, b) => two(a, b, tenv, |a, b| Get(Box::new(a), Box::new(b))),
        Top(a, b) => two(a, b, tenv, |a, b| Top(Box::new(a), Box::new(b))),
        Join(p, a, b) => {
            let p = p.clone();
            two(a, b, tenv, move |a, b| Join(p.clone(), Box::new(a), Box::new(b)))
        }
        Append(a, b) => two(a, b, tenv, |a, b| Append(Box::new(a), Box::new(b))),
        Concat(a, b) => two(a, b, tenv, |a, b| Concat(Box::new(a), Box::new(b))),
        Contains(a, b) => two(a, b, tenv, |a, b| Contains(Box::new(a), Box::new(b))),
        RecLit(fields) => {
            let mut changed = false;
            let mut out = Vec::with_capacity(fields.len());
            for (n, e) in fields {
                match rec(e) {
                    Some(ne) => {
                        changed = true;
                        out.push((n.clone(), ne));
                    }
                    None => out.push((n.clone(), e.clone())),
                }
            }
            changed.then_some(RecLit(out))
        }
        Group(spec, x) => rec(x).map(|x| Group(spec.clone(), Box::new(x))),
        MapGet { map, keys, val_field, default } => {
            let (nm, nk, nd) = (rec(map), map_keys(keys, tenv), rec(default));
            if nm.is_none() && nk.is_none() && nd.is_none() {
                return None;
            }
            Some(MapGet {
                map: Box::new(nm.unwrap_or_else(|| (**map).clone())),
                keys: nk.unwrap_or_else(|| keys.clone()),
                val_field: val_field.clone(),
                default: Box::new(nd.unwrap_or_else(|| (**default).clone())),
            })
        }
        MapPut { map, keys, val_field, val } => {
            let (nm, nk, nv) = (rec(map), map_keys(keys, tenv), rec(val));
            if nm.is_none() && nk.is_none() && nv.is_none() {
                return None;
            }
            Some(MapPut {
                map: Box::new(nm.unwrap_or_else(|| (**map).clone())),
                keys: nk.unwrap_or_else(|| keys.clone()),
                val_field: val_field.clone(),
                val: Box::new(nv.unwrap_or_else(|| (**val).clone())),
            })
        }
    }
}

/// Normalizes the probe expressions of a `MapGet`/`MapPut` key list.
fn map_keys(
    keys: &[(qbs_common::Ident, TorExpr)],
    tenv: &TypeEnv,
) -> Option<Vec<(qbs_common::Ident, TorExpr)>> {
    let mut changed = false;
    let mut out = Vec::with_capacity(keys.len());
    for (n, e) in keys {
        match normalize_inner(e, tenv) {
            Some(ne) => {
                changed = true;
                out.push((n.clone(), ne));
            }
            None => out.push((n.clone(), e.clone())),
        }
    }
    changed.then_some(out)
}

fn two(
    a: &TorExpr,
    b: &TorExpr,
    tenv: &TypeEnv,
    build: impl Fn(TorExpr, TorExpr) -> TorExpr,
) -> Option<TorExpr> {
    let (na, nb) = (normalize_inner(a, tenv), normalize_inner(b, tenv));
    if na.is_none() && nb.is_none() {
        return None;
    }
    Some(build(na.unwrap_or_else(|| a.clone()), nb.unwrap_or_else(|| b.clone())))
}

fn normalize_inner(e: &TorExpr, tenv: &TypeEnv) -> Option<TorExpr> {
    let mut cur = e.clone();
    let mut changed = false;
    loop {
        if let Some(next) = map_children(&cur, tenv) {
            cur = next;
            changed = true;
            continue;
        }
        if let Some(next) = rewrite_once(&cur, tenv) {
            cur = next;
            changed = true;
            continue;
        }
        break;
    }
    changed.then_some(cur)
}

/// Applies the Thm. 2 equivalences as directed rewrites until fixpoint.
///
/// The result is semantically equal to the input under [`crate::eval`]
/// (checked by the property tests in this crate).
///
/// # Example
///
/// ```
/// use qbs_common::{Schema, FieldType};
/// use qbs_tor::{normalize, CmpOp, Operand, Pred, QuerySpec, TorExpr, TypeEnv};
///
/// let s = Schema::builder("t").field("a", FieldType::Int).finish();
/// let q = TorExpr::Query(QuerySpec::table_scan("t", s));
/// let p1 = Pred::truth().and_cmp("a".into(), CmpOp::Gt, Operand::Const(0.into()));
/// let p2 = Pred::truth().and_cmp("a".into(), CmpOp::Lt, Operand::Const(9.into()));
/// let nested = TorExpr::select(p2, TorExpr::select(p1, q));
/// let flat = normalize(&nested, &TypeEnv::new());
/// assert!(matches!(flat, TorExpr::Select(p, _) if p.atoms().len() == 2));
/// ```
pub fn normalize(e: &TorExpr, tenv: &TypeEnv) -> TorExpr {
    normalize_inner(e, tenv).unwrap_or_else(|| e.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, QuerySpec};
    use qbs_common::{FieldType, Schema, SchemaRef};

    fn t_schema() -> SchemaRef {
        Schema::builder("t").field("a", FieldType::Int).field("b", FieldType::Int).finish()
    }

    fn q() -> TorExpr {
        TorExpr::Query(QuerySpec::table_scan("t", t_schema()))
    }

    fn pa(op: CmpOp, c: i64) -> Pred {
        Pred::truth().and_cmp("a".into(), op, Operand::Const(c.into()))
    }

    #[test]
    fn nested_selects_fuse() {
        let e = TorExpr::select(pa(CmpOp::Lt, 9), TorExpr::select(pa(CmpOp::Gt, 0), q()));
        match normalize(&e, &TypeEnv::new()) {
            TorExpr::Select(p, inner) => {
                assert_eq!(p.atoms().len(), 2);
                assert!(matches!(*inner, TorExpr::Query(_)));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn select_pushes_through_projection() {
        let e = TorExpr::select(pa(CmpOp::Gt, 0), TorExpr::proj(vec!["a".into()], q()));
        match normalize(&e, &TypeEnv::new()) {
            TorExpr::Proj(fields, inner) => {
                assert_eq!(fields.len(), 1);
                assert!(matches!(*inner, TorExpr::Select(..)));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn projections_compose() {
        let e =
            TorExpr::proj(vec!["a".into()], TorExpr::proj(vec!["b".into(), "a".into()], q()));
        match normalize(&e, &TypeEnv::new()) {
            TorExpr::Proj(fields, inner) => {
                assert_eq!(fields, vec![FieldRef::from("a")]);
                assert!(matches!(*inner, TorExpr::Query(_)));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn tops_fuse_to_min() {
        let e = TorExpr::top(TorExpr::top(q(), TorExpr::int(7)), TorExpr::int(3));
        match normalize(&e, &TypeEnv::new()) {
            TorExpr::Top(_, e) => assert_eq!(*e, TorExpr::int(3)),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn select_pushes_through_sort() {
        let e = TorExpr::select(pa(CmpOp::Gt, 0), TorExpr::sort(vec!["b".into()], q()));
        match normalize(&e, &TypeEnv::new()) {
            TorExpr::Sort(_, inner) => assert!(matches!(*inner, TorExpr::Select(..))),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn deep_rewrites_reach_fixpoint() {
        // σ(σ(σ(q))) fuses to a single selection with three conjuncts.
        let e = TorExpr::select(
            pa(CmpOp::Lt, 9),
            TorExpr::select(pa(CmpOp::Gt, 0), TorExpr::select(pa(CmpOp::Ne, 5), q())),
        );
        match normalize(&e, &TypeEnv::new()) {
            TorExpr::Select(p, _) => assert_eq!(p.atoms().len(), 3),
            other => panic!("unexpected {other}"),
        }
    }
}
