//! Translatable expressions and the `Trans` normalization (paper Sec. 3.2
//! and Appendix B).
//!
//! A TOR expression can be compiled to SQL when it fits the grammar
//!
//! ```text
//! b ∈ baseExp   ::= Query(...) | top_e(s) | ⋈_True(b1, b2) | agg(t)
//! s ∈ sortedExp ::= π_ℓπ(sort_ℓs(σ_φ(b)))
//! t ∈ transExp  ::= s | top_e(s)           (unique(t) at the outermost level)
//! ```
//!
//! [`trans`] maps any `append`/`unique`-free expression into this form using
//! the algebraic equivalences of Thm. 2. Internally, field references are
//! resolved to **positions** in the base schema so that projection
//! composition and cross-product offsetting are mechanical; the SQL printer
//! maps positions back to column names.
//!
//! ## Soundness deviations from the paper
//!
//! Thm. 2 as printed includes `top_e(σ_φ(r)) = σ_φ(top_e(r))`, which does not
//! hold for ordered lists (filtering after a limit is not limiting after a
//! filter). We instead keep a selection applied to a `top` *outside* the
//! limit by nesting the `top` as a sub-query base — still within the
//! grammar, and semantics-preserving.

use crate::expr::{AggKind, BinOp, CmpOp, GroupSpec, QuerySpec, TorExpr};
use crate::pred::{Operand, Pred, PredAtom, Probe};
use crate::ty::{infer_type, TorType, TypeEnv, TypeError};
use qbs_common::{CommonError, Field, FieldRef, Ident, Schema, SchemaRef, Value};
use std::fmt;

/// Errors from [`trans`].
#[derive(Clone, Debug, PartialEq)]
pub enum TransError {
    /// The expression falls outside the translatable fragment (`append`,
    /// nested `unique`, bare `get`, unresolved relation variables, …).
    NotTranslatable(String),
    /// The expression is ill-typed.
    Type(TypeError),
    /// A field reference failed to resolve.
    Field(CommonError),
}

impl fmt::Display for TransError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransError::NotTranslatable(what) => write!(f, "not translatable to SQL: {what}"),
            TransError::Type(e) => write!(f, "{e}"),
            TransError::Field(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TransError {}

impl From<TypeError> for TransError {
    fn from(e: TypeError) -> Self {
        TransError::Type(e)
    }
}

impl From<CommonError> for TransError {
    fn from(e: CommonError) -> Self {
        TransError::Field(e)
    }
}

type Result<T> = std::result::Result<T, TransError>;

/// Operand of a positional predicate atom.
#[derive(Clone, Debug, PartialEq)]
pub enum PosOperand {
    /// Literal constant.
    Const(Value),
    /// Another column (by base-schema position).
    Col(usize),
    /// Program variable — a bind parameter in the generated SQL.
    Param(Ident),
}

/// What a positional `contains` atom probes with.
#[derive(Clone, Debug, PartialEq)]
pub enum PosProbe {
    /// The whole row.
    Record,
    /// One column (by base-schema position).
    Col(usize),
}

/// One conjunct of a positional filter.
#[derive(Clone, Debug, PartialEq)]
pub enum PosAtom {
    /// `col op operand`.
    Cmp {
        /// Base-schema position of the left column.
        lhs: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        rhs: PosOperand,
    },
    /// `probe IN (subquery)`.
    Contains {
        /// Row or column probed.
        probe: PosProbe,
        /// The sub-query searched.
        rel: Box<TransExpr>,
    },
}

/// A base expression `b` of the translatable grammar.
#[derive(Clone, Debug, PartialEq)]
pub enum BaseExpr {
    /// A table retrieval.
    Query(QuerySpec),
    /// `top_e(s)` used as a base (becomes a `FROM (… LIMIT e)` sub-query).
    Top(Box<SortedExpr>, Box<TorExpr>),
    /// Cross product `⋈_True(b1, b2)`.
    Cross(Box<BaseExpr>, Box<BaseExpr>),
    /// An aggregate used as a (single-row, single-column) base.
    Agg(AggKind, Box<TransExpr>),
}

impl BaseExpr {
    /// The schema of the rows this base produces. `Query` fields are
    /// qualified by their table name so that cross products stay resolvable.
    pub fn schema(&self) -> SchemaRef {
        match self {
            BaseExpr::Query(q) => {
                let mut b = Schema::builder(q.table.clone());
                for f in q.schema.fields() {
                    let qf = if f.qualifier.is_none() {
                        Field::qualified(q.table.clone(), f.name.clone(), f.ty)
                    } else {
                        f.clone()
                    };
                    b = b.push(qf);
                }
                b.finish()
            }
            BaseExpr::Top(s, _) => s.output_schema(),
            BaseExpr::Cross(a, b) => Schema::join(&a.schema(), &b.schema()).into_ref(),
            BaseExpr::Agg(kind, _) => Schema::anonymous()
                .field(format!("{}", kind).as_str(), qbs_common::FieldType::Int)
                .finish(),
        }
    }
}

/// A sorted expression `s = π_ℓπ(sort_ℓs(σ_φ(b)))` with positions resolved
/// against the base schema.
#[derive(Clone, Debug, PartialEq)]
pub struct SortedExpr {
    /// Projection: output column `k` is base column `proj[k]`.
    pub proj: Vec<usize>,
    /// Sort key positions in the base schema (primary first).
    pub sort: Vec<usize>,
    /// Conjunctive filter over base columns.
    pub filter: Vec<PosAtom>,
    /// The base.
    pub base: BaseExpr,
}

impl SortedExpr {
    /// The identity sorted expression over a base: project everything, no
    /// sort, no filter.
    pub fn identity(base: BaseExpr) -> SortedExpr {
        let arity = base.schema().arity();
        SortedExpr { proj: (0..arity).collect(), sort: Vec::new(), filter: Vec::new(), base }
    }

    /// Schema of the projected output.
    pub fn output_schema(&self) -> SchemaRef {
        let base = self.base.schema();
        let mut b = Schema::anonymous();
        for &p in &self.proj {
            b = b.push(base.fields()[p].clone());
        }
        b.finish()
    }
}

/// A grouped aggregation in translatable form: `GROUP BY` over a sorted
/// input, with `HAVING` conjuncts over the grouped output.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupedExpr {
    /// The grouped input; its filter becomes `WHERE`.
    pub input: SortedExpr,
    /// Base-schema positions of the group key columns.
    pub keys: Vec<usize>,
    /// Output names of the key columns.
    pub key_names: Vec<Ident>,
    /// The per-group aggregate.
    pub agg: AggKind,
    /// Base-schema position of the aggregated column (`None` for `Count`).
    pub agg_col: Option<usize>,
    /// Output name of the aggregate column.
    pub val_name: Ident,
    /// `HAVING` conjuncts; positions index the grouped output layout
    /// (`keys…, val`).
    pub having: Vec<PosAtom>,
}

impl GroupedExpr {
    /// Schema of the grouped output: key columns (renamed) then the
    /// aggregate value.
    pub fn output_schema(&self) -> SchemaRef {
        let base = self.input.base.schema();
        let mut b = Schema::anonymous();
        for (&p, name) in self.keys.iter().zip(&self.key_names) {
            b = b.field(name.as_str(), base.fields()[p].ty);
        }
        b.field(self.val_name.as_str(), qbs_common::FieldType::Int).finish()
    }
}

/// A translatable relation-valued expression.
#[derive(Clone, Debug, PartialEq)]
pub enum TransExpr {
    /// `s`.
    Sorted(SortedExpr),
    /// `top_e(s)` — SQL `LIMIT`.
    Top(SortedExpr, Box<TorExpr>),
    /// `unique(t)` — SQL `SELECT DISTINCT`, outermost level only.
    Unique(Box<TransExpr>),
    /// `group[spec](s)` — SQL `GROUP BY` (with optional `HAVING`).
    Grouped(GroupedExpr),
}

impl TransExpr {
    /// Schema of the produced rows.
    pub fn output_schema(&self) -> SchemaRef {
        match self {
            TransExpr::Sorted(s) | TransExpr::Top(s, _) => s.output_schema(),
            TransExpr::Unique(t) => t.output_schema(),
            TransExpr::Grouped(g) => g.output_schema(),
        }
    }
}

/// The right-hand side of a scalar comparison in a [`ScalarQuery`].
#[derive(Clone, Debug, PartialEq)]
pub enum ScalarRhs {
    /// Literal.
    Const(Value),
    /// Program variable (bind parameter).
    Param(Ident),
}

/// A scalar-producing translatable query: `agg(t)` optionally compared to a
/// constant (the paper's `SELECT COUNT(*) > 0 FROM …` existence idiom).
#[derive(Clone, Debug, PartialEq)]
pub struct ScalarQuery {
    /// The aggregate.
    pub agg: AggKind,
    /// The relation aggregated over.
    pub input: TransExpr,
    /// Optional trailing comparison, making the result boolean.
    pub compare: Option<(CmpOp, ScalarRhs)>,
}

/// Result of translating a postcondition right-hand side.
#[derive(Clone, Debug, PartialEq)]
pub enum TransResult {
    /// A relation-valued query.
    Rel(TransExpr),
    /// A scalar (or boolean) valued query.
    Scalar(ScalarQuery),
}

fn not_translatable<T>(what: impl Into<String>) -> Result<T> {
    Err(TransError::NotTranslatable(what.into()))
}

/// Resolves `refs` against `schema`, producing positions.
fn positions(refs: &[FieldRef], schema: &SchemaRef) -> Result<Vec<usize>> {
    refs.iter().map(|r| schema.index_of(r).map_err(TransError::from)).collect()
}

/// Converts a [`Pred`] whose references resolve against `elem` (an output
/// schema) into positional atoms against the base, going through `proj`.
fn lower_pred(
    pred: &Pred,
    elem: &SchemaRef,
    proj: &[usize],
    tenv: &TypeEnv,
) -> Result<Vec<PosAtom>> {
    let mut atoms = Vec::with_capacity(pred.atoms().len());
    for a in pred.atoms() {
        match a {
            PredAtom::Cmp { lhs, op, rhs } => {
                let l = proj[elem.index_of(lhs)?];
                let r = match rhs {
                    Operand::Const(v) => PosOperand::Const(v.clone()),
                    Operand::Field(fr) => PosOperand::Col(proj[elem.index_of(fr)?]),
                    Operand::Param(p) => PosOperand::Param(p.clone()),
                };
                atoms.push(PosAtom::Cmp { lhs: l, op: *op, rhs: r });
            }
            PredAtom::Contains { probe, rel } => {
                let sub = trans_rel(rel, tenv)?;
                let p = match probe {
                    Probe::Record => PosProbe::Record,
                    Probe::Field(fr) => PosProbe::Col(proj[elem.index_of(fr)?]),
                };
                atoms.push(PosAtom::Contains { probe: p, rel: Box::new(sub) });
            }
        }
    }
    Ok(atoms)
}

/// Converts any translatable relation expression into a [`SortedExpr`],
/// wrapping `top` forms as sub-query bases.
fn to_sorted(t: TransExpr) -> Result<SortedExpr> {
    match t {
        TransExpr::Sorted(s) => Ok(s),
        TransExpr::Top(s, e) => Ok(SortedExpr::identity(BaseExpr::Top(Box::new(s), e))),
        TransExpr::Unique(_) => {
            not_translatable("unique may only appear at the outermost level")
        }
        TransExpr::Grouped(_) => {
            not_translatable("grouped output may only be filtered (HAVING) or returned")
        }
    }
}

fn shift_operand(op: PosOperand, by: usize) -> PosOperand {
    match op {
        PosOperand::Col(c) => PosOperand::Col(c + by),
        other => other,
    }
}

fn shift_atoms(atoms: Vec<PosAtom>, by: usize) -> Vec<PosAtom> {
    atoms
        .into_iter()
        .map(|a| match a {
            PosAtom::Cmp { lhs, op, rhs } => {
                PosAtom::Cmp { lhs: lhs + by, op, rhs: shift_operand(rhs, by) }
            }
            PosAtom::Contains { probe, rel } => {
                let probe = match probe {
                    PosProbe::Col(c) => PosProbe::Col(c + by),
                    PosProbe::Record => PosProbe::Record,
                };
                PosAtom::Contains { probe, rel }
            }
        })
        .collect()
}

/// Resolves a [`GroupSpec`] against the element schema of its input,
/// producing base-schema key/aggregate positions through the input's
/// projection.
fn lower_group(spec: &GroupSpec, elem: &SchemaRef, s: SortedExpr) -> Result<GroupedExpr> {
    let mut keys = Vec::with_capacity(spec.keys.len());
    let mut key_names = Vec::with_capacity(spec.keys.len());
    for (name, src) in &spec.keys {
        keys.push(s.proj[elem.index_of(src)?]);
        key_names.push(name.clone());
    }
    let agg_col = match (spec.agg, &spec.agg_field) {
        (AggKind::Count, _) => None,
        (_, Some(fr)) => Some(s.proj[elem.index_of(fr)?]),
        (_, None) => {
            return not_translatable(format!("group {} without an aggregated field", spec.agg))
        }
    };
    Ok(GroupedExpr {
        input: s,
        keys,
        key_names,
        agg: spec.agg,
        agg_col,
        val_name: spec.val_name.clone(),
        having: Vec::new(),
    })
}

/// Translates a relation-valued TOR expression into translatable form
/// (the `Trans` function of Appendix B).
pub fn trans_rel(e: &TorExpr, tenv: &TypeEnv) -> Result<TransExpr> {
    match e {
        TorExpr::Query(q) => {
            Ok(TransExpr::Sorted(SortedExpr::identity(BaseExpr::Query(q.clone()))))
        }
        TorExpr::Var(v) => not_translatable(format!(
            "relation variable `{v}` was not substituted by its defining query"
        )),
        TorExpr::Proj(fields, inner) => {
            let elem = match infer_type(inner, tenv)? {
                TorType::Rel(s) => s,
                other => {
                    return not_translatable(format!("projection over non-relation ({other})"))
                }
            };
            let idx = positions(fields, &elem)?;
            match trans_rel(inner, tenv)? {
                TransExpr::Sorted(s) => {
                    let proj = idx.iter().map(|&k| s.proj[k]).collect();
                    Ok(TransExpr::Sorted(SortedExpr { proj, ..s }))
                }
                // π_ℓ(top_e(s)) = top_e(π_ℓ(s)) — sound for ordered lists.
                TransExpr::Top(s, e2) => {
                    let proj = idx.iter().map(|&k| s.proj[k]).collect();
                    Ok(TransExpr::Top(SortedExpr { proj, ..s }, e2))
                }
                TransExpr::Unique(_) => {
                    not_translatable("projection over unique is outside the grammar")
                }
                TransExpr::Grouped(_) => {
                    not_translatable("projection over a grouped output is outside the grammar")
                }
            }
        }
        TorExpr::Select(pred, inner) => {
            let elem = match infer_type(inner, tenv)? {
                TorType::Rel(s) => s,
                other => {
                    return not_translatable(format!("selection over non-relation ({other})"))
                }
            };
            match trans_rel(inner, tenv)? {
                TransExpr::Sorted(mut s) => {
                    let atoms = lower_pred(pred, &elem, &s.proj, tenv)?;
                    s.filter.extend(atoms);
                    Ok(TransExpr::Sorted(s))
                }
                // Keep the filter OUTSIDE the limit (see module docs):
                // σ_φ(top_e(s)) becomes σ_φ over the sub-query base.
                top @ TransExpr::Top(..) => {
                    let mut s = to_sorted(top)?;
                    let atoms = lower_pred(pred, &elem, &s.proj, tenv)?;
                    s.filter.extend(atoms);
                    Ok(TransExpr::Sorted(s))
                }
                TransExpr::Unique(_) => {
                    not_translatable("selection over unique is outside the grammar")
                }
                // σ over a grouped output is HAVING: atoms resolve against
                // the grouped layout (keys…, val).
                TransExpr::Grouped(mut g) => {
                    let out = g.output_schema();
                    let identity: Vec<usize> = (0..out.arity()).collect();
                    let atoms = lower_pred(pred, &out, &identity, tenv)?;
                    g.having.extend(atoms);
                    Ok(TransExpr::Grouped(g))
                }
            }
        }
        TorExpr::Join(pred, l, r) => {
            let (ls, rs) = match (infer_type(l, tenv)?, infer_type(r, tenv)?) {
                (TorType::Rel(a), TorType::Rel(b)) => (a, b),
                _ => {
                    return not_translatable(
                        "join of non-relations (record joins are invariant-only)",
                    )
                }
            };
            let sl = to_sorted(trans_rel(l, tenv)?)?;
            let sr = to_sorted(trans_rel(r, tenv)?)?;
            let left_arity = sl.base.schema().arity();
            let base = BaseExpr::Cross(Box::new(sl.base), Box::new(sr.base));
            let mut filter = sl.filter;
            filter.extend(shift_atoms(sr.filter, left_arity));
            for atom in pred.atoms() {
                let li = sl.proj[ls.index_of(&atom.left)?];
                let ri = left_arity + sr.proj[rs.index_of(&atom.right)?];
                filter.push(PosAtom::Cmp { lhs: li, op: atom.op, rhs: PosOperand::Col(ri) });
            }
            let mut sort = sl.sort;
            sort.extend(sr.sort.iter().map(|&p| p + left_arity));
            let mut proj = sl.proj;
            proj.extend(sr.proj.iter().map(|&p| p + left_arity));
            Ok(TransExpr::Sorted(SortedExpr { proj, sort, filter, base }))
        }
        TorExpr::Top(inner, count) => match trans_rel(inner, tenv)? {
            TransExpr::Sorted(s) => Ok(TransExpr::Top(s, Box::new((**count).clone()))),
            TransExpr::Top(s, e1) => {
                // top_e2(top_e1(s)) = top_min(e1,e2)(s) when both constant;
                // otherwise nest the inner top as a base.
                if let (TorExpr::Const(Value::Int(a)), TorExpr::Const(Value::Int(b))) =
                    (&*e1, &**count)
                {
                    let m = (*a).min(*b);
                    Ok(TransExpr::Top(s, Box::new(TorExpr::int(m))))
                } else {
                    let nested = SortedExpr::identity(BaseExpr::Top(Box::new(s), e1));
                    Ok(TransExpr::Top(nested, Box::new((**count).clone())))
                }
            }
            TransExpr::Unique(_) => not_translatable("top over unique is outside the grammar"),
            TransExpr::Grouped(_) => {
                not_translatable("top over a grouped output is outside the grammar")
            }
        },
        TorExpr::Sort(fields, inner) => {
            let elem = match infer_type(inner, tenv)? {
                TorType::Rel(s) => s,
                other => return not_translatable(format!("sort over non-relation ({other})")),
            };
            let idx = positions(fields, &elem)?;
            match trans_rel(inner, tenv)? {
                TransExpr::Sorted(s) => {
                    // Outer sort keys take precedence; the previous keys
                    // break ties (stable sort composition).
                    let mut sort: Vec<usize> = idx.iter().map(|&k| s.proj[k]).collect();
                    sort.extend(s.sort.iter().copied());
                    Ok(TransExpr::Sorted(SortedExpr { sort, ..s }))
                }
                top @ TransExpr::Top(..) => {
                    let s = to_sorted(top)?;
                    let mut sort: Vec<usize> = idx.iter().map(|&k| s.proj[k]).collect();
                    sort.extend(s.sort.iter().copied());
                    Ok(TransExpr::Sorted(SortedExpr { sort, ..s }))
                }
                TransExpr::Unique(_) => {
                    not_translatable("sort over unique is outside the grammar")
                }
                TransExpr::Grouped(_) => {
                    not_translatable("sort over a grouped output is outside the grammar")
                }
            }
        }
        TorExpr::Unique(inner) => Ok(TransExpr::Unique(Box::new(trans_rel(inner, tenv)?))),
        TorExpr::Group(spec, inner) => {
            let elem = match infer_type(inner, tenv)? {
                TorType::Rel(s) => s,
                other => return not_translatable(format!("group over non-relation ({other})")),
            };
            let s = to_sorted(trans_rel(inner, tenv)?)?;
            let grouped = lower_group(spec, &elem, s)?;
            Ok(TransExpr::Grouped(grouped))
        }
        TorExpr::Append(..) | TorExpr::Concat(..) => {
            not_translatable("append/concatenation has no order-preserving SQL equivalent")
        }
        TorExpr::Get(..) => not_translatable("get denotes a single record, not a relation"),
        other => not_translatable(format!("expression `{other}` is outside the grammar")),
    }
}

/// Translates a postcondition right-hand side — relation- or scalar-valued —
/// into SQL-ready form.
///
/// # Errors
///
/// Returns [`TransError::NotTranslatable`] for expressions outside the
/// translatable fragment (`append`, nested `unique`, bare `get`, …).
///
/// # Example
///
/// ```
/// use qbs_common::{Schema, FieldType};
/// use qbs_tor::{trans, QuerySpec, TorExpr, TypeEnv, TransResult};
///
/// let users = Schema::builder("users").field("id", FieldType::Int).finish();
/// let q = TorExpr::Query(QuerySpec::table_scan("users", users));
/// let r = trans(&TorExpr::size(q), &TypeEnv::new()).unwrap();
/// assert!(matches!(r, TransResult::Scalar(_)));
/// ```
pub fn trans(e: &TorExpr, tenv: &TypeEnv) -> Result<TransResult> {
    match e {
        TorExpr::Agg(kind, inner) => Ok(TransResult::Scalar(ScalarQuery {
            agg: *kind,
            input: trans_rel(inner, tenv)?,
            compare: None,
        })),
        TorExpr::Size(inner) => Ok(TransResult::Scalar(ScalarQuery {
            agg: AggKind::Count,
            input: trans_rel(inner, tenv)?,
            compare: None,
        })),
        TorExpr::Binary(BinOp::Cmp(op), a, b) => {
            // agg(t) op const / param — e.g. the existence idiom COUNT(*) > 0.
            let (agg_side, op, rhs) = match (&**a, &**b) {
                (TorExpr::Agg(..) | TorExpr::Size(..), rhs) => (&**a, *op, rhs),
                (lhs, TorExpr::Agg(..) | TorExpr::Size(..)) => (&**b, op.flip(), lhs),
                _ => return not_translatable("comparison without an aggregate side"),
            };
            let rhs = match rhs {
                TorExpr::Const(v) => ScalarRhs::Const(v.clone()),
                TorExpr::Var(v) => ScalarRhs::Param(v.clone()),
                other => return not_translatable(format!("comparison right side `{other}`")),
            };
            match trans(agg_side, tenv)? {
                TransResult::Scalar(mut s) if s.compare.is_none() => {
                    s.compare = Some((op, rhs));
                    Ok(TransResult::Scalar(s))
                }
                _ => not_translatable("nested comparisons"),
            }
        }
        _ => Ok(TransResult::Rel(trans_rel(e, tenv)?)),
    }
}

/// The hidden column name standing for "record order in the database"
/// (paper Fig. 9: `Order(Query(...)) = [record order in DB]`). The engine in
/// `qbs-db` materializes it as an implicit monotone row id.
pub const ROWID: &str = "rowid";

fn base_order(b: &BaseExpr) -> Vec<FieldRef> {
    match b {
        BaseExpr::Query(q) => vec![FieldRef::qualified(q.table.clone(), ROWID)],
        BaseExpr::Top(s, _) => sorted_order(s),
        BaseExpr::Cross(a, b) => {
            let mut v = base_order(a);
            v.extend(base_order(b));
            v
        }
        BaseExpr::Agg(..) => Vec::new(),
    }
}

fn sorted_order(s: &SortedExpr) -> Vec<FieldRef> {
    let schema = s.base.schema();
    let mut v: Vec<FieldRef> = s
        .sort
        .iter()
        .map(|&p| {
            let f = &schema.fields()[p];
            FieldRef { qualifier: f.qualifier.clone(), name: f.name.clone() }
        })
        .collect();
    v.extend(base_order(&s.base));
    v
}

/// The `Order` function of Fig. 9: the list of fields that fix the record
/// order of a translatable expression, to be emitted as the outer `ORDER BY`.
///
/// `Order(Query(t))` is the hidden `t.rowid` column; `Order(sort_ℓ(e))`
/// prepends `ℓ`; joins concatenate; aggregates contribute nothing.
pub fn order_fields(t: &TransExpr) -> Vec<FieldRef> {
    match t {
        TransExpr::Sorted(s) | TransExpr::Top(s, _) => sorted_order(s),
        TransExpr::Unique(inner) => order_fields(inner),
        // Grouped output has no rowid-derived order; like aggregates, it
        // contributes nothing (the engine's hash aggregate fixes the order
        // to first key occurrence, compared as a multiset downstream).
        TransExpr::Grouped(_) => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::JoinPred;
    use qbs_common::FieldType;

    fn users() -> SchemaRef {
        Schema::builder("users")
            .field("id", FieldType::Int)
            .field("roleId", FieldType::Int)
            .finish()
    }

    fn roles() -> SchemaRef {
        Schema::builder("roles")
            .field("roleId", FieldType::Int)
            .field("label", FieldType::Str)
            .finish()
    }

    fn q(table: &str, s: SchemaRef) -> TorExpr {
        TorExpr::Query(QuerySpec::table_scan(table, s))
    }

    #[test]
    fn query_is_identity_sorted() {
        let t = trans_rel(&q("users", users()), &TypeEnv::new()).unwrap();
        match t {
            TransExpr::Sorted(s) => {
                assert_eq!(s.proj, vec![0, 1]);
                assert!(s.filter.is_empty());
                assert!(s.sort.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_then_project_compose() {
        let tenv = TypeEnv::new();
        let p = Pred::truth().and_cmp("roleId".into(), CmpOp::Eq, Operand::Const(10.into()));
        let e = TorExpr::proj(vec!["id".into()], TorExpr::select(p, q("users", users())));
        match trans_rel(&e, &tenv).unwrap() {
            TransExpr::Sorted(s) => {
                assert_eq!(s.proj, vec![0]);
                assert_eq!(s.filter.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn join_becomes_cross_with_filter() {
        let tenv = TypeEnv::new();
        let e = TorExpr::join(
            JoinPred::eq("roleId", "roleId"),
            q("users", users()),
            q("roles", roles()),
        );
        match trans_rel(&e, &tenv).unwrap() {
            TransExpr::Sorted(s) => {
                assert!(matches!(s.base, BaseExpr::Cross(..)));
                assert_eq!(s.proj, vec![0, 1, 2, 3]);
                // users.roleId (pos 1) = roles.roleId (pos 2)
                assert_eq!(
                    s.filter,
                    vec![PosAtom::Cmp { lhs: 1, op: CmpOp::Eq, rhs: PosOperand::Col(2) }]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn projection_after_join_maps_positions() {
        let tenv = TypeEnv::new();
        let join = TorExpr::join(
            JoinPred::eq("roleId", "roleId"),
            q("users", users()),
            q("roles", roles()),
        );
        // Keep only the user columns (the paper's running example).
        let e = TorExpr::proj(vec!["users.id".into(), "users.roleId".into()], join);
        match trans_rel(&e, &tenv).unwrap() {
            TransExpr::Sorted(s) => assert_eq!(s.proj, vec![0, 1]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn top_of_top_takes_min_of_constants() {
        let tenv = TypeEnv::new();
        let e =
            TorExpr::top(TorExpr::top(q("users", users()), TorExpr::int(7)), TorExpr::int(3));
        match trans_rel(&e, &tenv).unwrap() {
            TransExpr::Top(_, e) => assert_eq!(*e, TorExpr::int(3)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_over_top_keeps_filter_outside_limit() {
        let tenv = TypeEnv::new();
        let p = Pred::truth().and_cmp("id".into(), CmpOp::Gt, Operand::Const(0.into()));
        let e = TorExpr::select(p, TorExpr::top(q("users", users()), TorExpr::int(5)));
        match trans_rel(&e, &tenv).unwrap() {
            TransExpr::Sorted(s) => {
                assert!(matches!(s.base, BaseExpr::Top(..)), "limit must nest under filter");
                assert_eq!(s.filter.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn append_is_rejected() {
        let tenv = TypeEnv::new();
        let e = TorExpr::concat(q("users", users()), q("users", users()));
        assert!(matches!(trans_rel(&e, &tenv), Err(TransError::NotTranslatable(_))));
    }

    #[test]
    fn unique_only_at_outermost() {
        let tenv = TypeEnv::new();
        let ok = TorExpr::unique(TorExpr::proj(vec!["roleId".into()], q("users", users())));
        assert!(matches!(trans_rel(&ok, &tenv), Ok(TransExpr::Unique(_))));
        let bad = TorExpr::proj(vec!["roleId".into()], TorExpr::unique(q("users", users())));
        assert!(trans_rel(&bad, &tenv).is_err());
    }

    #[test]
    fn scalar_count_with_comparison() {
        let tenv = TypeEnv::new();
        let e = TorExpr::cmp(
            CmpOp::Gt,
            TorExpr::agg(AggKind::Count, q("users", users())),
            TorExpr::int(0),
        );
        match trans(&e, &tenv).unwrap() {
            TransResult::Scalar(s) => {
                assert_eq!(s.agg, AggKind::Count);
                assert_eq!(s.compare, Some((CmpOp::Gt, ScalarRhs::Const(0.into()))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn order_fields_of_join_concatenates_rowids() {
        let tenv = TypeEnv::new();
        let e = TorExpr::join(
            JoinPred::eq("roleId", "roleId"),
            q("users", users()),
            q("roles", roles()),
        );
        let t = trans_rel(&e, &tenv).unwrap();
        let ord = order_fields(&t);
        assert_eq!(
            ord,
            vec![FieldRef::qualified("users", ROWID), FieldRef::qualified("roles", ROWID),]
        );
    }

    #[test]
    fn order_fields_of_sort_prepends_keys() {
        let tenv = TypeEnv::new();
        let e = TorExpr::sort(vec!["id".into()], q("users", users()));
        let t = trans_rel(&e, &tenv).unwrap();
        let ord = order_fields(&t);
        assert_eq!(ord[0], FieldRef::qualified("users", "id"));
        assert_eq!(ord[1], FieldRef::qualified("users", ROWID));
    }
}
