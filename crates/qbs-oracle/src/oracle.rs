//! The differential check: interpret the original kernel program and
//! execute the synthesized SQL on the same database, then compare under
//! the correct TOR equivalence.

use crate::verdict::{MismatchWitness, OracleVerdict};
use qbs_common::Ident;
use qbs_db::{rows_diff, Database, Params, QueryOutput, RowsEquivalence};
use qbs_kernel::KernelProgram;
use qbs_sql::SqlQuery;
use qbs_tor::DynValue;

/// Cap on re-executions spent minimizing one witness; minimization is
/// best-effort and stops early on huge databases rather than stalling the
/// oracle run.
const MINIMIZE_BUDGET: usize = 512;

/// How many result rows a witness dump includes before truncating.
const DUMP_ROWS: usize = 12;

/// The raw outcome of running both sides once, before any witness
/// minimization.
enum Outcome {
    Agree { rows: usize, equivalence: RowsEquivalence },
    Diff { diff: String, original: String, translated: String },
    Inconclusive(String),
}

fn dump_dyn(v: &DynValue) -> String {
    match v {
        DynValue::Scalar(s) => format!("{s:?}"),
        DynValue::Rec(r) => format!("{:?}", r.values()),
        DynValue::Rel(rel) => dump_rows(rel.iter().map(|r| r.values().to_vec())),
    }
}

fn dump_rows(rows: impl IntoIterator<Item = Vec<qbs_common::Value>>) -> String {
    let mut all: Vec<String> = rows.into_iter().map(|r| format!("{r:?}")).collect();
    let n = all.len();
    if n > DUMP_ROWS {
        all.truncate(DUMP_ROWS);
        all.push(format!("… ({} more)", n - DUMP_ROWS));
    }
    format!("[{}] {}", n, all.join(", "))
}

/// The row equivalence a query's results must be compared under: ordered
/// when the SQL pins order with an `ORDER BY` (the paper's `Order`
/// function proved the fragment's order), multiset otherwise.
pub fn proven_equivalence(sql: &SqlQuery) -> RowsEquivalence {
    match sql {
        SqlQuery::Select(s) if !s.order_by.is_empty() => RowsEquivalence::Ordered,
        SqlQuery::Select(_) => RowsEquivalence::Multiset,
        // Scalars have no row order to compare.
        SqlQuery::Scalar(_) => RowsEquivalence::Ordered,
    }
}

fn run_both(kernel: &KernelProgram, sql: &SqlQuery, db: &Database, params: &Params) -> Outcome {
    // Original semantics: the kernel interpreter over the database's
    // relations, with bind parameters as scalar variables.
    let mut env = db.env();
    for (name, value) in params {
        env.bind(name.clone(), value.clone());
    }
    let run = match qbs_kernel::run(kernel, env) {
        Ok(r) => r,
        Err(e) => return Outcome::Inconclusive(format!("interpreter failed: {e}")),
    };

    // Transformed semantics: the SQL executor on the same database.
    let out = match db.execute(sql, params) {
        Ok(o) => o,
        Err(e) => return Outcome::Inconclusive(format!("sql execution failed: {e}")),
    };

    let equivalence = proven_equivalence(sql);
    match (&run.result, &out) {
        (DynValue::Rel(orig), QueryOutput::Rows(sqlout)) => {
            match rows_diff(orig, &sqlout.rows, equivalence) {
                None => Outcome::Agree { rows: orig.len(), equivalence },
                Some(d) => Outcome::Diff {
                    diff: d.to_string(),
                    original: dump_dyn(&run.result),
                    translated: dump_rows(sqlout.rows.iter().map(|r| r.values().to_vec())),
                },
            }
        }
        (DynValue::Scalar(orig), QueryOutput::Scalar { value, .. }) => {
            if orig == value {
                Outcome::Agree { rows: 1, equivalence: RowsEquivalence::Ordered }
            } else {
                Outcome::Diff {
                    diff: format!("scalar differs: {orig:?} vs {value:?}"),
                    original: format!("{orig:?}"),
                    translated: format!("{value:?}"),
                }
            }
        }
        // A record-valued fragment against a one-row result set compares
        // by that row.
        (DynValue::Rec(rec), QueryOutput::Rows(sqlout)) => {
            let matches = sqlout.rows.len() == 1
                && sqlout.rows.get(0).is_some_and(|r| r.values() == rec.values());
            if matches {
                Outcome::Agree { rows: 1, equivalence: RowsEquivalence::Ordered }
            } else {
                Outcome::Diff {
                    diff: format!("record result vs {} SQL rows", sqlout.rows.len()),
                    original: dump_dyn(&run.result),
                    translated: dump_rows(sqlout.rows.iter().map(|r| r.values().to_vec())),
                }
            }
        }
        (orig, out) => {
            let translated = match out {
                QueryOutput::Rows(r) => dump_rows(r.rows.iter().map(|x| x.values().to_vec())),
                QueryOutput::Scalar { value, .. } => format!("{value:?}"),
            };
            Outcome::Diff {
                diff: format!("result kinds differ: {} vs SQL", orig.kind()),
                original: dump_dyn(orig),
                translated,
            }
        }
    }
}

/// Runs the differential check and, on mismatch, minimizes the witness
/// database before reporting.
///
/// The fragment's `Query(...)` retrievals resolve against `db`'s tables;
/// `params` supplies values for both the kernel's parameters and the SQL's
/// bind parameters (the engine keeps their names aligned).
pub fn check(
    kernel: &KernelProgram,
    sql: &SqlQuery,
    db: &Database,
    params: &Params,
) -> OracleVerdict {
    match run_both(kernel, sql, db, params) {
        Outcome::Agree { rows, equivalence } => OracleVerdict::Agree { rows, equivalence },
        Outcome::Inconclusive(reason) => OracleVerdict::Inconclusive { reason },
        Outcome::Diff { .. } => {
            let minimized = minimize(kernel, sql, db, params);
            // Re-derive the divergence on the minimized database so the
            // witness is self-contained.
            match run_both(kernel, sql, &minimized, params) {
                Outcome::Diff { diff, original, translated } => {
                    OracleVerdict::Mismatch(Box::new(MismatchWitness {
                        fragment: kernel.name().to_string(),
                        sql: sql.to_string(),
                        diff,
                        original,
                        translated,
                        db: minimized,
                    }))
                }
                // Unreachable by construction (minimize only commits
                // mismatch-preserving reductions), kept total for safety.
                _ => {
                    let Outcome::Diff { diff, original, translated } =
                        run_both(kernel, sql, db, params)
                    else {
                        return OracleVerdict::Inconclusive {
                            reason: "mismatch did not reproduce".to_string(),
                        };
                    };
                    OracleVerdict::Mismatch(Box::new(MismatchWitness {
                        fragment: kernel.name().to_string(),
                        sql: sql.to_string(),
                        diff,
                        original,
                        translated,
                        db: db.clone(),
                    }))
                }
            }
        }
    }
}

/// Runs the differential check without witness minimization — the hot path
/// for fuzzing loops where most verdicts are expected to agree.
pub fn check_unminimized(
    kernel: &KernelProgram,
    sql: &SqlQuery,
    db: &Database,
    params: &Params,
) -> OracleVerdict {
    match run_both(kernel, sql, db, params) {
        Outcome::Agree { rows, equivalence } => OracleVerdict::Agree { rows, equivalence },
        Outcome::Inconclusive(reason) => OracleVerdict::Inconclusive { reason },
        Outcome::Diff { diff, original, translated } => {
            OracleVerdict::Mismatch(Box::new(MismatchWitness {
                fragment: kernel.name().to_string(),
                sql: sql.to_string(),
                diff,
                original,
                translated,
                db: db.clone(),
            }))
        }
    }
}

/// Rebuilds `db` with `table` restricted to the rows whose positions are
/// marked in `keep`; schemas and indexes carry over.
fn retain_rows(db: &Database, table: &Ident, keep: &[bool]) -> Database {
    let mut out = Database::new();
    for name in db.table_names() {
        let t = db.table(name).expect("listed table");
        out.create_table(t.schema().clone()).expect("fresh database");
        for (i, row) in t.rows().iter().enumerate() {
            if name == table && !keep.get(i).copied().unwrap_or(true) {
                continue;
            }
            out.insert(name.as_str(), row.clone()).expect("same schema");
        }
        for col in t.indexed_columns() {
            out.create_index(name.as_str(), col.as_str()).expect("same schema");
        }
    }
    out
}

/// Greedily shrinks the database while the fragment and its SQL still
/// disagree — delta debugging over table rows, chunked from whole-table
/// removals down to single rows, bounded by a fixed re-execution budget.
///
/// The result is a (near-)minimal database on which the mismatch still
/// reproduces; on agreement or errors the input database is returned
/// unchanged.
pub fn minimize(
    kernel: &KernelProgram,
    sql: &SqlQuery,
    db: &Database,
    params: &Params,
) -> Database {
    let still_mismatch = |candidate: &Database| {
        matches!(run_both(kernel, sql, candidate, params), Outcome::Diff { .. })
    };
    if !still_mismatch(db) {
        return db.clone();
    }
    let mut budget = MINIMIZE_BUDGET;
    let mut current = db.clone();
    let tables: Vec<Ident> = current.table_names().cloned().collect();
    for table in tables {
        let mut chunk = current.table(&table).map(|t| t.len()).unwrap_or(0);
        while chunk >= 1 && budget > 0 {
            let len = current.table(&table).map(|t| t.len()).unwrap_or(0);
            let mut start = 0;
            while start < len && budget > 0 {
                let len_now = current.table(&table).map(|t| t.len()).unwrap_or(0);
                if start >= len_now {
                    break;
                }
                let mut keep = vec![true; len_now];
                for k in keep.iter_mut().skip(start).take(chunk) {
                    *k = false;
                }
                let candidate = retain_rows(&current, &table, &keep);
                budget -= 1;
                if still_mismatch(&candidate) {
                    // Commit the removal; the next chunk now starts at the
                    // same position.
                    current = candidate;
                } else {
                    start += chunk;
                }
            }
            chunk /= 2;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_common::{FieldType, Schema, Value};
    use qbs_kernel::{KExpr, KStmt};
    use qbs_tor::{CmpOp, QuerySpec};

    fn users_db(role_pairs: &[(i64, i64)]) -> Database {
        let mut db = Database::new();
        db.create_table(
            Schema::builder("users")
                .field("id", FieldType::Int)
                .field("roleId", FieldType::Int)
                .finish(),
        )
        .unwrap();
        for (id, role) in role_pairs {
            db.insert("users", vec![Value::from(*id), Value::from(*role)]).unwrap();
        }
        db
    }

    fn selection_kernel_built(role: i64) -> KernelProgram {
        let schema = Schema::builder("users")
            .field("id", FieldType::Int)
            .field("roleId", FieldType::Int)
            .finish();
        KernelProgram::builder("sel")
            .stmt(KStmt::assign("out", KExpr::EmptyList))
            .stmt(KStmt::assign("users", KExpr::query(QuerySpec::table_scan("users", schema))))
            .stmt(KStmt::assign("i", KExpr::int(0)))
            .stmt(KStmt::while_loop(
                KExpr::cmp(CmpOp::Lt, KExpr::var("i"), KExpr::size(KExpr::var("users"))),
                vec![
                    KStmt::if_then(
                        KExpr::cmp(
                            CmpOp::Eq,
                            KExpr::field(
                                KExpr::get(KExpr::var("users"), KExpr::var("i")),
                                "roleId",
                            ),
                            KExpr::int(role),
                        ),
                        vec![KStmt::assign(
                            "out",
                            KExpr::append(
                                KExpr::var("out"),
                                KExpr::get(KExpr::var("users"), KExpr::var("i")),
                            ),
                        )],
                    ),
                    KStmt::assign("i", KExpr::add(KExpr::var("i"), KExpr::int(1))),
                ],
            ))
            .result("out")
            .finish()
    }

    fn select_where_role(role: i64) -> SqlQuery {
        qbs_sql::parse(&format!(
            "SELECT users.id, users.roleId FROM users WHERE users.roleId = {role} \
             ORDER BY users.rowid"
        ))
        .unwrap()
    }

    #[test]
    fn correct_translation_agrees() {
        let db = users_db(&[(1, 10), (2, 20), (3, 10)]);
        let v = check(&selection_kernel_built(10), &select_where_role(10), &db, &Params::new());
        match v {
            OracleVerdict::Agree { rows, equivalence } => {
                assert_eq!(rows, 2);
                assert_eq!(equivalence, RowsEquivalence::Ordered);
            }
            other => panic!("expected agree, got {other}"),
        }
    }

    #[test]
    fn wrong_predicate_is_a_minimized_mismatch() {
        let db = users_db(&[(0, 10), (1, 20), (2, 10), (3, 20), (4, 10), (5, 30)]);
        // The "translation" filters role 20 while the source filters 10.
        let v = check(&selection_kernel_built(10), &select_where_role(20), &db, &Params::new());
        let OracleVerdict::Mismatch(w) = v else { panic!("expected mismatch, got {v}") };
        // A single row with roleId ∈ {10, 20} suffices to show divergence;
        // minimization must get there.
        let users = w.db.table(&"users".into()).expect("witness keeps the table");
        assert_eq!(users.len(), 1, "witness:\n{w}");
        assert!(w.to_string().contains("sql:"), "{w}");
    }

    #[test]
    fn unknown_table_is_inconclusive() {
        let db = users_db(&[(1, 10)]);
        let sql = qbs_sql::parse("SELECT missing.id FROM missing").unwrap();
        let v = check(&selection_kernel_built(10), &sql, &db, &Params::new());
        assert!(matches!(v, OracleVerdict::Inconclusive { .. }), "{v}");
    }

    #[test]
    fn unordered_query_compares_as_multiset() {
        let db = users_db(&[(1, 10), (2, 10)]);
        // No ORDER BY: the oracle must not require row order.
        let sql = qbs_sql::parse("SELECT users.id, users.roleId FROM users").unwrap();
        let v = check(&selection_kernel_built(10), &sql, &db, &Params::new());
        match v {
            OracleVerdict::Agree { equivalence, .. } => {
                assert_eq!(equivalence, RowsEquivalence::Multiset)
            }
            other => panic!("expected agree, got {other}"),
        }
    }
}
