//! The differential check: run the original kernel program and execute
//! the synthesized SQL on the same database, then compare under the
//! correct TOR equivalence.
//!
//! Both sides execute *compiled* programs. The SQL side runs through a
//! [`Connection`] and a single [`PreparedStatement`] per fragment —
//! planned once at [`check_opts`] (or [`check_many`]) entry, then
//! executed for the initial run, every witness-minimization candidate,
//! and every seeded database; the returned [`ExecStats`] therefore
//! expose the plan-cache behaviour (`plan_cache_hits` / `replans`)
//! alongside the row counters. The kernel side is lowered once per
//! check entry with [`qbs_kernel::compile`] and replayed through the
//! bytecode VM across minimization candidates and seeds (the VM's
//! results and errors are interpreter-identical by construction, which
//! the `vm_equivalence` suite re-verifies differentially).

use crate::verdict::{MismatchWitness, OracleVerdict};
use qbs_common::Ident;
use qbs_db::{
    rows_diff, Connection, Database, ExecStats, Params, PlanConfig, PreparedStatement,
    QueryOutput, RowsEquivalence,
};
use qbs_kernel::{CompiledProgram, KernelProgram};
use qbs_sql::{Dialect, SqlQuery};
use qbs_tor::DynValue;

/// Cap on re-executions spent minimizing one witness; minimization is
/// best-effort and stops early on huge databases rather than stalling the
/// oracle run.
const MINIMIZE_BUDGET: usize = 512;

/// How many result rows a witness dump includes before truncating.
const DUMP_ROWS: usize = 12;

/// The raw outcome of running both sides once, before any witness
/// minimization.
enum Outcome {
    Agree { rows: usize, equivalence: RowsEquivalence },
    Diff { diff: String, original: String, translated: String },
    Inconclusive(String),
}

/// Tuning for one differential check.
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Execute the SQL side with greedy join reordering enabled (the
    /// planner still gates the reorder on order-safety — see
    /// `qbs_db::PlanConfig`).
    pub reorder_joins: bool,
    /// Delta-debug a mismatch witness down to a (near-)minimal database.
    pub minimize: bool,
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions { reorder_joins: false, minimize: true }
    }
}

impl CheckOptions {
    fn plan_config(&self) -> PlanConfig {
        PlanConfig { reorder_joins: self.reorder_joins, ..PlanConfig::default() }
    }
}

/// A verdict plus the executor counters of the SQL side — what corpus-scale
/// oracle runs roll up into their reports.
#[derive(Clone, Debug)]
pub struct CheckOutcome {
    /// The differential verdict.
    pub verdict: OracleVerdict,
    /// [`ExecStats`] of the first SQL execution (absent when the executor
    /// itself failed, i.e. the verdict is inconclusive on the SQL side).
    pub exec: Option<ExecStats>,
    /// Wall-clock of the kernel interpretation on the initial database
    /// (0 when the interpreter failed before finishing).
    pub kernel_ns: u64,
    /// Wall-clock of the first SQL execution (0 when it failed) — the
    /// paper's speedup claim, measured per check: `kernel_ns / sql_ns`
    /// is the original-vs-translated ratio on that database.
    pub sql_ns: u64,
}

/// Per-side wall-clock of one `run_both`, for [`CheckOutcome`].
#[derive(Default)]
struct SideTimes {
    kernel_ns: u64,
    sql_ns: u64,
}

fn dump_dyn(v: &DynValue) -> String {
    match v {
        DynValue::Scalar(s) => format!("{s:?}"),
        DynValue::Rec(r) => format!("{:?}", r.values()),
        DynValue::Rel(rel) => dump_rows(rel.iter().map(|r| r.values().to_vec())),
    }
}

fn dump_rows(rows: impl IntoIterator<Item = Vec<qbs_common::Value>>) -> String {
    let mut all: Vec<String> = rows.into_iter().map(|r| format!("{r:?}")).collect();
    let n = all.len();
    if n > DUMP_ROWS {
        all.truncate(DUMP_ROWS);
        all.push(format!("… ({} more)", n - DUMP_ROWS));
    }
    format!("[{}] {}", n, all.join(", "))
}

/// The row equivalence a query's results must be compared under: ordered
/// when the SQL pins order with an `ORDER BY` (the paper's `Order`
/// function proved the fragment's order), multiset otherwise.
pub fn proven_equivalence(sql: &SqlQuery) -> RowsEquivalence {
    match sql {
        SqlQuery::Select(s) if !s.order_by.is_empty() => RowsEquivalence::Ordered,
        SqlQuery::Select(_) => RowsEquivalence::Multiset,
        // Scalars have no row order to compare.
        SqlQuery::Scalar(_) => RowsEquivalence::Ordered,
    }
}

fn run_both(
    kernel: &CompiledProgram,
    stmt: &PreparedStatement,
    conn: &Connection,
    params: &Params,
    exec: &mut Option<ExecStats>,
    times: &mut SideTimes,
) -> Outcome {
    // Original semantics: the compiled kernel program over the
    // database's relations, with bind parameters as scalar variables.
    let mut env = conn.database().env();
    for (name, value) in params {
        env.bind(name.clone(), value.clone());
    }
    let opened = std::time::Instant::now();
    let run = match kernel.run(env) {
        Ok(r) => r,
        Err(e) => return Outcome::Inconclusive(format!("interpreter failed: {e}")),
    };
    times.kernel_ns = opened.elapsed().as_nanos() as u64;

    // Transformed semantics: the prepared statement on the same database.
    let opened = std::time::Instant::now();
    let out = match conn.execute(stmt, params) {
        Ok(o) => o,
        Err(e) => return Outcome::Inconclusive(format!("sql execution failed: {e}")),
    };
    times.sql_ns = opened.elapsed().as_nanos() as u64;
    *exec = Some(match &out {
        QueryOutput::Rows(r) => r.stats.clone(),
        QueryOutput::Scalar { stats, .. } => stats.clone(),
    });

    let equivalence = proven_equivalence(stmt.query());
    match (&run.result, &out) {
        (DynValue::Rel(orig), QueryOutput::Rows(sqlout)) => {
            match rows_diff(orig, &sqlout.rows, equivalence) {
                None => Outcome::Agree { rows: orig.len(), equivalence },
                Some(d) => Outcome::Diff {
                    diff: d.to_string(),
                    original: dump_dyn(&run.result),
                    translated: dump_rows(sqlout.rows.iter().map(|r| r.values().to_vec())),
                },
            }
        }
        (DynValue::Scalar(orig), QueryOutput::Scalar { value, .. }) => {
            if orig == value {
                Outcome::Agree { rows: 1, equivalence: RowsEquivalence::Ordered }
            } else {
                Outcome::Diff {
                    diff: format!("scalar differs: {orig:?} vs {value:?}"),
                    original: format!("{orig:?}"),
                    translated: format!("{value:?}"),
                }
            }
        }
        // A record-valued fragment against a one-row result set compares
        // by that row.
        (DynValue::Rec(rec), QueryOutput::Rows(sqlout)) => {
            let matches = sqlout.rows.len() == 1
                && sqlout.rows.get(0).is_some_and(|r| r.values() == rec.values());
            if matches {
                Outcome::Agree { rows: 1, equivalence: RowsEquivalence::Ordered }
            } else {
                Outcome::Diff {
                    diff: format!("record result vs {} SQL rows", sqlout.rows.len()),
                    original: dump_dyn(&run.result),
                    translated: dump_rows(sqlout.rows.iter().map(|r| r.values().to_vec())),
                }
            }
        }
        (orig, out) => {
            let translated = match out {
                QueryOutput::Rows(r) => dump_rows(r.rows.iter().map(|x| x.values().to_vec())),
                QueryOutput::Scalar { value, .. } => format!("{value:?}"),
            };
            Outcome::Diff {
                diff: format!("result kinds differ: {} vs SQL", orig.kind()),
                original: dump_dyn(orig),
                translated,
            }
        }
    }
}

/// Runs the differential check and, on mismatch, minimizes the witness
/// database before reporting.
///
/// The fragment's `Query(...)` retrievals resolve against `db`'s tables;
/// `params` supplies values for both the kernel's parameters and the SQL's
/// bind parameters (the engine keeps their names aligned).
pub fn check(
    kernel: &KernelProgram,
    sql: &SqlQuery,
    db: &Database,
    params: &Params,
) -> OracleVerdict {
    check_opts(kernel, sql, db, params, &CheckOptions::default()).verdict
}

/// Runs the differential check without witness minimization — the hot path
/// for fuzzing loops where most verdicts are expected to agree.
pub fn check_unminimized(
    kernel: &KernelProgram,
    sql: &SqlQuery,
    db: &Database,
    params: &Params,
) -> OracleVerdict {
    let opts = CheckOptions { minimize: false, ..CheckOptions::default() };
    check_opts(kernel, sql, db, params, &opts).verdict
}

/// The configurable differential check: verdict plus the SQL executor's
/// counters, with join reordering and witness minimization per `opts`.
///
/// The SQL is prepared exactly once; the initial run and every
/// minimization candidate execute the same handle (candidates replan
/// transparently — their tables carry different generation counters).
pub fn check_opts(
    kernel: &KernelProgram,
    sql: &SqlQuery,
    db: &Database,
    params: &Params,
    opts: &CheckOptions,
) -> CheckOutcome {
    let conn = connect(db, opts);
    let stmt = conn.prepare_query(sql);
    check_with_handle(kernel, &stmt, &conn, params, opts)
}

/// Differentially checks one fragment on several databases through **one**
/// prepared handle: the statement is planned once and re-executed per
/// seed, so each outcome's [`ExecStats`] show a plan-cache hit instead of
/// a fresh planning pass (the corpus oracle's execute-many shape).
pub fn check_many(
    kernel: &KernelProgram,
    sql: &SqlQuery,
    dbs: &[Database],
    params: &Params,
    opts: &CheckOptions,
) -> Vec<CheckOutcome> {
    let mut stmt: Option<PreparedStatement> = None;
    dbs.iter()
        .map(|db| {
            let conn = connect(db, opts);
            let stmt = stmt.get_or_insert_with(|| conn.prepare_query(sql));
            check_with_handle(kernel, stmt, &conn, params, opts)
        })
        .collect()
}

fn connect(db: &Database, opts: &CheckOptions) -> Connection {
    Connection::open_with(db.clone(), opts.plan_config(), Dialect::Generic)
}

fn check_with_handle(
    kernel: &KernelProgram,
    stmt: &PreparedStatement,
    conn: &Connection,
    params: &Params,
    opts: &CheckOptions,
) -> CheckOutcome {
    // Lower the fragment once; the initial run, every minimization
    // candidate, and the witness re-derivation replay the bytecode.
    let compiled = qbs_kernel::compile(kernel);
    let witness = |diff, original, translated, db| {
        OracleVerdict::Mismatch(Box::new(MismatchWitness {
            fragment: kernel.name().to_string(),
            sql: stmt.query().to_string(),
            diff,
            original,
            translated,
            db,
        }))
    };
    let mut exec = None;
    let mut times = SideTimes::default();
    let verdict = match run_both(&compiled, stmt, conn, params, &mut exec, &mut times) {
        Outcome::Agree { rows, equivalence } => OracleVerdict::Agree { rows, equivalence },
        Outcome::Inconclusive(reason) => OracleVerdict::Inconclusive { reason },
        Outcome::Diff { diff, original, translated } if !opts.minimize => {
            witness(diff, original, translated, (*conn.database()).clone())
        }
        Outcome::Diff { diff, original, translated } => {
            let full = (*conn.database()).clone();
            let minimized = minimize_with(&compiled, stmt, &full, params, &opts.plan_config());
            // Re-derive the divergence on the minimized database so the
            // witness is self-contained.
            let mut scratch = None;
            let reconn =
                Connection::open_with(minimized.clone(), opts.plan_config(), Dialect::Generic);
            match run_both(
                &compiled,
                stmt,
                &reconn,
                params,
                &mut scratch,
                &mut SideTimes::default(),
            ) {
                Outcome::Diff { diff, original, translated } => {
                    witness(diff, original, translated, minimized)
                }
                // Unreachable by construction (minimize only commits
                // mismatch-preserving reductions), kept total for safety.
                _ => witness(diff, original, translated, full),
            }
        }
    };
    CheckOutcome { verdict, exec, kernel_ns: times.kernel_ns, sql_ns: times.sql_ns }
}

/// Rebuilds `db` with `table` restricted to the rows whose positions are
/// marked in `keep`; schemas and indexes carry over.
fn retain_rows(db: &Database, table: &Ident, keep: &[bool]) -> Database {
    let mut out = Database::new();
    for name in db.table_names() {
        let t = db.table(name).expect("listed table");
        out.create_table(t.schema().clone()).expect("fresh database");
        for (i, row) in t.rows().enumerate() {
            if name == table && !keep.get(i).copied().unwrap_or(true) {
                continue;
            }
            out.insert(name.as_str(), row.to_vec()).expect("same schema");
        }
        for col in t.indexed_columns() {
            out.create_index(name.as_str(), col.as_str()).expect("same schema");
        }
    }
    out
}

/// Greedily shrinks the database while the fragment and its SQL still
/// disagree — delta debugging over table rows, chunked from whole-table
/// removals down to single rows, bounded by a fixed re-execution budget.
///
/// The result is a (near-)minimal database on which the mismatch still
/// reproduces; on agreement or errors the input database is returned
/// unchanged.
pub fn minimize(
    kernel: &KernelProgram,
    sql: &SqlQuery,
    db: &Database,
    params: &Params,
) -> Database {
    let config = PlanConfig::default();
    let conn = Connection::open_with(db.clone(), config.clone(), Dialect::Generic);
    let stmt = conn.prepare_query(sql);
    minimize_with(&qbs_kernel::compile(kernel), &stmt, db, params, &config)
}

/// [`minimize`] under the plan configuration the mismatch was found with,
/// so reductions are judged by the same executor behaviour. Every
/// candidate database executes the *same* prepared handle, moving in and
/// out of a throwaway connection without being copied.
fn minimize_with(
    kernel: &CompiledProgram,
    stmt: &PreparedStatement,
    db: &Database,
    params: &Params,
    config: &PlanConfig,
) -> Database {
    let still_mismatch = |candidate: Database| -> (bool, Database) {
        let mut scratch = None;
        let conn = Connection::open_with(candidate, config.clone(), Dialect::Generic);
        let diff = matches!(
            run_both(kernel, stmt, &conn, params, &mut scratch, &mut SideTimes::default()),
            Outcome::Diff { .. }
        );
        (diff, conn.into_database())
    };
    let (reproduced, initial) = still_mismatch(db.clone());
    if !reproduced {
        return initial;
    }
    let mut budget = MINIMIZE_BUDGET;
    let mut current = initial;
    let tables: Vec<Ident> = current.table_names().cloned().collect();
    for table in tables {
        let mut chunk = current.table(&table).map(|t| t.len()).unwrap_or(0);
        while chunk >= 1 && budget > 0 {
            let len = current.table(&table).map(|t| t.len()).unwrap_or(0);
            let mut start = 0;
            while start < len && budget > 0 {
                let len_now = current.table(&table).map(|t| t.len()).unwrap_or(0);
                if start >= len_now {
                    break;
                }
                let mut keep = vec![true; len_now];
                for k in keep.iter_mut().skip(start).take(chunk) {
                    *k = false;
                }
                budget -= 1;
                let (diff, candidate) = still_mismatch(retain_rows(&current, &table, &keep));
                if diff {
                    // Commit the removal; the next chunk now starts at the
                    // same position.
                    current = candidate;
                } else {
                    start += chunk;
                }
            }
            chunk /= 2;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbs_common::{FieldType, Schema, Value};
    use qbs_kernel::{KExpr, KStmt};
    use qbs_tor::{CmpOp, QuerySpec};

    fn users_db(role_pairs: &[(i64, i64)]) -> Database {
        let mut db = Database::new();
        db.create_table(
            Schema::builder("users")
                .field("id", FieldType::Int)
                .field("roleId", FieldType::Int)
                .finish(),
        )
        .unwrap();
        for (id, role) in role_pairs {
            db.insert("users", vec![Value::from(*id), Value::from(*role)]).unwrap();
        }
        db
    }

    fn selection_kernel_built(role: i64) -> KernelProgram {
        let schema = Schema::builder("users")
            .field("id", FieldType::Int)
            .field("roleId", FieldType::Int)
            .finish();
        KernelProgram::builder("sel")
            .stmt(KStmt::assign("out", KExpr::EmptyList))
            .stmt(KStmt::assign("users", KExpr::query(QuerySpec::table_scan("users", schema))))
            .stmt(KStmt::assign("i", KExpr::int(0)))
            .stmt(KStmt::while_loop(
                KExpr::cmp(CmpOp::Lt, KExpr::var("i"), KExpr::size(KExpr::var("users"))),
                vec![
                    KStmt::if_then(
                        KExpr::cmp(
                            CmpOp::Eq,
                            KExpr::field(
                                KExpr::get(KExpr::var("users"), KExpr::var("i")),
                                "roleId",
                            ),
                            KExpr::int(role),
                        ),
                        vec![KStmt::assign(
                            "out",
                            KExpr::append(
                                KExpr::var("out"),
                                KExpr::get(KExpr::var("users"), KExpr::var("i")),
                            ),
                        )],
                    ),
                    KStmt::assign("i", KExpr::add(KExpr::var("i"), KExpr::int(1))),
                ],
            ))
            .result("out")
            .finish()
    }

    fn select_where_role(role: i64) -> SqlQuery {
        qbs_sql::parse(&format!(
            "SELECT users.id, users.roleId FROM users WHERE users.roleId = {role} \
             ORDER BY users.rowid"
        ))
        .unwrap()
    }

    #[test]
    fn correct_translation_agrees() {
        let db = users_db(&[(1, 10), (2, 20), (3, 10)]);
        let v = check(&selection_kernel_built(10), &select_where_role(10), &db, &Params::new());
        match v {
            OracleVerdict::Agree { rows, equivalence } => {
                assert_eq!(rows, 2);
                assert_eq!(equivalence, RowsEquivalence::Ordered);
            }
            other => panic!("expected agree, got {other}"),
        }
    }

    #[test]
    fn wrong_predicate_is_a_minimized_mismatch() {
        let db = users_db(&[(0, 10), (1, 20), (2, 10), (3, 20), (4, 10), (5, 30)]);
        // The "translation" filters role 20 while the source filters 10.
        let v = check(&selection_kernel_built(10), &select_where_role(20), &db, &Params::new());
        let OracleVerdict::Mismatch(w) = v else { panic!("expected mismatch, got {v}") };
        // A single row with roleId ∈ {10, 20} suffices to show divergence;
        // minimization must get there.
        let users = w.db.table(&"users".into()).expect("witness keeps the table");
        assert_eq!(users.len(), 1, "witness:\n{w}");
        assert!(w.to_string().contains("sql:"), "{w}");
    }

    /// An imperative max-loop over `users` (`best = i64::MIN` sentinel
    /// init, as real fragments write it).
    fn max_kernel() -> KernelProgram {
        let schema = Schema::builder("users")
            .field("id", FieldType::Int)
            .field("roleId", FieldType::Int)
            .finish();
        KernelProgram::builder("maxid")
            .stmt(KStmt::assign("best", KExpr::int(i64::MIN)))
            .stmt(KStmt::assign("users", KExpr::query(QuerySpec::table_scan("users", schema))))
            .stmt(KStmt::assign("i", KExpr::int(0)))
            .stmt(KStmt::while_loop(
                KExpr::cmp(CmpOp::Lt, KExpr::var("i"), KExpr::size(KExpr::var("users"))),
                vec![
                    KStmt::if_then(
                        KExpr::cmp(
                            CmpOp::Gt,
                            KExpr::field(
                                KExpr::get(KExpr::var("users"), KExpr::var("i")),
                                "id",
                            ),
                            KExpr::var("best"),
                        ),
                        vec![KStmt::assign(
                            "best",
                            KExpr::field(
                                KExpr::get(KExpr::var("users"), KExpr::var("i")),
                                "id",
                            ),
                        )],
                    ),
                    KStmt::assign("i", KExpr::add(KExpr::var("i"), KExpr::int(1))),
                ],
            ))
            .result("best")
            .finish()
    }

    #[test]
    fn empty_max_is_inconclusive_not_a_sentinel_comparison() {
        // The kernel's sentinel (i64::MIN) is garbage, and so was the old
        // SQL executor's — the oracle must not compare the two as if they
        // were data. The executor now raises EmptyAggregate, which the
        // oracle maps to Inconclusive.
        let db = users_db(&[]);
        let sql = qbs_sql::parse("SELECT MAX(users.id) FROM users").unwrap();
        let v = check(&max_kernel(), &sql, &db, &Params::new());
        match v {
            OracleVerdict::Inconclusive { reason } => {
                assert!(reason.contains("empty relation"), "{reason}")
            }
            other => panic!("expected inconclusive, got {other}"),
        }
        // On a populated table the same pair agrees.
        let db = users_db(&[(7, 1), (3, 2)]);
        let v = check(&max_kernel(), &sql, &db, &Params::new());
        assert!(v.is_agree(), "{v}");
    }

    #[test]
    fn check_opts_reports_exec_stats_and_honors_reordering() {
        let db = users_db(&[(1, 10), (2, 20), (3, 10)]);
        let opts = CheckOptions { reorder_joins: true, ..CheckOptions::default() };
        let out = check_opts(
            &selection_kernel_built(10),
            &select_where_role(10),
            &db,
            &Params::new(),
            &opts,
        );
        assert!(out.verdict.is_agree(), "{}", out.verdict);
        let exec = out.exec.expect("sql side executed");
        assert!(exec.rows_scanned > 0, "{exec:?}");
        // Both sides ran, so both wall-clocks were measured.
        assert!(out.kernel_ns > 0, "kernel side timed");
        assert!(out.sql_ns > 0, "sql side timed");
    }

    #[test]
    fn inconclusive_sql_side_reports_zero_sql_time() {
        let db = users_db(&[(1, 10)]);
        let sql = qbs_sql::parse("SELECT missing.id FROM missing").unwrap();
        let out = check_opts(
            &selection_kernel_built(10),
            &sql,
            &db,
            &Params::new(),
            &CheckOptions::default(),
        );
        assert!(matches!(out.verdict, OracleVerdict::Inconclusive { .. }));
        assert!(out.kernel_ns > 0, "interpreter finished before the sql side failed");
        assert_eq!(out.sql_ns, 0, "failed execution has no measured time");
    }

    #[test]
    fn unknown_table_is_inconclusive() {
        let db = users_db(&[(1, 10)]);
        let sql = qbs_sql::parse("SELECT missing.id FROM missing").unwrap();
        let v = check(&selection_kernel_built(10), &sql, &db, &Params::new());
        assert!(matches!(v, OracleVerdict::Inconclusive { .. }), "{v}");
    }

    #[test]
    fn unordered_query_compares_as_multiset() {
        let db = users_db(&[(1, 10), (2, 10)]);
        // No ORDER BY: the oracle must not require row order.
        let sql = qbs_sql::parse("SELECT users.id, users.roleId FROM users").unwrap();
        let v = check(&selection_kernel_built(10), &sql, &db, &Params::new());
        match v {
            OracleVerdict::Agree { equivalence, .. } => {
                assert_eq!(equivalence, RowsEquivalence::Multiset)
            }
            other => panic!("expected agree, got {other}"),
        }
    }
}
