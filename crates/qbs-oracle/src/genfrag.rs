//! Seeded random-fragment generation.
//!
//! Fragments are drawn as kernel-language programs (not MiniJava source)
//! so generation composes directly with [`qbs::Session::infer`]: every
//! generated program is well-typed against the corpus schemas
//! ([`qbs_corpus::universe_schemas`]) and follows one of the loop idioms
//! the paper's invariant templates cover — filter, projection, aggregate
//! (count / exists / max), distinct projection, and nested-loop join. The
//! generator is a [`Strategy`] over the kernel AST driven by the
//! deterministic proptest RNG, so a `(seed, index)` pair always reproduces
//! the same fragment — mismatches found in CI replay locally.

use proptest::strategy::{FnStrategy, Strategy};
use proptest::test_runner::TestRng;
use qbs_common::{FieldType, SchemaRef};
use qbs_kernel::{KExpr, KStmt, KernelProgram};
use qbs_tor::CmpOp;
use std::fmt;

/// The loop idiom a generated fragment exercises.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FragShape {
    /// Selection: append matching records.
    Filter,
    /// Projection: append one integer field.
    Projection,
    /// Count of matching records.
    Count,
    /// Existence flag over matching records.
    Exists,
    /// Running maximum of an integer field.
    Max,
    /// Distinct projection (`unique` of the appended fields).
    Distinct,
    /// Nested-loop equi-join, appending left records.
    Join,
    /// Constant-bounded prefix (`i < k && i < size(xs)`): the guarded
    /// top-k idiom, translating to `LIMIT k`.
    TopK,
    /// Per-key count via the map-accumulator idiom: `GROUP BY` + `COUNT`.
    GroupCount,
    /// Per-key sum of an integer field: `GROUP BY` + `SUM`.
    GroupSum,
    /// Per-key count followed by a threshold filter over the entries: the
    /// two-loop `GROUP BY` + `HAVING` shape.
    GroupHaving,
}

impl FragShape {
    /// All shapes, in generation-weight order.
    pub const ALL: [FragShape; 11] = [
        FragShape::Filter,
        FragShape::Projection,
        FragShape::Count,
        FragShape::Exists,
        FragShape::Max,
        FragShape::Distinct,
        FragShape::Join,
        FragShape::TopK,
        FragShape::GroupCount,
        FragShape::GroupSum,
        FragShape::GroupHaving,
    ];
}

impl fmt::Display for FragShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One generated fragment: a kernel program typed against the corpus
/// schemas, ready for query inference and differential checking.
#[derive(Clone, Debug)]
pub struct GenFragment {
    /// Unique name (`fuzz<index>_<shape>_<table>`).
    pub name: String,
    /// The loop idiom.
    pub shape: FragShape,
    /// The program.
    pub kernel: KernelProgram,
}

// ---------- kernel construction helpers (the corpus loop idiom) ----------

fn size_guard(counter: &str, src: &str) -> KExpr {
    KExpr::cmp(CmpOp::Lt, KExpr::var(counter), KExpr::size(KExpr::var(src)))
}

fn counter_loop(guard: KExpr, mut body: Vec<KStmt>, counter: &str) -> KStmt {
    body.push(KStmt::assign(counter, KExpr::add(KExpr::var(counter), KExpr::int(1))));
    KStmt::while_loop(guard, body)
}

fn elem_field(src: &str, counter: &str, field: &str) -> KExpr {
    KExpr::field(KExpr::get(KExpr::var(src), KExpr::var(counter)), field)
}

fn append_elem(out: &str, src: &str, counter: &str) -> KStmt {
    KStmt::assign(
        out,
        KExpr::append(KExpr::var(out), KExpr::get(KExpr::var(src), KExpr::var(counter))),
    )
}

fn scan(var: &str, schema: &SchemaRef) -> KStmt {
    let table = schema.name().expect("catalog schemas are named").clone();
    KStmt::assign(var, KExpr::query(qbs_tor::QuerySpec::table_scan(table, schema.clone())))
}

// ---------- drawing typed predicates ----------

fn fields_of(schema: &SchemaRef, ty: FieldType) -> Vec<String> {
    schema.fields().iter().filter(|f| f.ty == ty).map(|f| f.name.as_str().to_string()).collect()
}

/// Draws a predicate over the scanned element: a conjunction of 1–2 typed
/// atoms (`x.f ⋈ c`), or `None` for an unconditional loop.
fn draw_pred(rng: &mut TestRng, schema: &SchemaRef, src: &str, counter: &str) -> Option<KExpr> {
    let ints = fields_of(schema, FieldType::Int);
    let bools = fields_of(schema, FieldType::Bool);
    let atoms = match rng.draw_usize(0..4) {
        0 => 0,
        1 | 2 => 1,
        _ => 2,
    };
    let mut pred: Option<KExpr> = None;
    for _ in 0..atoms {
        let use_bool = !bools.is_empty() && rng.draw_usize(0..4) == 0;
        let atom = if use_bool {
            let f = &bools[rng.draw_usize(0..bools.len())];
            KExpr::cmp(CmpOp::Eq, elem_field(src, counter, f), KExpr::bool(rng.draw_bool()))
        } else {
            let f = &ints[rng.draw_usize(0..ints.len())];
            let (op, hi) = match rng.draw_usize(0..4) {
                0 => (CmpOp::Gt, 30),
                1 => (CmpOp::Lt, 30),
                _ => (CmpOp::Eq, 8),
            };
            KExpr::cmp(op, elem_field(src, counter, f), KExpr::int(rng.draw_i64(0..hi)))
        };
        pred = Some(match pred {
            None => atom,
            Some(p) => KExpr::and(p, atom),
        });
    }
    pred
}

fn guarded(pred: Option<KExpr>, then: Vec<KStmt>) -> Vec<KStmt> {
    match pred {
        Some(p) => vec![KStmt::if_then(p, then)],
        None => then,
    }
}

fn draw_int_field(rng: &mut TestRng, schema: &SchemaRef) -> String {
    let ints = fields_of(schema, FieldType::Int);
    ints[rng.draw_usize(0..ints.len())].clone()
}

/// The per-key accumulation statement `m := mapput(m, [key = xs[i].key],
/// val, update(mapget(m, …, val, 0)))` shared by the grouped shapes.
fn accum_stmt(key: &str, val: &str, update: impl FnOnce(KExpr) -> KExpr) -> KStmt {
    let probe = || vec![(key.into(), elem_field("xs", "i", key))];
    KStmt::assign(
        "m",
        KExpr::mapput(
            KExpr::var("m"),
            probe(),
            val,
            update(KExpr::mapget(KExpr::var("m"), probe(), val, KExpr::int(0))),
        ),
    )
}

// ---------- per-shape generators ----------

fn gen_one(rng: &mut TestRng, index: usize) -> GenFragment {
    let catalog = qbs_corpus::universe_schemas();
    let shape = FragShape::ALL[rng.draw_usize(0..FragShape::ALL.len())];
    let schema = catalog[rng.draw_usize(0..catalog.len())].clone();
    let table = schema.name().expect("named").as_str().to_string();
    let name = format!("fuzz{index}_{}_{}", shape.to_string().to_lowercase(), table);

    let kernel = match shape {
        FragShape::Filter => {
            let pred = draw_pred(rng, &schema, "xs", "i");
            KernelProgram::builder(name.clone())
                .stmt(KStmt::assign("out", KExpr::EmptyList))
                .stmt(scan("xs", &schema))
                .stmt(KStmt::assign("i", KExpr::int(0)))
                .stmt(counter_loop(
                    size_guard("i", "xs"),
                    guarded(pred, vec![append_elem("out", "xs", "i")]),
                    "i",
                ))
                .result("out")
                .finish()
        }
        FragShape::Projection | FragShape::Distinct => {
            let field = draw_int_field(rng, &schema);
            let pred = draw_pred(rng, &schema, "xs", "i");
            let mut b = KernelProgram::builder(name.clone())
                .stmt(KStmt::assign("tmp", KExpr::EmptyList))
                .stmt(scan("xs", &schema))
                .stmt(KStmt::assign("i", KExpr::int(0)))
                .stmt(counter_loop(
                    size_guard("i", "xs"),
                    guarded(
                        pred,
                        vec![KStmt::assign(
                            "tmp",
                            KExpr::append(KExpr::var("tmp"), elem_field("xs", "i", &field)),
                        )],
                    ),
                    "i",
                ));
            if shape == FragShape::Distinct {
                b = b.stmt(KStmt::assign("out", KExpr::unique(KExpr::var("tmp"))));
                b.result("out").finish()
            } else {
                b.result("tmp").finish()
            }
        }
        FragShape::Count => {
            let pred = draw_pred(rng, &schema, "xs", "i");
            KernelProgram::builder(name.clone())
                .stmt(KStmt::assign("c", KExpr::int(0)))
                .stmt(scan("xs", &schema))
                .stmt(KStmt::assign("i", KExpr::int(0)))
                .stmt(counter_loop(
                    size_guard("i", "xs"),
                    guarded(
                        pred,
                        vec![KStmt::assign("c", KExpr::add(KExpr::var("c"), KExpr::int(1)))],
                    ),
                    "i",
                ))
                .result("c")
                .finish()
        }
        FragShape::Exists => {
            let pred = draw_pred(rng, &schema, "xs", "i");
            KernelProgram::builder(name.clone())
                .stmt(KStmt::assign("found", KExpr::bool(false)))
                .stmt(scan("xs", &schema))
                .stmt(KStmt::assign("i", KExpr::int(0)))
                .stmt(counter_loop(
                    size_guard("i", "xs"),
                    guarded(pred, vec![KStmt::assign("found", KExpr::bool(true))]),
                    "i",
                ))
                .result("found")
                .finish()
        }
        FragShape::Max => {
            let field = draw_int_field(rng, &schema);
            KernelProgram::builder(name.clone())
                .stmt(KStmt::assign("best", KExpr::int(i64::MIN)))
                .stmt(scan("xs", &schema))
                .stmt(KStmt::assign("i", KExpr::int(0)))
                .stmt(counter_loop(
                    size_guard("i", "xs"),
                    vec![KStmt::if_then(
                        KExpr::cmp(
                            CmpOp::Gt,
                            elem_field("xs", "i", &field),
                            KExpr::var("best"),
                        ),
                        vec![KStmt::assign("best", elem_field("xs", "i", &field))],
                    )],
                    "i",
                ))
                .result("best")
                .finish()
        }
        FragShape::Join => {
            // A second, distinct table and one integer key field per side.
            let mut other = catalog[rng.draw_usize(0..catalog.len())].clone();
            if other.name() == schema.name() {
                let at = catalog
                    .iter()
                    .position(|s| s.name() == schema.name())
                    .expect("schema from catalog");
                other = catalog[(at + 1) % catalog.len()].clone();
            }
            let lf = draw_int_field(rng, &schema);
            let rf = draw_int_field(rng, &other);
            KernelProgram::builder(name.clone())
                .stmt(KStmt::assign("out", KExpr::EmptyList))
                .stmt(scan("xs", &schema))
                .stmt(scan("ys", &other))
                .stmt(KStmt::assign("i", KExpr::int(0)))
                .stmt(counter_loop(
                    size_guard("i", "xs"),
                    vec![
                        KStmt::assign("j", KExpr::int(0)),
                        counter_loop(
                            size_guard("j", "ys"),
                            vec![KStmt::if_then(
                                KExpr::cmp(
                                    CmpOp::Eq,
                                    elem_field("xs", "i", &lf),
                                    elem_field("ys", "j", &rf),
                                ),
                                vec![append_elem("out", "xs", "i")],
                            )],
                            "j",
                        ),
                    ],
                    "i",
                ))
                .result("out")
                .finish()
        }
        FragShape::TopK => {
            // No predicate: a guarded loop body would mean "matches among
            // the first k rows" (select ∘ top), which is not the top-k
            // template the synthesizer proves — keep the append
            // unconditional so the fragment is exactly `top_k(xs)`.
            let k = rng.draw_i64(1..12);
            KernelProgram::builder(name.clone())
                .stmt(KStmt::assign("out", KExpr::EmptyList))
                .stmt(scan("xs", &schema))
                .stmt(KStmt::assign("i", KExpr::int(0)))
                .stmt(counter_loop(
                    KExpr::and(
                        KExpr::cmp(CmpOp::Lt, KExpr::var("i"), KExpr::int(k)),
                        size_guard("i", "xs"),
                    ),
                    vec![append_elem("out", "xs", "i")],
                    "i",
                ))
                .result("out")
                .finish()
        }
        FragShape::GroupCount | FragShape::GroupSum => {
            let key = draw_int_field(rng, &schema);
            let pred = draw_pred(rng, &schema, "xs", "i");
            let accum = if shape == FragShape::GroupCount {
                accum_stmt(&key, "n", |cur| KExpr::add(cur, KExpr::int(1)))
            } else {
                let agg = draw_int_field(rng, &schema);
                accum_stmt(&key, "total", |cur| KExpr::add(cur, elem_field("xs", "i", &agg)))
            };
            KernelProgram::builder(name.clone())
                .stmt(KStmt::assign("m", KExpr::EmptyList))
                .stmt(scan("xs", &schema))
                .stmt(KStmt::assign("i", KExpr::int(0)))
                .stmt(counter_loop(size_guard("i", "xs"), guarded(pred, vec![accum]), "i"))
                .result("m")
                .finish()
        }
        FragShape::GroupHaving => {
            // Count per key, then keep only the entries over a threshold —
            // the imperative source of `GROUP BY … HAVING COUNT(*) > t`.
            let key = draw_int_field(rng, &schema);
            let t = rng.draw_i64(0..4);
            KernelProgram::builder(name.clone())
                .stmt(KStmt::assign("m", KExpr::EmptyList))
                .stmt(KStmt::assign("out", KExpr::EmptyList))
                .stmt(scan("xs", &schema))
                .stmt(KStmt::assign("i", KExpr::int(0)))
                .stmt(counter_loop(
                    size_guard("i", "xs"),
                    vec![accum_stmt(&key, "n", |cur| KExpr::add(cur, KExpr::int(1)))],
                    "i",
                ))
                .stmt(KStmt::assign("j", KExpr::int(0)))
                .stmt(counter_loop(
                    size_guard("j", "m"),
                    vec![KStmt::if_then(
                        KExpr::cmp(CmpOp::Gt, elem_field("m", "j", "n"), KExpr::int(t)),
                        vec![append_elem("out", "m", "j")],
                    )],
                    "j",
                ))
                .result("out")
                .finish()
        }
    };
    GenFragment { name, shape, kernel }
}

/// A [`Strategy`] producing one random fragment; `index` only feeds the
/// fragment's name so batched draws stay distinguishable.
pub fn arb_fragment(index: usize) -> impl Strategy<Value = GenFragment> {
    FnStrategy(move |rng: &mut TestRng| gen_one(rng, index))
}

/// Deterministically generates `count` fragments from `seed`. The same
/// `(seed, count)` always yields the same programs, and fragment `k` of a
/// longer run equals fragment `k` of a shorter one — CI failures replay
/// locally from the reported seed alone.
pub fn generate(seed: u64, count: usize) -> Vec<GenFragment> {
    let mut rng = TestRng::with_seed(seed);
    (0..count).map(|k| arb_fragment(k).generate(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_prefix_stable() {
        let a = generate(7, 20);
        let b = generate(7, 20);
        assert_eq!(a.len(), 20);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.kernel, y.kernel);
        }
        let prefix = generate(7, 5);
        for (x, y) in prefix.iter().zip(a.iter()) {
            assert_eq!(x.kernel, y.kernel, "prefix stability");
        }
        // A different seed draws a different corpus.
        let c = generate(8, 20);
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.kernel != y.kernel));
    }

    #[test]
    fn generated_fragments_interpret_on_the_universe() {
        let db = qbs_corpus::populate_universe(1);
        for frag in generate(3, 30) {
            let run = qbs_kernel::run(&frag.kernel, db.env())
                .unwrap_or_else(|e| panic!("{} does not interpret: {e}", frag.name));
            // Every shape yields a relation or a scalar; records never.
            assert!(run.result.as_record().is_none(), "{}", frag.name);
        }
    }

    #[test]
    fn all_shapes_are_reachable() {
        let frags = generate(11, 120);
        for shape in FragShape::ALL {
            assert!(
                frags.iter().any(|f| f.shape == shape),
                "shape {shape} never generated in 120 draws"
            );
        }
    }
}
