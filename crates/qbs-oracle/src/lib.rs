//! Differential execution oracle for QBS translations.
//!
//! `qbs-verify` certifies semantic preservation *symbolically* (invariants
//! and postconditions over the TOR axioms). This crate adds the concrete
//! counterpart: for any fragment, it
//!
//! 1. **interprets** the original imperative kernel program
//!    ([`qbs_kernel::run`]) against an in-memory [`Database`]'s relations,
//! 2. **executes** the synthesized SQL on the *same* database through
//!    `qbs-db`'s planner/executor, and
//! 3. **compares** the results under the correct TOR semantics — ordered
//!    equality where the query pins order with `ORDER BY`, multiset
//!    equality otherwise — yielding an [`OracleVerdict`]:
//!    [`Agree`](OracleVerdict::Agree),
//!    [`Mismatch`](OracleVerdict::Mismatch) with a delta-debugged witness
//!    database, or [`Inconclusive`](OracleVerdict::Inconclusive).
//!
//! On top of the checker, [`genfrag`] generates random well-typed kernel
//! fragments (filter / projection / aggregate / distinct / nested-loop
//! join shapes over the corpus schemas) from a seed, so the oracle extends
//! beyond the fixed 49-fragment corpus to arbitrarily many fuzzed
//! workloads. `qbs-batch` wires both into a parallel corpus-scale oracle
//! mode.
//!
//! # Example
//!
//! ```
//! use qbs::{FragmentStatus, QbsEngine};
//! use qbs_corpus::{all_fragments, populate_universe, ExpectedStatus};
//! use qbs_db::Params;
//!
//! let frag = all_fragments().into_iter().find(|f| f.id == 40).unwrap();
//! assert_eq!(frag.expected, ExpectedStatus::Translated);
//! let report = QbsEngine::new(frag.model()).run_source(&frag.source).unwrap();
//! let fr = &report.fragments[0];
//! let FragmentStatus::Translated { sql, .. } = &fr.status else { panic!() };
//!
//! let db = populate_universe(1);
//! let verdict = qbs_oracle::check(
//!     fr.kernel.as_ref().unwrap(),
//!     sql,
//!     &db,
//!     &Params::new(),
//! );
//! assert!(verdict.is_agree(), "{verdict}");
//! ```
//!
//! [`Database`]: qbs_db::Database

pub mod genfrag;
mod oracle;
mod verdict;

pub use oracle::{
    check, check_many, check_opts, check_unminimized, minimize, proven_equivalence,
    CheckOptions, CheckOutcome,
};
pub use verdict::{dump_database, MismatchWitness, OracleCounts, OracleVerdict};
