//! Oracle verdicts and mismatch witnesses.

use qbs_db::{Database, RowsEquivalence};
use std::fmt;

/// The outcome of one differential check: original fragment vs. its
/// synthesized SQL, executed on the same database.
#[derive(Clone, Debug)]
pub enum OracleVerdict {
    /// Both sides produced the same result.
    Agree {
        /// Result cardinality (1 for scalar results).
        rows: usize,
        /// The equivalence the comparison ran under: [`Ordered`] when the
        /// query's order is pinned by an `ORDER BY` (or the result is a
        /// scalar), [`Multiset`] otherwise.
        ///
        /// [`Ordered`]: RowsEquivalence::Ordered
        /// [`Multiset`]: RowsEquivalence::Multiset
        equivalence: RowsEquivalence,
    },
    /// The sides disagree — a semantic-preservation violation, with a
    /// minimized witness database that still exhibits the divergence.
    Mismatch(Box<MismatchWitness>),
    /// The check could not be completed (interpreter or executor error,
    /// incomparable result kinds with an empty side, …). Inconclusive
    /// verdicts are not failures, but a high rate signals oracle gaps.
    Inconclusive {
        /// Why the comparison was abandoned.
        reason: String,
    },
}

impl OracleVerdict {
    /// Single-character tag for compact reports: `=`, `≠`, or `?`.
    pub fn glyph(&self) -> &'static str {
        match self {
            OracleVerdict::Agree { .. } => "=",
            OracleVerdict::Mismatch(_) => "≠",
            OracleVerdict::Inconclusive { .. } => "?",
        }
    }

    /// True for [`OracleVerdict::Agree`].
    pub fn is_agree(&self) -> bool {
        matches!(self, OracleVerdict::Agree { .. })
    }

    /// True for [`OracleVerdict::Mismatch`].
    pub fn is_mismatch(&self) -> bool {
        matches!(self, OracleVerdict::Mismatch(_))
    }
}

impl fmt::Display for OracleVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleVerdict::Agree { rows, equivalence } => {
                let eq = match equivalence {
                    RowsEquivalence::Ordered => "ordered",
                    RowsEquivalence::Multiset => "multiset",
                };
                write!(f, "agree ({rows} rows, {eq})")
            }
            OracleVerdict::Mismatch(w) => write!(f, "MISMATCH: {}", w.diff),
            OracleVerdict::Inconclusive { reason } => write!(f, "inconclusive: {reason}"),
        }
    }
}

/// A reproducible counterexample to semantic preservation: the fragment,
/// the SQL, the point of divergence, and a minimized database on which the
/// two sides still disagree.
#[derive(Clone, Debug)]
pub struct MismatchWitness {
    /// Fragment (kernel program) name.
    pub fragment: String,
    /// The synthesized SQL, rendered in the generic dialect.
    pub sql: String,
    /// Human-readable description of the first divergence found on the
    /// minimized database.
    pub diff: String,
    /// The original (interpreted) result on the minimized database.
    pub original: String,
    /// The translated (SQL) result on the minimized database.
    pub translated: String,
    /// The minimized database: row removal was driven to a fixpoint while
    /// preserving the mismatch, so this is a near-minimal repro.
    pub db: Database,
}

impl fmt::Display for MismatchWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fragment:   {}", self.fragment)?;
        writeln!(f, "sql:        {}", self.sql)?;
        writeln!(f, "diff:       {}", self.diff)?;
        writeln!(f, "original:   {}", self.original)?;
        writeln!(f, "translated: {}", self.translated)?;
        writeln!(f, "witness database:")?;
        f.write_str(&dump_database(&self.db))
    }
}

/// Renders a database as a deterministic, diff-friendly text dump (used by
/// witness files and the datagen determinism tests).
pub fn dump_database(db: &Database) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for name in db.table_names() {
        let table = db.table(name).expect("listed table");
        let _ = writeln!(out, "  table {} ({} rows)", table.schema().describe(), table.len());
        for row in table.rows() {
            let _ = writeln!(out, "    {row:?}");
        }
    }
    out
}

/// Aggregate verdict counts for a batch of checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleCounts {
    /// Checks run.
    pub total: usize,
    /// `=` verdicts.
    pub agree: usize,
    /// `≠` verdicts.
    pub mismatch: usize,
    /// `?` verdicts.
    pub inconclusive: usize,
}

impl OracleCounts {
    /// Folds one verdict into the counts.
    pub fn record(&mut self, v: &OracleVerdict) {
        self.total += 1;
        match v {
            OracleVerdict::Agree { .. } => self.agree += 1,
            OracleVerdict::Mismatch(_) => self.mismatch += 1,
            OracleVerdict::Inconclusive { .. } => self.inconclusive += 1,
        }
    }

    /// Accumulates verdicts from an iterator.
    pub fn of<'a>(verdicts: impl IntoIterator<Item = &'a OracleVerdict>) -> OracleCounts {
        let mut c = OracleCounts::default();
        for v in verdicts {
            c.record(v);
        }
        c
    }
}

impl fmt::Display for OracleCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} checks: {} agree, {} mismatch, {} inconclusive",
            self.total, self.agree, self.mismatch, self.inconclusive
        )
    }
}
